/**
 * @file
 * Umbrella header: include everything a typical wormnet user needs.
 * Fine-grained headers remain available for faster builds.
 */

#ifndef WORMNET_WORMNET_HH
#define WORMNET_WORMNET_HH

#include "common/config.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/simulation.hh"
#include "detection/detector.hh"
#include "detection/ndm.hh"
#include "detection/pdm.hh"
#include "detection/source_timeout.hh"
#include "detection/timeout.hh"
#include "fault/fault.hh"
#include "recovery/disha.hh"
#include "recovery/progressive.hh"
#include "recovery/recovery.hh"
#include "recovery/regressive.hh"
#include "router/flit.hh"
#include "router/message.hh"
#include "router/router.hh"
#include "routing/routing.hh"
#include "sim/metrics.hh"
#include "sim/network.hh"
#include "sim/oracle.hh"
#include "sim/trace.hh"
#include "sim/validate.hh"
#include "topology/mesh.hh"
#include "topology/mixed_torus.hh"
#include "topology/topology.hh"
#include "topology/torus.hh"
#include "traffic/generator.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

#endif // WORMNET_WORMNET_HH
