/**
 * @file
 * NDM — the paper's New Detection Mechanism (Section 3).
 *
 * Hardware modelled per router:
 *  - per output physical channel: an inactivity counter that counts
 *    idle cycles while the channel is occupied (reset on any flit
 *    transmission), an I flag (counter > t1, t1 tiny) and a DT flag
 *    (counter > t2, the tuned detection threshold);
 *  - per input physical channel: a G/P (Generate/Propagate) flag.
 *
 * Flag protocol:
 *  - First failed routing attempt of a head: if the input physical
 *    channel still has a free VC -> P. Otherwise test the I flags of
 *    the feasible output channels: all set (occupants were already
 *    blocked) -> P; any clear (an occupant is advancing and may be
 *    the root of the blocked tree) -> G.
 *  - Subsequent failed attempts: if every feasible output channel has
 *    DT set and the input flag is G, mark the message deadlocked.
 *    With P, wait — a G flag elsewhere covers the cycle.
 *  - The flag resets to P when any worm on that input channel is
 *    routed or frees a VC.
 *  - When an I flag is reset by a transmission (a new potential root
 *    appeared — the paper's Figure 5 scenario), P flags are re-armed
 *    to G: either all flags in the router (the paper's simple
 *    implementation) or only the flags of input channels with a
 *    blocked head waiting on that output channel (the selective
 *    variant the paper leaves as future work).
 *
 * Representation: the per-channel counters and I/DT flags are not
 * stored materially. A channel that is occupied and idle holds only
 * the cycle its idle run began (since_) plus a run bit in the node's
 * runMask_; the counter is the run length (now - since + 1) and the
 * flags are threshold comparisons against it, evaluated at read time.
 * This turns the per-node cycle-end work — formerly a loop over every
 * output channel incrementing counters and testing thresholds — into
 * pure mask arithmetic that is zero-cost in the steady blocked state
 * (no transmissions, occupied set unchanged), which is exactly the
 * state a congested or deadlocking network spends most cycles in.
 */

#ifndef WORMNET_DETECTION_NDM_HH
#define WORMNET_DETECTION_NDM_HH

#include <vector>

#include "detection/detector.hh"

namespace wormnet
{

/** How P flags are re-armed to G when an I flag is reset. */
enum class GpRearmPolicy : std::uint8_t
{
    /** Flip every P flag in the router (paper's simple scheme). */
    AllInRouter,
    /** Flip only input channels with a blocked head that was waiting
     *  on the output channel whose I flag was reset. */
    WaitersOnChannel,
};

/**
 * Configuration for NdmDetector.
 *
 * The re-arm default is the selective policy: the paper's prose
 * specifies "the G/P flags of those channels containing messages
 * waiting for that output channel should be set to G" and notes that
 * the coarser all-flags-in-router implementation "may lead to an
 * increase in the number of false deadlocks detected". Our
 * measurements confirm that only the selective policy reproduces the
 * paper's ~10x false-positive reduction over PDM (see
 * bench/ablation_gp_rearm); the coarse variant is kept for that
 * ablation.
 */
struct NdmParams
{
    Cycle t1 = 1;    ///< inactivity threshold for the I flag
    Cycle t2 = 32;   ///< detection threshold for the DT flag
    GpRearmPolicy rearm = GpRearmPolicy::WaitersOnChannel;
};

/** The paper's deadlock-detection mechanism. */
class NdmDetector : public DeadlockDetector
{
  public:
    explicit NdmDetector(const NdmParams &params);

    void init(const DetectorContext &ctx) override;
    bool onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortMask feasible_ports,
                         bool input_pc_fully_busy, bool first_attempt,
                         Cycle now) override;
    void onMessageRouted(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortId out_port,
                         VcId out_vc) override;
    void onInputVcFreed(NodeId router, PortId in_port,
                        VcId in_vc) override;
    void onCycleEnd(NodeId router, PortMask tx_mask,
                    PortMask occupied_mask, Cycle now) override;
    void onPortFaultChanged(NodeId router, PortId out_port,
                            bool faulty) override;
    /** Idle (0, 0) cycle-ends only re-clear already-clear state. */
    bool idleCycleEndStable() const override { return true; }
    /** onCycleEnd only touches router-indexed run/G/P/waiting state. */
    bool cycleEndShardSafe() const override { return true; }
    /** Drop routing-relation state (G/P flags, waiting masks); keep
     *  the channel-activity counters and I/DT flags, which time
     *  transmissions independent of the routing function. */
    void onRoutingChanged() override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

    /** @name White-box accessors for unit tests. */
    /// @{
    Cycle counter(NodeId router, PortId out_port) const;
    bool iFlag(NodeId router, PortId out_port) const;
    bool dtFlag(NodeId router, PortId out_port) const;
    /** true = G(enerate), false = P(ropagate). */
    bool gpFlag(NodeId router, PortId in_port) const;
    /// @}

    const NdmParams &params() const { return params_; }

  private:
    std::size_t
    outIdx(NodeId router, PortId port) const
    {
        return std::size_t(router) * ctx_.numOutPorts + port;
    }

    std::size_t
    inIdx(NodeId router, PortId port) const
    {
        return std::size_t(router) * ctx_.numInPorts + port;
    }

    std::size_t
    vcIdx(NodeId router, PortId port, VcId vc) const
    {
        return (std::size_t(router) * ctx_.numInPorts + port) *
                   ctx_.vcs + vc;
    }

    /** Apply the re-arm policy after I on @p out_port was reset. */
    void rearm(NodeId router, PortId out_port);

    /** Inactivity flag of (router, out_port) as observed during cycle
     *  @p now (i.e. after the cycle-end of now - 1): the channel has
     *  an idle run longer than @p threshold cycles. */
    bool
    flagAt(NodeId router, PortId out_port, Cycle now,
           Cycle threshold) const
    {
        return ((runMask_[router] >> out_port) & 1u) &&
               now - since_[outIdx(router, out_port)] > threshold;
    }

    NdmParams params_;
    DetectorContext ctx_;

    /** Per output physical channel: cycle the current occupied-idle
     *  run started (0 and don't-care when the run bit is clear). */
    std::vector<Cycle> since_;
    /** Per router: output channels with an idle run in progress. */
    std::vector<PortMask> runMask_;
    /** Per router: the `now` of its newest onCycleEnd — anchors the
     *  white-box counter/flag accessors, which have no now param. */
    std::vector<Cycle> lastCycleEnd_;

    /** Per input physical channel: true = G. */
    std::vector<std::uint8_t> gp_;

    /** Per input VC: feasible-port mask of the currently blocked head
     *  (0 when not blocked); drives the selective re-arm policy. */
    std::vector<PortMask> waiting_;

    /** Per router: faulted output channels — excluded from inactivity
     *  tracking and from the all-DT detection test, since a dead link
     *  will never transmit and would flag forever. */
    std::vector<PortMask> faultyOut_;
};

} // namespace wormnet

#endif // WORMNET_DETECTION_NDM_HH
