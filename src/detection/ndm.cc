#include "detection/ndm.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace wormnet
{

NdmDetector::NdmDetector(const NdmParams &params) : params_(params)
{
    if (params.t1 >= params.t2)
        fatal("NDM requires t1 << t2; got t1=", params.t1,
              " t2=", params.t2);
}

void
NdmDetector::init(const DetectorContext &ctx)
{
    ctx_ = ctx;
    const std::size_t outs =
        std::size_t(ctx.numRouters) * ctx.numOutPorts;
    const std::size_t ins =
        std::size_t(ctx.numRouters) * ctx.numInPorts;
    since_.assign(outs, 0);
    runMask_.assign(ctx.numRouters, 0);
    lastCycleEnd_.assign(ctx.numRouters, 0);
    gp_.assign(ins, 0); // P everywhere
    waiting_.assign(ins * ctx.vcs, 0);
    faultyOut_.assign(ctx.numRouters, 0);
}

bool
NdmDetector::onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                             MsgId, PortMask feasible_ports,
                             bool input_pc_fully_busy,
                             bool first_attempt, Cycle now)
{
    // A dead output channel never transmits, so its DT/I flags carry
    // no information about the occupant — judging by them would turn
    // every message aimed at the fault into a false deadlock. With no
    // live feasible channel left there is nothing to judge at all
    // (the fault path, not detection, handles such messages).
    feasible_ports &= ~faultyOut_[router];
    if (feasible_ports == 0)
        return false;
    waiting_[vcIdx(router, in_port, in_vc)] = feasible_ports;

    if (first_attempt) {
        if (!input_pc_fully_busy) {
            // Not the last arrival on this physical channel: another
            // message can still arrive behind it and will take over
            // the flag.
            gp_[inIdx(router, in_port)] = 0; // P
            return false;
        }
        // Test whether all occupants of the requested channels were
        // already blocked when this message arrived.
        bool all_inactive = true;
        PortMask m = feasible_ports;
        while (m) {
            const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
            m &= m - 1;
            if (!flagAt(router, static_cast<PortId>(q), now,
                        params_.t1)) {
                all_inactive = false;
                break;
            }
        }
        // Some occupant still advancing -> it may be the tree root:
        // Generate. All blocked -> someone upstream holds the root
        // position: Propagate.
        gp_[inIdx(router, in_port)] = all_inactive ? 0 : 1;
        return false;
    }

    // Subsequent attempts: detection requires G plus DT on every
    // feasible output channel.
    if (!gp_[inIdx(router, in_port)])
        return false;
    PortMask m = feasible_ports;
    while (m) {
        const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        if (!flagAt(router, static_cast<PortId>(q), now, params_.t2))
            return false;
    }
    return true;
}

void
NdmDetector::onMessageRouted(NodeId router, PortId in_port,
                             VcId in_vc, MsgId, PortId, VcId)
{
    // A worm on this input channel is advancing again: the last
    // arrival is no longer waiting on the root of a blocked tree.
    gp_[inIdx(router, in_port)] = 0; // P
    waiting_[vcIdx(router, in_port, in_vc)] = 0;
}

void
NdmDetector::onInputVcFreed(NodeId router, PortId in_port, VcId in_vc)
{
    gp_[inIdx(router, in_port)] = 0; // P
    waiting_[vcIdx(router, in_port, in_vc)] = 0;
}

void
NdmDetector::rearm(NodeId router, PortId out_port)
{
    // A previously-inactive channel transmitted: its occupant may have
    // been replaced by a new advancing message — a new potential tree
    // root (Figure 5). Re-arm Propagate flags to Generate.
    if (params_.rearm == GpRearmPolicy::AllInRouter) {
        for (PortId p = 0; p < ctx_.numInPorts; ++p)
            gp_[inIdx(router, p)] = 1; // G
        return;
    }
    // Selective: only input channels with a blocked head that was
    // waiting on this output channel.
    for (PortId p = 0; p < ctx_.numInPorts; ++p) {
        bool waits = false;
        for (VcId v = 0; v < ctx_.vcs; ++v) {
            if (waiting_[vcIdx(router, p, v)] &
                (PortMask(1) << out_port)) {
                waits = true;
                break;
            }
        }
        if (waits)
            gp_[inIdx(router, p)] = 1; // G
    }
}

void
NdmDetector::onCycleEnd(NodeId router, PortMask tx_mask,
                        PortMask occupied_mask, Cycle now)
{
    occupied_mask &= ~faultyOut_[router];
    PortMask run = runMask_[router];

    // Steady blocked state: nothing transmitted and exactly the
    // already-running channels are occupied — every counter advances
    // implicitly, no per-channel work at all.
    if (tx_mask == 0 && occupied_mask == run) {
        lastCycleEnd_[router] = now;
        return;
    }

    // Transmissions end the idle run; a run longer than t1 means the
    // I flag was set and its reset re-arms P flags to G.
    PortMask m = tx_mask & run;
    while (m) {
        const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        if (now - since_[outIdx(router, static_cast<PortId>(q))] >
            params_.t1)
            rearm(router, static_cast<PortId>(q));
        since_[outIdx(router, static_cast<PortId>(q))] = 0;
        run &= ~(PortMask(1) << q);
    }

    // Channels that just became occupied-and-idle start a run; a
    // transmitting channel starts counting next cycle at the
    // earliest, exactly like the counter reset it replaces.
    m = occupied_mask & ~tx_mask & ~run;
    while (m) {
        const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        since_[outIdx(router, static_cast<PortId>(q))] = now;
        run |= PortMask(1) << q;
    }

    // Channel drained without a transmission (e.g. worm killed by
    // regressive recovery): no occupant, nothing to time.
    m = run & ~occupied_mask & ~tx_mask;
    while (m) {
        const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        since_[outIdx(router, static_cast<PortId>(q))] = 0;
        run &= ~(PortMask(1) << q);
    }

    runMask_[router] = run;
    lastCycleEnd_[router] = now;
}

void
NdmDetector::onPortFaultChanged(NodeId router, PortId out_port,
                                bool faulty)
{
    const PortMask bit = PortMask(1) << out_port;
    if (faulty) {
        faultyOut_[router] |= bit;
        // Forget any inactivity accrued while the channel was alive;
        // it would otherwise trip DT the moment the link is repaired.
        since_[outIdx(router, out_port)] = 0;
        runMask_[router] &= ~bit;
    } else {
        faultyOut_[router] &= ~bit;
    }
}

void
NdmDetector::onRoutingChanged()
{
    // The G/P protocol reasons about which worms wait on which
    // output channels under the *current* routing relation; after a
    // routing switch those dependencies are stale. Reset every input
    // channel to P and forget the waiting masks — blocked heads are
    // re-presented as first attempts and re-seed G/P soundly. The
    // inactivity runs stay: they time physical channel activity,
    // which the routing change does not invalidate.
    std::fill(gp_.begin(), gp_.end(), 0);
    std::fill(waiting_.begin(), waiting_.end(), 0);
}

void
NdmDetector::saveState(Serializer &s) const
{
    for (const Cycle c : since_)
        s.u64(c);
    for (const PortMask m : runMask_)
        s.u32(m);
    for (const Cycle c : lastCycleEnd_)
        s.u64(c);
    for (const std::uint8_t f : gp_)
        s.u8(f);
    for (const PortMask m : waiting_)
        s.u32(m);
    for (const PortMask m : faultyOut_)
        s.u32(m);
}

void
NdmDetector::loadState(Deserializer &d)
{
    for (Cycle &c : since_)
        c = d.u64();
    for (PortMask &m : runMask_)
        m = d.u32();
    for (Cycle &c : lastCycleEnd_)
        c = d.u64();
    for (std::uint8_t &f : gp_)
        f = d.u8();
    for (PortMask &m : waiting_)
        m = d.u32();
    for (PortMask &m : faultyOut_)
        m = d.u32();
}

std::string
NdmDetector::name() const
{
    std::ostringstream os;
    os << "ndm(t1=" << params_.t1 << ", t2=" << params_.t2 << ", "
       << (params_.rearm == GpRearmPolicy::AllInRouter
               ? "coarse"
               : "selective")
       << ")";
    return os.str();
}

Cycle
NdmDetector::counter(NodeId router, PortId out_port) const
{
    if (!((runMask_[router] >> out_port) & 1u))
        return 0;
    return lastCycleEnd_[router] - since_[outIdx(router, out_port)] +
           1;
}

bool
NdmDetector::iFlag(NodeId router, PortId out_port) const
{
    return counter(router, out_port) > params_.t1;
}

bool
NdmDetector::dtFlag(NodeId router, PortId out_port) const
{
    return counter(router, out_port) > params_.t2;
}

bool
NdmDetector::gpFlag(NodeId router, PortId in_port) const
{
    return gp_[inIdx(router, in_port)] != 0;
}

} // namespace wormnet
