#include "detection/pdm.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace wormnet
{

PdmDetector::PdmDetector(const PdmParams &params) : params_(params)
{
    if (params.threshold < 1)
        fatal("PDM threshold must be >= 1");
}

void
PdmDetector::init(const DetectorContext &ctx)
{
    ctx_ = ctx;
    const std::size_t outs =
        std::size_t(ctx.numRouters) * ctx.numOutPorts;
    counters_.assign(outs, 0);
    ifFlags_.assign(outs, 0);
    faultyOut_.assign(ctx.numRouters, 0);
}

bool
PdmDetector::onRoutingFailed(NodeId router, PortId, VcId, MsgId,
                             PortMask feasible_ports, bool, bool,
                             Cycle)
{
    // Deadlock presumed when every feasible output channel is both
    // fully busy (implied by the failed attempt) and inactive for the
    // timeout period. Dead channels are excluded: their counters say
    // nothing about the occupant, and a message with no live feasible
    // channel is the fault path's problem, not a deadlock.
    feasible_ports &= ~faultyOut_[router];
    if (feasible_ports == 0)
        return false;
    PortMask m = feasible_ports;
    while (m) {
        const unsigned q = static_cast<unsigned>(__builtin_ctz(m));
        m &= m - 1;
        if (!ifFlags_[outIdx(router, static_cast<PortId>(q))])
            return false;
    }
    return true;
}

void
PdmDetector::onCycleEnd(NodeId router, PortMask tx_mask,
                        PortMask occupied_mask, Cycle)
{
    for (PortId q = 0; q < ctx_.numOutPorts; ++q) {
        const std::size_t idx = outIdx(router, q);
        if ((faultyOut_[router] >> q) & 1u)
            continue;
        const bool tx = (tx_mask >> q) & 1u;
        if (tx) {
            counters_[idx] = 0;
            ifFlags_[idx] = 0;
            continue;
        }
        if (params_.gateOccupancy && !((occupied_mask >> q) & 1u)) {
            counters_[idx] = 0;
            ifFlags_[idx] = 0;
            continue;
        }
        ++counters_[idx];
        if (counters_[idx] > params_.threshold)
            ifFlags_[idx] = 1;
    }
}

void
PdmDetector::onPortFaultChanged(NodeId router, PortId out_port,
                                bool faulty)
{
    const PortMask bit = PortMask(1) << out_port;
    if (faulty) {
        faultyOut_[router] |= bit;
        const std::size_t idx = outIdx(router, out_port);
        counters_[idx] = 0;
        ifFlags_[idx] = 0;
    } else {
        faultyOut_[router] &= ~bit;
    }
}

void
PdmDetector::onRoutingChanged()
{
    // IF is PDM's whole verdict: clear it so messages blocked under
    // the old routing relation do not instantly flag under the new
    // one. Counters keep running — channel inactivity is a physical
    // observation, and a genuinely stuck channel re-flags after one
    // threshold interval.
    std::fill(ifFlags_.begin(), ifFlags_.end(), 0);
}

void
PdmDetector::saveState(Serializer &s) const
{
    for (const Cycle c : counters_)
        s.u64(c);
    for (const std::uint8_t f : ifFlags_)
        s.u8(f);
    for (const PortMask m : faultyOut_)
        s.u32(m);
}

void
PdmDetector::loadState(Deserializer &d)
{
    for (Cycle &c : counters_)
        c = d.u64();
    for (std::uint8_t &f : ifFlags_)
        f = d.u8();
    for (PortMask &m : faultyOut_)
        m = d.u32();
}

std::string
PdmDetector::name() const
{
    std::ostringstream os;
    os << "pdm(th=" << params_.threshold
       << (params_.gateOccupancy ? ", gated" : "") << ")";
    return os.str();
}

Cycle
PdmDetector::counter(NodeId router, PortId out_port) const
{
    return counters_[outIdx(router, out_port)];
}

bool
PdmDetector::ifFlag(NodeId router, PortId out_port) const
{
    return ifFlags_[outIdx(router, out_port)] != 0;
}

} // namespace wormnet
