#include "detection/source_timeout.hh"

#include <sstream>

#include "common/log.hh"

namespace wormnet
{

SourceTimeoutDetectorBase::SourceTimeoutDetectorBase(Cycle threshold)
    : threshold_(threshold)
{
    if (threshold < 1)
        fatal("source timeout threshold must be >= 1");
}

bool
SourceAgeTimeoutDetector::onInjectionStalled(NodeId, PortId, VcId,
                                             MsgId, Cycle age, Cycle,
                                             Cycle)
{
    return age > threshold_;
}

std::string
SourceAgeTimeoutDetector::name() const
{
    std::ostringstream os;
    os << "src-age-timeout(th=" << threshold_ << ")";
    return os.str();
}

bool
InjectionStallTimeoutDetector::onInjectionStalled(NodeId, PortId,
                                                  VcId, MsgId, Cycle,
                                                  Cycle stall, Cycle)
{
    return stall > threshold_;
}

std::string
InjectionStallTimeoutDetector::name() const
{
    std::ostringstream os;
    os << "inj-stall-timeout(th=" << threshold_ << ")";
    return os.str();
}

} // namespace wormnet
