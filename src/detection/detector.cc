#include "detection/detector.hh"

#include <sstream>
#include <vector>

#include "common/log.hh"
#include "detection/dwfg.hh"
#include "detection/ndm.hh"
#include "detection/pdm.hh"
#include "detection/source_timeout.hh"
#include "detection/timeout.hh"

namespace wormnet
{

namespace
{

std::vector<std::string>
splitColon(const std::string &spec)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ':'))
        parts.push_back(item);
    return parts;
}

Cycle
parseCycle(const std::string &s, const char *what)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        fatal("bad ", what, " value '", s, "'");
    return v;
}

} // namespace

std::unique_ptr<DeadlockDetector>
makeDetector(const std::string &spec)
{
    const auto parts = splitColon(spec);
    if (parts.empty())
        fatal("empty detector spec");
    const std::string &kind = parts[0];

    if (kind == "none")
        return std::make_unique<NullDetector>();

    if (kind == "ndm") {
        NdmParams p;
        if (parts.size() > 1)
            p.t2 = parseCycle(parts[1], "ndm t2");
        for (std::size_t i = 2; i < parts.size(); ++i) {
            if (parts[i] == "coarse")
                p.rearm = GpRearmPolicy::AllInRouter;
            else if (parts[i] == "selective")
                p.rearm = GpRearmPolicy::WaitersOnChannel;
            else
                p.t1 = parseCycle(parts[i], "ndm t1");
        }
        return std::make_unique<NdmDetector>(p);
    }

    if (kind == "pdm") {
        PdmParams p;
        if (parts.size() > 1)
            p.threshold = parseCycle(parts[1], "pdm threshold");
        for (std::size_t i = 2; i < parts.size(); ++i) {
            if (parts[i] == "gated")
                p.gateOccupancy = true;
            else
                fatal("unknown pdm option '", parts[i], "'");
        }
        return std::make_unique<PdmDetector>(p);
    }

    if (kind == "dwfg") {
        DwfgParams p;
        bool trigger_set = false;
        for (std::size_t i = 1; i < parts.size(); ++i) {
            const std::string &opt = parts[i];
            if (opt.rfind("bw=", 0) == 0) {
                p.bandwidth = static_cast<unsigned>(
                    parseCycle(opt.substr(3), "dwfg bandwidth"));
            } else if (opt.rfind("hop=", 0) == 0) {
                p.hopLatency =
                    parseCycle(opt.substr(4), "dwfg hop latency");
            } else if (opt.rfind("retry=", 0) == 0) {
                p.retryDelay =
                    parseCycle(opt.substr(6), "dwfg retry delay");
            } else if (!trigger_set) {
                p.trigger = parseCycle(opt, "dwfg trigger");
                trigger_set = true;
            } else {
                fatal("unknown dwfg option '", opt, "'");
            }
        }
        return std::make_unique<DwfgDetector>(p);
    }

    if (kind == "timeout") {
        TimeoutParams p;
        if (parts.size() > 1)
            p.threshold = parseCycle(parts[1], "timeout threshold");
        return std::make_unique<TimeoutDetector>(p);
    }

    if (kind == "src-age-timeout") {
        Cycle th = 256;
        if (parts.size() > 1)
            th = parseCycle(parts[1], "src-age-timeout threshold");
        return std::make_unique<SourceAgeTimeoutDetector>(th);
    }

    if (kind == "inj-stall-timeout") {
        Cycle th = 32;
        if (parts.size() > 1)
            th = parseCycle(parts[1],
                            "inj-stall-timeout threshold");
        return std::make_unique<InjectionStallTimeoutDetector>(th);
    }

    fatal("unknown detector '", spec, "'");
}

} // namespace wormnet
