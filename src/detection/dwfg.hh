/**
 * @file
 * DWFG — exact distributed wait-for-graph deadlock detection.
 *
 * The third mechanism next to NDM and PDM: instead of guessing
 * deadlock from channel inactivity, each router maintains a local
 * fragment of the blocked-channel dependency graph (the dynamic
 * counterpart of the static CDG in src/analysis/cdg.*, and the
 * in-network analogue of per-node lock-graph unions in distributed
 * databases) and ships probe tokens between routers as modeled
 * control flits. A deadlock verdict is raised only after a probe has
 * discovered a dependency closure with no escape AND re-verified
 * every sampled channel unchanged — zero false positives by
 * construction, paid for in control bandwidth and detection latency.
 *
 * ## Local fragments
 *
 * Every input virtual channel (network and injection alike) has a
 * mirror record maintained purely from the local detector hooks:
 *   - occupant message and routed/(outPort,outVc) state
 *     (onChannelOccupied / onMessageRouted / onRouteRetracted /
 *     onInputVcFreed / onHeadRecovering);
 *   - the feasible candidate set and first/last failure cycle of a
 *     blocked head (onBlockedCandidates);
 *   - a monotonic **epoch** counter bumped on every occupancy or
 *     routing transition. Any advancement of a worm's head bumps the
 *     epoch of the channel it occupies, so "epoch unchanged" proves
 *     "this worm made no progress in the interval".
 * Channels are addressed by the dense ChanId from analysis/cdg.hh;
 * unlike the static CDG the dynamic mapping also covers injection
 * ports, because injection-blocked heads take part in deadlocks.
 *
 * ## Probes
 *
 * A channel continuously blocked for `trigger` cycles launches a
 * probe token that performs a depth-first walk of the wait-for
 * closure: a blocked head depends on the downstream channel of each
 * feasible candidate; an occupied routed channel is followed one hop
 * along its worm; a free channel, an ejection candidate, or a head
 * that advanced since its last failure proves the closure alive and
 * aborts the probe. If the walk exhausts the closure without finding
 * an escape, a second pass revisits every sampled channel and
 * compares (occupant, epoch). Pass 1 entirely precedes pass 2, so
 * when every sample is unchanged the per-channel constancy intervals
 * all contain the instant between the passes: the samples form a
 * consistent global snapshot in which the closure is deadlocked, and
 * wormhole deadlocks are permanent until recovery intervenes. The
 * token then returns to the initiator, which reports the verdict at
 * its next routing failure (guarded once more against concurrent
 * recovery; the zero-cost guard stands in for the hardware
 * invalidation messages a real implementation would ship).
 *
 * ## Cost model
 *
 * Every token move between routers A and B is charged as a control
 * message of (16 + 8 * samples) bytes, split into 16-byte-payload
 * control flits, traversing Topology::distance(A, B) hops on a
 * dedicated control VC: flits, flit-hops and bytes accumulate into
 * ControlTraffic (polled into SimStats each cycle). Each router may
 * launch at most `bandwidth` token sends per cycle; excess tokens
 * stall in place and retry next cycle. Token arrival takes
 * hopLatency cycles per hop (always >= 1 cycle per move).
 *
 * Fault or reconfiguration events flush all fragments and in-flight
 * probes (fragments referencing dead links are retracted
 * wholesale); detection restarts from fresh observations.
 */

#ifndef WORMNET_DETECTION_DWFG_HH
#define WORMNET_DETECTION_DWFG_HH

#include <cstddef>
#include <vector>

#include "analysis/cdg.hh"
#include "detection/detector.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** Configuration for DwfgDetector. */
struct DwfgParams
{
    /** Cycles a head must be continuously blocked before its channel
     *  launches a probe. */
    Cycle trigger = 32;
    /** Token sends each router may start per cycle. */
    unsigned bandwidth = 1;
    /** Control-flit latency per hop, cycles. */
    Cycle hopLatency = 1;
    /** Backoff before a channel re-probes after an aborted probe or
     *  a delivered verdict. */
    Cycle retryDelay = 8;
};

/** Exact distributed wait-for-graph detector. */
class DwfgDetector : public DeadlockDetector
{
  public:
    /** One (channel, occupant, epoch) observation inside a probe. */
    struct Sample
    {
        ChanId chan = kInvalidChan;
        MsgId msg = kInvalidMsg;
        std::uint64_t epoch = 0;
    };

    explicit DwfgDetector(const DwfgParams &params);

    void init(const DetectorContext &ctx) override;
    bool onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortMask feasible_ports,
                         bool input_pc_fully_busy, bool first_attempt,
                         Cycle now) override;
    void onMessageRouted(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortId out_port,
                         VcId out_vc) override;
    void onChannelOccupied(NodeId router, PortId in_port, VcId in_vc,
                           MsgId msg) override;
    void onRouteRetracted(NodeId router, PortId in_port,
                          VcId in_vc) override;
    void onHeadRecovering(NodeId router, PortId in_port,
                          VcId in_vc) override;
    void onInputVcFreed(NodeId router, PortId in_port,
                        VcId in_vc) override;
    bool wantsBlockedCandidates() const override { return true; }
    void onBlockedCandidates(NodeId router, PortId in_port,
                             VcId in_vc, MsgId msg,
                             const BlockedCandidate *cands,
                             std::size_t count, Cycle now) override;
    void onCycleEnd(NodeId router, PortMask tx_mask,
                    PortMask occupied_mask, Cycle now) override;
    /** Probes are processed in the per-node cycle-end sweep, so every
     *  router must be visited every cycle. */
    bool idleCycleEndStable() const override { return false; }
    void onPortFaultChanged(NodeId router, PortId out_port,
                            bool faulty) override;
    void onRoutingChanged() override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    ControlTraffic controlTraffic() const override { return ctrl_; }
    std::string name() const override;

    const DwfgParams &params() const { return params_; }

    /** @name White-box accessors for unit tests. */
    /// @{
    std::size_t activeProbes() const { return probes_.size(); }
    std::uint64_t probesLaunched() const { return probesLaunched_; }
    std::uint64_t probesAborted() const { return probesAborted_; }
    std::uint64_t probesConfirmed() const { return probesConfirmed_; }
    std::uint64_t channelEpoch(NodeId router, PortId in_port,
                               VcId in_vc) const;
    bool channelConfirmed(NodeId router, PortId in_port,
                          VcId in_vc) const;
    /// @}

  private:
    /** Mirror of one input VC, maintained from the local hooks. */
    struct Channel
    {
        MsgId msg = kInvalidMsg;
        bool routed = false;
        PortId outPort = kInvalidPort;
        VcId outVc = kInvalidVc;
        /** Bumped on every occupy/free/grant/retract/recover. */
        std::uint64_t epoch = 0;
        /** Continuous-blocking window of the current head. */
        Cycle firstFail = kNever;
        Cycle lastFail = kNever;
        /** Feasible candidates at the last failure. */
        std::vector<BlockedCandidate> cands;
        /** A probe from this channel is outstanding. */
        bool probing = false;
        /** A verified verdict awaits delivery via onRoutingFailed. */
        bool confirmed = false;
        /** Earliest cycle this channel may launch its next probe. */
        Cycle retryAt = 0;
        /** The verified snapshot backing `confirmed`, re-checked at
         *  delivery time. */
        std::vector<Sample> verdictSamples;
    };

    /** One in-flight probe token. */
    struct Probe
    {
        std::uint32_t id = 0;    ///< launch order; processing order
        ChanId origin = kInvalidChan;
        MsgId originMsg = kInvalidMsg;
        /** 1 = explore (DFS), 2 = verify (replay samples),
         *  3 = report (return to origin). */
        std::uint8_t phase = 1;
        /** Verdict carried home in phase 3. */
        bool verdict = false;
        NodeId at = kInvalidNode;  ///< router holding the token
        Cycle readyAt = 0;         ///< processable from this cycle
        std::vector<Sample> samples;   ///< fragment union, read order
        std::vector<MsgId> visited;    ///< expanded blocked heads
        std::vector<ChanId> stack;     ///< DFS worklist
        std::size_t verifyIdx = 0;
    };

    ChanId
    chanId(NodeId router, PortId in_port, VcId in_vc) const
    {
        return static_cast<ChanId>(
            (std::size_t(router) * ctx_.numInPorts + in_port) *
                ctx_.vcs +
            in_vc);
    }
    NodeId
    chanRouter(ChanId c) const
    {
        return static_cast<NodeId>(c /
                                   (ctx_.numInPorts * ctx_.vcs));
    }
    bool
    isEjection(PortId out_port) const
    {
        return out_port >= netPorts_;
    }
    /** Dense id of the channel fed by (@p router, @p out_port,
     *  @p out_vc); kInvalidChan off the edge of a mesh. */
    ChanId downstreamChan(NodeId router, PortId out_port,
                          VcId out_vc) const;

    Channel &chan(ChanId c) { return channels_[c]; }
    const Channel &chan(ChanId c) const { return channels_[c]; }

    void bumpEpoch(Channel &ch);
    void clearBlocked(Channel &ch);
    /** Drop every in-flight probe and undelivered verdict (fault or
     *  reconfiguration flush). */
    void flushAllProbes();

    /** Try to launch a probe for @p c; true if launched. */
    void launchProbe(ChanId c, Cycle now);
    /** Run local steps of @p p at router p.at until it moves away,
     *  stalls on bandwidth, or finishes. True when the probe is done
     *  and must be erased. */
    bool stepProbe(Probe &p, Cycle now);
    /** Inspect @p c for phase-1 exploration. */
    enum class StepOutcome : std::uint8_t
    {
        Continue, ///< pushed follow-up channels (or dead end)
        Alive,    ///< escape found: abort
        Mismatch, ///< channel changed under the probe: abort
    };
    StepOutcome exploreChannel(Probe &p, ChanId c, Cycle now);
    /** Record (or re-check) a sample of @p c; false on mismatch. */
    bool recordSample(Probe &p, ChanId c);
    /** Charge one token move to @p to and park the probe there.
     *  False when the per-router send budget is exhausted. */
    bool moveProbe(Probe &p, NodeId to, Cycle now);
    /** Route the probe into phase 3 with @p verdict. */
    void startReport(Probe &p, bool verdict);
    /** Token arrived home: hand the verdict to the origin channel. */
    void deliverReport(Probe &p, Cycle now);

    DwfgParams params_;
    DetectorContext ctx_;
    unsigned netPorts_ = 0;
    std::vector<Channel> channels_;
    std::vector<Probe> probes_; ///< ascending id
    std::uint32_t nextProbeId_ = 0;
    ControlTraffic ctrl_;
    std::uint64_t probesLaunched_ = 0;
    std::uint64_t probesAborted_ = 0;
    std::uint64_t probesConfirmed_ = 0;

    /** Per-router token sends already started this cycle (budget
     *  enforcement; purely intra-cycle, reset lazily). */
    std::vector<std::uint32_t> sends_;
    Cycle sendsCycle_ = kNever;

    /** Scratch for erasing finished probes during the sweep. */
    std::vector<std::uint32_t> doneScratch_;
};

} // namespace wormnet

#endif // WORMNET_DETECTION_DWFG_HH
