/**
 * @file
 * Distributed deadlock-detection interface.
 *
 * Detectors are deliberately decoupled from the router data model:
 * every hook carries exactly the local information the corresponding
 * hardware would see (flit transmissions, VC occupancy, failed routing
 * attempts and their feasible output channels). This mirrors the
 * paper's constraint that detection must work "only with local
 * information available at each router" — the interface makes it
 * structurally impossible for a detector to peek at global state.
 *
 * Hook protocol (driven by sim::Network each cycle):
 *  1. onRoutingFailed() for every blocked head (may return a verdict);
 *     onMessageRouted() for every successful output-VC grant.
 *  2. onFlitTransmitted() for every flit crossing an output physical
 *     channel; onInputVcFreed() when a tail leaves an input VC.
 *  3. onCycleEnd() once per router with the per-port transmit and
 *     occupancy masks (drives the inactivity counters).
 */

#ifndef WORMNET_DETECTION_DETECTOR_HH
#define WORMNET_DETECTION_DETECTOR_HH

#include <memory>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace wormnet
{

class Config;
class Topology;

/** Static shape information handed to detectors at start-up. */
struct DetectorContext
{
    NodeId numRouters = 0;
    unsigned numInPorts = 0;  ///< per router, incl. injection ports
    unsigned numOutPorts = 0; ///< per router, incl. ejection ports
    unsigned vcs = 0;         ///< virtual channels per physical channel
    /**
     * The network topology, for detectors that model control messages
     * travelling between routers (neighbour lookups, hop distances
     * for bandwidth accounting). Null in unit tests that exercise
     * purely channel-local mechanisms; such detectors must not
     * require it.
     */
    const Topology *topo = nullptr;
};

/**
 * One feasible (non-faulted) routing candidate of a blocked head, as
 * reported through onBlockedCandidates(): the routing function
 * offered @p port with the VCs in @p vcMask and all of them were
 * busy. This is local information — the router's own routing logic
 * computed it while failing to allocate.
 */
struct BlockedCandidate
{
    PortId port = kInvalidPort;
    std::uint32_t vcMask = 0;
};

/**
 * Cumulative control-plane traffic a detector has consumed since
 * init(). Mechanisms that ship state between routers (distributed
 * wait-for-graph probes) account every modeled control message here;
 * purely local mechanisms (NDM/PDM/timeouts) stay at zero, which is
 * exactly the paper's "local information only" claim. Polled once
 * per cycle by the Network into SimStats.
 */
struct ControlTraffic
{
    std::uint64_t flits = 0;    ///< control flits sent
    std::uint64_t flitHops = 0; ///< control flits x hops traversed
    std::uint64_t bytes = 0;    ///< control payload bytes sent
};

/** Abstract distributed deadlock detector. */
class DeadlockDetector
{
  public:
    virtual ~DeadlockDetector() = default;

    /** Size internal state; called once before the first cycle. */
    virtual void init(const DetectorContext &ctx) = 0;

    /**
     * The head of the worm in (@p router, @p in_port, @p in_vc) failed
     * to acquire any candidate output VC this cycle.
     *
     * @param feasible_ports bitmask of the feasible output physical
     *        channels (every candidate returned by the routing
     *        function; all of them were busy).
     * @param input_pc_fully_busy all VCs of @p in_port hold worms.
     * @param first_attempt true on the first failure for this head at
     *        this router.
     * @return true to mark the message as presumed deadlocked.
     */
    virtual bool onRoutingFailed(NodeId router, PortId in_port,
                                 VcId in_vc, MsgId msg,
                                 PortMask feasible_ports,
                                 bool input_pc_fully_busy,
                                 bool first_attempt, Cycle now) = 0;

    /** A worm on (@p router, @p in_port, @p in_vc) was granted
     *  output VC (@p out_port, @p out_vc) (fires on every grant,
     *  first-try or not). Channel-local mechanisms ignore the output
     *  coordinates; graph-building mechanisms use them to mirror the
     *  worm's path. */
    virtual void
    onMessageRouted(NodeId router, PortId in_port, VcId in_vc,
                    MsgId msg, PortId out_port, VcId out_vc)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
        (void)msg;
        (void)out_port;
        (void)out_vc;
    }

    /**
     * A head flit entered input VC (@p router, @p in_port, @p in_vc)
     * — the channel transitioned free -> occupied by @p msg. Fires
     * for network arrivals and for injection starts alike.
     */
    virtual void
    onChannelOccupied(NodeId router, PortId in_port, VcId in_vc,
                      MsgId msg)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
        (void)msg;
    }

    /**
     * A previously granted route for the head in (@p router,
     * @p in_port, @p in_vc) was backed out before any flit crossed
     * (the output link died under it); the head will re-route. The
     * channel stays occupied by the same worm.
     */
    virtual void
    onRouteRetracted(NodeId router, PortId in_port, VcId in_vc)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
    }

    /**
     * Recovery took over the head in (@p router, @p in_port,
     * @p in_vc): the worm stops taking part in routing (the oracle no
     * longer counts it blocked) and will drain or be killed through
     * the recovery path. Exact mechanisms must drop any wait-for
     * state involving this channel.
     */
    virtual void
    onHeadRecovering(NodeId router, PortId in_port, VcId in_vc)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
    }

    /**
     * True when this detector wants onBlockedCandidates() on every
     * routing failure. Gated so channel-local mechanisms keep the
     * candidate list off the hot path entirely.
     */
    virtual bool wantsBlockedCandidates() const { return false; }

    /**
     * The complete feasible candidate set the head in (@p router,
     * @p in_port, @p in_vc) failed to allocate this cycle — every
     * non-faulted (port, vcMask) the routing function offered. Fires
     * immediately before the matching onRoutingFailed() and only when
     * wantsBlockedCandidates() is true. The pointer is valid only for
     * the duration of the call.
     */
    virtual void
    onBlockedCandidates(NodeId router, PortId in_port, VcId in_vc,
                        MsgId msg, const BlockedCandidate *cands,
                        std::size_t count, Cycle now)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
        (void)msg;
        (void)cands;
        (void)count;
        (void)now;
    }

    /** A worm's tail left (@p router, @p in_port, @p in_vc). */
    virtual void
    onInputVcFreed(NodeId router, PortId in_port, VcId in_vc)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
    }

    /**
     * Once per router per cycle, after the switch phase.
     * @param tx_mask output ports that transmitted a flit this cycle
     * @param occupied_mask output ports with >= 1 allocated VC
     */
    virtual void onCycleEnd(NodeId router, PortMask tx_mask,
                            PortMask occupied_mask, Cycle now) = 0;

    /**
     * Source-side observation: the message injecting through
     * (@p router, @p in_port, @p in_vc) could not push a flit this
     * cycle (buffer back-pressure or port bandwidth). Source-timeout
     * mechanisms (Reeves et al.; compressionless routing) detect
     * here; router-centric mechanisms ignore it.
     *
     * @param age cycles since the message started injecting
     * @param stall cycles since its last flit entered the network
     * @return true to mark the message as presumed deadlocked.
     */
    /** True when the detector consumes onInjectionStalled() reports.
     *  Router-centric mechanisms leave this false and the network
     *  skips the per-cycle source-side stall scan entirely. */
    virtual bool wantsInjectionStallReports() const { return false; }

    virtual bool
    onInjectionStalled(NodeId router, PortId in_port, VcId in_vc,
                       MsgId msg, Cycle age, Cycle stall, Cycle now)
    {
        (void)router;
        (void)in_port;
        (void)in_vc;
        (void)msg;
        (void)age;
        (void)stall;
        (void)now;
        return false;
    }

    /**
     * Fault notification: output physical channel @p out_port of
     * @p router changed fault state. A faulted channel cannot
     * transmit, so sound detectors must exclude it from inactivity
     * tracking and from "all feasible channels flagged" checks —
     * otherwise every message routed toward the dead link becomes a
     * false presumed deadlock. Default: ignore (timeout-style
     * detectors key off the blocked head, not the channel).
     */
    virtual void
    onPortFaultChanged(NodeId router, PortId out_port, bool faulty)
    {
        (void)router;
        (void)out_port;
        (void)faulty;
    }

    /**
     * True when onCycleEnd with tx_mask == 0 and occupied_mask == 0
     * is a stable reset: one such call after a router's last activity
     * leaves this detector's per-router state exactly as init() did,
     * and further idle calls change nothing. The simulator then skips
     * fully idle routers after a single trailing cycle-end call
     * (activity-driven core). Detectors that accumulate state even on
     * idle routers — e.g. ungated PDM, which times *unoccupied*
     * channels too — must keep the default and receive the exhaustive
     * per-router sweep every cycle.
     */
    virtual bool idleCycleEndStable() const { return false; }

    /**
     * True when onCycleEnd touches only state indexed by @p router
     * (no cross-router queues, no global counters mutated), so the
     * simulator may run the cycle-end sweep for disjoint router
     * ranges on different worker threads (sharded stepping). The
     * calls still happen at a step() barrier with the network state
     * frozen, and verdict-producing hooks (onRoutingFailed,
     * onInjectionStalled) stay on the sequential path regardless.
     * Detectors with global cycle-end machinery — e.g. DWFG's probe
     * transport — must keep the default; they get the sequential
     * ascending-router sweep at any --sim-jobs count.
     */
    virtual bool cycleEndShardSafe() const { return false; }

    /**
     * The routing function changed under a live network (online
     * reconfiguration). Per-channel *waiting/grant* state tied to the
     * old routing relation is now meaningless and must be dropped;
     * activity counters that time channel inactivity independently of
     * routing may be kept. Blocked heads are re-presented as fresh
     * first attempts by the Network afterwards. Default: nothing to
     * drop.
     */
    virtual void onRoutingChanged() {}

    /**
     * Checkpoint support: serialize all dynamic state. Stateless
     * detectors keep the defaults. Writers and readers must pair
     * exactly; the checkpoint header's config string guarantees the
     * same detector spec on both sides.
     */
    virtual void saveState(Serializer &s) const { (void)s; }
    virtual void loadState(Deserializer &d) { (void)d; }

    /** Cumulative control-plane traffic since init(); see
     *  ControlTraffic. Local mechanisms keep the zero default. */
    virtual ControlTraffic controlTraffic() const { return {}; }

    /** Detector name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Build a detector from a spec string:
 *   "ndm:<t2>[:t1][:coarse|selective]"  (default t1=1, selective)
 *   "pdm:<threshold>[:gated]"
 *   "timeout:<threshold>"            (header-blocked, Disha-style)
 *   "src-age-timeout:<threshold>"    (Reeves et al.)
 *   "inj-stall-timeout:<threshold>"  (compressionless routing)
 *   "dwfg[:<trigger>][:bw=<n>][:hop=<n>][:retry=<n>]"
 *       exact distributed wait-for-graph detection (see dwfg.hh)
 *   "none"
 */
std::unique_ptr<DeadlockDetector>
makeDetector(const std::string &spec);

} // namespace wormnet

#endif // WORMNET_DETECTION_DETECTOR_HH
