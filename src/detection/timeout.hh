/**
 * @file
 * Crude timeout detection (Disha-style): a message is presumed
 * deadlocked when its header has been blocked at a node for longer
 * than a threshold, regardless of what the requested channels are
 * doing. This is the baseline the prior mechanism (PDM) already
 * improved upon by an order of magnitude; it is included to reproduce
 * the paper's "two orders of magnitude vs. crude timeouts" claim.
 */

#ifndef WORMNET_DETECTION_TIMEOUT_HH
#define WORMNET_DETECTION_TIMEOUT_HH

#include <vector>

#include "detection/detector.hh"

namespace wormnet
{

/** Configuration for TimeoutDetector. */
struct TimeoutParams
{
    Cycle threshold = 32;
};

/** Header-blocked-time timeout detection. */
class TimeoutDetector : public DeadlockDetector
{
  public:
    explicit TimeoutDetector(const TimeoutParams &params);

    void init(const DetectorContext &ctx) override;
    bool onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortMask feasible_ports,
                         bool input_pc_fully_busy, bool first_attempt,
                         Cycle now) override;
    void onMessageRouted(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortId out_port,
                         VcId out_vc) override;
    void onInputVcFreed(NodeId router, PortId in_port,
                        VcId in_vc) override;
    void
    onCycleEnd(NodeId, PortMask, PortMask, Cycle) override
    {
    }
    bool idleCycleEndStable() const override { return true; }
    /** onCycleEnd is empty. */
    bool cycleEndShardSafe() const override { return true; }
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

  private:
    std::size_t
    vcIdx(NodeId router, PortId port, VcId vc) const
    {
        return (std::size_t(router) * ctx_.numInPorts + port) *
                   ctx_.vcs + vc;
    }

    TimeoutParams params_;
    DetectorContext ctx_;
    /** First-failure cycle of the head blocked in each input VC. */
    std::vector<Cycle> blockedSince_;
};

/** Never detects; used with deadlock-avoidance routing baselines. */
class NullDetector : public DeadlockDetector
{
  public:
    void init(const DetectorContext &) override {}
    bool
    onRoutingFailed(NodeId, PortId, VcId, MsgId, PortMask, bool, bool,
                    Cycle) override
    {
        return false;
    }
    void onCycleEnd(NodeId, PortMask, PortMask, Cycle) override {}
    bool idleCycleEndStable() const override { return true; }
    bool cycleEndShardSafe() const override { return true; }
    std::string name() const override { return "none"; }
};

} // namespace wormnet

#endif // WORMNET_DETECTION_TIMEOUT_HH
