#include "detection/timeout.hh"

#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

TimeoutDetector::TimeoutDetector(const TimeoutParams &params)
    : params_(params)
{
    if (params.threshold < 1)
        fatal("timeout threshold must be >= 1");
}

void
TimeoutDetector::init(const DetectorContext &ctx)
{
    ctx_ = ctx;
    blockedSince_.assign(
        std::size_t(ctx.numRouters) * ctx.numInPorts * ctx.vcs,
        kNever);
}

bool
TimeoutDetector::onRoutingFailed(NodeId router, PortId in_port,
                                 VcId in_vc, MsgId, PortMask, bool,
                                 bool first_attempt, Cycle now)
{
    const std::size_t idx = vcIdx(router, in_port, in_vc);
    if (first_attempt) {
        blockedSince_[idx] = now;
        return false;
    }
    WORMNET_ASSERT(blockedSince_[idx] != kNever);
    return now - blockedSince_[idx] > params_.threshold;
}

void
TimeoutDetector::onMessageRouted(NodeId router, PortId in_port,
                                 VcId in_vc, MsgId, PortId, VcId)
{
    blockedSince_[vcIdx(router, in_port, in_vc)] = kNever;
}

void
TimeoutDetector::onInputVcFreed(NodeId router, PortId in_port,
                                VcId in_vc)
{
    blockedSince_[vcIdx(router, in_port, in_vc)] = kNever;
}

void
TimeoutDetector::saveState(Serializer &s) const
{
    for (const Cycle c : blockedSince_)
        s.u64(c);
}

void
TimeoutDetector::loadState(Deserializer &d)
{
    for (Cycle &c : blockedSince_)
        c = d.u64();
}

std::string
TimeoutDetector::name() const
{
    std::ostringstream os;
    os << "timeout(th=" << params_.threshold << ")";
    return os.str();
}

} // namespace wormnet
