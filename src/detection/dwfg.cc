#include "detection/dwfg.hh"

#include <algorithm>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

namespace
{

/** Modeled control-message shape: a fixed token header plus one
 *  packed word per carried sample, shipped as control flits with a
 *  16-byte payload each. */
constexpr std::uint64_t kTokenHeaderBytes = 16;
constexpr std::uint64_t kSampleBytes = 8;
constexpr std::uint64_t kFlitPayloadBytes = 16;

} // namespace

DwfgDetector::DwfgDetector(const DwfgParams &params) : params_(params)
{
    if (params_.bandwidth == 0)
        fatal("dwfg bandwidth must be >= 1");
    if (params_.hopLatency == 0)
        fatal("dwfg hop latency must be >= 1");
}

void
DwfgDetector::init(const DetectorContext &ctx)
{
    ctx_ = ctx;
    if (ctx_.topo == nullptr)
        fatal("dwfg detector needs the topology in DetectorContext "
              "(control tokens travel between routers)");
    netPorts_ = ctx_.topo->numNetPorts();
    channels_.assign(std::size_t(ctx_.numRouters) * ctx_.numInPorts *
                         ctx_.vcs,
                     Channel{});
    probes_.clear();
    nextProbeId_ = 0;
    ctrl_ = ControlTraffic{};
    probesLaunched_ = probesAborted_ = probesConfirmed_ = 0;
    sends_.assign(ctx_.numRouters, 0);
    sendsCycle_ = kNever;
}

ChanId
DwfgDetector::downstreamChan(NodeId router, PortId out_port,
                             VcId out_vc) const
{
    WORMNET_ASSERT(!isEjection(out_port));
    const unsigned dim = Topology::dimOfPort(out_port);
    const bool pos = Topology::isPositivePort(out_port);
    const NodeId peer = ctx_.topo->neighbor(router, dim, pos);
    if (peer == kInvalidNode)
        return kInvalidChan; // dangling mesh-edge port
    return chanId(peer, Topology::peerInPort(out_port), out_vc);
}

void
DwfgDetector::bumpEpoch(Channel &ch)
{
    ++ch.epoch;
}

void
DwfgDetector::clearBlocked(Channel &ch)
{
    ch.firstFail = kNever;
    ch.lastFail = kNever;
    ch.cands.clear();
}

void
DwfgDetector::onChannelOccupied(NodeId router, PortId in_port,
                                VcId in_vc, MsgId msg)
{
    Channel &ch = chan(chanId(router, in_port, in_vc));
    ch.msg = msg;
    ch.routed = false;
    ch.outPort = kInvalidPort;
    ch.outVc = kInvalidVc;
    clearBlocked(ch);
    ch.confirmed = false;
    ch.verdictSamples.clear();
    bumpEpoch(ch);
}

void
DwfgDetector::onMessageRouted(NodeId router, PortId in_port,
                              VcId in_vc, MsgId msg, PortId out_port,
                              VcId out_vc)
{
    Channel &ch = chan(chanId(router, in_port, in_vc));
    WORMNET_ASSERT(ch.msg == msg);
    (void)msg;
    ch.routed = true;
    ch.outPort = out_port;
    ch.outVc = out_vc;
    clearBlocked(ch);
    ch.confirmed = false;
    ch.verdictSamples.clear();
    bumpEpoch(ch);
}

void
DwfgDetector::onRouteRetracted(NodeId router, PortId in_port,
                               VcId in_vc)
{
    Channel &ch = chan(chanId(router, in_port, in_vc));
    ch.routed = false;
    ch.outPort = kInvalidPort;
    ch.outVc = kInvalidVc;
    clearBlocked(ch);
    bumpEpoch(ch);
}

void
DwfgDetector::onHeadRecovering(NodeId router, PortId in_port,
                               VcId in_vc)
{
    // The worm leaves the wait-for graph: recovery will drain or kill
    // it, so "no progress since the epoch was read" must stop holding
    // for any probe that sampled this head.
    Channel &ch = chan(chanId(router, in_port, in_vc));
    clearBlocked(ch);
    ch.confirmed = false;
    ch.verdictSamples.clear();
    bumpEpoch(ch);
}

void
DwfgDetector::onInputVcFreed(NodeId router, PortId in_port,
                             VcId in_vc)
{
    Channel &ch = chan(chanId(router, in_port, in_vc));
    ch.msg = kInvalidMsg;
    ch.routed = false;
    ch.outPort = kInvalidPort;
    ch.outVc = kInvalidVc;
    clearBlocked(ch);
    ch.confirmed = false;
    ch.verdictSamples.clear();
    bumpEpoch(ch);
}

void
DwfgDetector::onBlockedCandidates(NodeId router, PortId in_port,
                                  VcId in_vc, MsgId msg,
                                  const BlockedCandidate *cands,
                                  std::size_t count, Cycle now)
{
    Channel &ch = chan(chanId(router, in_port, in_vc));
    WORMNET_ASSERT(ch.msg == msg);
    (void)msg;
    if (ch.firstFail == kNever)
        ch.firstFail = now;
    ch.lastFail = now;
    ch.cands.assign(cands, cands + count);
}

bool
DwfgDetector::onRoutingFailed(NodeId router, PortId in_port,
                              VcId in_vc, MsgId msg, PortMask, bool,
                              bool, Cycle now)
{
    // Verdict delivery point: a probe returned a verified deadlock
    // for this channel. Guard once more against anything that moved
    // since the report travelled home — the re-check over the stored
    // snapshot is modeled at zero cost and stands in for the
    // invalidation messages recovery hardware would broadcast. The
    // guard can only suppress a verdict, never create one.
    Channel &ch = chan(chanId(router, in_port, in_vc));
    WORMNET_ASSERT(ch.msg == msg);
    (void)msg;
    if (!ch.confirmed)
        return false;
    bool intact = true;
    for (const Sample &s : ch.verdictSamples) {
        const Channel &sc = chan(s.chan);
        if (sc.msg != s.msg || sc.epoch != s.epoch) {
            intact = false;
            break;
        }
    }
    ch.confirmed = false;
    ch.verdictSamples.clear();
    ch.retryAt = now + params_.retryDelay;
    return intact;
}

void
DwfgDetector::flushAllProbes()
{
    probesAborted_ += probes_.size();
    for (const Probe &p : probes_)
        chan(p.origin).probing = false;
    probes_.clear();
    for (Channel &ch : channels_) {
        // Candidate sets may reference the changed resource, and an
        // undelivered verdict was proved under the old graph: retract
        // both. Occupancy and epochs stay — they are still true.
        clearBlocked(ch);
        ch.confirmed = false;
        ch.verdictSamples.clear();
    }
}

void
DwfgDetector::onPortFaultChanged(NodeId, PortId, bool)
{
    flushAllProbes();
}

void
DwfgDetector::onRoutingChanged()
{
    flushAllProbes();
}

bool
DwfgDetector::recordSample(Probe &p, ChanId c)
{
    const Channel &ch = chan(c);
    for (const Sample &s : p.samples) {
        if (s.chan != c)
            continue;
        // Re-read of an already sampled channel: the probe's picture
        // is only coherent if nothing moved in between.
        return s.msg == ch.msg && s.epoch == ch.epoch;
    }
    p.samples.push_back(Sample{c, ch.msg, ch.epoch});
    return true;
}

DwfgDetector::StepOutcome
DwfgDetector::exploreChannel(Probe &p, ChanId c, Cycle now)
{
    if (!recordSample(p, c))
        return StepOutcome::Mismatch;
    const Channel &ch = chan(c);

    if (ch.msg == kInvalidMsg)
        return StepOutcome::Alive; // free channel: reusable now

    if (ch.routed) {
        // Part of a granted worm: follow it one hop toward its head.
        // An ejection grant drains unconditionally; a free downstream
        // channel means the grant window is open and flits can cross.
        if (isEjection(ch.outPort))
            return StepOutcome::Alive;
        const ChanId d =
            downstreamChan(chanRouter(c), ch.outPort, ch.outVc);
        if (d == kInvalidChan)
            return StepOutcome::Alive; // cannot happen for a granted
                                       // route; stay conservative
        p.stack.push_back(d);
        return StepOutcome::Continue;
    }

    // Unrouted head. Only a head that failed routing this very cycle
    // is blocked; anything else (in transit, arrived this cycle,
    // under recovery) is advancing — and the matching oracle cases
    // all resolve to "can advance" too.
    if (ch.lastFail != now)
        return StepOutcome::Alive;

    if (std::find(p.visited.begin(), p.visited.end(), ch.msg) !=
        p.visited.end())
        return StepOutcome::Continue; // join/cycle: branch is dead

    p.visited.push_back(ch.msg);
    if (ch.cands.empty())
        return StepOutcome::Alive; // nothing recorded: conservative

    for (const BlockedCandidate &cand : ch.cands) {
        // An ejection candidate can only be held by a message that is
        // already routed (and thus draining): the wait resolves.
        if (isEjection(cand.port))
            return StepOutcome::Alive;
        std::uint32_t mask = cand.vcMask;
        while (mask) {
            const VcId v2 =
                static_cast<VcId>(__builtin_ctz(mask));
            mask &= mask - 1;
            const ChanId d =
                downstreamChan(chanRouter(c), cand.port, v2);
            if (d == kInvalidChan)
                return StepOutcome::Alive; // conservative
            p.stack.push_back(d);
        }
    }
    return StepOutcome::Continue;
}

bool
DwfgDetector::moveProbe(Probe &p, NodeId to, Cycle now)
{
    if (sendsCycle_ != now) {
        std::fill(sends_.begin(), sends_.end(), 0);
        sendsCycle_ = now;
    }
    if (sends_[p.at] >= params_.bandwidth) {
        p.readyAt = now + 1; // bandwidth-stalled: retry next cycle
        return false;
    }
    ++sends_[p.at];
    const std::uint64_t dist =
        std::max(1u, ctx_.topo->distance(p.at, to));
    const std::uint64_t bytes =
        kTokenHeaderBytes + kSampleBytes * p.samples.size();
    const std::uint64_t flits =
        (bytes + kFlitPayloadBytes - 1) / kFlitPayloadBytes;
    ctrl_.flits += flits;
    ctrl_.flitHops += flits * dist;
    ctrl_.bytes += bytes;
    p.at = to;
    p.readyAt = now + params_.hopLatency * dist;
    return true;
}

void
DwfgDetector::startReport(Probe &p, bool verdict)
{
    p.phase = 3;
    p.verdict = verdict;
    p.stack.clear();
    p.visited.clear();
    if (!verdict)
        p.samples.clear(); // an aborted probe carries no fragment
}

void
DwfgDetector::deliverReport(Probe &p, Cycle now)
{
    Channel &origin = chan(p.origin);
    if (p.verdict && origin.msg == p.originMsg && !origin.routed) {
        origin.confirmed = true;
        origin.verdictSamples = std::move(p.samples);
        ++probesConfirmed_;
    } else {
        ++probesAborted_;
    }
    origin.probing = false;
    origin.retryAt = now + params_.retryDelay;
}

bool
DwfgDetector::stepProbe(Probe &p, Cycle now)
{
    while (true) {
        if (p.phase == 1) {
            if (p.stack.empty()) {
                // Closure exhausted with no escape: verify pass.
                p.phase = 2;
                p.verifyIdx = 0;
                continue;
            }
            const ChanId c = p.stack.back();
            const NodeId owner = chanRouter(c);
            if (owner != p.at) {
                moveProbe(p, owner, now);
                return false;
            }
            p.stack.pop_back();
            const StepOutcome out = exploreChannel(p, c, now);
            if (out != StepOutcome::Continue)
                startReport(p, false);
            continue;
        }
        if (p.phase == 2) {
            if (p.verifyIdx >= p.samples.size()) {
                startReport(p, true);
                continue;
            }
            const Sample &s = p.samples[p.verifyIdx];
            const NodeId owner = chanRouter(s.chan);
            if (owner != p.at) {
                moveProbe(p, owner, now);
                return false;
            }
            const Channel &sc = chan(s.chan);
            if (sc.msg != s.msg || sc.epoch != s.epoch) {
                startReport(p, false);
                continue;
            }
            ++p.verifyIdx;
            continue;
        }
        // Phase 3: carry the verdict home.
        const NodeId home = chanRouter(p.origin);
        if (p.at != home) {
            moveProbe(p, home, now);
            return false;
        }
        deliverReport(p, now);
        return true;
    }
}

void
DwfgDetector::launchProbe(ChanId c, Cycle now)
{
    Channel &ch = chan(c);
    ch.probing = true;
    Probe p;
    p.id = nextProbeId_++;
    p.origin = c;
    p.originMsg = ch.msg;
    p.phase = 1;
    p.at = chanRouter(c);
    p.readyAt = now;
    p.stack.push_back(c);
    ++probesLaunched_;
    probes_.push_back(std::move(p));
    if (stepProbe(probes_.back(), now))
        probes_.pop_back(); // resolved locally (e.g. instant abort)
}

void
DwfgDetector::onCycleEnd(NodeId router, PortMask, PortMask, Cycle now)
{
    // Tokens parked at this router, in launch order. The Network
    // sweeps nodes in ascending order every cycle, so the whole
    // schedule is deterministic; the mirror is frozen for the entire
    // sweep (all hooks fired earlier in the cycle), so every read in
    // this cycle sees one consistent snapshot.
    doneScratch_.clear();
    for (Probe &p : probes_) {
        if (p.at != router || p.readyAt > now)
            continue;
        if (stepProbe(p, now))
            doneScratch_.push_back(p.id);
    }
    if (!doneScratch_.empty()) {
        probes_.erase(
            std::remove_if(probes_.begin(), probes_.end(),
                           [&](const Probe &p) {
                               return std::binary_search(
                                   doneScratch_.begin(),
                                   doneScratch_.end(), p.id);
                           }),
            probes_.end());
    }

    // Launch probes for heads of this router that crossed the
    // trigger threshold.
    for (PortId port = 0; port < ctx_.numInPorts; ++port) {
        for (VcId v = 0; v < ctx_.vcs; ++v) {
            const ChanId c = chanId(router, port, v);
            Channel &ch = chan(c);
            if (ch.msg == kInvalidMsg || ch.routed || ch.probing ||
                ch.confirmed)
                continue;
            if (ch.lastFail != now || ch.firstFail == kNever)
                continue;
            if (now - ch.firstFail < params_.trigger ||
                ch.retryAt > now)
                continue;
            launchProbe(c, now);
        }
    }
}

std::uint64_t
DwfgDetector::channelEpoch(NodeId router, PortId in_port,
                           VcId in_vc) const
{
    return chan(chanId(router, in_port, in_vc)).epoch;
}

bool
DwfgDetector::channelConfirmed(NodeId router, PortId in_port,
                               VcId in_vc) const
{
    return chan(chanId(router, in_port, in_vc)).confirmed;
}

void
DwfgDetector::saveState(Serializer &s) const
{
    for (const Channel &ch : channels_) {
        s.u32(ch.msg);
        s.boolean(ch.routed);
        s.u16(ch.outPort);
        s.u8(ch.outVc);
        s.u64(ch.epoch);
        s.u64(ch.firstFail);
        s.u64(ch.lastFail);
        s.u32(static_cast<std::uint32_t>(ch.cands.size()));
        for (const BlockedCandidate &c : ch.cands) {
            s.u16(c.port);
            s.u32(c.vcMask);
        }
        s.boolean(ch.probing);
        s.boolean(ch.confirmed);
        s.u64(ch.retryAt);
        s.u32(static_cast<std::uint32_t>(ch.verdictSamples.size()));
        for (const Sample &sm : ch.verdictSamples) {
            s.u32(sm.chan);
            s.u32(sm.msg);
            s.u64(sm.epoch);
        }
    }
    s.u32(static_cast<std::uint32_t>(probes_.size()));
    for (const Probe &p : probes_) {
        s.u32(p.id);
        s.u32(p.origin);
        s.u32(p.originMsg);
        s.u8(p.phase);
        s.boolean(p.verdict);
        s.u32(p.at);
        s.u64(p.readyAt);
        s.u32(static_cast<std::uint32_t>(p.samples.size()));
        for (const Sample &sm : p.samples) {
            s.u32(sm.chan);
            s.u32(sm.msg);
            s.u64(sm.epoch);
        }
        s.u32(static_cast<std::uint32_t>(p.visited.size()));
        for (const MsgId m : p.visited)
            s.u32(m);
        s.u32(static_cast<std::uint32_t>(p.stack.size()));
        for (const ChanId c : p.stack)
            s.u32(c);
        s.u64(p.verifyIdx);
    }
    s.u32(nextProbeId_);
    s.u64(ctrl_.flits);
    s.u64(ctrl_.flitHops);
    s.u64(ctrl_.bytes);
    s.u64(probesLaunched_);
    s.u64(probesAborted_);
    s.u64(probesConfirmed_);
}

void
DwfgDetector::loadState(Deserializer &d)
{
    for (Channel &ch : channels_) {
        ch.msg = d.u32();
        ch.routed = d.boolean();
        ch.outPort = d.u16();
        ch.outVc = d.u8();
        ch.epoch = d.u64();
        ch.firstFail = d.u64();
        ch.lastFail = d.u64();
        ch.cands.resize(d.u32());
        for (BlockedCandidate &c : ch.cands) {
            c.port = d.u16();
            c.vcMask = d.u32();
        }
        ch.probing = d.boolean();
        ch.confirmed = d.boolean();
        ch.retryAt = d.u64();
        ch.verdictSamples.resize(d.u32());
        for (Sample &sm : ch.verdictSamples) {
            sm.chan = d.u32();
            sm.msg = d.u32();
            sm.epoch = d.u64();
        }
    }
    probes_.resize(d.u32());
    for (Probe &p : probes_) {
        p.id = d.u32();
        p.origin = d.u32();
        p.originMsg = d.u32();
        p.phase = d.u8();
        p.verdict = d.boolean();
        p.at = d.u32();
        p.readyAt = d.u64();
        p.samples.resize(d.u32());
        for (Sample &sm : p.samples) {
            sm.chan = d.u32();
            sm.msg = d.u32();
            sm.epoch = d.u64();
        }
        p.visited.resize(d.u32());
        for (MsgId &m : p.visited)
            m = d.u32();
        p.stack.resize(d.u32());
        for (ChanId &c : p.stack)
            c = d.u32();
        p.verifyIdx = d.u64();
    }
    nextProbeId_ = d.u32();
    ctrl_.flits = d.u64();
    ctrl_.flitHops = d.u64();
    ctrl_.bytes = d.u64();
    probesLaunched_ = d.u64();
    probesAborted_ = d.u64();
    probesConfirmed_ = d.u64();
    // The per-cycle send budget is intra-cycle state: a checkpoint
    // sits at a step boundary, so it resets lazily on first use.
    std::fill(sends_.begin(), sends_.end(), 0);
    sendsCycle_ = kNever;
}

std::string
DwfgDetector::name() const
{
    std::ostringstream os;
    os << "dwfg:t=" << params_.trigger << ":bw=" << params_.bandwidth
       << ":hop=" << params_.hopLatency
       << ":retry=" << params_.retryDelay;
    return os.str();
}

} // namespace wormnet
