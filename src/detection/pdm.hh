/**
 * @file
 * PDM — the Previous Detection Mechanism (paper Section 2, from
 * Martínez et al., ICPP 1997).
 *
 * Each output physical channel has a single inactivity counter and an
 * IF (inactivity) flag: the counter increments every clock cycle and
 * resets when a flit crosses the channel; IF sets when the counter
 * exceeds the threshold. A blocked message is presumed deadlocked as
 * soon as all its feasible output channels are busy with IF set —
 * there is no Generate/Propagate filtering, so every message in a
 * blocked tree eventually flags, which is the false-positive and
 * recovery-overhead problem NDM addresses.
 */

#ifndef WORMNET_DETECTION_PDM_HH
#define WORMNET_DETECTION_PDM_HH

#include <vector>

#include "detection/detector.hh"

namespace wormnet
{

/** Configuration for PdmDetector. */
struct PdmParams
{
    Cycle threshold = 32;
    /**
     * The ICPP'97 text resets the counter only on flit transmission.
     * With gateOccupancy the counter additionally freezes/resets while
     * the channel has no allocated VC (fairness ablation; not the
     * literal published mechanism).
     */
    bool gateOccupancy = false;
};

/** The prior inactivity-flag detection mechanism. */
class PdmDetector : public DeadlockDetector
{
  public:
    explicit PdmDetector(const PdmParams &params);

    void init(const DetectorContext &ctx) override;
    bool onRoutingFailed(NodeId router, PortId in_port, VcId in_vc,
                         MsgId msg, PortMask feasible_ports,
                         bool input_pc_fully_busy, bool first_attempt,
                         Cycle now) override;
    void onCycleEnd(NodeId router, PortMask tx_mask,
                    PortMask occupied_mask, Cycle now) override;
    void onPortFaultChanged(NodeId router, PortId out_port,
                            bool faulty) override;
    /** Ungated PDM times unoccupied channels, so idle routers still
     *  advance counters; only the gated variant may be skipped. */
    bool idleCycleEndStable() const override
    {
        return params_.gateOccupancy;
    }
    /** onCycleEnd only touches router-indexed counters/IF flags. */
    bool cycleEndShardSafe() const override { return true; }
    /** Drop the IF verdict flags; keep the activity counters. */
    void onRoutingChanged() override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

    /** @name White-box accessors for unit tests. */
    /// @{
    Cycle counter(NodeId router, PortId out_port) const;
    bool ifFlag(NodeId router, PortId out_port) const;
    /// @}

    const PdmParams &params() const { return params_; }

  private:
    std::size_t
    outIdx(NodeId router, PortId port) const
    {
        return std::size_t(router) * ctx_.numOutPorts + port;
    }

    PdmParams params_;
    DetectorContext ctx_;
    std::vector<Cycle> counters_;
    std::vector<std::uint8_t> ifFlags_;
    /** Per router: faulted output channels, never timed or judged. */
    std::vector<PortMask> faultyOut_;
};

} // namespace wormnet

#endif // WORMNET_DETECTION_PDM_HH
