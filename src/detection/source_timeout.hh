/**
 * @file
 * Source-node timeout detection mechanisms from the paper's related
 * work (Section 1):
 *
 *  - SourceAgeTimeoutDetector, after Reeves, Gehringer &
 *    Chandiramani: "a packet is considered to be deadlocked when the
 *    time since it was injected is longer than a threshold" — the
 *    message's age since injection start is the trigger.
 *
 *  - InjectionStallTimeoutDetector, after Kim, Liu & Chien
 *    (compressionless routing): "a deadlock is detected if the time
 *    since the last flit was injected exceeds a threshold" — worm
 *    progress is inferred from the source's ability to keep feeding
 *    flits, since a blocked worm back-pressures its injection
 *    channel within a few cycles (small buffers, no compression).
 *
 * Both observe only the source node and only apply while the worm is
 * still partly at the source; they are the crudest comparators for
 * NDM and exhibit the strongest message-length sensitivity.
 */

#ifndef WORMNET_DETECTION_SOURCE_TIMEOUT_HH
#define WORMNET_DETECTION_SOURCE_TIMEOUT_HH

#include "detection/detector.hh"

namespace wormnet
{

/** Shared base: verdicts only from the injection-stall hook. */
class SourceTimeoutDetectorBase : public DeadlockDetector
{
  public:
    explicit SourceTimeoutDetectorBase(Cycle threshold);

    void init(const DetectorContext &) override {}
    bool
    onRoutingFailed(NodeId, PortId, VcId, MsgId, PortMask, bool,
                    bool, Cycle) override
    {
        return false;
    }
    void onCycleEnd(NodeId, PortMask, PortMask, Cycle) override {}
    bool idleCycleEndStable() const override { return true; }
    /** onCycleEnd is empty; verdicts ride onInjectionStalled, which
     *  the simulator always calls from the sequential phase. */
    bool cycleEndShardSafe() const override { return true; }
    bool wantsInjectionStallReports() const override { return true; }

  protected:
    Cycle threshold_;
};

/** Reeves-style: message age since injection start. */
class SourceAgeTimeoutDetector : public SourceTimeoutDetectorBase
{
  public:
    using SourceTimeoutDetectorBase::SourceTimeoutDetectorBase;

    bool onInjectionStalled(NodeId router, PortId in_port, VcId in_vc,
                            MsgId msg, Cycle age, Cycle stall,
                            Cycle now) override;
    std::string name() const override;
};

/** Compressionless-routing-style: time since the last flit entered
 *  the network. */
class InjectionStallTimeoutDetector : public SourceTimeoutDetectorBase
{
  public:
    using SourceTimeoutDetectorBase::SourceTimeoutDetectorBase;

    bool onInjectionStalled(NodeId router, PortId in_port, VcId in_vc,
                            MsgId msg, Cycle age, Cycle stall,
                            Cycle now) override;
    std::string name() const override;
};

} // namespace wormnet

#endif // WORMNET_DETECTION_SOURCE_TIMEOUT_HH
