/**
 * @file
 * Flit: the unit of flow control in wormhole switching.
 *
 * A message is serialised into a HEAD flit (carrying, conceptually,
 * the routing information), zero or more BODY flits, and a TAIL flit
 * that releases the virtual channels the worm holds. Single-flit
 * messages use HEAD_TAIL. The simulator keeps flits tiny: payload is
 * not modelled, only the owning message id and the cycle at which the
 * flit becomes visible at its current buffer (link staging).
 */

#ifndef WORMNET_ROUTER_FLIT_HH
#define WORMNET_ROUTER_FLIT_HH

#include "common/types.hh"

namespace wormnet
{

/** Position of a flit within its message. */
enum class FlitType : std::uint8_t
{
    Head,
    Body,
    Tail,
    HeadTail, ///< single-flit message
};

/** True for Head and HeadTail. */
inline bool
isHeadFlit(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

/** True for Tail and HeadTail. */
inline bool
isTailFlit(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

/** One flit in a virtual-channel buffer. */
struct Flit
{
    MsgId msg = kInvalidMsg;
    FlitType type = FlitType::Body;
    /**
     * First cycle at which this flit may be acted upon at the router
     * holding it (models the one-cycle link/injection latency).
     */
    Cycle readyAt = 0;
};

/**
 * Flit type for position @p index within a message of @p length flits.
 */
inline FlitType
flitTypeAt(unsigned index, unsigned length)
{
    if (length == 1)
        return FlitType::HeadTail;
    if (index == 0)
        return FlitType::Head;
    if (index + 1 == length)
        return FlitType::Tail;
    return FlitType::Body;
}

} // namespace wormnet

#endif // WORMNET_ROUTER_FLIT_HH
