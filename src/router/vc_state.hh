/**
 * @file
 * Network-global struct-of-arrays virtual-channel storage.
 *
 * Before this layer, every Router owned private std::vectors of
 * InputVc/OutputVc records and every FlitFifo owned a private heap
 * buffer — per-cycle scans pointer-hopped through hundreds of router
 * objects and thousands of tiny allocations. VcStore hoists all of it
 * into three contiguous arrays indexed by a flat (node, port, vc) id:
 *
 *   in   [node * inPorts  * vcs + port * vcs + vc]   InputVc records
 *   out  [node * outPorts * vcs + port * vcs + vc]   OutputVc records
 *   slab [flatInputId * slotsPerFifo ...]            flit buffers
 *
 * A node's complete VC state is therefore a few adjacent cache lines,
 * and whole-network sweeps (switch allocation, routing, detection,
 * checkpointing) walk dense memory in flat-id order. Router objects
 * stay the API everyone programs against, but become thin views over
 * a node-sized slice of these arrays (see router.hh).
 *
 * The arrays are sized once at construction and never reallocate, so
 * raw pointers and flat ids into them stay valid for the lifetime of
 * the network.
 */

#ifndef WORMNET_ROUTER_VC_STATE_HH
#define WORMNET_ROUTER_VC_STATE_HH

#include <vector>

#include "common/contracts.hh"
#include "common/types.hh"
#include "router/channel.hh"
#include "router/router.hh"

namespace wormnet
{

/** Flat, contiguous VC state for every router in a network. */
class VcStore
{
  public:
    VcStore() = default;

    void
    init(NodeId nodes, const RouterParams &params)
    {
        nodes_ = nodes;
        inPerNode_ = params.numInPorts() * params.vcs;
        outPerNode_ = params.numOutPorts() * params.vcs;
        slotsPerFifo_ = FlitFifo::slotsFor(params.bufDepth);

        in_.clear();
        out_.clear();
        in_.resize(std::size_t(nodes) * inPerNode_);
        out_.resize(std::size_t(nodes) * outPerNode_);
        slab_.assign(in_.size() * slotsPerFifo_, Flit{});

        for (std::size_t i = 0; i < in_.size(); ++i)
            in_[i].fifo.bind(&slab_[i * slotsPerFifo_],
                             params.bufDepth);
        for (OutputVc &ovc : out_)
            ovc.credits = params.bufDepth;
    }

    NodeId numNodes() const { return nodes_; }
    unsigned inPerNode() const { return inPerNode_; }
    unsigned outPerNode() const { return outPerNode_; }

    /** First input VC of @p node (the node's inPerNode()-long run). */
    InputVc *
    inBase(NodeId node)
    {
        WORMNET_ASSERT(node < nodes_);
        return in_.data() + std::size_t(node) * inPerNode_;
    }

    const InputVc *
    inBase(NodeId node) const
    {
        WORMNET_ASSERT(node < nodes_);
        return in_.data() + std::size_t(node) * inPerNode_;
    }

    /** First output VC of @p node. */
    OutputVc *
    outBase(NodeId node)
    {
        WORMNET_ASSERT(node < nodes_);
        return out_.data() + std::size_t(node) * outPerNode_;
    }

    const OutputVc *
    outBase(NodeId node) const
    {
        WORMNET_ASSERT(node < nodes_);
        return out_.data() + std::size_t(node) * outPerNode_;
    }

    /** @name Whole-network flat access (hot-path sweeps). */
    /// @{
    InputVc &inAt(std::size_t flat) { return in_[flat]; }
    const InputVc &inAt(std::size_t flat) const { return in_[flat]; }
    OutputVc &outAt(std::size_t flat) { return out_[flat]; }
    const OutputVc &outAt(std::size_t flat) const { return out_[flat]; }
    std::size_t numIn() const { return in_.size(); }
    std::size_t numOut() const { return out_.size(); }
    /// @}

  private:
    NodeId nodes_ = 0;
    unsigned inPerNode_ = 0;
    unsigned outPerNode_ = 0;
    std::uint32_t slotsPerFifo_ = 0;
    std::vector<InputVc> in_;
    std::vector<OutputVc> out_;
    std::vector<Flit> slab_;
};

} // namespace wormnet

#endif // WORMNET_ROUTER_VC_STATE_HH
