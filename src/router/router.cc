#include "router/router.hh"

#include "common/contracts.hh"

namespace wormnet
{

Router::Router(NodeId node, const RouterParams &params)
    : node_(node), params_(params)
{
    WORMNET_ASSERT(params.vcs >= 1);
    WORMNET_ASSERT(params.bufDepth >= 1);
    WORMNET_ASSERT(params.numOutPorts() <= 32,
              " (PortMask is 32 bits wide)");

    inputVcs_.reserve(params.numInPorts() * params.vcs);
    for (unsigned i = 0; i < params.numInPorts() * params.vcs; ++i)
        inputVcs_.emplace_back(params.bufDepth);

    outputVcs_.resize(params.numOutPorts() * params.vcs);
    for (auto &ovc : outputVcs_)
        ovc.credits = params.bufDepth;

    down_.resize(params.numOutPorts());
    up_.resize(params.numInPorts());
    lastTx_.assign(params.numOutPorts(), 0);
    saRoundRobin.assign(params.numOutPorts(), 0);
    injRoundRobin.assign(params.injPorts, 0);
}

bool
Router::inputPcFullyBusy(PortId port) const
{
    for (VcId v = 0; v < params_.vcs; ++v) {
        if (inputVc(port, v).free())
            return false;
    }
    return true;
}

bool
Router::outputPcOccupied(PortId port) const
{
    for (VcId v = 0; v < params_.vcs; ++v) {
        if (outputVc(port, v).allocated)
            return true;
    }
    return false;
}

unsigned
Router::busyNetworkOutputVcs() const
{
    unsigned busy = 0;
    for (PortId p = 0; p < params_.netPorts; ++p) {
        for (VcId v = 0; v < params_.vcs; ++v) {
            if (outputVc(p, v).allocated)
                ++busy;
        }
    }
    return busy;
}

} // namespace wormnet
