#include "router/router.hh"

#include "common/contracts.hh"

namespace wormnet
{

Router::Router(NodeId node, const RouterParams &params)
    : node_(node), params_(params)
{
    WORMNET_ASSERT(params.vcs >= 1);
    WORMNET_ASSERT(params.bufDepth >= 1);
    WORMNET_ASSERT(params.numOutPorts() <= 32,
              " (PortMask is 32 bits wide)");

    ownIn_.reserve(params.numInPorts() * params.vcs);
    for (unsigned i = 0; i < params.numInPorts() * params.vcs; ++i)
        ownIn_.emplace_back(params.bufDepth);
    ownOut_.resize(params.numOutPorts() * params.vcs);
    for (auto &ovc : ownOut_)
        ovc.credits = params.bufDepth;
    in_ = ownIn_.data();
    out_ = ownOut_.data();

    initCommon();
}

Router::Router(NodeId node, const RouterParams &params, InputVc *in,
               OutputVc *out)
    : node_(node), params_(params), in_(in), out_(out)
{
    WORMNET_ASSERT(params.vcs >= 1);
    WORMNET_ASSERT(params.bufDepth >= 1);
    WORMNET_ASSERT(params.numOutPorts() <= 32,
              " (PortMask is 32 bits wide)");
    WORMNET_ASSERT(in != nullptr && out != nullptr);

    initCommon();
}

void
Router::initCommon()
{
    down_.resize(params_.numOutPorts());
    up_.resize(params_.numInPorts());
    lastTx_.assign(params_.numOutPorts(), 0);
    saRoundRobin.assign(params_.numOutPorts(), 0);
    injRoundRobin.assign(params_.injPorts, 0);
}

bool
Router::inputPcFullyBusy(PortId port) const
{
    for (VcId v = 0; v < params_.vcs; ++v) {
        if (inputVc(port, v).free())
            return false;
    }
    return true;
}

bool
Router::outputPcOccupied(PortId port) const
{
    for (VcId v = 0; v < params_.vcs; ++v) {
        if (outputVc(port, v).allocated)
            return true;
    }
    return false;
}

unsigned
Router::busyNetworkOutputVcs() const
{
    unsigned busy = 0;
    for (PortId p = 0; p < params_.netPorts; ++p) {
        for (VcId v = 0; v < params_.vcs; ++v) {
            if (outputVc(p, v).allocated)
                ++busy;
        }
    }
    return busy;
}

} // namespace wormnet
