/**
 * @file
 * Virtual-channel state: flit FIFOs, input-side VC records and
 * output-side VC allocation/credit records.
 */

#ifndef WORMNET_ROUTER_CHANNEL_HH
#define WORMNET_ROUTER_CHANNEL_HH

#include <vector>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "router/flit.hh"

namespace wormnet
{

/** Fixed-capacity ring buffer of flits. */
class FlitFifo
{
  public:
    explicit FlitFifo(std::size_t capacity = 4)
        : buf_(capacity)
    {
        WORMNET_ASSERT(capacity >= 1);
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buf_.size(); }

    void
    push(const Flit &flit)
    {
        WORMNET_ASSERT(!full());
        buf_[(head_ + size_) % buf_.size()] = flit;
        ++size_;
    }

    const Flit &
    front() const
    {
        WORMNET_ASSERT(!empty());
        return buf_[head_];
    }

    Flit
    pop()
    {
        WORMNET_ASSERT(!empty());
        Flit f = buf_[head_];
        head_ = (head_ + 1) % buf_.size();
        --size_;
        return f;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /**
     * Checkpoint support: flits are written in pop order, so a
     * restored FIFO is normalised to head_ == 0 with identical
     * logical contents. Capacity is config-fixed and not written.
     */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u32(static_cast<std::uint32_t>(size_));
        for (std::size_t i = 0; i < size_; ++i) {
            const Flit &f = buf_[(head_ + i) % buf_.size()];
            s.u32(f.msg);
            s.u8(static_cast<std::uint8_t>(f.type));
            s.u64(f.readyAt);
        }
    }

    template <typename D>
    void
    loadState(D &d)
    {
        clear();
        const std::uint32_t n = d.u32();
        WORMNET_ASSERT(n <= buf_.size());
        for (std::uint32_t i = 0; i < n; ++i) {
            Flit f;
            f.msg = d.u32();
            f.type = static_cast<FlitType>(d.u8());
            f.readyAt = d.u64();
            push(f);
        }
    }

  private:
    std::vector<Flit> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

/**
 * Input-side virtual channel: a buffer plus the worm currently using
 * it and its routing decision.
 */
struct InputVc
{
    explicit InputVc(std::size_t buf_depth) : fifo(buf_depth) {}

    FlitFifo fifo;

    /** Worm occupying this VC (set at head enqueue, cleared at tail
     *  dequeue); kInvalidMsg when free. */
    MsgId msg = kInvalidMsg;

    /** @name Routing decision for the occupying worm's head. */
    /// @{
    bool routed = false;
    PortId outPort = kInvalidPort;
    VcId outVc = kInvalidVc;
    Cycle allocCycle = kNever; ///< when the output VC was granted
    /// @}

    /** @name Blocked-header bookkeeping (detection support). */
    /// @{
    /** The current head already had >= 1 failed routing attempt. */
    bool attempted = false;
    /** Feasible output ports observed at the last failed attempt. */
    PortMask lastFeasible = 0;
    /** Cycle of the first failed attempt for the current head. */
    Cycle headBlockedSince = kNever;
    /// @}

    /** The occupying message is draining into the recovery buffer. */
    bool recovering = false;

    /** Member of the Network's routable-head set. Owned by
     *  Network::syncRoutable(); nothing else may write it. */
    bool inRouteSet = false;

    bool free() const { return msg == kInvalidMsg; }

    /** Reset per-worm state when the worm fully leaves the VC. */
    void
    release()
    {
        msg = kInvalidMsg;
        routed = false;
        outPort = kInvalidPort;
        outVc = kInvalidVc;
        allocCycle = kNever;
        attempted = false;
        lastFeasible = 0;
        headBlockedSince = kNever;
        recovering = false;
    }

    /** Checkpoint support. inRouteSet is rebuilt by the Network's
     *  activity restore, not read back from the payload. */
    template <typename S>
    void
    saveState(S &s) const
    {
        fifo.saveState(s);
        s.u32(msg);
        s.boolean(routed);
        s.u16(outPort);
        s.u8(outVc);
        s.u64(allocCycle);
        s.boolean(attempted);
        s.u32(lastFeasible);
        s.u64(headBlockedSince);
        s.boolean(recovering);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        fifo.loadState(d);
        msg = d.u32();
        routed = d.boolean();
        outPort = d.u16();
        outVc = d.u8();
        allocCycle = d.u64();
        attempted = d.boolean();
        lastFeasible = d.u32();
        headBlockedSince = d.u64();
        recovering = d.boolean();
        inRouteSet = false;
    }
};

/**
 * Output-side virtual channel: allocation record plus the credit count
 * for the downstream buffer.
 */
struct OutputVc
{
    bool allocated = false;
    MsgId msg = kInvalidMsg;
    /** Input VC that owns this output VC while allocated. */
    PortId srcPort = kInvalidPort;
    VcId srcVc = kInvalidVc;
    /** Free slots believed available in the downstream buffer. */
    unsigned credits = 0;

    void
    release()
    {
        allocated = false;
        msg = kInvalidMsg;
        srcPort = kInvalidPort;
        srcVc = kInvalidVc;
    }

    template <typename S>
    void
    saveState(S &s) const
    {
        s.boolean(allocated);
        s.u32(msg);
        s.u16(srcPort);
        s.u8(srcVc);
        s.u32(credits);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        allocated = d.boolean();
        msg = d.u32();
        srcPort = d.u16();
        srcVc = d.u8();
        credits = d.u32();
    }
};

} // namespace wormnet

#endif // WORMNET_ROUTER_CHANNEL_HH
