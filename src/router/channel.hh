/**
 * @file
 * Virtual-channel state: flit FIFOs, input-side VC records and
 * output-side VC allocation/credit records.
 *
 * Since the struct-of-arrays layout change, the flit storage of every
 * network FIFO lives in one contiguous slab owned by the network's
 * VcStore (src/router/vc_state.hh); a FlitFifo is then a bound view
 * into its fixed slab slice. A FlitFifo constructed standalone with a
 * capacity (unit tests, tools) owns a private buffer instead — the
 * ring-buffer semantics are identical either way. Indices wrap with a
 * power-of-two mask; the *logical* capacity may still be any value
 * >= 1 (the physical slice is rounded up to the next power of two).
 */

#ifndef WORMNET_ROUTER_CHANNEL_HH
#define WORMNET_ROUTER_CHANNEL_HH

#include <bit>
#include <cstdint>
#include <memory>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "router/flit.hh"

namespace wormnet
{

/** Fixed-capacity ring buffer of flits (pow2-masked indexing). */
class FlitFifo
{
  public:
    /** Physical slot count backing a logical capacity. */
    static std::uint32_t
    slotsFor(std::size_t capacity)
    {
        return std::bit_ceil(static_cast<std::uint32_t>(capacity));
    }

    /** Unbound view: storage is attached later via bind(). */
    FlitFifo() = default;

    /** Standalone FIFO owning its buffer. */
    explicit FlitFifo(std::size_t capacity)
    {
        WORMNET_ASSERT(capacity >= 1);
        owned_ = std::make_unique<Flit[]>(slotsFor(capacity));
        bind(owned_.get(), capacity);
    }

    /** Point this FIFO at @p slotsFor(capacity) slots at @p buf. */
    void
    bind(Flit *buf, std::size_t capacity)
    {
        WORMNET_ASSERT(capacity >= 1);
        buf_ = buf;
        cap_ = static_cast<std::uint32_t>(capacity);
        mask_ = slotsFor(capacity) - 1;
        head_ = 0;
        size_ = 0;
    }

    std::size_t capacity() const { return cap_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == cap_; }

    void
    push(const Flit &flit)
    {
        WORMNET_ASSERT(!full());
        buf_[(head_ + size_) & mask_] = flit;
        ++size_;
    }

    const Flit &
    front() const
    {
        WORMNET_ASSERT(!empty());
        return buf_[head_];
    }

    Flit
    pop()
    {
        WORMNET_ASSERT(!empty());
        Flit f = buf_[head_];
        head_ = (head_ + 1) & mask_;
        --size_;
        return f;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /**
     * Checkpoint support: flits are written in pop order, so a
     * restored FIFO is normalised to head_ == 0 with identical
     * logical contents. Capacity is config-fixed and not written.
     */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u32(size_);
        for (std::uint32_t i = 0; i < size_; ++i) {
            const Flit &f = buf_[(head_ + i) & mask_];
            s.u32(f.msg);
            s.u8(static_cast<std::uint8_t>(f.type));
            s.u64(f.readyAt);
        }
    }

    template <typename D>
    void
    loadState(D &d)
    {
        clear();
        const std::uint32_t n = d.u32();
        WORMNET_ASSERT(n <= cap_);
        for (std::uint32_t i = 0; i < n; ++i) {
            Flit f;
            f.msg = d.u32();
            f.type = static_cast<FlitType>(d.u8());
            f.readyAt = d.u64();
            push(f);
        }
    }

  private:
    Flit *buf_ = nullptr;
    std::uint32_t cap_ = 0;  ///< logical capacity
    std::uint32_t mask_ = 0; ///< physical-slot index mask (pow2 - 1)
    std::uint32_t head_ = 0;
    std::uint32_t size_ = 0;
    std::unique_ptr<Flit[]> owned_; ///< standalone mode only
};

/**
 * Input-side virtual channel: a buffer plus the worm currently using
 * it and its routing decision.
 */
struct InputVc
{
    /** Unbound record for slab-backed storage (VcStore binds the
     *  fifo). */
    InputVc() = default;

    /** Standalone record owning its flit buffer (unit tests). */
    explicit InputVc(std::size_t buf_depth) : fifo(buf_depth) {}

    FlitFifo fifo;

    /** Worm occupying this VC (set at head enqueue, cleared at tail
     *  dequeue); kInvalidMsg when free. */
    MsgId msg = kInvalidMsg;

    /** Destination of the occupying worm, cached from the message at
     *  head enqueue so the routing phase never touches the message
     *  store. Derived state: rebuilt on checkpoint load. */
    NodeId dst = kInvalidNode;

    /** @name Routing decision for the occupying worm's head. */
    /// @{
    bool routed = false;
    PortId outPort = kInvalidPort;
    VcId outVc = kInvalidVc;
    Cycle allocCycle = kNever; ///< when the output VC was granted
    /// @}

    /** @name Blocked-header bookkeeping (detection support). */
    /// @{
    /** The current head already had >= 1 failed routing attempt. */
    bool attempted = false;
    /** Feasible output ports observed at the last failed attempt. */
    PortMask lastFeasible = 0;
    /** Cycle of the first failed attempt for the current head. */
    Cycle headBlockedSince = kNever;
    /// @}

    /** The occupying message is draining into the recovery buffer. */
    bool recovering = false;

    /** Member of the Network's routable-head set. Owned by
     *  Network::syncRoutable(); nothing else may write it. */
    bool inRouteSet = false;

    /** Injection VCs only: the occupying message has pushed all of
     *  its flits (flitsInjected == length). Lets the injection scan
     *  skip the message-store load for fully injected worms. Derived
     *  state: rebuilt on checkpoint load. */
    bool injDone = false;

    bool free() const { return msg == kInvalidMsg; }

    /** Reset per-worm state when the worm fully leaves the VC. */
    void
    release()
    {
        msg = kInvalidMsg;
        dst = kInvalidNode;
        routed = false;
        outPort = kInvalidPort;
        outVc = kInvalidVc;
        allocCycle = kNever;
        attempted = false;
        lastFeasible = 0;
        headBlockedSince = kNever;
        recovering = false;
        injDone = false;
    }

    /** Checkpoint support. inRouteSet, dst and injDone are rebuilt by
     *  the Network's activity restore, not read back. */
    template <typename S>
    void
    saveState(S &s) const
    {
        fifo.saveState(s);
        s.u32(msg);
        s.boolean(routed);
        s.u16(outPort);
        s.u8(outVc);
        s.u64(allocCycle);
        s.boolean(attempted);
        s.u32(lastFeasible);
        s.u64(headBlockedSince);
        s.boolean(recovering);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        fifo.loadState(d);
        msg = d.u32();
        routed = d.boolean();
        outPort = d.u16();
        outVc = d.u8();
        allocCycle = d.u64();
        attempted = d.boolean();
        lastFeasible = d.u32();
        headBlockedSince = d.u64();
        recovering = d.boolean();
        inRouteSet = false;
        dst = kInvalidNode;
        injDone = false;
    }
};

/**
 * Output-side virtual channel: allocation record plus the credit count
 * for the downstream buffer.
 */
struct OutputVc
{
    bool allocated = false;
    MsgId msg = kInvalidMsg;
    /** Input VC that owns this output VC while allocated. */
    PortId srcPort = kInvalidPort;
    VcId srcVc = kInvalidVc;
    /** Free slots believed available in the downstream buffer. */
    unsigned credits = 0;

    void
    release()
    {
        allocated = false;
        msg = kInvalidMsg;
        srcPort = kInvalidPort;
        srcVc = kInvalidVc;
    }

    template <typename S>
    void
    saveState(S &s) const
    {
        s.boolean(allocated);
        s.u32(msg);
        s.u16(srcPort);
        s.u8(srcVc);
        s.u32(credits);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        allocated = d.boolean();
        msg = d.u32();
        srcPort = d.u16();
        srcVc = d.u8();
        credits = d.u32();
    }
};

} // namespace wormnet

#endif // WORMNET_ROUTER_CHANNEL_HH
