/**
 * @file
 * Message bookkeeping: lifecycle state, timestamps and the chain of
 * virtual channels the worm currently occupies.
 */

#ifndef WORMNET_ROUTER_MESSAGE_HH
#define WORMNET_ROUTER_MESSAGE_HH

#include <cstddef>
#include <vector>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace wormnet
{

/** Lifecycle of a message. */
enum class MsgStatus : std::uint8_t
{
    Queued,     ///< generated, waiting in the source queue
    Active,     ///< at least partly in the network (injecting/moving)
    Recovering, ///< marked deadlocked, draining into recovery buffer
    Delivered,  ///< tail consumed at destination (or via recovery)
    Killed,     ///< removed by regressive recovery, awaiting re-inject
    Abandoned,  ///< gave up after exhausting its retry budget
};

/** One virtual channel held by a message's worm. */
struct PathLink
{
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
};

/**
 * A message and its simulation state. The occupied-VC chain (tail end
 * first) enables regressive recovery and the ground-truth oracle to
 * walk the worm without scanning the whole network.
 */
struct Message
{
    MsgId id = kInvalidMsg;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    unsigned length = 0; ///< flits

    Cycle genCycle = kNever;
    Cycle injectStartCycle = kNever; ///< head flit entered injection VC
    Cycle lastInjectCycle = kNever;  ///< newest flit entered injection VC
    Cycle deliverCycle = kNever;

    MsgStatus status = MsgStatus::Queued;
    unsigned flitsInjected = 0; ///< pushed into the injection VC
    unsigned flitsEjected = 0;  ///< consumed at dst or recovery buffer

    /** Generated inside the measurement window (not warm-up). */
    bool measured = false;

    /** Times this message was marked deadlocked (can exceed 1 after
     *  regressive re-injection). */
    unsigned timesDetected = 0;
    /** Times killed and re-injected by regressive recovery. */
    unsigned retries = 0;
    /** Delivered through the recovery path rather than the network. */
    bool recovered = false;

    /** Already sitting in the Network's fault-kill queue this cycle
     *  (keeps worms hit at several points from queueing twice). */
    bool faultKillQueued = false;

    /** @name Occupied-VC chain (front = closest to the source). */
    /// @{
    void
    pushLink(NodeId node, PortId port, VcId vc)
    {
        links_.push_back(PathLink{node, port, vc});
    }

    void
    popFrontLink()
    {
        WORMNET_ASSERT(frontIdx_ < links_.size());
        ++frontIdx_;
        if (frontIdx_ == links_.size()) {
            links_.clear();
            frontIdx_ = 0;
        }
    }

    std::size_t numLinks() const { return links_.size() - frontIdx_; }

    /** i-th held VC from the tail end (0 = oldest still held). */
    const PathLink &
    link(std::size_t i) const
    {
        WORMNET_ASSERT(frontIdx_ + i < links_.size());
        return links_[frontIdx_ + i];
    }

    /** Newest held VC — where the head flit was last enqueued. */
    const PathLink &
    headLink() const
    {
        WORMNET_ASSERT(numLinks() > 0);
        return links_.back();
    }

    void
    clearLinks()
    {
        links_.clear();
        frontIdx_ = 0;
    }
    /// @}

    /**
     * Checkpoint support. Only the logically held links (from the
     * current front) are written, so a restored message is normalised
     * to frontIdx_ == 0; pop order is unaffected.
     */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u32(id);
        s.u32(src);
        s.u32(dst);
        s.u32(length);
        s.u64(genCycle);
        s.u64(injectStartCycle);
        s.u64(lastInjectCycle);
        s.u64(deliverCycle);
        s.u8(static_cast<std::uint8_t>(status));
        s.u32(flitsInjected);
        s.u32(flitsEjected);
        s.boolean(measured);
        s.u32(timesDetected);
        s.u32(retries);
        s.boolean(recovered);
        s.boolean(faultKillQueued);
        s.u32(static_cast<std::uint32_t>(numLinks()));
        for (std::size_t i = 0; i < numLinks(); ++i) {
            const PathLink &l = link(i);
            s.u32(l.node);
            s.u16(l.port);
            s.u8(l.vc);
        }
    }

    template <typename D>
    void
    loadState(D &d)
    {
        id = d.u32();
        src = d.u32();
        dst = d.u32();
        length = d.u32();
        genCycle = d.u64();
        injectStartCycle = d.u64();
        lastInjectCycle = d.u64();
        deliverCycle = d.u64();
        status = static_cast<MsgStatus>(d.u8());
        flitsInjected = d.u32();
        flitsEjected = d.u32();
        measured = d.boolean();
        timesDetected = d.u32();
        retries = d.u32();
        recovered = d.boolean();
        faultKillQueued = d.boolean();
        clearLinks();
        const std::uint32_t n = d.u32();
        links_.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            const NodeId node = d.u32();
            const PortId port = d.u16();
            const VcId vc = d.u8();
            pushLink(node, port, vc);
        }
    }

  private:
    std::vector<PathLink> links_;
    std::size_t frontIdx_ = 0;
};

/** Dense store of all messages ever generated in a simulation. */
class MessageStore
{
  public:
    /** Create a new message; returns its id. */
    MsgId
    create(NodeId src, NodeId dst, unsigned length, Cycle now,
           bool measured)
    {
        const MsgId id = static_cast<MsgId>(messages_.size());
        Message m;
        m.id = id;
        m.src = src;
        m.dst = dst;
        m.length = length;
        m.genCycle = now;
        m.measured = measured;
        messages_.push_back(std::move(m));
        return id;
    }

    Message &
    get(MsgId id)
    {
        WORMNET_ASSERT(id < messages_.size());
        return messages_[id];
    }

    const Message &
    get(MsgId id) const
    {
        WORMNET_ASSERT(id < messages_.size());
        return messages_[id];
    }

    std::size_t size() const { return messages_.size(); }

    /** Checkpoint support: the whole population, ids implicit. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(static_cast<std::uint64_t>(messages_.size()));
        for (const Message &m : messages_)
            m.saveState(s);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        messages_.assign(d.u64(), Message{});
        for (Message &m : messages_)
            m.loadState(d);
    }

  private:
    std::vector<Message> messages_;
};

} // namespace wormnet

#endif // WORMNET_ROUTER_MESSAGE_HH
