/**
 * @file
 * Message bookkeeping: lifecycle state, timestamps and the chain of
 * virtual channels the worm currently occupies.
 *
 * Worm paths used to be a private std::vector<PathLink> per message —
 * one heap allocation (and permanent capacity retention) for each of
 * the millions of messages a long run generates. They now live in a
 * chunked slab arena owned by the MessageStore: path blocks are
 * power-of-two sized, handed out from large chunks, recycled through
 * per-size freelists the moment a worm fully leaves the network
 * (delivery, recovery drain, kill), and dropped wholesale on
 * checkpoint load. Chunks never move, so the raw block pointer a
 * Message holds stays valid until the block is freed.
 */

#ifndef WORMNET_ROUTER_MESSAGE_HH
#define WORMNET_ROUTER_MESSAGE_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace wormnet
{

/** Lifecycle of a message. */
enum class MsgStatus : std::uint8_t
{
    Queued,     ///< generated, waiting in the source queue
    Active,     ///< at least partly in the network (injecting/moving)
    Recovering, ///< marked deadlocked, draining into recovery buffer
    Delivered,  ///< tail consumed at destination (or via recovery)
    Killed,     ///< removed by regressive recovery, awaiting re-inject
    Abandoned,  ///< gave up after exhausting its retry budget
};

/** One virtual channel held by a message's worm. */
struct PathLink
{
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
};

/**
 * Chunked slab arena for worm path blocks.
 *
 * Blocks are power-of-two numbers of PathLinks (minimum 4), carved
 * from fixed 64Ki-link chunks by pointer bump and recycled through a
 * freelist per size class. Chunks are never returned to the OS until
 * clear()/destruction, so the arena's peak footprint tracks the peak
 * number of links *simultaneously in flight* — not the total message
 * population, which is what the per-message vectors retained.
 */
class PathSlab
{
  public:
    static constexpr std::uint32_t kMinBlock = 4;
    static constexpr std::uint32_t kChunkLinks = 1u << 16;
    /** Size classes: 4, 8, ..., 65536 links. */
    static constexpr unsigned kClasses = 15;

    PathLink *
    alloc(std::uint32_t cap)
    {
        const unsigned cls = classOf(cap);
        if (!free_[cls].empty()) {
            PathLink *p = free_[cls].back();
            free_[cls].pop_back();
            return p;
        }
        const std::uint32_t want = kMinBlock << cls;
        if (used_ + want > kChunkLinks) {
            chunks_.push_back(
                std::make_unique<PathLink[]>(kChunkLinks));
            used_ = 0;
        }
        PathLink *p = chunks_.back().get() + used_;
        used_ += want;
        return p;
    }

    void
    release(PathLink *p, std::uint32_t cap)
    {
        free_[classOf(cap)].push_back(p);
    }

    /** Drop every block and chunk (checkpoint load). */
    void
    clear()
    {
        chunks_.clear();
        used_ = kChunkLinks;
        for (auto &fl : free_)
            fl.clear();
    }

    /** Links currently reachable through live chunks (footprint). */
    std::size_t
    capacityLinks() const
    {
        return chunks_.size() * std::size_t(kChunkLinks);
    }

    /** Round @p cap up to its size class capacity. */
    static std::uint32_t
    blockCap(std::uint32_t cap)
    {
        return kMinBlock << classOf(cap);
    }

  private:
    static unsigned
    classOf(std::uint32_t cap)
    {
        unsigned cls = 0;
        while ((kMinBlock << cls) < cap)
            ++cls;
        WORMNET_ASSERT(cls < kClasses);
        return cls;
    }

    std::vector<std::unique_ptr<PathLink[]>> chunks_;
    std::uint32_t used_ = kChunkLinks; ///< forces a chunk on 1st alloc
    std::vector<PathLink *> free_[kClasses];
};

/**
 * A message and its simulation state. The occupied-VC chain (tail end
 * first) enables regressive recovery and the ground-truth oracle to
 * walk the worm without scanning the whole network.
 *
 * The chain lives in a PathSlab block; the owning MessageStore binds
 * its slab at creation (and on checkpoint load), so standalone
 * Message values must be obtained through a MessageStore before
 * pushLink() may be used.
 */
struct Message
{
    MsgId id = kInvalidMsg;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    unsigned length = 0; ///< flits

    Cycle genCycle = kNever;
    Cycle injectStartCycle = kNever; ///< head flit entered injection VC
    Cycle lastInjectCycle = kNever;  ///< newest flit entered injection VC
    Cycle deliverCycle = kNever;

    MsgStatus status = MsgStatus::Queued;
    unsigned flitsInjected = 0; ///< pushed into the injection VC
    unsigned flitsEjected = 0;  ///< consumed at dst or recovery buffer

    /** Generated inside the measurement window (not warm-up). */
    bool measured = false;

    /** Times this message was marked deadlocked (can exceed 1 after
     *  regressive re-injection). */
    unsigned timesDetected = 0;
    /** Times killed and re-injected by regressive recovery. */
    unsigned retries = 0;
    /** Delivered through the recovery path rather than the network. */
    bool recovered = false;

    /** Already sitting in the Network's fault-kill queue this cycle
     *  (keeps worms hit at several points from queueing twice). */
    bool faultKillQueued = false;

    /** @name Occupied-VC chain (front = closest to the source). */
    /// @{
    void
    pushLink(NodeId node, PortId port, VcId vc)
    {
        WORMNET_ASSERT(slab_ != nullptr);
        if (count_ == cap_)
            growPath();
        path_[count_++] = PathLink{node, port, vc};
    }

    void
    popFrontLink()
    {
        WORMNET_ASSERT(front_ < count_);
        ++front_;
        if (front_ == count_)
            clearLinks(); // worm fully left: recycle the block now
    }

    std::size_t numLinks() const { return count_ - front_; }

    /** i-th held VC from the tail end (0 = oldest still held). */
    const PathLink &
    link(std::size_t i) const
    {
        WORMNET_ASSERT(front_ + i < count_);
        return path_[front_ + i];
    }

    /** Newest held VC — where the head flit was last enqueued. */
    const PathLink &
    headLink() const
    {
        WORMNET_ASSERT(numLinks() > 0);
        return path_[count_ - 1];
    }

    /** Drop the chain and return its block to the slab. */
    void
    clearLinks()
    {
        if (path_ != nullptr) {
            slab_->release(path_, cap_);
            path_ = nullptr;
        }
        cap_ = 0;
        front_ = 0;
        count_ = 0;
    }
    /// @}

    /** Bound by the owning MessageStore. */
    void bindSlab(PathSlab *slab) { slab_ = slab; }

    /**
     * Checkpoint support. Only the logically held links (from the
     * current front) are written, so a restored message is normalised
     * to front_ == 0; pop order is unaffected.
     */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u32(id);
        s.u32(src);
        s.u32(dst);
        s.u32(length);
        s.u64(genCycle);
        s.u64(injectStartCycle);
        s.u64(lastInjectCycle);
        s.u64(deliverCycle);
        s.u8(static_cast<std::uint8_t>(status));
        s.u32(flitsInjected);
        s.u32(flitsEjected);
        s.boolean(measured);
        s.u32(timesDetected);
        s.u32(retries);
        s.boolean(recovered);
        s.boolean(faultKillQueued);
        s.u32(static_cast<std::uint32_t>(numLinks()));
        for (std::size_t i = 0; i < numLinks(); ++i) {
            const PathLink &l = link(i);
            s.u32(l.node);
            s.u16(l.port);
            s.u8(l.vc);
        }
    }

    template <typename D>
    void
    loadState(D &d)
    {
        id = d.u32();
        src = d.u32();
        dst = d.u32();
        length = d.u32();
        genCycle = d.u64();
        injectStartCycle = d.u64();
        lastInjectCycle = d.u64();
        deliverCycle = d.u64();
        status = static_cast<MsgStatus>(d.u8());
        flitsInjected = d.u32();
        flitsEjected = d.u32();
        measured = d.boolean();
        timesDetected = d.u32();
        retries = d.u32();
        recovered = d.boolean();
        faultKillQueued = d.boolean();
        // The store wiped the slab before loading: the stale block
        // pointer must not be released back.
        path_ = nullptr;
        cap_ = 0;
        front_ = 0;
        count_ = 0;
        const std::uint32_t n = d.u32();
        for (std::uint32_t i = 0; i < n; ++i) {
            const NodeId node = d.u32();
            const PortId port = d.u16();
            const VcId vc = d.u8();
            pushLink(node, port, vc);
        }
    }

  private:
    void
    growPath()
    {
        const std::uint32_t newCap =
            cap_ == 0 ? PathSlab::kMinBlock
                      : PathSlab::blockCap(cap_ + 1);
        PathLink *p = slab_->alloc(newCap);
        const std::uint32_t live = count_ - front_;
        if (live > 0)
            std::memcpy(p, path_ + front_,
                        live * sizeof(PathLink));
        if (path_ != nullptr)
            slab_->release(path_, cap_);
        path_ = p;
        cap_ = newCap;
        front_ = 0;
        count_ = live;
    }

    PathSlab *slab_ = nullptr;
    PathLink *path_ = nullptr;
    std::uint32_t cap_ = 0;
    std::uint32_t front_ = 0;
    std::uint32_t count_ = 0;
};

/** Dense store of all messages ever generated in a simulation. */
class MessageStore
{
  public:
    /** Create a new message; returns its id. */
    MsgId
    create(NodeId src, NodeId dst, unsigned length, Cycle now,
           bool measured)
    {
        const MsgId id = static_cast<MsgId>(messages_.size());
        Message m;
        m.bindSlab(&slab_);
        m.id = id;
        m.src = src;
        m.dst = dst;
        m.length = length;
        m.genCycle = now;
        m.measured = measured;
        messages_.push_back(std::move(m));
        return id;
    }

    Message &
    get(MsgId id)
    {
        WORMNET_ASSERT(id < messages_.size());
        return messages_[id];
    }

    const Message &
    get(MsgId id) const
    {
        WORMNET_ASSERT(id < messages_.size());
        return messages_[id];
    }

    std::size_t size() const { return messages_.size(); }

    /** Path-slab footprint in links (peak worm-path memory). */
    std::size_t pathSlabLinks() const { return slab_.capacityLinks(); }

    /** Checkpoint support: the whole population, ids implicit. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(static_cast<std::uint64_t>(messages_.size()));
        for (const Message &m : messages_)
            m.saveState(s);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        slab_.clear();
        messages_.assign(d.u64(), Message{});
        for (Message &m : messages_) {
            m.bindSlab(&slab_);
            m.loadState(d);
        }
    }

  private:
    std::vector<Message> messages_;
    PathSlab slab_;
};

} // namespace wormnet

#endif // WORMNET_ROUTER_MESSAGE_HH
