/**
 * @file
 * Router state container.
 *
 * A Router owns the input-side virtual-channel buffers, the
 * output-side allocation/credit records and the link wiring, matching
 * the paper's router model: a physical channel per network direction
 * split into V virtual channels with private flit buffers, a crossbar
 * that moves at most one flit per output physical channel per cycle,
 * and multi-port injection/ejection ("four-port architecture").
 *
 * The per-cycle algorithms (routing, switch allocation, credit return)
 * live in sim/Network; the Router provides the state plus small
 * invariant-preserving helpers so those algorithms stay readable.
 */

#ifndef WORMNET_ROUTER_ROUTER_HH
#define WORMNET_ROUTER_ROUTER_HH

#include <vector>

#include "common/types.hh"
#include "common/contracts.hh"
#include "router/channel.hh"

namespace wormnet
{

/** Static shape of every router in a network. */
struct RouterParams
{
    unsigned netPorts = 6;  ///< network in/out ports (2 per dim)
    unsigned injPorts = 4;  ///< injection (input) ports
    unsigned ejePorts = 4;  ///< ejection (output) ports
    unsigned vcs = 3;       ///< virtual channels per physical channel
    unsigned bufDepth = 4;  ///< flit buffer depth per virtual channel

    unsigned numInPorts() const { return netPorts + injPorts; }
    unsigned numOutPorts() const { return netPorts + ejePorts; }
};

/** Remote endpoint of a link (invalid for injection/ejection). */
struct LinkEnd
{
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;

    bool valid() const { return node != kInvalidNode; }
};

/**
 * One router's complete state.
 *
 * Since the struct-of-arrays layout change the VC records of every
 * router in a network live in the Network's global VcStore arrays
 * (vc_state.hh); a network-owned Router is a thin view over its
 * node-sized slice, so detectors, recovery managers, the oracle and
 * checkpoint code keep programming against the same API while the
 * per-cycle sweeps walk dense contiguous memory. A Router constructed
 * standalone (unit tests, tools) owns private backing vectors with
 * identical semantics.
 */
class Router
{
  public:
    /** Standalone router owning its VC storage. */
    Router(NodeId node, const RouterParams &params);

    /** View over externally owned VC arrays (VcStore slices); @p in
     *  and @p out must stay valid for the router's lifetime. */
    Router(NodeId node, const RouterParams &params, InputVc *in,
           OutputVc *out);

    NodeId nodeId() const { return node_; }
    const RouterParams &params() const { return params_; }

    unsigned numInPorts() const { return params_.numInPorts(); }
    unsigned numOutPorts() const { return params_.numOutPorts(); }
    unsigned numVcs() const { return params_.vcs; }

    /** Input ports >= netPorts are injection ports. */
    bool
    isInjectionPort(PortId in_port) const
    {
        return in_port >= params_.netPorts;
    }

    /** Output ports >= netPorts are ejection ports. */
    bool
    isEjectionPort(PortId out_port) const
    {
        return out_port >= params_.netPorts;
    }

    InputVc &
    inputVc(PortId port, VcId vc)
    {
        WORMNET_ASSERT(port < numInPorts() && vc < params_.vcs);
        return in_[port * params_.vcs + vc];
    }

    const InputVc &
    inputVc(PortId port, VcId vc) const
    {
        WORMNET_ASSERT(port < numInPorts() && vc < params_.vcs);
        return in_[port * params_.vcs + vc];
    }

    OutputVc &
    outputVc(PortId port, VcId vc)
    {
        WORMNET_ASSERT(port < numOutPorts() && vc < params_.vcs);
        return out_[port * params_.vcs + vc];
    }

    const OutputVc &
    outputVc(PortId port, VcId vc) const
    {
        WORMNET_ASSERT(port < numOutPorts() && vc < params_.vcs);
        return out_[port * params_.vcs + vc];
    }

    /** @name Raw slice access (hot-path sweeps in sim/Network). */
    /// @{
    InputVc *inputVcs() { return in_; }
    const InputVc *inputVcs() const { return in_; }
    OutputVc *outputVcs() { return out_; }
    const OutputVc *outputVcs() const { return out_; }
    /// @}

    /** All virtual channels of input physical channel @p port busy? */
    bool inputPcFullyBusy(PortId port) const;

    /** Any output VC of @p port currently allocated to a worm? */
    bool outputPcOccupied(PortId port) const;

    /** Count of allocated output VCs on *network* ports (used by the
     *  injection-limitation mechanism). */
    unsigned busyNetworkOutputVcs() const;

    /** @name Link wiring, set once by the Network. */
    /// @{
    LinkEnd &downstream(PortId out_port) { return down_[out_port]; }
    const LinkEnd &
    downstream(PortId out_port) const
    {
        return down_[out_port];
    }

    LinkEnd &upstream(PortId in_port) { return up_[in_port]; }
    const LinkEnd &
    upstream(PortId in_port) const
    {
        return up_[in_port];
    }
    /// @}

    /** @name Per-output-port dynamic state. */
    /// @{
    Cycle lastTx(PortId out_port) const { return lastTx_[out_port]; }
    void
    noteTx(PortId out_port, Cycle now)
    {
        lastTx_[out_port] = now;
    }
    /// @}

    /** @name Arbitration state (round-robin pointers). */
    /// @{
    /** Per-output-port pointer for switch allocation fairness. */
    std::vector<unsigned> saRoundRobin;
    /** Per-injection-port pointer for VC refill fairness. */
    std::vector<unsigned> injRoundRobin;
    /// @}

    /**
     * Checkpoint support: dynamic state only. Link wiring (down_/up_)
     * is topology-derived and rebuilt by the Network constructor.
     */
    template <typename S>
    void
    saveState(S &s) const
    {
        const unsigned ins = numInPorts() * params_.vcs;
        const unsigned outs = numOutPorts() * params_.vcs;
        for (unsigned i = 0; i < ins; ++i)
            in_[i].saveState(s);
        for (unsigned i = 0; i < outs; ++i)
            out_[i].saveState(s);
        for (const Cycle c : lastTx_)
            s.u64(c);
        for (const unsigned r : saRoundRobin)
            s.u32(r);
        for (const unsigned r : injRoundRobin)
            s.u32(r);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        const unsigned ins = numInPorts() * params_.vcs;
        const unsigned outs = numOutPorts() * params_.vcs;
        for (unsigned i = 0; i < ins; ++i)
            in_[i].loadState(d);
        for (unsigned i = 0; i < outs; ++i)
            out_[i].loadState(d);
        for (Cycle &c : lastTx_)
            c = d.u64();
        for (unsigned &r : saRoundRobin)
            r = d.u32();
        for (unsigned &r : injRoundRobin)
            r = d.u32();
    }

  private:
    /** Shared post-construction wiring (link ends, arbitration). */
    void initCommon();

    NodeId node_;
    RouterParams params_;
    /** Views into the backing VC arrays: a VcStore slice for
     *  network-owned routers, ownIn_/ownOut_ for standalone ones. */
    InputVc *in_ = nullptr;
    OutputVc *out_ = nullptr;
    std::vector<InputVc> ownIn_;
    std::vector<OutputVc> ownOut_;
    std::vector<LinkEnd> down_;
    std::vector<LinkEnd> up_;
    std::vector<Cycle> lastTx_;
};

} // namespace wormnet

#endif // WORMNET_ROUTER_ROUTER_HH
