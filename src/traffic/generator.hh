/**
 * @file
 * Per-node message generation process.
 *
 * Injection load is specified, as in the paper, in flits/cycle/node.
 * Each node runs an independent Bernoulli process: every cycle it
 * generates a message with probability rate / E[length], so that the
 * offered load in flits matches the requested rate. Destinations and
 * lengths are drawn from the configured pattern and distribution.
 */

#ifndef WORMNET_TRAFFIC_GENERATOR_HH
#define WORMNET_TRAFFIC_GENERATOR_HH

#include <memory>
#include <optional>

#include "common/rng.hh"
#include "common/types.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

namespace wormnet
{

/** Descriptor of a freshly generated message. */
struct GeneratedMessage
{
    NodeId dst;
    unsigned length;
};

/**
 * One node's traffic source. Owns its private Rng stream so node
 * behaviour is independent of evaluation order.
 */
class NodeGenerator
{
  public:
    /**
     * @param node this node's id
     * @param pattern shared destination pattern (not owned)
     * @param lengths shared length distribution (not owned)
     * @param flit_rate offered load in flits/cycle/node (>= 0)
     * @param rng private random stream (by value)
     */
    NodeGenerator(NodeId node, TrafficPattern &pattern,
                  LengthDistribution &lengths, double flit_rate,
                  Rng rng);

    /**
     * Advance one cycle; returns a message descriptor if one was
     * generated. Self-addressed draws (possible under bit-permutation
     * patterns) are discarded and counted, not injected.
     */
    std::optional<GeneratedMessage> tick();

    /** Messages whose drawn destination equalled the source. */
    std::uint64_t selfDrops() const { return selfDrops_; }

    double flitRate() const { return flitRate_; }

    /** Change the offered load (used by saturation sweeps). */
    void setFlitRate(double flit_rate);

    /** Checkpoint support: the Rng stream, drop counter and current
     *  rate. The derived probability is recomputed on load. */
    template <typename S>
    void
    saveState(S &s) const
    {
        rng_.saveState(s);
        s.u64(selfDrops_);
        s.f64(flitRate_);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        rng_.loadState(d);
        selfDrops_ = d.u64();
        setFlitRate(d.f64());
    }

  private:
    NodeId node_;
    TrafficPattern &pattern_;
    LengthDistribution &lengths_;
    double flitRate_;
    double msgProbability_;
    Rng rng_;
    std::uint64_t selfDrops_ = 0;
};

} // namespace wormnet

#endif // WORMNET_TRAFFIC_GENERATOR_HH
