/**
 * @file
 * Message length (flit count) distributions.
 *
 * The paper's workloads: 16-flit messages ("s"), 64-flit ("l"),
 * 256-flit ("L"), and a hybrid "sl" mix of 60% 16-flit and 40% 64-flit
 * messages. The Mix distribution expresses all of these; a uniform
 * range distribution is provided as a library extra.
 */

#ifndef WORMNET_TRAFFIC_LENGTH_HH
#define WORMNET_TRAFFIC_LENGTH_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace wormnet
{

/** Draws message lengths in flits. */
class LengthDistribution
{
  public:
    virtual ~LengthDistribution() = default;

    /** Draw one message length (>= 1 flit). */
    virtual unsigned draw(Rng &rng) = 0;

    /** Expected length, used to convert flit rates to message rates. */
    virtual double mean() const = 0;

    /** Largest length this distribution can produce. */
    virtual unsigned maxLength() const = 0;

    virtual std::string name() const = 0;
};

/** Every message has the same length. */
class FixedLength : public LengthDistribution
{
  public:
    explicit FixedLength(unsigned flits);
    unsigned draw(Rng &rng) override;
    double mean() const override { return flits_; }
    unsigned maxLength() const override { return flits_; }
    std::string name() const override;

  private:
    unsigned flits_;
};

/** Weighted mixture of fixed lengths. */
class MixLength : public LengthDistribution
{
  public:
    struct Component
    {
        unsigned flits;
        double weight;
    };

    explicit MixLength(std::vector<Component> components);
    unsigned draw(Rng &rng) override;
    double mean() const override { return mean_; }
    unsigned maxLength() const override { return max_; }
    std::string name() const override;

  private:
    std::vector<Component> components_; // weights normalised
    double mean_;
    unsigned max_;
};

/** Uniform over [lo, hi] flits. */
class UniformLength : public LengthDistribution
{
  public:
    UniformLength(unsigned lo, unsigned hi);
    unsigned draw(Rng &rng) override;
    double mean() const override { return 0.5 * (lo_ + hi_); }
    unsigned maxLength() const override { return hi_; }
    std::string name() const override;

  private:
    unsigned lo_;
    unsigned hi_;
};

/**
 * Build a length distribution from a spec string:
 *   "s" (16) | "l" (64) | "L" (256) | "sl" (60% 16 + 40% 64) |
 *   "<n>" (fixed n flits) |
 *   "mix:<n1>x<w1>,<n2>x<w2>,..." | "uniform:<lo>:<hi>"
 */
std::unique_ptr<LengthDistribution>
makeLengthDistribution(const std::string &spec);

} // namespace wormnet

#endif // WORMNET_TRAFFIC_LENGTH_HH
