#include "traffic/generator.hh"

#include "common/log.hh"

namespace wormnet
{

NodeGenerator::NodeGenerator(NodeId node, TrafficPattern &pattern,
                             LengthDistribution &lengths,
                             double flit_rate, Rng rng)
    : node_(node), pattern_(pattern), lengths_(lengths),
      flitRate_(0.0), msgProbability_(0.0), rng_(rng)
{
    setFlitRate(flit_rate);
}

void
NodeGenerator::setFlitRate(double flit_rate)
{
    if (flit_rate < 0.0)
        fatal("flit rate must be >= 0, got ", flit_rate);
    flitRate_ = flit_rate;
    msgProbability_ = flit_rate / lengths_.mean();
    if (msgProbability_ > 1.0)
        fatal("flit rate ", flit_rate, " with mean length ",
              lengths_.mean(),
              " needs more than one message per cycle per node");
}

std::optional<GeneratedMessage>
NodeGenerator::tick()
{
    if (!rng_.nextBool(msgProbability_))
        return std::nullopt;
    const NodeId dst = pattern_.destination(node_, rng_);
    if (dst == node_) {
        ++selfDrops_;
        return std::nullopt;
    }
    return GeneratedMessage{dst, lengths_.draw(rng_)};
}

} // namespace wormnet
