#include "traffic/length.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace wormnet
{

FixedLength::FixedLength(unsigned flits) : flits_(flits)
{
    if (flits < 1)
        fatal("message length must be >= 1 flit");
}

unsigned
FixedLength::draw(Rng &)
{
    return flits_;
}

std::string
FixedLength::name() const
{
    std::ostringstream os;
    os << "fixed(" << flits_ << ")";
    return os.str();
}

MixLength::MixLength(std::vector<Component> components)
    : components_(std::move(components))
{
    if (components_.empty())
        fatal("length mix needs at least one component");
    double total = 0.0;
    max_ = 0;
    for (const auto &c : components_) {
        if (c.flits < 1)
            fatal("length mix component must be >= 1 flit");
        if (c.weight <= 0.0)
            fatal("length mix weights must be positive");
        total += c.weight;
        max_ = std::max(max_, c.flits);
    }
    mean_ = 0.0;
    for (auto &c : components_) {
        c.weight /= total;
        mean_ += c.weight * c.flits;
    }
}

unsigned
MixLength::draw(Rng &rng)
{
    double u = rng.nextDouble();
    for (const auto &c : components_) {
        if (u < c.weight)
            return c.flits;
        u -= c.weight;
    }
    return components_.back().flits; // numeric slack
}

std::string
MixLength::name() const
{
    std::ostringstream os;
    os << "mix(";
    for (std::size_t i = 0; i < components_.size(); ++i) {
        if (i)
            os << ", ";
        os << components_[i].flits << "x" << components_[i].weight;
    }
    os << ")";
    return os.str();
}

UniformLength::UniformLength(unsigned lo, unsigned hi)
    : lo_(lo), hi_(hi)
{
    if (lo < 1 || hi < lo)
        fatal("uniform length range [", lo, ", ", hi, "] is invalid");
}

unsigned
UniformLength::draw(Rng &rng)
{
    return lo_ + static_cast<unsigned>(rng.nextBounded(hi_ - lo_ + 1));
}

std::string
UniformLength::name() const
{
    std::ostringstream os;
    os << "uniform(" << lo_ << ".." << hi_ << ")";
    return os.str();
}

std::unique_ptr<LengthDistribution>
makeLengthDistribution(const std::string &spec)
{
    if (spec == "s")
        return std::make_unique<FixedLength>(16);
    if (spec == "l")
        return std::make_unique<FixedLength>(64);
    if (spec == "L")
        return std::make_unique<FixedLength>(256);
    if (spec == "sl") {
        return std::make_unique<MixLength>(std::vector<MixLength::Component>{
            {16, 0.6}, {64, 0.4}});
    }
    if (spec.rfind("mix:", 0) == 0) {
        std::vector<MixLength::Component> comps;
        std::stringstream ss(spec.substr(4));
        std::string item;
        while (std::getline(ss, item, ',')) {
            const auto x = item.find('x');
            if (x == std::string::npos)
                fatal("bad mix component '", item,
                      "', want <flits>x<weight>");
            comps.push_back(
                {static_cast<unsigned>(std::stoul(item.substr(0, x))),
                 std::stod(item.substr(x + 1))});
        }
        return std::make_unique<MixLength>(std::move(comps));
    }
    if (spec.rfind("uniform:", 0) == 0) {
        std::stringstream ss(spec.substr(8));
        std::string lo, hi;
        if (!std::getline(ss, lo, ':') || !std::getline(ss, hi, ':'))
            fatal("bad uniform length spec '", spec, "'");
        return std::make_unique<UniformLength>(
            static_cast<unsigned>(std::stoul(lo)),
            static_cast<unsigned>(std::stoul(hi)));
    }
    // Bare integer: fixed length.
    char *end = nullptr;
    const unsigned long v = std::strtoul(spec.c_str(), &end, 10);
    if (end != spec.c_str() && *end == '\0' && v >= 1)
        return std::make_unique<FixedLength>(static_cast<unsigned>(v));
    fatal("unknown length distribution '", spec, "'");
}

} // namespace wormnet
