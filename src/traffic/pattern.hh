/**
 * @file
 * Message destination patterns.
 *
 * The paper evaluates six distributions: uniform, uniform with
 * locality, bit-reversal, perfect-shuffle, butterfly, and a hot-spot
 * pattern (uniform modified so 5% of messages target one node). All
 * are implemented here behind a single interface, plus a few common
 * extras (transpose, tornado, nearest-neighbour) that round out the
 * library for general NoC experimentation.
 *
 * Bit-permutation patterns (bit-reversal, perfect-shuffle, butterfly,
 * transpose) operate on the binary representation of the node id and
 * require the node count to be a power of two (the paper's 512-node
 * 8-ary 3-cube satisfies this).
 */

#ifndef WORMNET_TRAFFIC_PATTERN_HH
#define WORMNET_TRAFFIC_PATTERN_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** Maps a source node to a destination node, possibly at random. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /**
     * Destination for a message generated at @p src. May consume
     * randomness. Self-addressed results are allowed only if the
     * pattern is inherently self-mapping for that source (e.g.
     * bit-reversal of a palindromic id); such messages are dropped by
     * the generator rather than injected.
     */
    virtual NodeId destination(NodeId src, Rng &rng) = 0;

    /** Pattern name for reports. */
    virtual std::string name() const = 0;
};

/** Uniform over all nodes except the source. */
class UniformPattern : public TrafficPattern
{
  public:
    explicit UniformPattern(const Topology &topo);
    NodeId destination(NodeId src, Rng &rng) override;
    std::string name() const override { return "uniform"; }

  private:
    NodeId numNodes_;
};

/**
 * Uniform with locality: destination drawn uniformly from the nodes
 * within Manhattan distance <= radius of the source (excluding the
 * source itself). The paper does not pin down its locality model; this
 * bounded-ball definition is the common choice in the k-ary n-cube
 * literature and yields the expected much-higher saturation rates.
 */
class LocalityPattern : public TrafficPattern
{
  public:
    /**
     * @param topo topology (used for coordinate arithmetic)
     * @param radius maximum Manhattan distance of destinations (>= 1)
     */
    LocalityPattern(const Topology &topo, unsigned radius);
    NodeId destination(NodeId src, Rng &rng) override;
    std::string name() const override;

  private:
    const Topology &topo_;
    unsigned radius_;
    /** All non-zero coordinate offsets with L1 norm <= radius. */
    std::vector<std::vector<int>> offsets_;
};

/** Base for patterns permuting the bits of the node id. */
class BitPermutationPattern : public TrafficPattern
{
  public:
    explicit BitPermutationPattern(const Topology &topo);
    NodeId destination(NodeId src, Rng &rng) final;

  protected:
    /** The permutation on @p bits_-wide ids. */
    virtual NodeId permute(NodeId src) const = 0;

    unsigned bits_;
};

/** dst = bit-reverse(src). */
class BitReversalPattern : public BitPermutationPattern
{
  public:
    using BitPermutationPattern::BitPermutationPattern;
    std::string name() const override { return "bit-reversal"; }

  protected:
    NodeId permute(NodeId src) const override;
};

/** dst = rotate-left-1(src) (perfect shuffle). */
class PerfectShufflePattern : public BitPermutationPattern
{
  public:
    using BitPermutationPattern::BitPermutationPattern;
    std::string name() const override { return "perfect-shuffle"; }

  protected:
    NodeId permute(NodeId src) const override;
};

/** dst = src with the most and least significant bits swapped. */
class ButterflyPattern : public BitPermutationPattern
{
  public:
    using BitPermutationPattern::BitPermutationPattern;
    std::string name() const override { return "butterfly"; }

  protected:
    NodeId permute(NodeId src) const override;
};

/** dst = src with the top and bottom halves of its bits swapped. */
class TransposePattern : public BitPermutationPattern
{
  public:
    using BitPermutationPattern::BitPermutationPattern;
    std::string name() const override { return "transpose"; }

  protected:
    NodeId permute(NodeId src) const override;
};

/**
 * Hot-spot: with probability @p hotFraction the destination is a fixed
 * hot node; otherwise it is delegated to a base pattern. The paper uses
 * hotFraction = 0.05 over uniform.
 */
class HotSpotPattern : public TrafficPattern
{
  public:
    HotSpotPattern(std::unique_ptr<TrafficPattern> base,
                   NodeId hot_node, double hot_fraction);
    NodeId destination(NodeId src, Rng &rng) override;
    std::string name() const override;

    NodeId hotNode() const { return hotNode_; }

  private:
    std::unique_ptr<TrafficPattern> base_;
    NodeId hotNode_;
    double hotFraction_;
};

/**
 * Tornado: dst = src shifted by floor((k-1)/2) in every dimension —
 * the classic adversarial torus pattern (library extra).
 */
class TornadoPattern : public TrafficPattern
{
  public:
    explicit TornadoPattern(const Topology &topo);
    NodeId destination(NodeId src, Rng &rng) override;
    std::string name() const override { return "tornado"; }

  private:
    const Topology &topo_;
};

/**
 * Build a pattern from a spec string:
 *   "uniform" | "locality[:radius]" | "bitrev" | "shuffle" |
 *   "butterfly" | "transpose" | "tornado" |
 *   "hotspot[:fraction[:node]]"
 * fatal() on unknown specs.
 */
std::unique_ptr<TrafficPattern>
makePattern(const std::string &spec, const Topology &topo);

} // namespace wormnet

#endif // WORMNET_TRAFFIC_PATTERN_HH
