#include "traffic/pattern.hh"

#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

namespace
{

/** log2 of a power of two; fatal() if not a power of two. */
unsigned
exactLog2(NodeId n, const char *what)
{
    unsigned bits = 0;
    NodeId v = n;
    while (v > 1) {
        v >>= 1;
        ++bits;
    }
    if ((NodeId(1) << bits) != n)
        fatal(what, " requires a power-of-two node count, got ", n);
    return bits;
}

/** Recursively enumerate offsets with L1 norm <= budget. */
void
enumerateOffsets(unsigned dims, unsigned dim, int budget,
                 std::vector<int> &current,
                 std::vector<std::vector<int>> &out)
{
    if (dim == dims) {
        for (const int c : current) {
            if (c != 0) {
                out.push_back(current);
                return;
            }
        }
        return; // all-zero offset: excluded (would be self-traffic)
    }
    for (int v = -budget; v <= budget; ++v) {
        current[dim] = v;
        enumerateOffsets(dims, dim + 1, budget - std::abs(v), current,
                         out);
    }
    current[dim] = 0;
}

} // namespace

UniformPattern::UniformPattern(const Topology &topo)
    : numNodes_(topo.numNodes())
{
    if (numNodes_ < 2)
        fatal("uniform pattern needs at least 2 nodes");
}

NodeId
UniformPattern::destination(NodeId src, Rng &rng)
{
    // Uniform over the other numNodes-1 nodes.
    NodeId dst = static_cast<NodeId>(rng.nextBounded(numNodes_ - 1));
    if (dst >= src)
        ++dst;
    return dst;
}

LocalityPattern::LocalityPattern(const Topology &topo, unsigned radius)
    : topo_(topo), radius_(radius)
{
    if (radius < 1)
        fatal("locality pattern: radius must be >= 1");
    // Keep offsets unambiguous on the torus: the ball must not wrap
    // onto itself in any dimension.
    for (unsigned d = 0; d < topo.numDims(); ++d) {
        if (2 * radius >= topo.radixOf(d))
            fatal("locality pattern: radius ", radius,
                  " too large for radix ", topo.radixOf(d),
                  " in dimension ", d);
    }
    std::vector<int> current(topo.numDims(), 0);
    enumerateOffsets(topo.numDims(), 0, static_cast<int>(radius),
                     current, offsets_);
    WORMNET_ASSERT(!offsets_.empty());
}

NodeId
LocalityPattern::destination(NodeId src, Rng &rng)
{
    const auto &off = offsets_[rng.nextBounded(offsets_.size())];
    NodeId dst = src;
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        const int steps = off[d];
        for (int i = 0; i < std::abs(steps); ++i)
            dst = topo_.neighbor(dst, d, steps > 0);
    }
    return dst;
}

std::string
LocalityPattern::name() const
{
    std::ostringstream os;
    os << "locality(r=" << radius_ << ")";
    return os.str();
}

BitPermutationPattern::BitPermutationPattern(const Topology &topo)
    : bits_(exactLog2(topo.numNodes(), "bit-permutation pattern"))
{
}

NodeId
BitPermutationPattern::destination(NodeId src, Rng &)
{
    return permute(src);
}

NodeId
BitReversalPattern::permute(NodeId src) const
{
    NodeId out = 0;
    for (unsigned b = 0; b < bits_; ++b)
        if (src & (NodeId(1) << b))
            out |= NodeId(1) << (bits_ - 1 - b);
    return out;
}

NodeId
PerfectShufflePattern::permute(NodeId src) const
{
    const NodeId msb = (src >> (bits_ - 1)) & 1u;
    return ((src << 1) | msb) & ((NodeId(1) << bits_) - 1);
}

NodeId
ButterflyPattern::permute(NodeId src) const
{
    if (bits_ < 2)
        return src;
    const NodeId lo = src & 1u;
    const NodeId hi = (src >> (bits_ - 1)) & 1u;
    NodeId out = src & ~((NodeId(1) << (bits_ - 1)) | NodeId(1));
    out |= lo << (bits_ - 1);
    out |= hi;
    return out;
}

NodeId
TransposePattern::permute(NodeId src) const
{
    const unsigned half = bits_ / 2;
    const NodeId lo_mask = (NodeId(1) << half) - 1;
    const NodeId lo = src & lo_mask;
    const NodeId hi = src >> (bits_ - half);
    const NodeId mid =
        src & ~((lo_mask << (bits_ - half)) | lo_mask);
    return (lo << (bits_ - half)) | mid | hi;
}

HotSpotPattern::HotSpotPattern(std::unique_ptr<TrafficPattern> base,
                               NodeId hot_node, double hot_fraction)
    : base_(std::move(base)), hotNode_(hot_node),
      hotFraction_(hot_fraction)
{
    WORMNET_ASSERT(base_ != nullptr);
    if (hot_fraction < 0.0 || hot_fraction > 1.0)
        fatal("hotspot fraction must be in [0,1], got ", hot_fraction);
}

NodeId
HotSpotPattern::destination(NodeId src, Rng &rng)
{
    if (src != hotNode_ && rng.nextBool(hotFraction_))
        return hotNode_;
    return base_->destination(src, rng);
}

std::string
HotSpotPattern::name() const
{
    std::ostringstream os;
    os << "hotspot(" << hotFraction_ * 100 << "% -> node " << hotNode_
       << " over " << base_->name() << ")";
    return os.str();
}

TornadoPattern::TornadoPattern(const Topology &topo) : topo_(topo) {}

NodeId
TornadoPattern::destination(NodeId src, Rng &)
{
    NodeId dst = src;
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        const unsigned shift = (topo_.radixOf(d) - 1) / 2;
        for (unsigned i = 0; i < shift; ++i)
            dst = topo_.neighbor(dst, d, true);
    }
    return dst;
}

std::unique_ptr<TrafficPattern>
makePattern(const std::string &spec, const Topology &topo)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ':'))
        parts.push_back(item);
    if (parts.empty())
        fatal("empty traffic pattern spec");

    const std::string &kind = parts[0];
    if (kind == "uniform")
        return std::make_unique<UniformPattern>(topo);
    if (kind == "locality") {
        unsigned radius = 3;
        if (parts.size() > 1)
            radius = static_cast<unsigned>(std::stoul(parts[1]));
        return std::make_unique<LocalityPattern>(topo, radius);
    }
    if (kind == "bitrev")
        return std::make_unique<BitReversalPattern>(topo);
    if (kind == "shuffle")
        return std::make_unique<PerfectShufflePattern>(topo);
    if (kind == "butterfly")
        return std::make_unique<ButterflyPattern>(topo);
    if (kind == "transpose")
        return std::make_unique<TransposePattern>(topo);
    if (kind == "tornado")
        return std::make_unique<TornadoPattern>(topo);
    if (kind == "hotspot") {
        double frac = 0.05;
        NodeId hot = topo.numNodes() / 2;
        if (parts.size() > 1)
            frac = std::stod(parts[1]);
        if (parts.size() > 2)
            hot = static_cast<NodeId>(std::stoul(parts[2]));
        if (hot >= topo.numNodes())
            fatal("hotspot node ", hot, " out of range");
        return std::make_unique<HotSpotPattern>(
            std::make_unique<UniformPattern>(topo), hot, frac);
    }
    fatal("unknown traffic pattern '", spec, "'");
}

} // namespace wormnet
