/**
 * @file
 * Structural invariant checker for the whole network state.
 *
 * validateNetworkInvariants() cross-checks every mutually-referential
 * piece of simulator state at a cycle boundary and panics on the
 * first violation. It is deliberately exhaustive and O(network +
 * messages); tests sprinkle it through randomised runs so that any
 * bookkeeping bug in the kernel (allocation back-pointers, credit
 * accounting, worm chains, flit conservation) fails loudly and close
 * to its cause instead of corrupting statistics silently.
 *
 * Invariants checked:
 *  1. A free input VC has an empty FIFO and no routing decision; an
 *     occupied one holds only flits of its worm.
 *  2. routed input VCs and allocated output VCs point at each other
 *     consistently and agree on the message.
 *  3. Credits equal buffer depth minus downstream occupancy (network
 *     ports) or stay at full depth (ejection ports).
 *  4. An allocated output VC's downstream input VC carries the same
 *     worm, or is still empty (header in flight).
 *  5. Every Active/Recovering message's link chain matches exactly
 *     the set of input VCs claiming it, links are wired head-to-tail
 *     along real links, and its in-network flit count equals
 *     flitsInjected - flitsEjected.
 *  6. Delivered/Queued/Killed messages hold no resources.
 */

#ifndef WORMNET_SIM_VALIDATE_HH
#define WORMNET_SIM_VALIDATE_HH

namespace wormnet
{

class Network;

/** Panic (wn_assert) on the first violated invariant. */
void validateNetworkInvariants(const Network &net);

} // namespace wormnet

#endif // WORMNET_SIM_VALIDATE_HH
