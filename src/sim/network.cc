#include "sim/network.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "fault/fault.hh"
#include "recovery/recovery.hh"
#include "sim/oracle.hh"
#include "sim/reconfig.hh"

namespace wormnet
{

Network::Network(const Topology &topo, const NetworkParams &params,
                 RoutingFunction &routing, DeadlockDetector &detector,
                 RecoveryManager *recovery, TrafficPattern &pattern,
                 LengthDistribution &lengths, double flit_rate,
                 std::uint64_t seed)
    : topo_(topo), params_(params), routing_(&routing),
      detector_(detector), recovery_(recovery), pattern_(pattern),
      lengths_(lengths), rng_(seed)
{
    routerParams_.netPorts = topo.numNetPorts();
    routerParams_.injPorts = params.injPorts;
    routerParams_.ejePorts = params.ejePorts;
    routerParams_.vcs = params.vcs;
    routerParams_.bufDepth = params.bufDepth;

    if (params.injPorts < 1 || params.ejePorts < 1)
        fatal("need at least one injection and one ejection port");
    if (lengths.maxLength() < 1)
        fatal("length distribution produces empty messages");

    const NodeId n = topo.numNodes();
    routers_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        routers_.emplace_back(i, routerParams_);

    // Wire the network links following the port convention.
    for (NodeId i = 0; i < n; ++i) {
        for (unsigned d = 0; d < topo.numDims(); ++d) {
            for (const bool positive : {true, false}) {
                const PortId q = Topology::outPort(d, positive);
                const NodeId peer = topo.neighbor(i, d, positive);
                if (peer == kInvalidNode)
                    continue; // mesh edge
                const PortId peer_in = Topology::peerInPort(q);
                routers_[i].downstream(q) = LinkEnd{peer, peer_in};
                routers_[peer].upstream(peer_in) = LinkEnd{i, q};
            }
        }
    }

    sourceQueues_.resize(n);
    generators_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        generators_.emplace_back(i, pattern, lengths, flit_rate,
                                 rng_.split());

    txMask_.assign(n, 0);
    txCount_.assign(std::size_t(n) * routerParams_.numOutPorts(), 0);

    injectionLimitCount_ = static_cast<std::size_t>(
        params.injectionLimitFraction *
        (routerParams_.netPorts * routerParams_.vcs));

    inPorts_ = routerParams_.numInPorts();
    outPorts_ = routerParams_.numOutPorts();
    vcs_ = routerParams_.vcs;
    netPorts_ = routerParams_.netPorts;

    routeActive_.init(n);
    routablePerPort_.assign(std::size_t(n) * inPorts_, 0);
    routablePerNode_.assign(n, 0);
    switchActive_.init(n);
    allocPerPort_.assign(std::size_t(n) * outPorts_, 0);
    allocPerNode_.assign(n, 0);
    allocOutMask_.assign(n, 0);
    netAllocPerNode_.assign(n, 0);
    injActive_.init(n);
    injVcBusy_.assign(n, 0);
    detActive_.init(n);
    detectorIdleStable_ = detector_.idleCycleEndStable();
    detectorWantsCandidates_ = detector_.wantsBlockedCandidates();
    detectorDeadMask_.assign(n, 0);

    // Steady-state churn should never reallocate the per-cycle
    // scratch buffers.
    txNodes_.reserve(n);
    nodeScratch_.reserve(n);
    creditReturns_.reserve(std::size_t(n) * outPorts_);
    faultKillQueue_.reserve(64);
    candScratch_.reserve(outPorts_);
    freeScratch_.reserve(std::size_t(outPorts_) * vcs_);
    blockedCandScratch_.reserve(outPorts_);

    // Full-level contract builds (WORMNET_CONTRACTS=full) run the
    // brute-force active-set cross-check every cycle by default; the
    // WORMNET_CHECK_ACTIVE_SETS environment variable overrides in
    // either direction on any build.
    checkActiveSets_ = WORMNET_INVARIANT_ENABLED;
    if (const char *check = std::getenv("WORMNET_CHECK_ACTIVE_SETS"))
        checkActiveSets_ = std::strcmp(check, "0") != 0;

    DetectorContext ctx;
    ctx.numRouters = n;
    ctx.numInPorts = routerParams_.numInPorts();
    ctx.numOutPorts = routerParams_.numOutPorts();
    ctx.vcs = routerParams_.vcs;
    ctx.topo = &topo_;
    detector_.init(ctx);

    if (recovery_)
        recovery_->init(*this);
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Network::startMeasurement()
{
    measuring_ = true;
    stats_.startWindow(now_);
    std::fill(txCount_.begin(), txCount_.end(), 0);
}

void
Network::setFlitRate(double flit_rate)
{
    for (auto &gen : generators_)
        gen.setFlitRate(flit_rate);
}

MsgId
Network::injectMessage(NodeId src, NodeId dst, unsigned length)
{
    WORMNET_ASSERT(src < numNodes() && dst < numNodes());
    WORMNET_ASSERT(length >= 1);
    const MsgId id =
        messages_.create(src, dst, length, now_, measuring_);
    ++stats_.generated;
    if (measuring_) {
        ++stats_.wGenerated;
        stats_.wGeneratedFlits += length;
    }
    trace(TraceEvent::Generated, id, src);
    pushSource(src, id, false);
    return id;
}

void
Network::syncRoutable(NodeId node, PortId port, VcId vc)
{
    InputVc &ivc = routers_[node].inputVc(port, vc);
    const bool want =
        ivc.msg != kInvalidMsg && !ivc.routed && !ivc.recovering;
    if (want == ivc.inRouteSet)
        return;
    ivc.inRouteSet = want;
    if (want) {
        ++routablePerPort_[std::size_t(node) * inPorts_ + port];
        if (routablePerNode_[node]++ == 0)
            routeActive_.insert(node);
    } else {
        --routablePerPort_[std::size_t(node) * inPorts_ + port];
        if (--routablePerNode_[node] == 0)
            routeActive_.erase(node);
    }
}

void
Network::syncInjActive(NodeId node)
{
    if (!sourceQueues_[node].empty() || injVcBusy_[node] > 0)
        injActive_.insert(node);
    else
        injActive_.erase(node);
}

void
Network::allocOutputVc(NodeId node, PortId port, VcId vc, MsgId msg,
                       PortId src_port, VcId src_vc)
{
    OutputVc &out = routers_[node].outputVc(port, vc);
    WORMNET_ASSERT(!out.allocated);
    out.allocated = true;
    out.msg = msg;
    out.srcPort = src_port;
    out.srcVc = src_vc;
    if (allocPerPort_[std::size_t(node) * outPorts_ + port]++ == 0)
        allocOutMask_[node] |= PortMask(1) << port;
    if (allocPerNode_[node]++ == 0)
        switchActive_.insert(node);
    if (port < netPorts_)
        ++netAllocPerNode_[node];
    detActive_.insert(node);
}

void
Network::releaseOutputVc(NodeId node, PortId port, VcId vc)
{
    OutputVc &out = routers_[node].outputVc(port, vc);
    WORMNET_ASSERT(out.allocated);
    out.release();
    if (--allocPerPort_[std::size_t(node) * outPorts_ + port] == 0)
        allocOutMask_[node] &= ~(PortMask(1) << port);
    if (--allocPerNode_[node] == 0)
        switchActive_.erase(node);
    if (port < netPorts_)
        --netAllocPerNode_[node];
}

void
Network::releaseInputVc(NodeId node, PortId port, VcId vc)
{
    routers_[node].inputVc(port, vc).release();
    syncRoutable(node, port, vc);
    if (port >= netPorts_) {
        --injVcBusy_[node];
        syncInjActive(node);
    }
    detector_.onInputVcFreed(node, port, vc);
}

void
Network::queueFaultKill(MsgId msg)
{
    Message &m = messages_.get(msg);
    if (m.faultKillQueued)
        return; // worm hit at several points in the same sweep
    m.faultKillQueued = true;
    faultKillQueue_.push_back(msg);
}

void
Network::pushSource(NodeId node, MsgId msg, bool at_front)
{
    if (at_front)
        sourceQueues_[node].push_front(msg);
    else
        sourceQueues_[node].push_back(msg);
    ++totalQueuedCount_;
    injActive_.insert(node);
}

MsgId
Network::popSource(NodeId node)
{
    const MsgId msg = sourceQueues_[node].front();
    sourceQueues_[node].pop_front();
    --totalQueuedCount_;
    syncInjActive(node);
    return msg;
}

void
Network::attachFaultModel(FaultModel *faults)
{
    faults_ = faults;
    if (faults_)
        faults_->init(topo_, routerParams_, rng_.split().next());
}

void
Network::attachReconfig(ReconfigManager *reconfig)
{
    reconfig_ = reconfig;
    if (reconfig_)
        reconfig_->bind(*this);
}

void
Network::setRoutingFunction(RoutingFunction &routing)
{
    routing_ = &routing;
}

void
Network::resetBlockedHeads()
{
    nodeScratch_.clear();
    routeActive_.appendTo(nodeScratch_);
    for (const NodeId node : nodeScratch_) {
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            if (routablePerPort_[std::size_t(node) * inPorts_ + p] ==
                0)
                continue;
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                if (vc.free() || vc.routed || vc.recovering)
                    continue;
                // The next routing failure becomes a fresh first
                // attempt under the new relation, re-seeding the
                // detector's G/P (or blocked-since) state soundly.
                vc.attempted = false;
                vc.lastFeasible = 0;
                vc.headBlockedSince = kNever;
            }
        }
    }
    detector_.onRoutingChanged();
}

PortMask
Network::deadOutMask(NodeId node) const
{
    PortMask m = faults_ ? faults_->faultyOutMask(node) : 0;
    if (reconfig_)
        m |= reconfig_->adminDownMask(node);
    return m;
}

bool
Network::nodeOffline(NodeId node) const
{
    return (faults_ && faults_->routerFaulty(node)) ||
           (reconfig_ && reconfig_->drained(node));
}

void
Network::applyDeadPortChanges()
{
    for (NodeId node = 0; node < numNodes(); ++node) {
        const PortMask cur = deadOutMask(node);
        PortMask diff = cur ^ detectorDeadMask_[node];
        if (diff == 0)
            continue;
        while (diff) {
            const PortId q =
                static_cast<PortId>(__builtin_ctz(diff));
            diff &= diff - 1;
            detector_.onPortFaultChanged(node, q,
                                         (cur >> q) & 1u);
        }
        detectorDeadMask_[node] = cur;
    }
}

bool
Network::portFaulty(NodeId node, PortId out_port) const
{
    return out_port < routerParams_.netPorts &&
           ((deadOutMask(node) >> out_port) & 1u);
}

void
Network::step()
{
    // Only nodes that transmitted last cycle have a nonzero mask.
    for (const NodeId node : txNodes_)
        txMask_[node] = 0;
    txNodes_.clear();

    faultTick();
    generateAndInject();
    routeAll();
    switchAll();

    // Credits freed by switch pops become visible next cycle.
    for (const auto &cr : creditReturns_) {
        OutputVc &o = routers_[cr.node].outputVc(cr.port, cr.vc);
        ++o.credits;
        WORMNET_ASSERT(o.credits <= routerParams_.bufDepth);
    }
    creditReturns_.clear();

    if (recovery_) {
        recovery_->tick();
        for (const auto &cr : creditReturns_) {
            OutputVc &o = routers_[cr.node].outputVc(cr.port, cr.vc);
            ++o.credits;
            WORMNET_ASSERT(o.credits <= routerParams_.bufDepth);
        }
        creditReturns_.clear();
    }

    // Kills queued by the routing phase (heads with every live
    // candidate gone) happen after the switch phase so the cycle's
    // transfers acted on consistent state.
    processFaultKills();

    detectorCycleEnd();
    oracleTick();

    if (checkActiveSets_)
        verifyActiveSets();

    ++now_;
}

bool
Network::injectionAllowed(NodeId node) const
{
    return netAllocPerNode_[node] <= injectionLimitCount_;
}

void
Network::faultTick()
{
    if (faults_) {
        const bool changed = faults_->tick(now_);
        stats_.faultsInjected = faults_->faultsInjected();
        stats_.faultsRepaired = faults_->faultsRepaired();
        if (changed) {
            // Overlapping fault/admin causes are mediated: the
            // detector hears only *combined* dead-state flips.
            applyDeadPortChanges();
            bool any_down = false;
            for (const FaultChange &c : faults_->changes())
                any_down |= c.faulty;
            if (any_down)
                scanForStrandedWorms();
            processFaultKills();
        }
    }
    // Reconfiguration epochs ride the same machinery, after fault
    // processing so an epoch sees the cycle's final fault state.
    if (reconfig_)
        reconfig_->tick(now_);
}

void
Network::scanForStrandedWorms()
{
    // Callers only invoke this when a link or router actually went
    // down (fault flip or reconfiguration removal); the scan itself
    // is idempotent over the current dead-resource state.
    for (NodeId node = 0; node < numNodes(); ++node) {
        const bool dead_router = nodeOffline(node);
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                if (vc.free())
                    continue;
                if (dead_router) {
                    // Anything still buffered in a dead router is
                    // lost.
                    queueFaultKill(vc.msg);
                    continue;
                }
                if (!vc.routed || !portFaulty(node, vc.outPort))
                    continue;
                const Message &m = messages_.get(vc.msg);
                const PathLink &head = m.headLink();
                if (head.node == node && head.port == p &&
                    head.vc == v) {
                    // The worm's head is routed toward the dead link
                    // but no flit has crossed it yet (crossing would
                    // have pushed a new head link): back the decision
                    // out and let the next routing phase pick a live
                    // channel.
                    const OutputVc &out =
                        rt.outputVc(vc.outPort, vc.outVc);
                    WORMNET_ASSERT(out.allocated && out.msg == vc.msg);
                    WORMNET_ASSERT(out.credits == routerParams_.bufDepth);
                    releaseOutputVc(node, vc.outPort, vc.outVc);
                    vc.routed = false;
                    vc.outPort = kInvalidPort;
                    vc.outVc = kInvalidVc;
                    vc.allocCycle = kNever;
                    vc.attempted = false;
                    vc.headBlockedSince = kNever;
                    syncRoutable(node, p, v);
                    detector_.onRouteRetracted(node, p, v);
                    ++stats_.faultReroutes;
                    trace(TraceEvent::Rerouted, vc.msg, node, p, v);
                } else {
                    // Body/tail flits still feed the dead link: the
                    // worm is cut in two and cannot make progress.
                    queueFaultKill(vc.msg);
                }
            }
        }
    }
}

void
Network::processFaultKills()
{
    for (const MsgId msg : faultKillQueue_) {
        Message &m = messages_.get(msg);
        m.faultKillQueued = false;
        if (m.status != MsgStatus::Active &&
            m.status != MsgStatus::Recovering)
            continue; // e.g. recovery completed it this very cycle
        stats_.faultFlitsDropped += m.flitsInjected - m.flitsEjected;
        ++stats_.faultKills;
        trace(TraceEvent::FaultKilled, msg,
              m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
        if (recovery_)
            recovery_->onMessageKilled(msg);
        if (m.retries >= params_.maxRetries) {
            killAndAbandon(msg);
            continue;
        }
        // Deterministic per-message jitter, as in regressive
        // recovery, so co-stranded messages do not retry in lockstep.
        const Cycle jitter =
            (static_cast<Cycle>(msg) * 2654435761u) %
            (params_.faultRetryDelay + 1);
        killAndRequeue(msg, params_.faultRetryDelay + jitter);
    }
    faultKillQueue_.clear();
}

void
Network::generateAndInject()
{
    // Re-inject messages killed by regressive recovery.
    while (!pendingReinjects_.empty() &&
           pendingReinjects_.top().when <= now_) {
        const MsgId id = pendingReinjects_.top().msg;
        pendingReinjects_.pop();
        Message &m = messages_.get(id);
        WORMNET_ASSERT(m.status == MsgStatus::Killed);
        m.status = MsgStatus::Queued;
        trace(TraceEvent::Reinjected, id, m.src);
        pushSource(m.src, id, true);
    }

    // Every live node draws from its generator each cycle (the
    // arrival process is a per-cycle Bernoulli trial), but only
    // active injectors — a queued message or an in-progress worm —
    // are worth a port/VC scan.
    for (NodeId node = 0; node < numNodes(); ++node) {
        if (nodeOffline(node))
            continue; // dead or drained: no generation, no injection
        if (auto gen = generators_[node].tick()) {
            if (params_.maxSourceQueue == 0 ||
                sourceQueues_[node].size() < params_.maxSourceQueue) {
                const MsgId id = messages_.create(
                    node, gen->dst, gen->length, now_, measuring_);
                ++stats_.generated;
                if (measuring_) {
                    ++stats_.wGenerated;
                    stats_.wGeneratedFlits += gen->length;
                }
                trace(TraceEvent::Generated, id, node);
                pushSource(node, id, false);
            }
        }
        if (injActive_.contains(node))
            tryStartInjection(node);
    }
}

void
Network::tryStartInjection(NodeId node)
{
    Router &rt = routers_[node];
    const unsigned vcs = routerParams_.vcs;

    for (unsigned pi = 0; pi < routerParams_.injPorts; ++pi) {
        const PortId port =
            static_cast<PortId>(routerParams_.netPorts + pi);

        // Refill in-progress worms first (1 flit/cycle/port).
        VcId pushed_vc = kInvalidVc;
        for (unsigned k = 0; k < vcs && pushed_vc == kInvalidVc;
             ++k) {
            const VcId v =
                static_cast<VcId>((rt.injRoundRobin[pi] + k) % vcs);
            InputVc &vc = rt.inputVc(port, v);
            if (vc.free())
                continue;
            Message &m = messages_.get(vc.msg);
            if (m.flitsInjected == 0 ||
                m.flitsInjected >= m.length || vc.fifo.full())
                continue;
            vc.fifo.push(Flit{m.id,
                              flitTypeAt(m.flitsInjected, m.length),
                              now_ + 1});
            ++m.flitsInjected;
            m.lastInjectCycle = now_;
            rt.injRoundRobin[pi] = (v + 1) % vcs;
            pushed_vc = v;
        }

        // Source-side stall observation for the timeout mechanisms
        // of Reeves et al. and compressionless routing: any
        // incompletely injected worm that did not push a flit this
        // cycle is reported to the detector.
        for (VcId v = 0; v < vcs; ++v) {
            if (v == pushed_vc)
                continue;
            const InputVc &vc = rt.inputVc(port, v);
            if (vc.free() || vc.recovering)
                continue;
            const Message &m = messages_.get(vc.msg);
            if (m.status != MsgStatus::Active ||
                m.flitsInjected == 0 ||
                m.flitsInjected >= m.length)
                continue;
            const bool verdict = detector_.onInjectionStalled(
                node, port, v, m.id, now_ - m.injectStartCycle,
                now_ - m.lastInjectCycle, now_);
            if (verdict)
                handleDetection(m.id);
        }
        if (pushed_vc != kInvalidVc)
            continue;

        // Otherwise try to start a new message on this port.
        if (sourceQueues_[node].empty())
            continue;
        if (params_.injectionLimit && !injectionAllowed(node))
            continue;
        VcId free_vc = kInvalidVc;
        for (VcId v = 0; v < vcs; ++v) {
            const InputVc &vc = rt.inputVc(port, v);
            if (vc.free() && vc.fifo.empty()) {
                free_vc = v;
                break;
            }
        }
        if (free_vc == kInvalidVc)
            continue;

        const MsgId id = popSource(node);
        Message &m = messages_.get(id);
        WORMNET_ASSERT(m.status == MsgStatus::Queued);
        m.status = MsgStatus::Active;
        m.injectStartCycle = now_;
        m.lastInjectCycle = now_;
        m.flitsInjected = 1;
        enqueueFlit(rt, port, free_vc,
                    Flit{id, flitTypeAt(0, m.length), now_ + 1});
        ++inFlight_;
        ++stats_.injected;
        if (measuring_)
            ++stats_.wInjected;
        trace(TraceEvent::InjectStart, id, node, port, free_vc);
    }
}

void
Network::routeAll()
{
    // Snapshot the active nodes: routing can only shrink the set
    // (grants and recovery verdicts), and a shrunken entry's
    // routeOne is a no-op, exactly as in the exhaustive scan.
    nodeScratch_.clear();
    routeActive_.appendTo(nodeScratch_);
    for (const NodeId node : nodeScratch_) {
        Router &rt = routers_[node];
        const PortMask fault_mask = deadOutMask(node);
        const unsigned offset = (now_ + node) % inPorts_;
        for (unsigned i = 0; i < inPorts_; ++i) {
            const PortId port =
                static_cast<PortId>((offset + i) % inPorts_);
            if (routablePerPort_[std::size_t(node) * inPorts_ +
                                 port] == 0)
                continue;
            for (VcId v = 0; v < vcs_; ++v)
                routeOne(rt, port, v, fault_mask);
        }
    }
}

bool
Network::downstreamVcFree(const Router &rt, PortId out_port,
                          VcId vc) const
{
    if (rt.isEjectionPort(out_port))
        return true;
    const LinkEnd &down = rt.downstream(out_port);
    if (!down.valid())
        return false; // dangling mesh-edge port
    const InputVc &dvc = routers_[down.node].inputVc(down.port, vc);
    return dvc.free() && dvc.fifo.empty();
}

void
Network::routeOne(Router &rt, PortId port, VcId v,
                  PortMask fault_mask)
{
    InputVc &vc = rt.inputVc(port, v);
    if (vc.free() || vc.routed || vc.recovering || vc.fifo.empty())
        return;
    const Flit &head = vc.fifo.front();
    if (head.readyAt > now_ || !isHeadFlit(head.type))
        return;

    const Message &m = messages_.get(vc.msg);
    routing_->route(rt.nodeId(), m.dst, port, v, candScratch_);

    freeScratch_.clear();
    PortMask feasible = 0;
    for (const auto &cand : candScratch_) {
        if ((fault_mask >> cand.port) & 1u)
            continue; // dead link: not a feasible channel
        feasible |= PortMask(1) << cand.port;
        std::uint32_t mask = cand.vcMask;
        while (mask) {
            const VcId v2 =
                static_cast<VcId>(__builtin_ctz(mask));
            mask &= mask - 1;
            const OutputVc &out = rt.outputVc(cand.port, v2);
            if (!out.allocated &&
                downstreamVcFree(rt, cand.port, v2))
                freeScratch_.push_back(PortVc{cand.port, v2});
        }
    }

    if (feasible == 0 && !candScratch_.empty()) {
        // Every channel the routing function offers is faulted: the
        // head can never advance, and judging dead channels would be
        // a guaranteed false deadlock. Hand the worm to the fault
        // path instead of the detector.
        queueFaultKill(vc.msg);
        return;
    }

    if (!freeScratch_.empty()) {
        const PortVc pick =
            params_.selection == VcSelection::Random
                ? freeScratch_[rng_.nextBounded(freeScratch_.size())]
                : freeScratch_.front();
        WORMNET_ASSERT(rt.outputVc(pick.port, pick.vc).credits ==
                  routerParams_.bufDepth);
        allocOutputVc(rt.nodeId(), pick.port, pick.vc, vc.msg, port,
                      v);
        vc.routed = true;
        vc.outPort = pick.port;
        vc.outVc = pick.vc;
        vc.allocCycle = now_;
        vc.attempted = false;
        vc.lastFeasible = 0;
        vc.headBlockedSince = kNever;
        syncRoutable(rt.nodeId(), port, v);
        detector_.onMessageRouted(rt.nodeId(), port, v, vc.msg,
                                  pick.port, pick.vc);
        trace(TraceEvent::Routed, vc.msg, rt.nodeId(), pick.port,
              pick.vc);
        return;
    }

    const bool first = !vc.attempted;
    if (first) {
        vc.attempted = true;
        vc.headBlockedSince = now_;
        trace(TraceEvent::Blocked, vc.msg, rt.nodeId(), port, v);
    }
    vc.lastFeasible = feasible;
    if (detectorWantsCandidates_) {
        blockedCandScratch_.clear();
        for (const auto &cand : candScratch_) {
            if ((fault_mask >> cand.port) & 1u)
                continue;
            blockedCandScratch_.push_back(
                BlockedCandidate{cand.port, cand.vcMask});
        }
        detector_.onBlockedCandidates(
            rt.nodeId(), port, v, vc.msg, blockedCandScratch_.data(),
            blockedCandScratch_.size(), now_);
    }
    const bool verdict = detector_.onRoutingFailed(
        rt.nodeId(), port, v, vc.msg, feasible,
        rt.inputPcFullyBusy(port), first, now_);
    if (verdict)
        handleDetection(vc.msg);
}

void
Network::handleDetection(MsgId msg)
{
    Message &m = messages_.get(msg);
    if (m.status == MsgStatus::Recovering)
        return;
    ++stats_.detections;
    if (measuring_) {
        ++stats_.wDetectionEvents;
        if (m.timesDetected == 0)
            ++stats_.wDetectedMessages;
        const auto &deadlocked = deadlockedNow();
        if (std::binary_search(deadlocked.begin(), deadlocked.end(),
                               msg))
            ++stats_.wTrueDetections;
        else
            ++stats_.wFalseDetections;
    }
    ++m.timesDetected;
    const auto seen = deadlockFirstSeen_.find(msg);
    if (seen != deadlockFirstSeen_.end())
        stats_.detectionLatency.add(
            static_cast<double>(now_ - seen->second));
    trace(TraceEvent::Detected, msg,
          m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
    if (recovery_)
        recovery_->onDeadlockDetected(msg);
}

void
Network::switchAll()
{
    // Snapshot: transfers can release output VCs (tail flits) but
    // never allocate, so the set only shrinks while iterating — and
    // a port whose last VC was just released yields no winner, same
    // as the exhaustive scan.
    nodeScratch_.clear();
    switchActive_.appendTo(nodeScratch_);
    for (const NodeId node : nodeScratch_) {
        Router &rt = routers_[node];
        const PortMask fault_mask = deadOutMask(node);
        // Ports without an allocated VC have no switch candidates;
        // iterating the mask's set bits ascending preserves the full
        // scan's port order.
        PortMask ports = allocOutMask_[node] & ~fault_mask;
        while (ports) {
            const PortId q = static_cast<PortId>(
                __builtin_ctz(ports));
            ports &= ports - 1;
            // Each allocated output VC names its owning input VC, so
            // the arbiter only has to look at vcs candidates.
            int winner = -1;
            for (unsigned k = 0; k < vcs_; ++k) {
                const unsigned v2 = (rt.saRoundRobin[q] + k) % vcs_;
                const OutputVc &out =
                    rt.outputVc(q, static_cast<VcId>(v2));
                if (!out.allocated)
                    continue;
                if (!rt.isEjectionPort(q) && out.credits == 0)
                    continue;
                const InputVc &vc =
                    rt.inputVc(out.srcPort, out.srcVc);
                WORMNET_ASSERT(vc.routed && vc.outPort == q);
                if (vc.recovering || vc.fifo.empty())
                    continue;
                if (vc.allocCycle >= now_)
                    continue; // routed this very cycle
                const Flit &f = vc.fifo.front();
                if (f.readyAt > now_)
                    continue;
                WORMNET_ASSERT(f.msg == out.msg);
                winner = static_cast<int>(v2);
                break;
            }
            if (winner < 0)
                continue;
            const OutputVc &out =
                rt.outputVc(q, static_cast<VcId>(winner));
            transferFlit(rt, q, out.srcPort, out.srcVc);
            rt.saRoundRobin[q] = (winner + 1) % vcs_;
            if (txMask_[node] == 0)
                txNodes_.push_back(node);
            txMask_[node] |= PortMask(1) << q;
            detActive_.insert(node);
        }
    }
}

void
Network::transferFlit(Router &rt, PortId out_port, PortId in_port,
                      VcId in_vc)
{
    InputVc &vc = rt.inputVc(in_port, in_vc);
    const VcId out_vc = vc.outVc;
    OutputVc &out = rt.outputVc(out_port, out_vc);

    WORMNET_ASSERT(!portFaulty(rt.nodeId(), out_port));
    const Flit f = popFlit(rt, in_port, in_vc);
    rt.noteTx(out_port, now_);
    ++txCount_[std::size_t(rt.nodeId()) *
                   routerParams_.numOutPorts() +
               out_port];

    if (rt.isEjectionPort(out_port)) {
        Message &m = messages_.get(f.msg);
        ++m.flitsEjected;
        ++stats_.flitsDelivered;
        if (measuring_)
            ++stats_.wFlitsDelivered;
        if (isTailFlit(f.type)) {
            releaseOutputVc(rt.nodeId(), out_port, out_vc);
            markDelivered(f.msg, false);
        }
        return;
    }

    WORMNET_ASSERT(out.credits > 0);
    --out.credits;
    const LinkEnd &down = rt.downstream(out_port);
    WORMNET_ASSERT(down.valid());
    enqueueFlit(routers_[down.node], down.port, out_vc,
                Flit{f.msg, f.type, now_ + 1});
    if (isTailFlit(f.type))
        releaseOutputVc(rt.nodeId(), out_port, out_vc);
}

Flit
Network::popFlit(Router &rt, PortId port, VcId v)
{
    InputVc &vc = rt.inputVc(port, v);
    const Flit f = vc.fifo.pop();

    const LinkEnd &up = rt.upstream(port);
    if (up.valid())
        creditReturns_.push_back(CreditReturn{up.node, up.port, v});

    if (isTailFlit(f.type)) {
        Message &m = messages_.get(f.msg);
        WORMNET_ASSERT(m.numLinks() > 0);
        const PathLink &oldest = m.link(0);
        WORMNET_ASSERT(oldest.node == rt.nodeId() &&
                  oldest.port == port && oldest.vc == v);
        m.popFrontLink();
        releaseInputVc(rt.nodeId(), port, v);
    }
    return f;
}

void
Network::enqueueFlit(Router &rt, PortId port, VcId v,
                     const Flit &flit)
{
    InputVc &vc = rt.inputVc(port, v);
    if (isHeadFlit(flit.type)) {
        WORMNET_ASSERT(vc.free() && vc.fifo.empty());
        vc.msg = flit.msg;
        messages_.get(flit.msg).pushLink(rt.nodeId(), port, v);
        syncRoutable(rt.nodeId(), port, v);
        detector_.onChannelOccupied(rt.nodeId(), port, v, flit.msg);
        if (port >= netPorts_) {
            ++injVcBusy_[rt.nodeId()];
            injActive_.insert(rt.nodeId());
        }
    }
    WORMNET_ASSERT(vc.msg == flit.msg);
    vc.fifo.push(flit);
}

void
Network::markDelivered(MsgId msg, bool via_recovery)
{
    Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.numLinks() == 0);
    WORMNET_ASSERT(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);
    m.status = MsgStatus::Delivered;
    m.deliverCycle = now_;
    trace(via_recovery ? TraceEvent::DeliveredRecovered
                       : TraceEvent::Delivered,
          msg, m.dst);
    ++stats_.delivered;
    WORMNET_ASSERT(inFlight_ > 0);
    --inFlight_;
    if (via_recovery) {
        m.recovered = true;
        m.flitsEjected = m.length;
        ++stats_.recoveredDeliveries;
    }
    if (measuring_) {
        ++stats_.wDelivered;
        if (via_recovery) {
            ++stats_.wRecoveredDeliveries;
            stats_.wFlitsDelivered += m.length;
        }
        const double lat = static_cast<double>(now_ - m.genCycle);
        stats_.latency.add(lat);
        stats_.latencyHist.add(now_ - m.genCycle);
        if (m.injectStartCycle != kNever)
            stats_.netLatency.add(
                static_cast<double>(now_ - m.injectStartCycle));
    }
}

void
Network::releaseWorm(Message &m)
{
    WORMNET_ASSERT(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);

    // A worm killed while its header is routed (possible with
    // source-side detection or a fault strike) may hold a forward
    // output allocation whose head flit has not crossed yet; release
    // it explicitly — the per-link walk below only restores
    // *upstream* allocations.
    if (m.numLinks() > 0) {
        const PathLink head = m.headLink();
        const InputVc &hvc =
            routers_[head.node].inputVc(head.port, head.vc);
        if (hvc.routed) {
            const OutputVc &o =
                routers_[head.node].outputVc(hvc.outPort, hvc.outVc);
            if (o.allocated && o.msg == m.id)
                releaseOutputVc(head.node, hvc.outPort, hvc.outVc);
        }
    }

    for (std::size_t i = 0; i < m.numLinks(); ++i) {
        const PathLink &link = m.link(i);
        Router &rt = routers_[link.node];
        InputVc &vc = rt.inputVc(link.port, link.vc);
        WORMNET_ASSERT(vc.msg == m.id);

        const LinkEnd &up = rt.upstream(link.port);
        if (up.valid()) {
            OutputVc &o =
                routers_[up.node].outputVc(up.port, link.vc);
            if (o.allocated && o.msg == m.id)
                releaseOutputVc(up.node, up.port, link.vc);
            // The buffer is about to be emptied: the full credit
            // budget is available again.
            o.credits = routerParams_.bufDepth;
        }

        vc.fifo.clear();
        releaseInputVc(link.node, link.port, link.vc);
    }
    m.clearLinks();
    m.flitsInjected = 0;
    m.flitsEjected = 0;
    WORMNET_ASSERT(inFlight_ > 0);
    --inFlight_;
}

void
Network::setHeadRecovering(MsgId msg)
{
    const Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.numLinks() > 0);
    const PathLink head = m.headLink();
    InputVc &vc = routers_[head.node].inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg);
    vc.recovering = true;
    syncRoutable(head.node, head.port, head.vc);
    detector_.onHeadRecovering(head.node, head.port, head.vc);
}

void
Network::killAndRequeue(MsgId msg, Cycle reinject_delay)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Killed;
    ++m.retries;
    ++stats_.kills;
    trace(TraceEvent::Killed, msg, m.src);
    if (measuring_)
        ++stats_.wKills;
    pendingReinjects_.push(Reinject{now_ + reinject_delay, msg});
}

void
Network::killAndAbandon(MsgId msg)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Abandoned;
    ++stats_.abandoned;
    trace(TraceEvent::Abandoned, msg, m.src);
}

bool
Network::drainHeaderFlit(MsgId msg, FlitType &type)
{
    Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.status == MsgStatus::Recovering);
    WORMNET_ASSERT(m.numLinks() > 0);
    const PathLink head = m.headLink();
    Router &rt = routers_[head.node];
    InputVc &vc = rt.inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg && vc.recovering);
    if (vc.fifo.empty() || vc.fifo.front().readyAt > now_)
        return false;
    const Flit f = popFlit(rt, head.port, head.vc);
    ++m.flitsEjected; // consumed into the recovery buffer
    type = f.type;
    return true;
}

void
Network::detectorCycleEnd()
{
    runDetectorCycleEnd();
    // Mirror the detector's cumulative control-plane traffic into the
    // stats block. Assignment (not accumulation): the detector owns
    // the lifetime counters, SimStats just exposes them; window
    // deltas come from the snapshots taken in startWindow().
    const ControlTraffic ct = detector_.controlTraffic();
    stats_.ctrlFlits = ct.flits;
    stats_.ctrlFlitHops = ct.flitHops;
    stats_.ctrlBytes = ct.bytes;
}

void
Network::runDetectorCycleEnd()
{
    if (!detectorIdleStable_) {
        // The detector times even unoccupied channels (ungated PDM),
        // so every node must hear about every cycle. The occupied
        // mask still comes from the allocation counters instead of a
        // per-port output-VC scan.
        for (NodeId node = 0; node < numNodes(); ++node) {
            // Dead channels (faulted or admin-removed) are not timed:
            // they will never transmit, so their inactivity says
            // nothing about deadlock.
            const PortMask occupied =
                allocOutMask_[node] & ~detectorDeadMask_[node];
            detector_.onCycleEnd(node, txMask_[node], occupied, now_);
        }
        return;
    }

    // Idle-stable detector: a node with no transmissions and no
    // allocated output VCs receives an idempotent (0, 0) call, so
    // only active nodes need visiting. Each node gets one trailing
    // call after going fully idle so per-channel state sees the
    // transition before the node leaves the set.
    nodeScratch_.clear();
    detActive_.appendTo(nodeScratch_);
    for (const NodeId node : nodeScratch_) {
        const PortMask occupied =
            allocOutMask_[node] & ~detectorDeadMask_[node];
        detector_.onCycleEnd(node, txMask_[node], occupied, now_);
        if (txMask_[node] == 0 && allocOutMask_[node] == 0)
            detActive_.erase(node);
    }
}

double
Network::channelUtilization(NodeId node, PortId out_port) const
{
    const Cycle span = now_ - stats_.windowStart;
    if (span == 0)
        return 0.0;
    return static_cast<double>(channelTxCount(node, out_port)) /
           static_cast<double>(span);
}

RunningStat
Network::utilizationSummary() const
{
    RunningStat out;
    for (NodeId node = 0; node < numNodes(); ++node) {
        for (PortId q = 0; q < routerParams_.netPorts; ++q) {
            if (routers_[node].downstream(q).valid())
                out.add(channelUtilization(node, q));
        }
    }
    return out;
}

const std::vector<MsgId> &
Network::deadlockedNow()
{
    if (oracleCacheCycle_ != now_) {
        oracleCache_ = findDeadlockedMessages(*this);
        oracleCacheCycle_ = now_;
    }
    return oracleCache_;
}

void
Network::oracleTick()
{
    if (params_.oraclePeriod == 0 ||
        now_ % params_.oraclePeriod != 0)
        return;
    const auto &deadlocked = deadlockedNow();
    stats_.currentlyDeadlocked = deadlocked.size();

    // Persistence tracking: how long do true deadlocks last?
    std::unordered_map<MsgId, Cycle> next;
    next.reserve(deadlocked.size());
    for (const MsgId id : deadlocked) {
        Cycle first = now_;
        const auto it = deadlockFirstSeen_.find(id);
        if (it != deadlockFirstSeen_.end())
            first = it->second;
        else
            ++stats_.trueDeadlockedMessages;
        next.emplace(id, first);
        stats_.maxDeadlockPersistence =
            std::max(stats_.maxDeadlockPersistence, now_ - first);
    }
    deadlockFirstSeen_ = std::move(next);
}

// The cross-check must fire whenever the runtime flag is on — even
// on builds whose compile-time contract level stripped the check
// macros — so it uses its own always-on check.
#define ACTIVE_SET_CHECK(cond)                                         \
    do {                                                               \
        if (!(cond)) {                                                 \
            panic("active-set cross-check failed: ", #cond, " at ",    \
                  __FILE__, ":", __LINE__);                            \
        }                                                              \
    } while (0)

void
Network::verifyActiveSets() const
{
    // Brute-force recomputation of every incrementally maintained
    // structure; the full contract level (WORMNET_CONTRACTS=full)
    // enables it by default and WORMNET_CHECK_ACTIVE_SETS=1 forces
    // it on any build. Runs at the end of step(), when all sets are
    // expected to be coherent.
    std::size_t queued = 0;
    std::size_t tx_nodes = 0;
    for (NodeId node = 0; node < numNodes(); ++node) {
        queued += sourceQueues_[node].size();
        if (txMask_[node] != 0)
            ++tx_nodes;
        const Router &rt = routers_[node];

        unsigned node_routable = 0;
        unsigned inj_busy = 0;
        for (PortId p = 0; p < inPorts_; ++p) {
            unsigned port_routable = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                const bool want = vc.msg != kInvalidMsg &&
                                  !vc.routed && !vc.recovering;
                ACTIVE_SET_CHECK(vc.inRouteSet == want);
                if (want)
                    ++port_routable;
                if (p >= netPorts_ && vc.msg != kInvalidMsg)
                    ++inj_busy;
            }
            ACTIVE_SET_CHECK(routablePerPort_[std::size_t(node) * inPorts_ +
                                       p] == port_routable);
            node_routable += port_routable;
        }
        ACTIVE_SET_CHECK(routablePerNode_[node] == node_routable);
        ACTIVE_SET_CHECK(routeActive_.contains(node) ==
                  (node_routable > 0));

        unsigned node_alloc = 0;
        unsigned net_alloc = 0;
        PortMask mask = 0;
        for (PortId q = 0; q < outPorts_; ++q) {
            unsigned port_alloc = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                if (rt.outputVc(q, v).allocated) {
                    ++port_alloc;
                    if (q < netPorts_)
                        ++net_alloc;
                }
            }
            ACTIVE_SET_CHECK(allocPerPort_[std::size_t(node) * outPorts_ +
                                    q] == port_alloc);
            if (port_alloc > 0)
                mask |= PortMask(1) << q;
            node_alloc += port_alloc;
        }
        ACTIVE_SET_CHECK(allocOutMask_[node] == mask);
        ACTIVE_SET_CHECK(allocPerNode_[node] == node_alloc);
        ACTIVE_SET_CHECK(switchActive_.contains(node) == (node_alloc > 0));
        ACTIVE_SET_CHECK(netAllocPerNode_[node] == net_alloc);

        ACTIVE_SET_CHECK(injVcBusy_[node] == inj_busy);
        ACTIVE_SET_CHECK(injActive_.contains(node) ==
                  (!sourceQueues_[node].empty() || inj_busy > 0));

        // detActive_ is checked for soundness, not exact equality: it
        // may hold an idle node for one trailing cycle-end call, but
        // must cover every node the detector still needs to see.
        if (node_alloc > 0 || txMask_[node] != 0)
            ACTIVE_SET_CHECK(detActive_.contains(node));
    }
    ACTIVE_SET_CHECK(totalQueuedCount_ == queued);
    ACTIVE_SET_CHECK(txNodes_.size() == tx_nodes);
}

void
Network::saveState(Serializer &s) const
{
    // Captured at a step() boundary: per-cycle scratch (txMask_,
    // txNodes_, creditReturns_, faultKillQueue_, candidate buffers)
    // is dead there and not written; the oracle cache is memoised
    // per cycle and re-derived on demand.
    s.u64(now_);
    s.boolean(measuring_);
    rng_.saveState(s);
    for (const NodeGenerator &gen : generators_)
        gen.saveState(s);
    messages_.saveState(s);
    for (const auto &queue : sourceQueues_) {
        s.u32(static_cast<std::uint32_t>(queue.size()));
        for (const MsgId id : queue)
            s.u32(id);
    }
    {
        // Raw heap array: equal-cycle re-injections must pop in the
        // exact pre-checkpoint order.
        const auto &heap = pqContainer(pendingReinjects_);
        s.u32(static_cast<std::uint32_t>(heap.size()));
        for (const Reinject &r : heap) {
            s.u64(r.when);
            s.u32(r.msg);
        }
    }
    for (const Router &rt : routers_)
        rt.saveState(s);
    for (const std::uint64_t c : txCount_)
        s.u64(c);
    stats_.saveState(s);
    // detActive_ is the one history-bearing activity set (one
    // trailing cycle-end call per idle node); every other set is
    // derived from router state and rebuilt on load.
    detActive_.saveState(s);
    s.u64(inFlight_);
    {
        // Deterministic order for the hash map.
        std::vector<std::pair<MsgId, Cycle>> seen(
            deadlockFirstSeen_.begin(), deadlockFirstSeen_.end());
        std::sort(seen.begin(), seen.end());
        s.u32(static_cast<std::uint32_t>(seen.size()));
        for (const auto &[id, cycle] : seen) {
            s.u32(id);
            s.u64(cycle);
        }
    }
    s.boolean(faults_ != nullptr);
    if (faults_)
        faults_->saveState(s);
    s.boolean(reconfig_ != nullptr);
    if (reconfig_)
        reconfig_->saveState(s);
    detector_.saveState(s);
    s.boolean(recovery_ != nullptr);
    if (recovery_)
        recovery_->saveState(s);
}

void
Network::loadState(Deserializer &d)
{
    now_ = d.u64();
    measuring_ = d.boolean();
    rng_.loadState(d);
    for (NodeGenerator &gen : generators_)
        gen.loadState(d);
    messages_.loadState(d);
    totalQueuedCount_ = 0;
    for (auto &queue : sourceQueues_) {
        queue.clear();
        const std::uint32_t count = d.u32();
        for (std::uint32_t i = 0; i < count; ++i)
            queue.push_back(d.u32());
        totalQueuedCount_ += count;
    }
    {
        auto &heap = pqContainer(pendingReinjects_);
        heap.clear();
        heap.resize(d.u32());
        for (Reinject &r : heap) {
            r.when = d.u64();
            r.msg = d.u32();
        }
    }
    for (Router &rt : routers_)
        rt.loadState(d);
    for (std::uint64_t &c : txCount_)
        c = d.u64();
    stats_.loadState(d);
    detActive_.loadState(d);
    inFlight_ = d.u64();
    deadlockFirstSeen_.clear();
    {
        const std::uint32_t count = d.u32();
        deadlockFirstSeen_.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const MsgId id = d.u32();
            const Cycle cycle = d.u64();
            deadlockFirstSeen_.emplace(id, cycle);
        }
    }
    if (d.boolean()) {
        if (!faults_)
            fatal("checkpoint carries fault-model state but no fault "
                  "model is attached");
        faults_->loadState(d);
    } else if (faults_) {
        fatal("fault model attached but checkpoint has none");
    }
    if (d.boolean()) {
        if (!reconfig_)
            fatal("checkpoint carries reconfiguration state but no "
                  "reconfiguration manager is attached");
        reconfig_->loadState(d);
    } else if (reconfig_) {
        fatal("reconfiguration manager attached but checkpoint has "
              "none");
    }
    detector_.loadState(d);
    if (d.boolean()) {
        if (!recovery_)
            fatal("checkpoint carries recovery state but no recovery "
                  "manager is attached");
        recovery_->loadState(d);
    } else if (recovery_) {
        fatal("recovery manager attached but checkpoint has none");
    }

    // Rebuild everything derived from the restored router state.
    const NodeId n = numNodes();
    routeActive_.init(n);
    std::fill(routablePerPort_.begin(), routablePerPort_.end(), 0);
    std::fill(routablePerNode_.begin(), routablePerNode_.end(), 0);
    switchActive_.init(n);
    std::fill(allocPerPort_.begin(), allocPerPort_.end(), 0);
    std::fill(allocPerNode_.begin(), allocPerNode_.end(), 0);
    std::fill(allocOutMask_.begin(), allocOutMask_.end(), 0);
    std::fill(netAllocPerNode_.begin(), netAllocPerNode_.end(), 0);
    injActive_.init(n);
    std::fill(injVcBusy_.begin(), injVcBusy_.end(), 0);
    for (NodeId node = 0; node < n; ++node) {
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                const bool want = vc.msg != kInvalidMsg &&
                                  !vc.routed && !vc.recovering;
                if (want) {
                    vc.inRouteSet = true;
                    ++routablePerPort_[std::size_t(node) * inPorts_ +
                                       p];
                    if (routablePerNode_[node]++ == 0)
                        routeActive_.insert(node);
                }
                if (p >= netPorts_ && vc.msg != kInvalidMsg)
                    ++injVcBusy_[node];
            }
        }
        for (PortId q = 0; q < outPorts_; ++q) {
            for (VcId v = 0; v < vcs_; ++v) {
                if (!rt.outputVc(q, v).allocated)
                    continue;
                if (allocPerPort_[std::size_t(node) * outPorts_ +
                                  q]++ == 0)
                    allocOutMask_[node] |= PortMask(1) << q;
                if (allocPerNode_[node]++ == 0)
                    switchActive_.insert(node);
                if (q < netPorts_)
                    ++netAllocPerNode_[node];
            }
        }
        syncInjActive(node);
        // The serialized detector state already reflects the dead
        // ports at save time; only the derived mirror is rebuilt.
        detectorDeadMask_[node] = deadOutMask(node);
    }

    // Per-cycle scratch and memoisation: clean slate.
    std::fill(txMask_.begin(), txMask_.end(), 0);
    txNodes_.clear();
    creditReturns_.clear();
    faultKillQueue_.clear();
    oracleCacheCycle_ = kNever;
    oracleCache_.clear();

    if (!d.atEnd())
        fatal("checkpoint payload has ", d.remaining(),
              " unread bytes: writer/reader layout mismatch");
}

} // namespace wormnet
