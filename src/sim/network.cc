#include "sim/network.hh"

#include <algorithm>

#include "common/log.hh"
#include "fault/fault.hh"
#include "recovery/recovery.hh"
#include "sim/oracle.hh"

namespace wormnet
{

Network::Network(const Topology &topo, const NetworkParams &params,
                 RoutingFunction &routing, DeadlockDetector &detector,
                 RecoveryManager *recovery, TrafficPattern &pattern,
                 LengthDistribution &lengths, double flit_rate,
                 std::uint64_t seed)
    : topo_(topo), params_(params), routing_(routing),
      detector_(detector), recovery_(recovery), pattern_(pattern),
      lengths_(lengths), rng_(seed)
{
    routerParams_.netPorts = topo.numNetPorts();
    routerParams_.injPorts = params.injPorts;
    routerParams_.ejePorts = params.ejePorts;
    routerParams_.vcs = params.vcs;
    routerParams_.bufDepth = params.bufDepth;

    if (params.injPorts < 1 || params.ejePorts < 1)
        fatal("need at least one injection and one ejection port");
    if (lengths.maxLength() < 1)
        fatal("length distribution produces empty messages");

    const NodeId n = topo.numNodes();
    routers_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        routers_.emplace_back(i, routerParams_);

    // Wire the network links following the port convention.
    for (NodeId i = 0; i < n; ++i) {
        for (unsigned d = 0; d < topo.numDims(); ++d) {
            for (const bool positive : {true, false}) {
                const PortId q = Topology::outPort(d, positive);
                const NodeId peer = topo.neighbor(i, d, positive);
                if (peer == kInvalidNode)
                    continue; // mesh edge
                const PortId peer_in = Topology::peerInPort(q);
                routers_[i].downstream(q) = LinkEnd{peer, peer_in};
                routers_[peer].upstream(peer_in) = LinkEnd{i, q};
            }
        }
    }

    sourceQueues_.resize(n);
    generators_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        generators_.emplace_back(i, pattern, lengths, flit_rate,
                                 rng_.split());

    txMask_.assign(n, 0);
    txCount_.assign(std::size_t(n) * routerParams_.numOutPorts(), 0);

    injectionLimitCount_ = static_cast<std::size_t>(
        params.injectionLimitFraction *
        (routerParams_.netPorts * routerParams_.vcs));

    DetectorContext ctx;
    ctx.numRouters = n;
    ctx.numInPorts = routerParams_.numInPorts();
    ctx.numOutPorts = routerParams_.numOutPorts();
    ctx.vcs = routerParams_.vcs;
    detector_.init(ctx);

    if (recovery_)
        recovery_->init(*this);
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Network::startMeasurement()
{
    measuring_ = true;
    stats_.startWindow(now_);
    std::fill(txCount_.begin(), txCount_.end(), 0);
}

void
Network::setFlitRate(double flit_rate)
{
    for (auto &gen : generators_)
        gen.setFlitRate(flit_rate);
}

std::size_t
Network::totalQueued() const
{
    std::size_t total = 0;
    for (const auto &q : sourceQueues_)
        total += q.size();
    return total;
}

MsgId
Network::injectMessage(NodeId src, NodeId dst, unsigned length)
{
    wn_assert(src < numNodes() && dst < numNodes());
    wn_assert(length >= 1);
    const MsgId id =
        messages_.create(src, dst, length, now_, measuring_);
    ++stats_.generated;
    if (measuring_) {
        ++stats_.wGenerated;
        stats_.wGeneratedFlits += length;
    }
    trace(TraceEvent::Generated, id, src);
    sourceQueues_[src].push_back(id);
    return id;
}

void
Network::attachFaultModel(FaultModel *faults)
{
    faults_ = faults;
    if (faults_)
        faults_->init(topo_, routerParams_, rng_.split().next());
}

bool
Network::portFaulty(NodeId node, PortId out_port) const
{
    return faults_ && out_port < routerParams_.netPorts &&
           faults_->linkFaulty(node, out_port);
}

void
Network::step()
{
    std::fill(txMask_.begin(), txMask_.end(), 0);

    faultTick();
    generateAndInject();
    routeAll();
    switchAll();

    // Credits freed by switch pops become visible next cycle.
    for (const auto &cr : creditReturns_) {
        OutputVc &o = routers_[cr.node].outputVc(cr.port, cr.vc);
        ++o.credits;
        wn_assert(o.credits <= routerParams_.bufDepth);
    }
    creditReturns_.clear();

    if (recovery_) {
        recovery_->tick();
        for (const auto &cr : creditReturns_) {
            OutputVc &o = routers_[cr.node].outputVc(cr.port, cr.vc);
            ++o.credits;
            wn_assert(o.credits <= routerParams_.bufDepth);
        }
        creditReturns_.clear();
    }

    // Kills queued by the routing phase (heads with every live
    // candidate gone) happen after the switch phase so the cycle's
    // transfers acted on consistent state.
    processFaultKills();

    detectorCycleEnd();
    oracleTick();

    ++now_;
}

bool
Network::injectionAllowed(const Router &rt) const
{
    return rt.busyNetworkOutputVcs() <= injectionLimitCount_;
}

void
Network::faultTick()
{
    if (!faults_)
        return;
    const bool changed = faults_->tick(now_);
    stats_.faultsInjected = faults_->faultsInjected();
    stats_.faultsRepaired = faults_->faultsRepaired();
    if (!changed)
        return;
    for (const FaultChange &c : faults_->changes())
        detector_.onPortFaultChanged(c.node, c.outPort, c.faulty);
    scanForStrandedWorms();
    processFaultKills();
}

void
Network::scanForStrandedWorms()
{
    bool any_down = false;
    for (const FaultChange &c : faults_->changes())
        any_down |= c.faulty;
    if (!any_down)
        return;

    for (NodeId node = 0; node < numNodes(); ++node) {
        const bool dead_router = faults_->routerFaulty(node);
        Router &rt = routers_[node];
        for (PortId p = 0; p < routerParams_.numInPorts(); ++p) {
            for (VcId v = 0; v < routerParams_.vcs; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                if (vc.free())
                    continue;
                if (dead_router) {
                    // Anything still buffered in a dead router is
                    // lost.
                    faultKillQueue_.push_back(vc.msg);
                    continue;
                }
                if (!vc.routed || !portFaulty(node, vc.outPort))
                    continue;
                const Message &m = messages_.get(vc.msg);
                const PathLink &head = m.headLink();
                if (head.node == node && head.port == p &&
                    head.vc == v) {
                    // The worm's head is routed toward the dead link
                    // but no flit has crossed it yet (crossing would
                    // have pushed a new head link): back the decision
                    // out and let the next routing phase pick a live
                    // channel.
                    OutputVc &out = rt.outputVc(vc.outPort, vc.outVc);
                    wn_assert(out.allocated && out.msg == vc.msg);
                    wn_assert(out.credits == routerParams_.bufDepth);
                    out.release();
                    vc.routed = false;
                    vc.outPort = kInvalidPort;
                    vc.outVc = kInvalidVc;
                    vc.allocCycle = kNever;
                    vc.attempted = false;
                    vc.headBlockedSince = kNever;
                    ++stats_.faultReroutes;
                    trace(TraceEvent::Rerouted, vc.msg, node, p, v);
                } else {
                    // Body/tail flits still feed the dead link: the
                    // worm is cut in two and cannot make progress.
                    faultKillQueue_.push_back(vc.msg);
                }
            }
        }
    }
}

void
Network::processFaultKills()
{
    for (const MsgId msg : faultKillQueue_) {
        Message &m = messages_.get(msg);
        if (m.status != MsgStatus::Active &&
            m.status != MsgStatus::Recovering)
            continue; // queued twice (worm hit at several points)
        stats_.faultFlitsDropped += m.flitsInjected - m.flitsEjected;
        ++stats_.faultKills;
        trace(TraceEvent::FaultKilled, msg,
              m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
        if (recovery_)
            recovery_->onMessageKilled(msg);
        if (m.retries >= params_.maxRetries) {
            killAndAbandon(msg);
            continue;
        }
        // Deterministic per-message jitter, as in regressive
        // recovery, so co-stranded messages do not retry in lockstep.
        const Cycle jitter =
            (static_cast<Cycle>(msg) * 2654435761u) %
            (params_.faultRetryDelay + 1);
        killAndRequeue(msg, params_.faultRetryDelay + jitter);
    }
    faultKillQueue_.clear();
}

void
Network::generateAndInject()
{
    // Re-inject messages killed by regressive recovery.
    while (!pendingReinjects_.empty() &&
           pendingReinjects_.top().when <= now_) {
        const MsgId id = pendingReinjects_.top().msg;
        pendingReinjects_.pop();
        Message &m = messages_.get(id);
        wn_assert(m.status == MsgStatus::Killed);
        m.status = MsgStatus::Queued;
        trace(TraceEvent::Reinjected, id, m.src);
        sourceQueues_[m.src].push_front(id);
    }

    for (NodeId node = 0; node < numNodes(); ++node) {
        if (faults_ && faults_->routerFaulty(node))
            continue; // a dead router neither generates nor injects
        if (auto gen = generators_[node].tick()) {
            if (params_.maxSourceQueue == 0 ||
                sourceQueues_[node].size() < params_.maxSourceQueue) {
                const MsgId id = messages_.create(
                    node, gen->dst, gen->length, now_, measuring_);
                ++stats_.generated;
                if (measuring_) {
                    ++stats_.wGenerated;
                    stats_.wGeneratedFlits += gen->length;
                }
                trace(TraceEvent::Generated, id, node);
                sourceQueues_[node].push_back(id);
            }
        }
        tryStartInjection(node);
    }
}

void
Network::tryStartInjection(NodeId node)
{
    Router &rt = routers_[node];
    const unsigned vcs = routerParams_.vcs;

    for (unsigned pi = 0; pi < routerParams_.injPorts; ++pi) {
        const PortId port =
            static_cast<PortId>(routerParams_.netPorts + pi);

        // Refill in-progress worms first (1 flit/cycle/port).
        VcId pushed_vc = kInvalidVc;
        for (unsigned k = 0; k < vcs && pushed_vc == kInvalidVc;
             ++k) {
            const VcId v =
                static_cast<VcId>((rt.injRoundRobin[pi] + k) % vcs);
            InputVc &vc = rt.inputVc(port, v);
            if (vc.free())
                continue;
            Message &m = messages_.get(vc.msg);
            if (m.flitsInjected == 0 ||
                m.flitsInjected >= m.length || vc.fifo.full())
                continue;
            vc.fifo.push(Flit{m.id,
                              flitTypeAt(m.flitsInjected, m.length),
                              now_ + 1});
            ++m.flitsInjected;
            m.lastInjectCycle = now_;
            rt.injRoundRobin[pi] = (v + 1) % vcs;
            pushed_vc = v;
        }

        // Source-side stall observation for the timeout mechanisms
        // of Reeves et al. and compressionless routing: any
        // incompletely injected worm that did not push a flit this
        // cycle is reported to the detector.
        for (VcId v = 0; v < vcs; ++v) {
            if (v == pushed_vc)
                continue;
            const InputVc &vc = rt.inputVc(port, v);
            if (vc.free() || vc.recovering)
                continue;
            const Message &m = messages_.get(vc.msg);
            if (m.status != MsgStatus::Active ||
                m.flitsInjected == 0 ||
                m.flitsInjected >= m.length)
                continue;
            const bool verdict = detector_.onInjectionStalled(
                node, port, v, m.id, now_ - m.injectStartCycle,
                now_ - m.lastInjectCycle, now_);
            if (verdict)
                handleDetection(m.id);
        }
        if (pushed_vc != kInvalidVc)
            continue;

        // Otherwise try to start a new message on this port.
        if (sourceQueues_[node].empty())
            continue;
        if (params_.injectionLimit && !injectionAllowed(rt))
            continue;
        VcId free_vc = kInvalidVc;
        for (VcId v = 0; v < vcs; ++v) {
            const InputVc &vc = rt.inputVc(port, v);
            if (vc.free() && vc.fifo.empty()) {
                free_vc = v;
                break;
            }
        }
        if (free_vc == kInvalidVc)
            continue;

        const MsgId id = sourceQueues_[node].front();
        sourceQueues_[node].pop_front();
        Message &m = messages_.get(id);
        wn_assert(m.status == MsgStatus::Queued);
        m.status = MsgStatus::Active;
        m.injectStartCycle = now_;
        m.lastInjectCycle = now_;
        m.flitsInjected = 1;
        enqueueFlit(rt, port, free_vc,
                    Flit{id, flitTypeAt(0, m.length), now_ + 1});
        ++inFlight_;
        ++stats_.injected;
        if (measuring_)
            ++stats_.wInjected;
        trace(TraceEvent::InjectStart, id, node, port, free_vc);
    }
}

void
Network::routeAll()
{
    const unsigned in_ports = routerParams_.numInPorts();
    for (NodeId node = 0; node < numNodes(); ++node) {
        Router &rt = routers_[node];
        const unsigned offset = (now_ + node) % in_ports;
        for (unsigned i = 0; i < in_ports; ++i) {
            const PortId port =
                static_cast<PortId>((offset + i) % in_ports);
            for (VcId v = 0; v < routerParams_.vcs; ++v)
                routeOne(rt, port, v);
        }
    }
}

bool
Network::downstreamVcFree(const Router &rt, PortId out_port,
                          VcId vc) const
{
    if (rt.isEjectionPort(out_port))
        return true;
    const LinkEnd &down = rt.downstream(out_port);
    if (!down.valid())
        return false; // dangling mesh-edge port
    const InputVc &dvc = routers_[down.node].inputVc(down.port, vc);
    return dvc.free() && dvc.fifo.empty();
}

void
Network::routeOne(Router &rt, PortId port, VcId v)
{
    InputVc &vc = rt.inputVc(port, v);
    if (vc.free() || vc.routed || vc.recovering || vc.fifo.empty())
        return;
    const Flit &head = vc.fifo.front();
    if (head.readyAt > now_ || !isHeadFlit(head.type))
        return;

    const Message &m = messages_.get(vc.msg);
    routing_.route(rt.nodeId(), m.dst, port, v, candScratch_);

    const PortMask fault_mask =
        faults_ ? faults_->faultyOutMask(rt.nodeId()) : 0;
    freeScratch_.clear();
    PortMask feasible = 0;
    for (const auto &cand : candScratch_) {
        if ((fault_mask >> cand.port) & 1u)
            continue; // dead link: not a feasible channel
        feasible |= PortMask(1) << cand.port;
        std::uint32_t mask = cand.vcMask;
        while (mask) {
            const VcId v2 =
                static_cast<VcId>(__builtin_ctz(mask));
            mask &= mask - 1;
            const OutputVc &out = rt.outputVc(cand.port, v2);
            if (!out.allocated &&
                downstreamVcFree(rt, cand.port, v2))
                freeScratch_.push_back(PortVc{cand.port, v2});
        }
    }

    if (feasible == 0 && !candScratch_.empty()) {
        // Every channel the routing function offers is faulted: the
        // head can never advance, and judging dead channels would be
        // a guaranteed false deadlock. Hand the worm to the fault
        // path instead of the detector.
        faultKillQueue_.push_back(vc.msg);
        return;
    }

    if (!freeScratch_.empty()) {
        const PortVc pick =
            params_.selection == VcSelection::Random
                ? freeScratch_[rng_.nextBounded(freeScratch_.size())]
                : freeScratch_.front();
        OutputVc &out = rt.outputVc(pick.port, pick.vc);
        wn_assert(out.credits == routerParams_.bufDepth);
        out.allocated = true;
        out.msg = vc.msg;
        out.srcPort = port;
        out.srcVc = v;
        vc.routed = true;
        vc.outPort = pick.port;
        vc.outVc = pick.vc;
        vc.allocCycle = now_;
        vc.attempted = false;
        vc.lastFeasible = 0;
        vc.headBlockedSince = kNever;
        detector_.onMessageRouted(rt.nodeId(), port, v);
        trace(TraceEvent::Routed, vc.msg, rt.nodeId(), pick.port,
              pick.vc);
        return;
    }

    const bool first = !vc.attempted;
    if (first) {
        vc.attempted = true;
        vc.headBlockedSince = now_;
        trace(TraceEvent::Blocked, vc.msg, rt.nodeId(), port, v);
    }
    vc.lastFeasible = feasible;
    const bool verdict = detector_.onRoutingFailed(
        rt.nodeId(), port, v, vc.msg, feasible,
        rt.inputPcFullyBusy(port), first, now_);
    if (verdict)
        handleDetection(vc.msg);
}

void
Network::handleDetection(MsgId msg)
{
    Message &m = messages_.get(msg);
    if (m.status == MsgStatus::Recovering)
        return;
    ++stats_.detections;
    if (measuring_) {
        ++stats_.wDetectionEvents;
        if (m.timesDetected == 0)
            ++stats_.wDetectedMessages;
        const auto &deadlocked = deadlockedNow();
        if (std::binary_search(deadlocked.begin(), deadlocked.end(),
                               msg))
            ++stats_.wTrueDetections;
        else
            ++stats_.wFalseDetections;
    }
    ++m.timesDetected;
    for (const auto &entry : deadlockFirstSeen_) {
        if (entry.first == msg) {
            stats_.detectionLatency.add(
                static_cast<double>(now_ - entry.second));
            break;
        }
    }
    trace(TraceEvent::Detected, msg,
          m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
    if (recovery_)
        recovery_->onDeadlockDetected(msg);
}

void
Network::switchAll()
{
    for (NodeId node = 0; node < numNodes(); ++node) {
        Router &rt = routers_[node];
        const PortMask fault_mask =
            faults_ ? faults_->faultyOutMask(node) : 0;
        for (PortId q = 0; q < routerParams_.numOutPorts(); ++q) {
            if ((fault_mask >> q) & 1u)
                continue; // dead link transmits nothing
            // Each allocated output VC names its owning input VC, so
            // the arbiter only has to look at vcs candidates.
            const unsigned vcs = routerParams_.vcs;
            int winner = -1;
            for (unsigned k = 0; k < vcs; ++k) {
                const unsigned v2 = (rt.saRoundRobin[q] + k) % vcs;
                const OutputVc &out =
                    rt.outputVc(q, static_cast<VcId>(v2));
                if (!out.allocated)
                    continue;
                if (!rt.isEjectionPort(q) && out.credits == 0)
                    continue;
                const InputVc &vc =
                    rt.inputVc(out.srcPort, out.srcVc);
                wn_assert(vc.routed && vc.outPort == q);
                if (vc.recovering || vc.fifo.empty())
                    continue;
                if (vc.allocCycle >= now_)
                    continue; // routed this very cycle
                const Flit &f = vc.fifo.front();
                if (f.readyAt > now_)
                    continue;
                wn_assert(f.msg == out.msg);
                winner = static_cast<int>(v2);
                break;
            }
            if (winner < 0)
                continue;
            const OutputVc &out =
                rt.outputVc(q, static_cast<VcId>(winner));
            transferFlit(rt, q, out.srcPort, out.srcVc);
            rt.saRoundRobin[q] = (winner + 1) % vcs;
            txMask_[node] |= PortMask(1) << q;
        }
    }
}

void
Network::transferFlit(Router &rt, PortId out_port, PortId in_port,
                      VcId in_vc)
{
    InputVc &vc = rt.inputVc(in_port, in_vc);
    const VcId out_vc = vc.outVc;
    OutputVc &out = rt.outputVc(out_port, out_vc);

    wn_assert(!portFaulty(rt.nodeId(), out_port));
    const Flit f = popFlit(rt, in_port, in_vc);
    rt.noteTx(out_port, now_);
    ++txCount_[std::size_t(rt.nodeId()) *
                   routerParams_.numOutPorts() +
               out_port];

    if (rt.isEjectionPort(out_port)) {
        Message &m = messages_.get(f.msg);
        ++m.flitsEjected;
        ++stats_.flitsDelivered;
        if (measuring_)
            ++stats_.wFlitsDelivered;
        if (isTailFlit(f.type)) {
            out.release();
            markDelivered(f.msg, false);
        }
        return;
    }

    wn_assert(out.credits > 0);
    --out.credits;
    const LinkEnd &down = rt.downstream(out_port);
    wn_assert(down.valid());
    enqueueFlit(routers_[down.node], down.port, out_vc,
                Flit{f.msg, f.type, now_ + 1});
    if (isTailFlit(f.type))
        out.release();
}

Flit
Network::popFlit(Router &rt, PortId port, VcId v)
{
    InputVc &vc = rt.inputVc(port, v);
    const Flit f = vc.fifo.pop();

    const LinkEnd &up = rt.upstream(port);
    if (up.valid())
        creditReturns_.push_back(CreditReturn{up.node, up.port, v});

    if (isTailFlit(f.type)) {
        Message &m = messages_.get(f.msg);
        wn_assert(m.numLinks() > 0);
        const PathLink &oldest = m.link(0);
        wn_assert(oldest.node == rt.nodeId() &&
                  oldest.port == port && oldest.vc == v);
        m.popFrontLink();
        vc.release();
        detector_.onInputVcFreed(rt.nodeId(), port, v);
    }
    return f;
}

void
Network::enqueueFlit(Router &rt, PortId port, VcId v,
                     const Flit &flit)
{
    InputVc &vc = rt.inputVc(port, v);
    if (isHeadFlit(flit.type)) {
        wn_assert(vc.free() && vc.fifo.empty());
        vc.msg = flit.msg;
        messages_.get(flit.msg).pushLink(rt.nodeId(), port, v);
    }
    wn_assert(vc.msg == flit.msg);
    vc.fifo.push(flit);
}

void
Network::markDelivered(MsgId msg, bool via_recovery)
{
    Message &m = messages_.get(msg);
    wn_assert(m.numLinks() == 0);
    wn_assert(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);
    m.status = MsgStatus::Delivered;
    m.deliverCycle = now_;
    trace(via_recovery ? TraceEvent::DeliveredRecovered
                       : TraceEvent::Delivered,
          msg, m.dst);
    ++stats_.delivered;
    wn_assert(inFlight_ > 0);
    --inFlight_;
    if (via_recovery) {
        m.recovered = true;
        m.flitsEjected = m.length;
        ++stats_.recoveredDeliveries;
    }
    if (measuring_) {
        ++stats_.wDelivered;
        if (via_recovery) {
            ++stats_.wRecoveredDeliveries;
            stats_.wFlitsDelivered += m.length;
        }
        const double lat = static_cast<double>(now_ - m.genCycle);
        stats_.latency.add(lat);
        stats_.latencyHist.add(now_ - m.genCycle);
        if (m.injectStartCycle != kNever)
            stats_.netLatency.add(
                static_cast<double>(now_ - m.injectStartCycle));
    }
}

void
Network::releaseWorm(Message &m)
{
    wn_assert(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);

    // A worm killed while its header is routed (possible with
    // source-side detection or a fault strike) may hold a forward
    // output allocation whose head flit has not crossed yet; release
    // it explicitly — the per-link walk below only restores
    // *upstream* allocations.
    if (m.numLinks() > 0) {
        const PathLink head = m.headLink();
        const InputVc &hvc =
            routers_[head.node].inputVc(head.port, head.vc);
        if (hvc.routed) {
            OutputVc &o =
                routers_[head.node].outputVc(hvc.outPort, hvc.outVc);
            if (o.allocated && o.msg == m.id)
                o.release();
        }
    }

    for (std::size_t i = 0; i < m.numLinks(); ++i) {
        const PathLink &link = m.link(i);
        Router &rt = routers_[link.node];
        InputVc &vc = rt.inputVc(link.port, link.vc);
        wn_assert(vc.msg == m.id);

        const LinkEnd &up = rt.upstream(link.port);
        if (up.valid()) {
            OutputVc &o =
                routers_[up.node].outputVc(up.port, link.vc);
            if (o.allocated && o.msg == m.id)
                o.release();
            // The buffer is about to be emptied: the full credit
            // budget is available again.
            o.credits = routerParams_.bufDepth;
        }

        vc.fifo.clear();
        vc.release();
        detector_.onInputVcFreed(link.node, link.port, link.vc);
    }
    m.clearLinks();
    m.flitsInjected = 0;
    m.flitsEjected = 0;
    wn_assert(inFlight_ > 0);
    --inFlight_;
}

void
Network::killAndRequeue(MsgId msg, Cycle reinject_delay)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Killed;
    ++m.retries;
    ++stats_.kills;
    trace(TraceEvent::Killed, msg, m.src);
    if (measuring_)
        ++stats_.wKills;
    pendingReinjects_.push(Reinject{now_ + reinject_delay, msg});
}

void
Network::killAndAbandon(MsgId msg)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Abandoned;
    ++stats_.abandoned;
    trace(TraceEvent::Abandoned, msg, m.src);
}

bool
Network::drainHeaderFlit(MsgId msg, FlitType &type)
{
    Message &m = messages_.get(msg);
    wn_assert(m.status == MsgStatus::Recovering);
    wn_assert(m.numLinks() > 0);
    const PathLink head = m.headLink();
    Router &rt = routers_[head.node];
    InputVc &vc = rt.inputVc(head.port, head.vc);
    wn_assert(vc.msg == msg && vc.recovering);
    if (vc.fifo.empty() || vc.fifo.front().readyAt > now_)
        return false;
    const Flit f = popFlit(rt, head.port, head.vc);
    ++m.flitsEjected; // consumed into the recovery buffer
    type = f.type;
    return true;
}

void
Network::detectorCycleEnd()
{
    for (NodeId node = 0; node < numNodes(); ++node) {
        const Router &rt = routers_[node];
        PortMask occupied = 0;
        for (PortId q = 0; q < routerParams_.numOutPorts(); ++q) {
            if (rt.outputPcOccupied(q))
                occupied |= PortMask(1) << q;
        }
        // Dead channels are not timed: they will never transmit, so
        // their inactivity says nothing about deadlock.
        if (faults_)
            occupied &= ~faults_->faultyOutMask(node);
        detector_.onCycleEnd(node, txMask_[node], occupied, now_);
    }
}

double
Network::channelUtilization(NodeId node, PortId out_port) const
{
    const Cycle span = now_ - stats_.windowStart;
    if (span == 0)
        return 0.0;
    return static_cast<double>(channelTxCount(node, out_port)) /
           static_cast<double>(span);
}

RunningStat
Network::utilizationSummary() const
{
    RunningStat out;
    for (NodeId node = 0; node < numNodes(); ++node) {
        for (PortId q = 0; q < routerParams_.netPorts; ++q) {
            if (routers_[node].downstream(q).valid())
                out.add(channelUtilization(node, q));
        }
    }
    return out;
}

const std::vector<MsgId> &
Network::deadlockedNow()
{
    if (oracleCacheCycle_ != now_) {
        oracleCache_ = findDeadlockedMessages(*this);
        oracleCacheCycle_ = now_;
    }
    return oracleCache_;
}

void
Network::oracleTick()
{
    if (params_.oraclePeriod == 0 ||
        now_ % params_.oraclePeriod != 0)
        return;
    const auto &deadlocked = deadlockedNow();
    stats_.currentlyDeadlocked = deadlocked.size();

    // Persistence tracking: how long do true deadlocks last?
    std::vector<std::pair<MsgId, Cycle>> next;
    next.reserve(deadlocked.size());
    for (const MsgId id : deadlocked) {
        Cycle first = now_;
        bool known = false;
        for (const auto &entry : deadlockFirstSeen_) {
            if (entry.first == id) {
                first = entry.second;
                known = true;
                break;
            }
        }
        if (!known)
            ++stats_.trueDeadlockedMessages;
        next.emplace_back(id, first);
        stats_.maxDeadlockPersistence =
            std::max(stats_.maxDeadlockPersistence, now_ - first);
    }
    deadlockFirstSeen_ = std::move(next);
}

} // namespace wormnet
