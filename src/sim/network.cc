#include "sim/network.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/serialize.hh"
#include "fault/fault.hh"
#include "recovery/recovery.hh"
#include "sim/oracle.hh"
#include "sim/reconfig.hh"

namespace wormnet
{

Network::Network(const Topology &topo, const NetworkParams &params,
                 RoutingFunction &routing, DeadlockDetector &detector,
                 RecoveryManager *recovery, TrafficPattern &pattern,
                 LengthDistribution &lengths, double flit_rate,
                 std::uint64_t seed)
    : topo_(topo), params_(params), routing_(&routing),
      detector_(detector), recovery_(recovery), pattern_(pattern),
      lengths_(lengths), rng_(seed)
{
    routerParams_.netPorts = topo.numNetPorts();
    routerParams_.injPorts = params.injPorts;
    routerParams_.ejePorts = params.ejePorts;
    routerParams_.vcs = params.vcs;
    routerParams_.bufDepth = params.bufDepth;

    if (params.injPorts < 1 || params.ejePorts < 1)
        fatal("need at least one injection and one ejection port");
    if (lengths.maxLength() < 1)
        fatal("length distribution produces empty messages");

    const NodeId n = topo.numNodes();
    nNodes_ = n; // memoised: numNodes() sits in per-cycle loop bounds
    // All VC records and flit buffers live in the network-global
    // struct-of-arrays store; each Router is a view over its slice.
    vcStore_.init(n, routerParams_);
    routers_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        routers_.emplace_back(i, routerParams_, vcStore_.inBase(i),
                              vcStore_.outBase(i));

    // Wire the network links following the port convention.
    for (NodeId i = 0; i < n; ++i) {
        for (unsigned d = 0; d < topo.numDims(); ++d) {
            for (const bool positive : {true, false}) {
                const PortId q = Topology::outPort(d, positive);
                const NodeId peer = topo.neighbor(i, d, positive);
                if (peer == kInvalidNode)
                    continue; // mesh edge
                const PortId peer_in = Topology::peerInPort(q);
                routers_[i].downstream(q) = LinkEnd{peer, peer_in};
                routers_[peer].upstream(peer_in) = LinkEnd{i, q};
            }
        }
    }

    sourceQueues_.resize(n);
    generators_.reserve(n);
    for (NodeId i = 0; i < n; ++i)
        generators_.emplace_back(i, pattern, lengths, flit_rate,
                                 rng_.split());

    txMask_.assign(n, 0);
    txCount_.assign(std::size_t(n) * routerParams_.numOutPorts(), 0);

    injectionLimitCount_ = static_cast<std::size_t>(
        params.injectionLimitFraction *
        (routerParams_.netPorts * routerParams_.vcs));

    inPorts_ = routerParams_.numInPorts();
    outPorts_ = routerParams_.numOutPorts();
    vcs_ = routerParams_.vcs;
    netPorts_ = routerParams_.netPorts;

    routeActive_.init(n);
    routablePerPort_.assign(std::size_t(n) * inPorts_, 0);
    routablePerNode_.assign(n, 0);
    switchActive_.init(n);
    allocPerPort_.assign(std::size_t(n) * outPorts_, 0);
    allocPerNode_.assign(n, 0);
    allocOutMask_.assign(n, 0);
    netAllocPerNode_.assign(n, 0);
    injActive_.init(n);
    injVcBusy_.assign(n, 0);
    detActive_.init(n);
    detectorIdleStable_ = detector_.idleCycleEndStable();
    detectorWantsCandidates_ = detector_.wantsBlockedCandidates();
    detectorWantsInjStall_ = detector_.wantsInjectionStallReports();
    detectorCycleEndShardSafe_ = detector_.cycleEndShardSafe();
    detectorDeadMask_.assign(n, 0);

    // Steady-state churn should never reallocate the per-cycle
    // scratch buffers.
    txNodes_.reserve(n);
    nodeScratch_.reserve(n);
    creditReturns_.reserve(std::size_t(n) * outPorts_);
    faultKillQueue_.reserve(64);
    candScratch_.reserve(outPorts_);
    freeScratch_.reserve(std::size_t(outPorts_) * vcs_);
    blockedCandScratch_.reserve(outPorts_);

    // The SoA occupancy masks and the route-candidate cache.
    outAllocVcMask_.assign(std::size_t(n) * outPorts_, 0);
    downFreeVcMask_.assign(std::size_t(n) * outPorts_, 0);
    const std::uint32_t all_vcs = (std::uint32_t(1) << vcs_) - 1;
    for (NodeId i = 0; i < n; ++i) {
        for (PortId q = 0; q < outPorts_; ++q) {
            // Ejection ports always accept; dangling mesh-edge ports
            // never do; network links start with every lane free.
            if (routers_[i].isEjectionPort(q) ||
                routers_[i].downstream(q).valid())
                downFreeVcMask_[std::size_t(i) * outPorts_ + q] =
                    all_vcs;
        }
    }
    candMsg_.assign(std::size_t(n) * inPorts_ * vcs_, kInvalidMsg);
    candCount_.assign(candMsg_.size(), 0);
    candPort_.assign(candMsg_.size() * outPorts_, 0);
    candMask_.assign(candMsg_.size() * outPorts_, 0);
    candPortOv_.reserve(2 * outPorts_);
    candMaskOv_.reserve(2 * outPorts_);
    routableVcMask_.assign(std::size_t(n) * inPorts_, 0);
    switchCandVcMask_.assign(std::size_t(n) * outPorts_, 0);
    injIncomplete_.assign(n, 0);
    injSlots_ = routerParams_.injPorts * vcs_;

    // Full-level contract builds (WORMNET_CONTRACTS=full) run the
    // brute-force active-set cross-check every cycle by default; the
    // WORMNET_CHECK_ACTIVE_SETS environment variable overrides in
    // either direction on any build.
    checkActiveSets_ = WORMNET_INVARIANT_ENABLED;
    if (const char *check = std::getenv("WORMNET_CHECK_ACTIVE_SETS"))
        checkActiveSets_ = std::strcmp(check, "0") != 0;
    // Same convention for the SoA mirror cross-check.
    checkSoa_ = WORMNET_INVARIANT_ENABLED;
    if (const char *check = std::getenv("WORMNET_CHECK_SOA"))
        checkSoa_ = std::strcmp(check, "0") != 0;

    DetectorContext ctx;
    ctx.numRouters = n;
    ctx.numInPorts = routerParams_.numInPorts();
    ctx.numOutPorts = routerParams_.numOutPorts();
    ctx.vcs = routerParams_.vcs;
    ctx.topo = &topo_;
    detector_.init(ctx);

    if (recovery_)
        recovery_->init(*this);
}

void
Network::setSimJobs(unsigned jobs)
{
    if (jobs == 0)
        jobs = 1;
    simJobs_ = jobs;

    // Contiguous blocks, rounded up to a multiple of 64 so shard
    // boundaries land on NodeBitset word boundaries: concurrent
    // walks (and the detector sweep's erases) touch disjoint words.
    // Networks of <= 64 nodes always collapse to one shard and stay
    // on the sequential path.
    NodeId shard_size = 0;
    unsigned shards = 0;
    if (jobs > 1 && nNodes_ > 64) {
        shard_size = static_cast<NodeId>(
            (((nNodes_ + jobs - 1) / jobs) + 63) & ~NodeId(63));
        shards = static_cast<unsigned>(
            (nNodes_ + shard_size - 1) / shard_size);
    }
    if (shards <= 1) {
        numShards_ = 0;
        shardSize_ = 0;
        simPool_.reset();
        genStage_.clear();
        genStage_.shrink_to_fit();
        shardScratch_.clear();
        shardScratch_.shrink_to_fit();
        return;
    }

    shardSize_ = shard_size;
    if (numShards_ != shards || !simPool_)
        simPool_ = std::make_unique<ThreadPool>(shards);
    numShards_ = shards;
    genStage_.assign(nNodes_, GenStage{});
    shardScratch_.resize(shards);
    for (ShardScratch &sc : shardScratch_) {
        sc.cand.reserve(outPorts_);
        sc.wins.reserve(shardSize_);
    }
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Network::startMeasurement()
{
    measuring_ = true;
    stats_.startWindow(now_);
    std::fill(txCount_.begin(), txCount_.end(), 0);
}

void
Network::setFlitRate(double flit_rate)
{
    for (auto &gen : generators_)
        gen.setFlitRate(flit_rate);
}

MsgId
Network::injectMessage(NodeId src, NodeId dst, unsigned length)
{
    WORMNET_ASSERT(src < numNodes() && dst < numNodes());
    WORMNET_ASSERT(length >= 1);
    const MsgId id =
        messages_.create(src, dst, length, now_, measuring_);
    ++stats_.generated;
    if (measuring_) {
        ++stats_.wGenerated;
        stats_.wGeneratedFlits += length;
    }
    trace(TraceEvent::Generated, id, src);
    pushSource(src, id, false);
    return id;
}

void
Network::syncRoutable(NodeId node, PortId port, VcId vc)
{
    InputVc &ivc = routers_[node].inputVc(port, vc);
    const bool want =
        ivc.msg != kInvalidMsg && !ivc.routed && !ivc.recovering;
    if (want == ivc.inRouteSet)
        return;
    ivc.inRouteSet = want;
    if (want) {
        ++routablePerPort_[std::size_t(node) * inPorts_ + port];
        routableVcMask_[std::size_t(node) * inPorts_ + port] |=
            std::uint32_t(1) << vc;
        if (routablePerNode_[node]++ == 0)
            routeActive_.insert(node);
    } else {
        --routablePerPort_[std::size_t(node) * inPorts_ + port];
        routableVcMask_[std::size_t(node) * inPorts_ + port] &=
            ~(std::uint32_t(1) << vc);
        if (--routablePerNode_[node] == 0)
            routeActive_.erase(node);
    }
}

void
Network::syncInjActive(NodeId node)
{
    if (!sourceQueues_[node].empty() || injVcBusy_[node] > 0)
        injActive_.insert(node);
    else
        injActive_.erase(node);
}

void
Network::allocOutputVc(NodeId node, PortId port, VcId vc, MsgId msg,
                       PortId src_port, VcId src_vc)
{
    OutputVc &out = routers_[node].outputVc(port, vc);
    WORMNET_ASSERT(!out.allocated);
    out.allocated = true;
    out.msg = msg;
    out.srcPort = src_port;
    out.srcVc = src_vc;
    outAllocVcMask_[std::size_t(node) * outPorts_ + port] |=
        std::uint32_t(1) << vc;
    // Fresh allocations always qualify: full credit budget, head
    // flit still buffered in the source VC, and routing never grants
    // a recovering head.
    switchCandVcMask_[std::size_t(node) * outPorts_ + port] |=
        std::uint32_t(1) << vc;
    if (allocPerPort_[std::size_t(node) * outPorts_ + port]++ == 0)
        allocOutMask_[node] |= PortMask(1) << port;
    if (allocPerNode_[node]++ == 0)
        switchActive_.insert(node);
    if (port < netPorts_)
        ++netAllocPerNode_[node];
    detActive_.insert(node);
}

void
Network::releaseOutputVc(NodeId node, PortId port, VcId vc)
{
    OutputVc &out = routers_[node].outputVc(port, vc);
    WORMNET_ASSERT(out.allocated);
    out.release();
    outAllocVcMask_[std::size_t(node) * outPorts_ + port] &=
        ~(std::uint32_t(1) << vc);
    switchCandVcMask_[std::size_t(node) * outPorts_ + port] &=
        ~(std::uint32_t(1) << vc);
    if (--allocPerPort_[std::size_t(node) * outPorts_ + port] == 0)
        allocOutMask_[node] &= ~(PortMask(1) << port);
    if (--allocPerNode_[node] == 0)
        switchActive_.erase(node);
    if (port < netPorts_)
        --netAllocPerNode_[node];
}

void
Network::releaseInputVc(NodeId node, PortId port, VcId vc)
{
    InputVc &ivc = routers_[node].inputVc(port, vc);
    const bool mid_injection =
        port >= netPorts_ && ivc.msg != kInvalidMsg && !ivc.injDone;
    ivc.release();
    syncRoutable(node, port, vc);
    if (port >= netPorts_) {
        --injVcBusy_[node];
        if (mid_injection)
            --injIncomplete_[node];
        syncInjActive(node);
    } else {
        // The lane upstream of this VC can host a new worm again.
        const LinkEnd &up = routers_[node].upstream(port);
        if (up.valid())
            downFreeVcMask_[std::size_t(up.node) * outPorts_ +
                            up.port] |= std::uint32_t(1) << vc;
    }
    detector_.onInputVcFreed(node, port, vc);
}

void
Network::replayCredits()
{
    for (const auto &cr : creditReturns_) {
        OutputVc &o = routers_[cr.node].outputVc(cr.port, cr.vc);
        ++o.credits;
        WORMNET_ASSERT(o.credits <= routerParams_.bufDepth);
        if (o.credits == 1 && o.allocated) {
            // An allocated output VC always has a live routed source
            // worm; it only becomes a switch candidate again if that
            // worm has a flit buffered and is not being recovered.
            const InputVc &src =
                routers_[cr.node].inputVc(o.srcPort, o.srcVc);
            if (!src.recovering && !src.fifo.empty())
                switchCandVcMask_[std::size_t(cr.node) * outPorts_ +
                                  cr.port] |= std::uint32_t(1)
                                              << cr.vc;
        }
    }
    creditReturns_.clear();
}

void
Network::queueFaultKill(MsgId msg)
{
    Message &m = messages_.get(msg);
    if (m.faultKillQueued)
        return; // worm hit at several points in the same sweep
    m.faultKillQueued = true;
    faultKillQueue_.push_back(msg);
}

void
Network::pushSource(NodeId node, MsgId msg, bool at_front)
{
    if (at_front)
        sourceQueues_[node].push_front(msg);
    else
        sourceQueues_[node].push_back(msg);
    ++totalQueuedCount_;
    injActive_.insert(node);
}

MsgId
Network::popSource(NodeId node)
{
    const MsgId msg = sourceQueues_[node].front();
    sourceQueues_[node].pop_front();
    --totalQueuedCount_;
    syncInjActive(node);
    return msg;
}

void
Network::attachFaultModel(FaultModel *faults)
{
    faults_ = faults;
    if (faults_)
        faults_->init(topo_, routerParams_, rng_.split().next());
}

void
Network::attachReconfig(ReconfigManager *reconfig)
{
    reconfig_ = reconfig;
    if (reconfig_)
        reconfig_->bind(*this);
}

void
Network::setRoutingFunction(RoutingFunction &routing)
{
    routing_ = &routing;
    invalidateRouteCache();
}

void
Network::invalidateRouteCache()
{
    std::fill(candMsg_.begin(), candMsg_.end(), kInvalidMsg);
}

void
Network::resetBlockedHeads()
{
    routeActive_.forEach([this](NodeId node) {
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            if (routablePerPort_[std::size_t(node) * inPorts_ + p] ==
                0)
                continue;
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                if (vc.free() || vc.routed || vc.recovering)
                    continue;
                // The next routing failure becomes a fresh first
                // attempt under the new relation, re-seeding the
                // detector's G/P (or blocked-since) state soundly.
                vc.attempted = false;
                vc.lastFeasible = 0;
                vc.headBlockedSince = kNever;
            }
        }
    });
    // The cached candidate lists were computed under the old routing
    // relation.
    invalidateRouteCache();
    detector_.onRoutingChanged();
}

PortMask
Network::deadOutMask(NodeId node) const
{
    PortMask m = faults_ ? faults_->faultyOutMask(node) : 0;
    if (reconfig_)
        m |= reconfig_->adminDownMask(node);
    return m;
}

bool
Network::nodeOffline(NodeId node) const
{
    return (faults_ && faults_->routerFaulty(node)) ||
           (reconfig_ && reconfig_->drained(node));
}

void
Network::applyDeadPortChanges()
{
    for (NodeId node = 0; node < numNodes(); ++node) {
        const PortMask cur = deadOutMask(node);
        PortMask diff = cur ^ detectorDeadMask_[node];
        if (diff == 0)
            continue;
        while (diff) {
            const PortId q =
                static_cast<PortId>(__builtin_ctz(diff));
            diff &= diff - 1;
            detector_.onPortFaultChanged(node, q,
                                         (cur >> q) & 1u);
        }
        detectorDeadMask_[node] = cur;
    }
}

bool
Network::portFaulty(NodeId node, PortId out_port) const
{
    return out_port < routerParams_.netPorts &&
           ((deadOutMask(node) >> out_port) & 1u);
}

void
Network::step()
{
    // Only nodes that transmitted last cycle have a nonzero mask.
    for (const NodeId node : txNodes_)
        txMask_[node] = 0;
    txNodes_.clear();

    faultTick();
    generateAndInject();
    if (phaseTimers_) {
        using clock = std::chrono::steady_clock;
        // wormnet-lint: allow(banned-api): --phase-timers diagnostic;
        // feeds stderr-only per-phase nanosecond totals, never state
        const auto t0 = clock::now();
        routeAll();
        // wormnet-lint: allow(banned-api): diagnostic phase timer
        const auto t1 = clock::now();
        switchAll();
        // wormnet-lint: allow(banned-api): diagnostic phase timer
        const auto t2 = clock::now();
        vaNanos_ += std::chrono::duration_cast<
                        std::chrono::nanoseconds>(t1 - t0)
                        .count();
        saNanos_ += std::chrono::duration_cast<
                        std::chrono::nanoseconds>(t2 - t1)
                        .count();
    } else {
        routeAll();
        switchAll();
    }

    // Credits freed by switch pops become visible next cycle. A VC
    // coming off zero credits is a switch candidate again, provided
    // its source worm still has a flit buffered to send.
    replayCredits();

    if (recovery_) {
        recovery_->tick();
        replayCredits();
    }

    // Kills queued by the routing phase (heads with every live
    // candidate gone) happen after the switch phase so the cycle's
    // transfers acted on consistent state.
    processFaultKills();

    detectorCycleEnd();
    oracleTick();

    if (checkActiveSets_)
        verifyActiveSets();
    if (checkSoa_)
        verifySoaState();

    ++now_;
}

bool
Network::injectionAllowed(NodeId node) const
{
    return netAllocPerNode_[node] <= injectionLimitCount_;
}

void
Network::faultTick()
{
    if (faults_) {
        const bool changed = faults_->tick(now_);
        stats_.faultsInjected = faults_->faultsInjected();
        stats_.faultsRepaired = faults_->faultsRepaired();
        if (changed) {
            // Overlapping fault/admin causes are mediated: the
            // detector hears only *combined* dead-state flips.
            applyDeadPortChanges();
            bool any_down = false;
            for (const FaultChange &c : faults_->changes())
                any_down |= c.faulty;
            if (any_down)
                scanForStrandedWorms();
            processFaultKills();
        }
    }
    // Reconfiguration epochs ride the same machinery, after fault
    // processing so an epoch sees the cycle's final fault state.
    if (reconfig_)
        reconfig_->tick(now_);
}

void
Network::scanForStrandedWorms()
{
    // Callers only invoke this when a link or router actually went
    // down (fault flip or reconfiguration removal); the scan itself
    // is idempotent over the current dead-resource state.
    for (NodeId node = 0; node < numNodes(); ++node) {
        const bool dead_router = nodeOffline(node);
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                if (vc.free())
                    continue;
                if (dead_router) {
                    // Anything still buffered in a dead router is
                    // lost.
                    queueFaultKill(vc.msg);
                    continue;
                }
                if (!vc.routed || !portFaulty(node, vc.outPort))
                    continue;
                const Message &m = messages_.get(vc.msg);
                const PathLink &head = m.headLink();
                if (head.node == node && head.port == p &&
                    head.vc == v) {
                    // The worm's head is routed toward the dead link
                    // but no flit has crossed it yet (crossing would
                    // have pushed a new head link): back the decision
                    // out and let the next routing phase pick a live
                    // channel.
                    const OutputVc &out =
                        rt.outputVc(vc.outPort, vc.outVc);
                    WORMNET_ASSERT(out.allocated && out.msg == vc.msg);
                    WORMNET_ASSERT(out.credits == routerParams_.bufDepth);
                    releaseOutputVc(node, vc.outPort, vc.outVc);
                    vc.routed = false;
                    vc.outPort = kInvalidPort;
                    vc.outVc = kInvalidVc;
                    vc.allocCycle = kNever;
                    vc.attempted = false;
                    vc.headBlockedSince = kNever;
                    syncRoutable(node, p, v);
                    detector_.onRouteRetracted(node, p, v);
                    ++stats_.faultReroutes;
                    trace(TraceEvent::Rerouted, vc.msg, node, p, v);
                } else {
                    // Body/tail flits still feed the dead link: the
                    // worm is cut in two and cannot make progress.
                    queueFaultKill(vc.msg);
                }
            }
        }
    }
}

void
Network::processFaultKills()
{
    for (const MsgId msg : faultKillQueue_) {
        Message &m = messages_.get(msg);
        m.faultKillQueued = false;
        if (m.status != MsgStatus::Active &&
            m.status != MsgStatus::Recovering)
            continue; // e.g. recovery completed it this very cycle
        stats_.faultFlitsDropped += m.flitsInjected - m.flitsEjected;
        ++stats_.faultKills;
        trace(TraceEvent::FaultKilled, msg,
              m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
        if (recovery_)
            recovery_->onMessageKilled(msg);
        if (m.retries >= params_.maxRetries) {
            killAndAbandon(msg);
            continue;
        }
        // Deterministic per-message jitter, as in regressive
        // recovery, so co-stranded messages do not retry in lockstep.
        const Cycle jitter =
            (static_cast<Cycle>(msg) * 2654435761u) %
            (params_.faultRetryDelay + 1);
        killAndRequeue(msg, params_.faultRetryDelay + jitter);
    }
    faultKillQueue_.clear();
}

void
Network::generateAndInject()
{
    // Re-inject messages killed by regressive recovery.
    while (!pendingReinjects_.empty() &&
           pendingReinjects_.top().when <= now_) {
        const MsgId id = pendingReinjects_.top().msg;
        pendingReinjects_.pop();
        Message &m = messages_.get(id);
        WORMNET_ASSERT(m.status == MsgStatus::Killed);
        m.status = MsgStatus::Queued;
        trace(TraceEvent::Reinjected, id, m.src);
        pushSource(m.src, id, true);
    }

    // Every live node draws from its generator each cycle (the
    // arrival process is a per-cycle Bernoulli trial), but only
    // active injectors — a queued message or an in-progress worm —
    // are worth a port/VC scan.
    if (numShards_ > 1) {
        // Sharded: each generator owns a private Rng split off the
        // master stream at construction, so the draws are
        // order-independent — tick them in parallel into genStage_,
        // then commit in ascending node order. The commit interleave
        // (message creation, stats, source push, injection attempt
        // per node) matches the sequential loop exactly, so MsgId
        // assignment and injection decisions are identical.
        runOnShards([this](unsigned, NodeId begin, NodeId end) {
            stageGeneration(begin, end);
        });
        for (NodeId node = 0; node < numNodes(); ++node) {
            if (nodeOffline(node))
                continue;
            const GenStage &st = genStage_[node];
            if (st.has) {
                if (params_.maxSourceQueue == 0 ||
                    sourceQueues_[node].size() <
                        params_.maxSourceQueue) {
                    const MsgId id = messages_.create(
                        node, st.dst, st.length, now_, measuring_);
                    ++stats_.generated;
                    if (measuring_) {
                        ++stats_.wGenerated;
                        stats_.wGeneratedFlits += st.length;
                    }
                    trace(TraceEvent::Generated, id, node);
                    pushSource(node, id, false);
                }
            }
            if (injActive_.contains(node))
                tryStartInjection(node);
        }
        return;
    }

    for (NodeId node = 0; node < numNodes(); ++node) {
        if (nodeOffline(node))
            continue; // dead or drained: no generation, no injection
        if (auto gen = generators_[node].tick()) {
            if (params_.maxSourceQueue == 0 ||
                sourceQueues_[node].size() < params_.maxSourceQueue) {
                const MsgId id = messages_.create(
                    node, gen->dst, gen->length, now_, measuring_);
                ++stats_.generated;
                if (measuring_) {
                    ++stats_.wGenerated;
                    stats_.wGeneratedFlits += gen->length;
                }
                trace(TraceEvent::Generated, id, node);
                pushSource(node, id, false);
            }
        }
        if (injActive_.contains(node))
            tryStartInjection(node);
    }
}

void
Network::stageGeneration(NodeId begin, NodeId end)
{
    // Worker pass: reads node-offline state (frozen during this
    // phase) and each node's private generator Rng; writes only this
    // shard's genStage_ slots.
    for (NodeId node = begin; node < end; ++node) {
        GenStage &st = genStage_[node];
        st.has = false;
        if (nodeOffline(node))
            continue;
        if (auto gen = generators_[node].tick()) {
            st.dst = gen->dst;
            st.length = gen->length;
            st.has = true;
        }
    }
}

void
Network::tryStartInjection(NodeId node)
{
    // Saturated steady state: every injection VC holds a fully
    // injected (blocked) worm and the source queue backs up. Nothing
    // below can have any effect — no refills, no stall reports (all
    // injDone), no free VC for a new worm — so skip the port scans.
    if (injVcBusy_[node] == injSlots_ && injIncomplete_[node] == 0)
        return;

    Router &rt = routers_[node];
    const unsigned vcs = routerParams_.vcs;

    for (unsigned pi = 0; pi < routerParams_.injPorts; ++pi) {
        const PortId port =
            static_cast<PortId>(routerParams_.netPorts + pi);

        // Refill in-progress worms first (1 flit/cycle/port). The
        // injDone flag mirrors flitsInjected >= length so the common
        // fully-injected-but-blocked worm is skipped without loading
        // its Message record.
        VcId pushed_vc = kInvalidVc;
        for (unsigned k = 0;
             injIncomplete_[node] != 0 && k < vcs &&
             pushed_vc == kInvalidVc;
             ++k) {
            unsigned vi = rt.injRoundRobin[pi] + k;
            if (vi >= vcs)
                vi -= vcs;
            const VcId v = static_cast<VcId>(vi);
            InputVc &vc = rt.inputVc(port, v);
            if (vc.free() || vc.injDone || vc.fifo.full())
                continue;
            Message &m = messages_.get(vc.msg);
            if (m.flitsInjected == 0)
                continue;
            enqueueFlit(rt, port, v,
                        Flit{m.id,
                             flitTypeAt(m.flitsInjected, m.length),
                             now_ + 1});
            ++m.flitsInjected;
            if (m.flitsInjected >= m.length) {
                vc.injDone = true;
                --injIncomplete_[node];
            }
            m.lastInjectCycle = now_;
            rt.injRoundRobin[pi] = (v + 1) % vcs;
            pushed_vc = v;
        }

        // Source-side stall observation for the timeout mechanisms
        // of Reeves et al. and compressionless routing: any
        // incompletely injected worm that did not push a flit this
        // cycle is reported to the detector. Router-centric
        // detectors never look at these, so the scan is skipped.
        if (detectorWantsInjStall_) {
            for (VcId v = 0; v < vcs; ++v) {
                if (v == pushed_vc)
                    continue;
                const InputVc &vc = rt.inputVc(port, v);
                if (vc.free() || vc.recovering || vc.injDone)
                    continue;
                const Message &m = messages_.get(vc.msg);
                if (m.status != MsgStatus::Active ||
                    m.flitsInjected == 0)
                    continue;
                const bool verdict = detector_.onInjectionStalled(
                    node, port, v, m.id, now_ - m.injectStartCycle,
                    now_ - m.lastInjectCycle, now_);
                if (verdict)
                    handleDetection(m.id);
            }
        }
        if (pushed_vc != kInvalidVc)
            continue;

        // Otherwise try to start a new message on this port. With
        // every injection VC busy there can be no free VC below.
        if (injVcBusy_[node] == injSlots_)
            continue;
        if (sourceQueues_[node].empty())
            continue;
        if (params_.injectionLimit && !injectionAllowed(node))
            continue;
        VcId free_vc = kInvalidVc;
        for (VcId v = 0; v < vcs; ++v) {
            const InputVc &vc = rt.inputVc(port, v);
            if (vc.free() && vc.fifo.empty()) {
                free_vc = v;
                break;
            }
        }
        if (free_vc == kInvalidVc)
            continue;

        const MsgId id = popSource(node);
        Message &m = messages_.get(id);
        WORMNET_ASSERT(m.status == MsgStatus::Queued);
        m.status = MsgStatus::Active;
        m.injectStartCycle = now_;
        m.lastInjectCycle = now_;
        m.flitsInjected = 1;
        enqueueFlit(rt, port, free_vc,
                    Flit{id, flitTypeAt(0, m.length), now_ + 1});
        rt.inputVc(port, free_vc).injDone = m.length <= 1;
        if (m.length > 1)
            ++injIncomplete_[node];
        ++inFlight_;
        ++stats_.injected;
        if (measuring_)
            ++stats_.wInjected;
        trace(TraceEvent::InjectStart, id, node, port, free_vc);
    }
}

void
Network::routeAll()
{
    // Sharded: warm the pure route-candidate cache in parallel
    // first. The routing function is pure in (node, dst, in_port,
    // in_vc) and the workers write only their own shard's cache
    // slots, so the sequential walk below — which must stay
    // sequential because VC selection consumes the single global Rng
    // stream in node order — then runs almost entirely on cache
    // hits. Its observable behaviour is unchanged: a warmed entry
    // holds exactly what route() would have produced inline.
    if (numShards_ > 1) {
        runOnShards([this](unsigned shard, NodeId begin, NodeId end) {
            warmRouteCandidates(shard, begin, end);
        });
    }

    // Word-at-a-time walk of the active nodes: routing can only
    // shrink the set (grants and recovery verdicts), and a shrunken
    // entry's routeOne is a no-op, exactly as in the exhaustive scan.
    routeActive_.forEach([this](NodeId node) {
        Router &rt = routers_[node];
        const PortMask fault_mask = deadOutMask(node);
        const unsigned offset = (now_ + node) % inPorts_;
        for (unsigned i = 0; i < inPorts_; ++i) {
            unsigned port = offset + i;
            if (port >= inPorts_)
                port -= inPorts_;
            // Snapshot: a grant clears only the granted VC's bit
            // (already visited), and concurrent recovery marks are
            // re-checked inside routeOne.
            std::uint32_t vcm =
                routableVcMask_[std::size_t(node) * inPorts_ + port];
            while (vcm) {
                const VcId v =
                    static_cast<VcId>(__builtin_ctz(vcm));
                vcm &= vcm - 1;
                routeOne(rt, static_cast<PortId>(port), v,
                         fault_mask);
            }
        }
    });
}

void
Network::warmRouteCandidates(unsigned shard, NodeId begin, NodeId end)
{
    // Worker pass over frozen state: replicates routeOne()'s guards
    // so only heads the sequential walk will actually present get
    // warmed, calls the (pure, const) routing function into this
    // shard's private scratch, and fills the cache slots of this
    // shard's own input VCs — disjoint writes across workers.
    // Candidate lists wider than the cache line are left cold
    // (candMsg_ untouched); routeOne()'s sequential spill path
    // handles them as before.
    std::vector<RouteCandidate> &scratch = shardScratch_[shard].cand;
    routeActive_.forEachInRange(begin, end, [&](NodeId node) {
        const Router &rt = routers_[node];
        for (PortId port = 0; port < inPorts_; ++port) {
            std::uint32_t vcm =
                routableVcMask_[std::size_t(node) * inPorts_ + port];
            while (vcm) {
                const VcId v =
                    static_cast<VcId>(__builtin_ctz(vcm));
                vcm &= vcm - 1;
                const InputVc &vc = rt.inputVc(port, v);
                if (vc.free() || vc.routed || vc.recovering ||
                    vc.fifo.empty())
                    continue;
                const Flit &head = vc.fifo.front();
                if (head.readyAt > now_ || !isHeadFlit(head.type))
                    continue;
                const std::size_t flat =
                    (std::size_t(node) * inPorts_ + port) * vcs_ + v;
                if (candMsg_[flat] == vc.msg)
                    continue; // already warm
                routing_->route(node, vc.dst, port, v, scratch);
                const unsigned ncand =
                    static_cast<unsigned>(scratch.size());
                if (ncand > outPorts_)
                    continue;
                std::uint16_t *cp = &candPort_[flat * outPorts_];
                std::uint32_t *cm = &candMask_[flat * outPorts_];
                for (unsigned i = 0; i < ncand; ++i) {
                    cp[i] = scratch[i].port;
                    cm[i] = scratch[i].vcMask;
                }
                candCount_[flat] = static_cast<std::uint8_t>(ncand);
                candMsg_[flat] = vc.msg;
            }
        }
    });
}

bool
Network::downstreamVcFree(const Router &rt, PortId out_port,
                          VcId vc) const
{
    if (rt.isEjectionPort(out_port))
        return true;
    const LinkEnd &down = rt.downstream(out_port);
    if (!down.valid())
        return false; // dangling mesh-edge port
    const InputVc &dvc = routers_[down.node].inputVc(down.port, vc);
    return dvc.free() && dvc.fifo.empty();
}

void
Network::routeOne(Router &rt, PortId port, VcId v,
                  PortMask fault_mask)
{
    InputVc &vc = rt.inputVc(port, v);
    if (vc.free() || vc.routed || vc.recovering || vc.fifo.empty())
        return;
    const Flit &head = vc.fifo.front();
    if (head.readyAt > now_ || !isHeadFlit(head.type))
        return;

    const NodeId node = rt.nodeId();

    // The routing function is pure in (node, dst, in_port, in_vc),
    // so a blocked head re-presents identical candidates every cycle:
    // serve them from the per-VC cache and only call route() when the
    // occupant changed (or the relation did — bulk invalidation).
    const std::size_t flat =
        (std::size_t(node) * inPorts_ + port) * vcs_ + v;
    const std::uint16_t *cports;
    const std::uint32_t *cmasks;
    unsigned ncand;
    if (candMsg_[flat] == vc.msg) {
        cports = &candPort_[flat * outPorts_];
        cmasks = &candMask_[flat * outPorts_];
        ncand = candCount_[flat];
    } else {
        routing_->route(node, vc.dst, port, v, candScratch_);
        ncand = static_cast<unsigned>(candScratch_.size());
        if (ncand <= outPorts_) {
            std::uint16_t *cp = &candPort_[flat * outPorts_];
            std::uint32_t *cm = &candMask_[flat * outPorts_];
            for (unsigned i = 0; i < ncand; ++i) {
                cp[i] = candScratch_[i].port;
                cm[i] = candScratch_[i].vcMask;
            }
            candCount_[flat] = static_cast<std::uint8_t>(ncand);
            candMsg_[flat] = vc.msg;
            cports = cp;
            cmasks = cm;
        } else {
            // Wider than the cache line for this VC: spill, marked
            // uncacheable so the next attempt re-routes.
            candPortOv_.clear();
            candMaskOv_.clear();
            for (const auto &cand : candScratch_) {
                candPortOv_.push_back(cand.port);
                candMaskOv_.push_back(cand.vcMask);
            }
            candMsg_[flat] = kInvalidMsg;
            cports = candPortOv_.data();
            cmasks = candMaskOv_.data();
        }
    }

    freeScratch_.clear();
    PortMask feasible = 0;
    const std::uint32_t *alloc =
        &outAllocVcMask_[std::size_t(node) * outPorts_];
    const std::uint32_t *dfree =
        &downFreeVcMask_[std::size_t(node) * outPorts_];
    for (unsigned i = 0; i < ncand; ++i) {
        const PortId q = static_cast<PortId>(cports[i]);
        if ((fault_mask >> q) & 1u)
            continue; // dead link: not a feasible channel
        feasible |= PortMask(1) << q;
        // A VC is takeable when not allocated here and free-and-empty
        // downstream — the same test the per-VC scan made, one load
        // per physical channel instead of three pointer chases per
        // lane, visited in the identical ascending-VC order.
        std::uint32_t mask = cmasks[i] & ~alloc[q] & dfree[q];
        while (mask) {
            const VcId v2 =
                static_cast<VcId>(__builtin_ctz(mask));
            mask &= mask - 1;
            freeScratch_.push_back(PortVc{q, v2});
        }
    }

    if (feasible == 0 && ncand != 0) {
        // Every channel the routing function offers is faulted: the
        // head can never advance, and judging dead channels would be
        // a guaranteed false deadlock. Hand the worm to the fault
        // path instead of the detector.
        queueFaultKill(vc.msg);
        return;
    }

    if (!freeScratch_.empty()) {
        const PortVc pick =
            params_.selection == VcSelection::Random
                ? freeScratch_[rng_.nextBounded(freeScratch_.size())]
                : freeScratch_.front();
        WORMNET_ASSERT(rt.outputVc(pick.port, pick.vc).credits ==
                  routerParams_.bufDepth);
        allocOutputVc(node, pick.port, pick.vc, vc.msg, port, v);
        vc.routed = true;
        vc.outPort = pick.port;
        vc.outVc = pick.vc;
        vc.allocCycle = now_;
        vc.attempted = false;
        vc.lastFeasible = 0;
        vc.headBlockedSince = kNever;
        syncRoutable(node, port, v);
        detector_.onMessageRouted(node, port, v, vc.msg, pick.port,
                                  pick.vc);
        trace(TraceEvent::Routed, vc.msg, node, pick.port, pick.vc);
        return;
    }

    const bool first = !vc.attempted;
    if (first) {
        vc.attempted = true;
        vc.headBlockedSince = now_;
        trace(TraceEvent::Blocked, vc.msg, node, port, v);
    }
    vc.lastFeasible = feasible;
    if (detectorWantsCandidates_) {
        blockedCandScratch_.clear();
        for (unsigned i = 0; i < ncand; ++i) {
            if ((fault_mask >> cports[i]) & 1u)
                continue;
            blockedCandScratch_.push_back(BlockedCandidate{
                static_cast<PortId>(cports[i]), cmasks[i]});
        }
        detector_.onBlockedCandidates(
            node, port, v, vc.msg, blockedCandScratch_.data(),
            blockedCandScratch_.size(), now_);
    }
    const bool verdict = detector_.onRoutingFailed(
        node, port, v, vc.msg, feasible, rt.inputPcFullyBusy(port),
        first, now_);
    if (verdict)
        handleDetection(vc.msg);
}

void
Network::handleDetection(MsgId msg)
{
    Message &m = messages_.get(msg);
    if (m.status == MsgStatus::Recovering)
        return;
    ++stats_.detections;
    if (measuring_) {
        ++stats_.wDetectionEvents;
        if (m.timesDetected == 0)
            ++stats_.wDetectedMessages;
        const auto &deadlocked = deadlockedNow();
        if (std::binary_search(deadlocked.begin(), deadlocked.end(),
                               msg))
            ++stats_.wTrueDetections;
        else
            ++stats_.wFalseDetections;
    }
    ++m.timesDetected;
    const Cycle seen = msg < deadlockFirstSeen_.size()
                           ? deadlockFirstSeen_[msg]
                           : kNever;
    if (seen != kNever)
        stats_.detectionLatency.add(static_cast<double>(now_ - seen));
    trace(TraceEvent::Detected, msg,
          m.numLinks() > 0 ? m.headLink().node : kInvalidNode);
    if (recovery_)
        recovery_->onDeadlockDetected(msg);
}

void
Network::switchAll()
{
    // Sharded: arbitration decisions depend only on state frozen at
    // the start of the phase — a transfer's same-cycle side effects
    // can never change another winner. Cross-node: flits land
    // downstream with readyAt = now_+1 (a re-armed candidate bit is
    // skipped by the readyAt re-check either way) and credits are
    // deferred through creditReturns_. Within a node: each input VC
    // feeds exactly one output VC and a transfer only mutates its
    // own (in, out) pair's state. So the per-shard decide pass over
    // frozen state picks exactly the winners the interleaved
    // sequential scan would, and the commit below replays them in
    // ascending node order — the identical interleaving.
    if (numShards_ > 1) {
        runOnShards([this](unsigned shard, NodeId begin, NodeId end) {
            switchDecideShard(shard, begin, end);
        });
        // Shards are contiguous ascending blocks and each decision
        // list is in ascending (node, port) order, so this walk is
        // the sequential commit order.
        for (unsigned s = 0; s < numShards_; ++s) {
            for (const SwitchDecision &dec : shardScratch_[s].wins) {
                Router &rt = routers_[dec.node];
                OutputVc &out = rt.outputVc(dec.port, dec.vc);
                InputVc &vc = rt.inputVc(out.srcPort, out.srcVc);
                transferFlit(rt, dec.port, dec.vc, out, vc);
                rt.saRoundRobin[dec.port] =
                    (unsigned(dec.vc) + 1) % vcs_;
                if (txMask_[dec.node] == 0)
                    txNodes_.push_back(dec.node);
                txMask_[dec.node] |= PortMask(1) << dec.port;
                detActive_.insert(dec.node);
            }
            shardScratch_[s].wins.clear();
        }
        return;
    }

    // Transfers can release output VCs (tail flits) but never
    // allocate, so the set only shrinks while iterating — and a port
    // whose last VC was just released yields no winner, same as the
    // exhaustive scan.
    switchActive_.forEach([this](NodeId node) {
        Router &rt = routers_[node];
        const PortMask fault_mask = deadOutMask(node);
        // Ports without an allocated VC have no switch candidates;
        // iterating the mask's set bits ascending preserves the full
        // scan's port order.
        PortMask ports = allocOutMask_[node] & ~fault_mask;
        while (ports) {
            const PortId q = static_cast<PortId>(
                __builtin_ctz(ports));
            ports &= ports - 1;
            // The candidate mask holds exactly the allocated VCs
            // with credit headroom whose source worm has a buffered
            // flit and is not recovering; only the cycle-local
            // conditions (flit in transit, routed this very cycle)
            // are re-checked per candidate. Splitting the mask at
            // the round-robin pointer preserves the (rr + k) % vcs
            // probe order of the exhaustive scan.
            const std::uint32_t cand =
                switchCandVcMask_[std::size_t(node) * outPorts_ + q];
            if (cand == 0)
                continue;
            const unsigned rr = rt.saRoundRobin[q];
            int winner = -1;
            OutputVc *wout = nullptr;
            InputVc *wvc = nullptr;
            std::uint32_t part =
                cand & ~((std::uint32_t(1) << rr) - 1);
            for (int half = 0; half < 2 && winner < 0; ++half) {
                while (part) {
                    const unsigned v2 = static_cast<unsigned>(
                        __builtin_ctz(part));
                    part &= part - 1;
                    OutputVc &out =
                        rt.outputVc(q, static_cast<VcId>(v2));
                    InputVc &vc =
                        rt.inputVc(out.srcPort, out.srcVc);
                    WORMNET_ASSERT(vc.routed && vc.outPort == q);
                    WORMNET_ASSERT(!vc.recovering &&
                                   !vc.fifo.empty());
                    if (vc.allocCycle >= now_)
                        continue; // routed this very cycle
                    const Flit &f = vc.fifo.front();
                    if (f.readyAt > now_)
                        continue;
                    WORMNET_ASSERT(f.msg == out.msg);
                    winner = static_cast<int>(v2);
                    wout = &out;
                    wvc = &vc;
                    break;
                }
                part = cand & ((std::uint32_t(1) << rr) - 1);
            }
            if (winner < 0)
                continue;
            transferFlit(rt, q, static_cast<VcId>(winner), *wout,
                         *wvc);
            rt.saRoundRobin[q] = (winner + 1) % vcs_;
            if (txMask_[node] == 0)
                txNodes_.push_back(node);
            txMask_[node] |= PortMask(1) << q;
            detActive_.insert(node);
        }
    });
}

void
Network::switchDecideShard(unsigned shard, NodeId begin, NodeId end)
{
    // Worker pass: the exact arbitration scan of the sequential
    // switchAll() — same port order, same split-at-round-robin VC
    // probe order, same cycle-local re-checks — minus every
    // mutation. Reads only this shard's router state plus the
    // (frozen) fault masks; writes only the shard-private decision
    // list.
    std::vector<SwitchDecision> &wins = shardScratch_[shard].wins;
    wins.clear();
    switchActive_.forEachInRange(begin, end, [&](NodeId node) {
        const Router &rt = routers_[node];
        const PortMask fault_mask = deadOutMask(node);
        PortMask ports = allocOutMask_[node] & ~fault_mask;
        while (ports) {
            const PortId q = static_cast<PortId>(
                __builtin_ctz(ports));
            ports &= ports - 1;
            const std::uint32_t cand =
                switchCandVcMask_[std::size_t(node) * outPorts_ + q];
            if (cand == 0)
                continue;
            const unsigned rr = rt.saRoundRobin[q];
            int winner = -1;
            std::uint32_t part =
                cand & ~((std::uint32_t(1) << rr) - 1);
            for (int half = 0; half < 2 && winner < 0; ++half) {
                while (part) {
                    const unsigned v2 = static_cast<unsigned>(
                        __builtin_ctz(part));
                    part &= part - 1;
                    const OutputVc &out =
                        rt.outputVc(q, static_cast<VcId>(v2));
                    const InputVc &vc =
                        rt.inputVc(out.srcPort, out.srcVc);
                    WORMNET_ASSERT(vc.routed && vc.outPort == q);
                    WORMNET_ASSERT(!vc.recovering &&
                                   !vc.fifo.empty());
                    if (vc.allocCycle >= now_)
                        continue; // routed this very cycle
                    const Flit &f = vc.fifo.front();
                    if (f.readyAt > now_)
                        continue;
                    WORMNET_ASSERT(f.msg == out.msg);
                    winner = static_cast<int>(v2);
                    break;
                }
                part = cand & ((std::uint32_t(1) << rr) - 1);
            }
            if (winner < 0)
                continue;
            wins.push_back(SwitchDecision{
                node, q, static_cast<VcId>(winner)});
        }
    });
}

void
Network::transferFlit(Router &rt, PortId out_port, VcId out_vc,
                      OutputVc &out, InputVc &vc)
{
    const PortId in_port = out.srcPort;
    const VcId in_vc = out.srcVc;
    WORMNET_ASSERT(&vc == &rt.inputVc(in_port, in_vc) &&
                   &out == &rt.outputVc(out_port, out_vc));

    // Re-deriving the dead mask per transfer is a double fault-model
    // lookup — full-level only; switchAll already filtered the port.
    WORMNET_INVARIANT(!portFaulty(rt.nodeId(), out_port));

    // Inlined popFlit(): the caller already resolved the input VC.
    const Flit f = vc.fifo.pop();
    const LinkEnd &up = rt.upstream(in_port);
    if (up.valid())
        creditReturns_.push_back(
            CreditReturn{up.node, up.port, in_vc});
    if (isTailFlit(f.type)) {
        Message &m = messages_.get(f.msg);
        WORMNET_ASSERT(m.numLinks() > 0);
        WORMNET_INVARIANT(m.link(0).node == rt.nodeId() &&
                          m.link(0).port == in_port &&
                          m.link(0).vc == in_vc);
        m.popFrontLink();
        releaseInputVc(rt.nodeId(), in_port, in_vc);
    }
    ++flitHops_;
    rt.noteTx(out_port, now_);
    ++txCount_[std::size_t(rt.nodeId()) *
                   routerParams_.numOutPorts() +
               out_port];

    if (rt.isEjectionPort(out_port)) {
        Message &m = messages_.get(f.msg);
        ++m.flitsEjected;
        ++stats_.flitsDelivered;
        if (measuring_)
            ++stats_.wFlitsDelivered;
        if (isTailFlit(f.type)) {
            releaseOutputVc(rt.nodeId(), out_port, out_vc);
            markDelivered(f.msg, false);
        } else if (vc.fifo.empty()) {
            // Worm stretched thin: nothing buffered to eject until
            // the next flit arrives from upstream.
            switchCandVcMask_[std::size_t(rt.nodeId()) * outPorts_ +
                              out_port] &=
                ~(std::uint32_t(1) << out_vc);
        }
        return;
    }

    WORMNET_ASSERT(out.credits > 0);
    if (--out.credits == 0 ||
        (!isTailFlit(f.type) && vc.fifo.empty()))
        switchCandVcMask_[std::size_t(rt.nodeId()) * outPorts_ +
                          out_port] &= ~(std::uint32_t(1) << out_vc);
    const LinkEnd &down = rt.downstream(out_port);
    WORMNET_ASSERT(down.valid());
    enqueueFlit(routers_[down.node], down.port, out_vc,
                Flit{f.msg, f.type, now_ + 1});
    if (isTailFlit(f.type))
        releaseOutputVc(rt.nodeId(), out_port, out_vc);
}

Flit
Network::popFlit(Router &rt, PortId port, VcId v)
{
    InputVc &vc = rt.inputVc(port, v);
    const Flit f = vc.fifo.pop();

    const LinkEnd &up = rt.upstream(port);
    if (up.valid())
        creditReturns_.push_back(CreditReturn{up.node, up.port, v});

    if (isTailFlit(f.type)) {
        Message &m = messages_.get(f.msg);
        WORMNET_ASSERT(m.numLinks() > 0);
        // Redundant recomputation of the tail position — full-level
        // only, it costs a path-slab pointer chase per tail flit.
        WORMNET_INVARIANT(m.link(0).node == rt.nodeId() &&
                          m.link(0).port == port &&
                          m.link(0).vc == v);
        m.popFrontLink();
        releaseInputVc(rt.nodeId(), port, v);
    }
    return f;
}

void
Network::enqueueFlit(Router &rt, PortId port, VcId v,
                     const Flit &flit)
{
    InputVc &vc = rt.inputVc(port, v);
    if (isHeadFlit(flit.type)) {
        WORMNET_ASSERT(vc.free() && vc.fifo.empty());
        Message &m = messages_.get(flit.msg);
        vc.msg = flit.msg;
        vc.dst = m.dst; // cached for the routing phase
        m.pushLink(rt.nodeId(), port, v);
        syncRoutable(rt.nodeId(), port, v);
        detector_.onChannelOccupied(rt.nodeId(), port, v, flit.msg);
        if (port >= netPorts_) {
            ++injVcBusy_[rt.nodeId()];
            injActive_.insert(rt.nodeId());
        } else {
            const LinkEnd &up = rt.upstream(port);
            if (up.valid())
                downFreeVcMask_[std::size_t(up.node) * outPorts_ +
                                up.port] &=
                    ~(std::uint32_t(1) << v);
        }
    }
    WORMNET_ASSERT(vc.msg == flit.msg);
    const bool was_empty = vc.fifo.empty();
    vc.fifo.push(flit);
    // A body flit reaching a routed-but-starved worm re-arms its
    // granted output VC as a switch candidate (heads are never
    // routed yet, and recovering worms re-qualify on release).
    if (was_empty && vc.routed && !vc.recovering) {
        const OutputVc &out = rt.outputVc(vc.outPort, vc.outVc);
        if (rt.isEjectionPort(vc.outPort) || out.credits > 0)
            switchCandVcMask_[std::size_t(rt.nodeId()) * outPorts_ +
                              vc.outPort] |=
                std::uint32_t(1) << vc.outVc;
    }
}

void
Network::markDelivered(MsgId msg, bool via_recovery)
{
    Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.numLinks() == 0);
    WORMNET_ASSERT(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);
    m.status = MsgStatus::Delivered;
    m.deliverCycle = now_;
    trace(via_recovery ? TraceEvent::DeliveredRecovered
                       : TraceEvent::Delivered,
          msg, m.dst);
    ++stats_.delivered;
    WORMNET_ASSERT(inFlight_ > 0);
    --inFlight_;
    if (via_recovery) {
        m.recovered = true;
        m.flitsEjected = m.length;
        ++stats_.recoveredDeliveries;
    }
    if (measuring_) {
        ++stats_.wDelivered;
        if (via_recovery) {
            ++stats_.wRecoveredDeliveries;
            stats_.wFlitsDelivered += m.length;
        }
        const double lat = static_cast<double>(now_ - m.genCycle);
        stats_.latency.add(lat);
        stats_.latencyHist.add(now_ - m.genCycle);
        if (m.injectStartCycle != kNever)
            stats_.netLatency.add(
                static_cast<double>(now_ - m.injectStartCycle));
    }
}

void
Network::releaseWorm(Message &m)
{
    WORMNET_ASSERT(m.status == MsgStatus::Active ||
              m.status == MsgStatus::Recovering);

    // A worm killed while its header is routed (possible with
    // source-side detection or a fault strike) may hold a forward
    // output allocation whose head flit has not crossed yet; release
    // it explicitly — the per-link walk below only restores
    // *upstream* allocations.
    if (m.numLinks() > 0) {
        const PathLink head = m.headLink();
        const InputVc &hvc =
            routers_[head.node].inputVc(head.port, head.vc);
        if (hvc.routed) {
            const OutputVc &o =
                routers_[head.node].outputVc(hvc.outPort, hvc.outVc);
            if (o.allocated && o.msg == m.id)
                releaseOutputVc(head.node, hvc.outPort, hvc.outVc);
        }
    }

    for (std::size_t i = 0; i < m.numLinks(); ++i) {
        const PathLink &link = m.link(i);
        Router &rt = routers_[link.node];
        InputVc &vc = rt.inputVc(link.port, link.vc);
        WORMNET_ASSERT(vc.msg == m.id);

        const LinkEnd &up = rt.upstream(link.port);
        if (up.valid()) {
            OutputVc &o =
                routers_[up.node].outputVc(up.port, link.vc);
            if (o.allocated && o.msg == m.id)
                releaseOutputVc(up.node, up.port, link.vc);
            // The buffer is about to be emptied: the full credit
            // budget is available again.
            o.credits = routerParams_.bufDepth;
        }

        vc.fifo.clear();
        releaseInputVc(link.node, link.port, link.vc);
    }
    m.clearLinks();
    m.flitsInjected = 0;
    m.flitsEjected = 0;
    WORMNET_ASSERT(inFlight_ > 0);
    --inFlight_;
}

void
Network::setHeadRecovering(MsgId msg)
{
    const Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.numLinks() > 0);
    const PathLink head = m.headLink();
    InputVc &vc = routers_[head.node].inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg);
    vc.recovering = true;
    syncRoutable(head.node, head.port, head.vc);
    // A routed head leaving for the recovery path stops competing
    // for the switch; its output VC frees when the worm releases.
    if (vc.routed)
        switchCandVcMask_[std::size_t(head.node) * outPorts_ +
                          vc.outPort] &=
            ~(std::uint32_t(1) << vc.outVc);
    detector_.onHeadRecovering(head.node, head.port, head.vc);
}

void
Network::killAndRequeue(MsgId msg, Cycle reinject_delay)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Killed;
    ++m.retries;
    ++stats_.kills;
    trace(TraceEvent::Killed, msg, m.src);
    if (measuring_)
        ++stats_.wKills;
    pendingReinjects_.push(Reinject{now_ + reinject_delay, msg});
}

void
Network::killAndAbandon(MsgId msg)
{
    Message &m = messages_.get(msg);
    releaseWorm(m);
    m.status = MsgStatus::Abandoned;
    ++stats_.abandoned;
    trace(TraceEvent::Abandoned, msg, m.src);
}

bool
Network::drainHeaderFlit(MsgId msg, FlitType &type)
{
    Message &m = messages_.get(msg);
    WORMNET_ASSERT(m.status == MsgStatus::Recovering);
    WORMNET_ASSERT(m.numLinks() > 0);
    const PathLink head = m.headLink();
    Router &rt = routers_[head.node];
    InputVc &vc = rt.inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg && vc.recovering);
    if (vc.fifo.empty() || vc.fifo.front().readyAt > now_)
        return false;
    const Flit f = popFlit(rt, head.port, head.vc);
    ++m.flitsEjected; // consumed into the recovery buffer
    type = f.type;
    return true;
}

void
Network::detectorCycleEnd()
{
    runDetectorCycleEnd();
    // Mirror the detector's cumulative control-plane traffic into the
    // stats block. Assignment (not accumulation): the detector owns
    // the lifetime counters, SimStats just exposes them; window
    // deltas come from the snapshots taken in startWindow().
    const ControlTraffic ct = detector_.controlTraffic();
    stats_.ctrlFlits = ct.flits;
    stats_.ctrlFlitHops = ct.flitHops;
    stats_.ctrlBytes = ct.bytes;
}

void
Network::runDetectorCycleEnd()
{
    // Sharded: a cycleEndShardSafe() detector's onCycleEnd touches
    // only router-indexed state and returns nothing, so the per-node
    // calls are order-independent and may fan out over the shards.
    // Detectors with global cycle-end machinery (DWFG probe
    // transport) keep the sequential ascending-node sweep.
    const bool sharded_sweep =
        numShards_ > 1 && detectorCycleEndShardSafe_;

    if (!detectorIdleStable_) {
        // The detector times even unoccupied channels (ungated PDM),
        // so every node must hear about every cycle. The occupied
        // mask still comes from the allocation counters instead of a
        // per-port output-VC scan.
        if (sharded_sweep) {
            runOnShards([this](unsigned, NodeId begin, NodeId end) {
                for (NodeId node = begin; node < end; ++node) {
                    const PortMask occupied =
                        allocOutMask_[node] &
                        ~detectorDeadMask_[node];
                    detector_.onCycleEnd(node, txMask_[node],
                                         occupied, now_);
                }
            });
            return;
        }
        for (NodeId node = 0; node < numNodes(); ++node) {
            // Dead channels (faulted or admin-removed) are not timed:
            // they will never transmit, so their inactivity says
            // nothing about deadlock.
            const PortMask occupied =
                allocOutMask_[node] & ~detectorDeadMask_[node];
            detector_.onCycleEnd(node, txMask_[node], occupied, now_);
        }
        return;
    }

    // Idle-stable detector: a node with no transmissions and no
    // allocated output VCs receives an idempotent (0, 0) call, so
    // only active nodes need visiting. Each node gets one trailing
    // call after going fully idle so per-channel state sees the
    // transition before the node leaves the set. (Erasing while
    // walking is safe: the word being scanned was copied, and a
    // node erased from a later word would only have received
    // another idempotent idle call.)
    if (sharded_sweep) {
        // Shard boundaries are 64-aligned, so each worker's walk —
        // including its trailing-idle erases — touches only its own
        // NodeBitset words.
        runOnShards([this](unsigned, NodeId begin, NodeId end) {
            detActive_.forEachInRange(begin, end, [this](
                                                     NodeId node) {
                const PortMask occupied =
                    allocOutMask_[node] & ~detectorDeadMask_[node];
                detector_.onCycleEnd(node, txMask_[node], occupied,
                                     now_);
                if (txMask_[node] == 0 && allocOutMask_[node] == 0)
                    detActive_.erase(node);
            });
        });
        return;
    }

    detActive_.forEach([this](NodeId node) {
        const PortMask occupied =
            allocOutMask_[node] & ~detectorDeadMask_[node];
        detector_.onCycleEnd(node, txMask_[node], occupied, now_);
        if (txMask_[node] == 0 && allocOutMask_[node] == 0)
            detActive_.erase(node);
    });
}

double
Network::channelUtilization(NodeId node, PortId out_port) const
{
    const Cycle span = now_ - stats_.windowStart;
    if (span == 0)
        return 0.0;
    return static_cast<double>(channelTxCount(node, out_port)) /
           static_cast<double>(span);
}

RunningStat
Network::utilizationSummary() const
{
    RunningStat out;
    for (NodeId node = 0; node < numNodes(); ++node) {
        for (PortId q = 0; q < routerParams_.netPorts; ++q) {
            if (routers_[node].downstream(q).valid())
                out.add(channelUtilization(node, q));
        }
    }
    return out;
}

const std::vector<MsgId> &
Network::deadlockedNow()
{
    if (oracleCacheCycle_ != now_) {
        oracleCache_ = findDeadlockedMessages(*this);
        oracleCacheCycle_ = now_;
    }
    return oracleCache_;
}

void
Network::oracleTick()
{
    if (params_.oraclePeriod == 0 ||
        now_ % params_.oraclePeriod != 0)
        return;
    const auto &deadlocked = deadlockedNow();
    stats_.currentlyDeadlocked = deadlocked.size();

    // Persistence tracking: how long do true deadlocks last? Entries
    // whose message is no longer deadlocked expire; survivors keep
    // their first-seen cycle.
    deadlockFirstSeen_.resize(messages_.size(), kNever);
    for (const MsgId id : deadlockTracked_) {
        if (!std::binary_search(deadlocked.begin(), deadlocked.end(),
                                id))
            deadlockFirstSeen_[id] = kNever;
    }
    for (const MsgId id : deadlocked) {
        Cycle first = deadlockFirstSeen_[id];
        if (first == kNever) {
            first = now_;
            deadlockFirstSeen_[id] = now_;
            ++stats_.trueDeadlockedMessages;
        }
        stats_.maxDeadlockPersistence =
            std::max(stats_.maxDeadlockPersistence, now_ - first);
    }
    deadlockTracked_ = deadlocked;
}

// The cross-check must fire whenever the runtime flag is on — even
// on builds whose compile-time contract level stripped the check
// macros — so it uses its own always-on check.
#define ACTIVE_SET_CHECK(cond)                                         \
    do {                                                               \
        if (!(cond)) {                                                 \
            panic("active-set cross-check failed: ", #cond, " at ",    \
                  __FILE__, ":", __LINE__);                            \
        }                                                              \
    } while (0)

void
Network::verifyActiveSets() const
{
    // Brute-force recomputation of every incrementally maintained
    // structure; the full contract level (WORMNET_CONTRACTS=full)
    // enables it by default and WORMNET_CHECK_ACTIVE_SETS=1 forces
    // it on any build. Runs at the end of step(), when all sets are
    // expected to be coherent.
    std::size_t queued = 0;
    std::size_t tx_nodes = 0;
    for (NodeId node = 0; node < numNodes(); ++node) {
        queued += sourceQueues_[node].size();
        if (txMask_[node] != 0)
            ++tx_nodes;
        const Router &rt = routers_[node];

        unsigned node_routable = 0;
        unsigned inj_busy = 0;
        for (PortId p = 0; p < inPorts_; ++p) {
            unsigned port_routable = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                const bool want = vc.msg != kInvalidMsg &&
                                  !vc.routed && !vc.recovering;
                ACTIVE_SET_CHECK(vc.inRouteSet == want);
                if (want)
                    ++port_routable;
                if (p >= netPorts_ && vc.msg != kInvalidMsg)
                    ++inj_busy;
            }
            ACTIVE_SET_CHECK(routablePerPort_[std::size_t(node) * inPorts_ +
                                       p] == port_routable);
            node_routable += port_routable;
        }
        ACTIVE_SET_CHECK(routablePerNode_[node] == node_routable);
        ACTIVE_SET_CHECK(routeActive_.contains(node) ==
                  (node_routable > 0));

        unsigned node_alloc = 0;
        unsigned net_alloc = 0;
        PortMask mask = 0;
        for (PortId q = 0; q < outPorts_; ++q) {
            unsigned port_alloc = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                if (rt.outputVc(q, v).allocated) {
                    ++port_alloc;
                    if (q < netPorts_)
                        ++net_alloc;
                }
            }
            ACTIVE_SET_CHECK(allocPerPort_[std::size_t(node) * outPorts_ +
                                    q] == port_alloc);
            if (port_alloc > 0)
                mask |= PortMask(1) << q;
            node_alloc += port_alloc;
        }
        ACTIVE_SET_CHECK(allocOutMask_[node] == mask);
        ACTIVE_SET_CHECK(allocPerNode_[node] == node_alloc);
        ACTIVE_SET_CHECK(switchActive_.contains(node) == (node_alloc > 0));
        ACTIVE_SET_CHECK(netAllocPerNode_[node] == net_alloc);

        ACTIVE_SET_CHECK(injVcBusy_[node] == inj_busy);
        ACTIVE_SET_CHECK(injActive_.contains(node) ==
                  (!sourceQueues_[node].empty() || inj_busy > 0));

        // detActive_ is checked for soundness, not exact equality: it
        // may hold an idle node for one trailing cycle-end call, but
        // must cover every node the detector still needs to see.
        if (node_alloc > 0 || txMask_[node] != 0)
            ACTIVE_SET_CHECK(detActive_.contains(node));
    }
    ACTIVE_SET_CHECK(totalQueuedCount_ == queued);
    ACTIVE_SET_CHECK(txNodes_.size() == tx_nodes);
}

void
Network::verifySoaState() const
{
    // Brute-force recomputation of everything the SoA layout derives
    // incrementally: the per-port VC bitmasks routeOne consumes, the
    // per-VC dst/injDone caches, and the route-candidate cache. The
    // full contract level enables it by default; WORMNET_CHECK_SOA=1
    // forces it on any build. Runs at the end of step(), like
    // verifyActiveSets().
    std::vector<RouteCandidate> fresh;
    for (NodeId node = 0; node < numNodes(); ++node) {
        const Router &rt = routers_[node];

        // Routers must still be views over the global store.
        ACTIVE_SET_CHECK(rt.inputVcs() == vcStore_.inBase(node));
        ACTIVE_SET_CHECK(rt.outputVcs() == vcStore_.outBase(node));

        for (PortId q = 0; q < outPorts_; ++q) {
            std::uint32_t alloc = 0;
            std::uint32_t dfree = 0;
            std::uint32_t scand = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                const OutputVc &ovc = rt.outputVc(q, v);
                if (ovc.allocated)
                    alloc |= std::uint32_t(1) << v;
                if (downstreamVcFree(rt, q, v))
                    dfree |= std::uint32_t(1) << v;
                if (ovc.allocated &&
                    (rt.isEjectionPort(q) || ovc.credits > 0)) {
                    const InputVc &src =
                        rt.inputVc(ovc.srcPort, ovc.srcVc);
                    if (!src.recovering && !src.fifo.empty())
                        scand |= std::uint32_t(1) << v;
                }
            }
            const std::size_t idx =
                std::size_t(node) * outPorts_ + q;
            ACTIVE_SET_CHECK(outAllocVcMask_[idx] == alloc);
            ACTIVE_SET_CHECK(downFreeVcMask_[idx] == dfree);
            ACTIVE_SET_CHECK(switchCandVcMask_[idx] == scand);
        }

        unsigned busy = 0;
        unsigned incomplete = 0;
        for (PortId p = 0; p < inPorts_; ++p) {
            std::uint32_t routable = 0;
            for (VcId v = 0; v < vcs_; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                const std::size_t flat =
                    (std::size_t(node) * inPorts_ + p) * vcs_ + v;
                if (vc.inRouteSet)
                    routable |= std::uint32_t(1) << v;
                if (vc.msg != kInvalidMsg) {
                    const Message &m = messages_.get(vc.msg);
                    ACTIVE_SET_CHECK(vc.dst == m.dst);
                    if (p >= netPorts_) {
                        ++busy;
                        ACTIVE_SET_CHECK(vc.injDone ==
                                         (m.flitsInjected >=
                                          m.length));
                        if (!vc.injDone)
                            ++incomplete;
                    }
                } else {
                    ACTIVE_SET_CHECK(vc.dst == kInvalidNode);
                    ACTIVE_SET_CHECK(!vc.injDone);
                }
                // A cache entry must reproduce a fresh route() call
                // for its occupant (ids are never recycled, so the
                // cached msg pins the dst even after delivery).
                if (candMsg_[flat] == kInvalidMsg)
                    continue;
                const Message &cm = messages_.get(candMsg_[flat]);
                routing_->route(node, cm.dst, p, v, fresh);
                ACTIVE_SET_CHECK(fresh.size() <= outPorts_);
                ACTIVE_SET_CHECK(candCount_[flat] == fresh.size());
                for (std::size_t i = 0; i < fresh.size(); ++i) {
                    ACTIVE_SET_CHECK(
                        candPort_[flat * outPorts_ + i] ==
                        fresh[i].port);
                    ACTIVE_SET_CHECK(
                        candMask_[flat * outPorts_ + i] ==
                        fresh[i].vcMask);
                }
            }
            ACTIVE_SET_CHECK(
                routableVcMask_[std::size_t(node) * inPorts_ + p] ==
                routable);
        }
        ACTIVE_SET_CHECK(injVcBusy_[node] == busy);
        ACTIVE_SET_CHECK(injIncomplete_[node] == incomplete);
    }
}

void
Network::saveState(Serializer &s) const
{
    // Captured at a step() boundary: per-cycle scratch (txMask_,
    // txNodes_, creditReturns_, faultKillQueue_, candidate buffers)
    // is dead there and not written; the oracle cache is memoised
    // per cycle and re-derived on demand.
    s.u64(now_);
    s.boolean(measuring_);
    rng_.saveState(s);
    for (const NodeGenerator &gen : generators_)
        gen.saveState(s);
    messages_.saveState(s);
    for (const auto &queue : sourceQueues_) {
        s.u32(static_cast<std::uint32_t>(queue.size()));
        for (const MsgId id : queue)
            s.u32(id);
    }
    {
        // Raw heap array: equal-cycle re-injections must pop in the
        // exact pre-checkpoint order.
        const auto &heap = pqContainer(pendingReinjects_);
        s.u32(static_cast<std::uint32_t>(heap.size()));
        for (const Reinject &r : heap) {
            s.u64(r.when);
            s.u32(r.msg);
        }
    }
    for (const Router &rt : routers_)
        rt.saveState(s);
    for (const std::uint64_t c : txCount_)
        s.u64(c);
    stats_.saveState(s);
    // detActive_ is the one history-bearing activity set (one
    // trailing cycle-end call per idle node); every other set is
    // derived from router state and rebuilt on load.
    detActive_.saveState(s);
    s.u64(inFlight_);
    {
        // deadlockTracked_ is sorted, so the pair dump is the same
        // deterministic layout the predecessor hash map produced.
        s.u32(static_cast<std::uint32_t>(deadlockTracked_.size()));
        for (const MsgId id : deadlockTracked_) {
            s.u32(id);
            s.u64(deadlockFirstSeen_[id]);
        }
    }
    s.boolean(faults_ != nullptr);
    if (faults_)
        faults_->saveState(s);
    s.boolean(reconfig_ != nullptr);
    if (reconfig_)
        reconfig_->saveState(s);
    detector_.saveState(s);
    s.boolean(recovery_ != nullptr);
    if (recovery_)
        recovery_->saveState(s);
}

void
Network::loadState(Deserializer &d)
{
    now_ = d.u64();
    measuring_ = d.boolean();
    rng_.loadState(d);
    for (NodeGenerator &gen : generators_)
        gen.loadState(d);
    messages_.loadState(d);
    totalQueuedCount_ = 0;
    for (auto &queue : sourceQueues_) {
        queue.clear();
        const std::uint32_t count = d.u32();
        for (std::uint32_t i = 0; i < count; ++i)
            queue.push_back(d.u32());
        totalQueuedCount_ += count;
    }
    {
        auto &heap = pqContainer(pendingReinjects_);
        heap.clear();
        heap.resize(d.u32());
        for (Reinject &r : heap) {
            r.when = d.u64();
            r.msg = d.u32();
        }
    }
    for (Router &rt : routers_)
        rt.loadState(d);
    for (std::uint64_t &c : txCount_)
        c = d.u64();
    stats_.loadState(d);
    detActive_.loadState(d);
    inFlight_ = d.u64();
    deadlockFirstSeen_.assign(messages_.size(), kNever);
    deadlockTracked_.clear();
    {
        const std::uint32_t count = d.u32();
        deadlockTracked_.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const MsgId id = d.u32();
            const Cycle cycle = d.u64();
            WORMNET_ASSERT(id < deadlockFirstSeen_.size());
            deadlockFirstSeen_[id] = cycle;
            deadlockTracked_.push_back(id);
        }
    }
    if (d.boolean()) {
        if (!faults_)
            fatal("checkpoint carries fault-model state but no fault "
                  "model is attached");
        faults_->loadState(d);
    } else if (faults_) {
        fatal("fault model attached but checkpoint has none");
    }
    if (d.boolean()) {
        if (!reconfig_)
            fatal("checkpoint carries reconfiguration state but no "
                  "reconfiguration manager is attached");
        reconfig_->loadState(d);
    } else if (reconfig_) {
        fatal("reconfiguration manager attached but checkpoint has "
              "none");
    }
    detector_.loadState(d);
    if (d.boolean()) {
        if (!recovery_)
            fatal("checkpoint carries recovery state but no recovery "
                  "manager is attached");
        recovery_->loadState(d);
    } else if (recovery_) {
        fatal("recovery manager attached but checkpoint has none");
    }

    // Rebuild everything derived from the restored router state.
    const NodeId n = numNodes();
    routeActive_.init(n);
    std::fill(routablePerPort_.begin(), routablePerPort_.end(), 0);
    std::fill(routablePerNode_.begin(), routablePerNode_.end(), 0);
    switchActive_.init(n);
    std::fill(allocPerPort_.begin(), allocPerPort_.end(), 0);
    std::fill(allocPerNode_.begin(), allocPerNode_.end(), 0);
    std::fill(allocOutMask_.begin(), allocOutMask_.end(), 0);
    std::fill(netAllocPerNode_.begin(), netAllocPerNode_.end(), 0);
    injActive_.init(n);
    std::fill(injVcBusy_.begin(), injVcBusy_.end(), 0);
    std::fill(outAllocVcMask_.begin(), outAllocVcMask_.end(), 0);
    std::fill(routableVcMask_.begin(), routableVcMask_.end(), 0);
    std::fill(switchCandVcMask_.begin(), switchCandVcMask_.end(), 0);
    std::fill(injIncomplete_.begin(), injIncomplete_.end(), 0);
    const std::uint32_t all_vcs = (std::uint32_t(1) << vcs_) - 1;
    for (NodeId node = 0; node < n; ++node) {
        Router &rt = routers_[node];
        for (PortId p = 0; p < inPorts_; ++p) {
            for (VcId v = 0; v < vcs_; ++v) {
                InputVc &vc = rt.inputVc(p, v);
                const bool want = vc.msg != kInvalidMsg &&
                                  !vc.routed && !vc.recovering;
                if (want) {
                    vc.inRouteSet = true;
                    ++routablePerPort_[std::size_t(node) * inPorts_ +
                                       p];
                    routableVcMask_[std::size_t(node) * inPorts_ +
                                    p] |= std::uint32_t(1) << v;
                    if (routablePerNode_[node]++ == 0)
                        routeActive_.insert(node);
                }
                if (vc.msg != kInvalidMsg) {
                    // Derived caches the wire format omits.
                    const Message &m = messages_.get(vc.msg);
                    vc.dst = m.dst;
                    if (p >= netPorts_) {
                        ++injVcBusy_[node];
                        vc.injDone = m.flitsInjected >= m.length;
                        if (!vc.injDone)
                            ++injIncomplete_[node];
                    }
                }
            }
        }
        for (PortId q = 0; q < outPorts_; ++q) {
            // A lane is downstream-free when its receiving input VC
            // is unoccupied with an empty buffer (always for
            // ejection, never for dangling mesh-edge ports).
            std::uint32_t dfree = 0;
            if (rt.isEjectionPort(q)) {
                dfree = all_vcs;
            } else if (rt.downstream(q).valid()) {
                const LinkEnd &down = rt.downstream(q);
                for (VcId v = 0; v < vcs_; ++v) {
                    const InputVc &dvc =
                        routers_[down.node].inputVc(down.port, v);
                    if (dvc.free() && dvc.fifo.empty())
                        dfree |= std::uint32_t(1) << v;
                }
            }
            downFreeVcMask_[std::size_t(node) * outPorts_ + q] =
                dfree;
            for (VcId v = 0; v < vcs_; ++v) {
                const OutputVc &ovc = rt.outputVc(q, v);
                if (!ovc.allocated)
                    continue;
                outAllocVcMask_[std::size_t(node) * outPorts_ + q] |=
                    std::uint32_t(1) << v;
                const InputVc &src =
                    rt.inputVc(ovc.srcPort, ovc.srcVc);
                if ((rt.isEjectionPort(q) || ovc.credits > 0) &&
                    !src.recovering && !src.fifo.empty())
                    switchCandVcMask_[std::size_t(node) * outPorts_ +
                                      q] |= std::uint32_t(1) << v;
                if (allocPerPort_[std::size_t(node) * outPorts_ +
                                  q]++ == 0)
                    allocOutMask_[node] |= PortMask(1) << q;
                if (allocPerNode_[node]++ == 0)
                    switchActive_.insert(node);
                if (q < netPorts_)
                    ++netAllocPerNode_[node];
            }
        }
        syncInjActive(node);
        // The serialized detector state already reflects the dead
        // ports at save time; only the derived mirror is rebuilt.
        detectorDeadMask_[node] = deadOutMask(node);
    }
    invalidateRouteCache();

    // Per-cycle scratch and memoisation: clean slate.
    std::fill(txMask_.begin(), txMask_.end(), 0);
    txNodes_.clear();
    creditReturns_.clear();
    faultKillQueue_.clear();
    oracleCacheCycle_ = kNever;
    oracleCache_.clear();

    if (!d.atEnd())
        fatal("checkpoint payload has ", d.remaining(),
              " unread bytes: writer/reader layout mismatch");
}

} // namespace wormnet
