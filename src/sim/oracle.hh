/**
 * @file
 * Ground-truth deadlock oracle.
 *
 * Computes, from a global snapshot of the network, the set of
 * messages that are *truly* deadlocked: blocked messages that can
 * never advance no matter how the future unfolds. The analysis is the
 * standard "can eventually advance" fixpoint (cf. Warnakulasuriya &
 * Pinkston's deadlock characterisation):
 *
 *   - every non-blocked message can eventually advance (destinations
 *     always consume; recovery buffers always drain);
 *   - a blocked message can eventually advance if some candidate
 *     output VC is already reusable, or is held by a message that can
 *     eventually advance (which will eventually pull its tail through
 *     and release the VC).
 *
 * The complement of the fixpoint is the truly deadlocked set. The
 * oracle is used only to *label* detector verdicts as true or false
 * and to validate the "detects all deadlocks" claim — it never feeds
 * back into routing, detection or recovery.
 */

#ifndef WORMNET_SIM_ORACLE_HH
#define WORMNET_SIM_ORACLE_HH

#include <vector>

#include "common/types.hh"

namespace wormnet
{

class Network;

/** Ids of all truly deadlocked messages, ascending. */
std::vector<MsgId> findDeadlockedMessages(const Network &net);

} // namespace wormnet

#endif // WORMNET_SIM_ORACLE_HH
