/**
 * @file
 * Checkpoint file container.
 *
 * A checkpoint is an opaque payload (produced by a Serializer —
 * Network::saveState(), or the experiment runner's cell table)
 * wrapped in a small self-validating header:
 *
 *     offset  size  field
 *          0     8  magic "WNCKPT01" (bytes, not terminated)
 *          8     4  format version (little-endian, currently 1)
 *         12     4  CRC-32 (IEEE) of the payload bytes
 *         16     8  payload size in bytes
 *         24   4+n  config string (length-prefixed)
 *       24+.     m  payload
 *
 * The config string is the writer's canonical configuration (e.g.
 * Simulation::canonicalString()); readers pass their own and
 * fatal() on mismatch — resuming under a different topology, seed
 * or detector would silently diverge otherwise. Version policy:
 * the version covers the payload *layout*; any change to what a
 * saveState() writes bumps kCheckpointVersion, and older files are
 * rejected rather than misread (checkpoints are short-lived
 * crash-recovery artifacts, not archives — no migration support).
 *
 * Writes are atomic: the file is written to "<path>.tmp" and
 * renamed over the target, so a crash mid-save leaves the previous
 * checkpoint intact.
 */

#ifndef WORMNET_SIM_CHECKPOINT_HH
#define WORMNET_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hh"

namespace wormnet
{

/** Bumped on any change to a serialized payload layout.
 *  v2: control-traffic counters appended to SimStats; DWFG detector
 *  payload (channel mirror + in-flight probe tokens).
 *  v3: NDM stores inactivity run starts (since/runMask/lastCycleEnd)
 *  instead of materialized counters and I/DT flag bytes. */
inline constexpr std::uint32_t kCheckpointVersion = 3;

/**
 * Atomically write @p payload to @p path under the container
 * header. fatal() on any I/O error.
 */
void writeCheckpointFile(const std::string &path,
                         const std::string &config,
                         const Serializer &payload);

/**
 * Read the checkpoint at @p path, validating magic, version, CRC
 * and that the stored config string equals @p expected_config
 * (fatal() with a diff-style message otherwise).
 * @return the payload bytes, ready for a Deserializer.
 */
std::vector<std::uint8_t>
readCheckpointFile(const std::string &path,
                   const std::string &expected_config);

} // namespace wormnet

#endif // WORMNET_SIM_CHECKPOINT_HH
