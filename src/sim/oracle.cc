#include "sim/oracle.hh"

#include <algorithm>
#include <unordered_map>

#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

namespace
{

/** A blocked head and what it is waiting on. */
struct BlockedEntry
{
    MsgId msg;
    bool anyFree = false;           ///< some candidate VC reusable now
    std::vector<MsgId> holders;     ///< worms holding the candidates
    bool canAdvance = false;
};

} // namespace

std::vector<MsgId>
findDeadlockedMessages(const Network &net)
{
    std::vector<BlockedEntry> blocked;
    std::unordered_map<MsgId, std::size_t> index;
    std::vector<RouteCandidate> cands;

    const Cycle now = net.now();
    const RouterParams &rp = net.routerParams();

    for (NodeId node = 0; node < net.numNodes(); ++node) {
        const Router &rt = net.router(node);
        for (PortId p = 0; p < rp.numInPorts(); ++p) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                if (vc.free() || vc.routed || vc.recovering ||
                    vc.fifo.empty())
                    continue;
                const Flit &head = vc.fifo.front();
                if (head.readyAt > now || !isHeadFlit(head.type))
                    continue; // head in transit: still advancing

                BlockedEntry entry;
                entry.msg = vc.msg;
                const Message &m = net.messages().get(vc.msg);
                net.routing().route(node, m.dst, p, v, cands);
                bool any_live = false;
                for (const auto &cand : cands) {
                    if (net.portFaulty(node, cand.port))
                        continue; // dead link: never a way forward
                    any_live = true;
                    std::uint32_t mask = cand.vcMask;
                    while (mask) {
                        const VcId v2 = static_cast<VcId>(
                            __builtin_ctz(mask));
                        mask &= mask - 1;
                        const OutputVc &out =
                            rt.outputVc(cand.port, v2);
                        if (out.allocated) {
                            entry.holders.push_back(out.msg);
                            continue;
                        }
                        if (net.downstreamVcFree(rt, cand.port, v2)) {
                            entry.anyFree = true;
                            continue;
                        }
                        if (rt.isEjectionPort(cand.port)) {
                            // Unallocated ejection VC: consumable.
                            entry.anyFree = true;
                            continue;
                        }
                        // Deallocated but still draining: blocked on
                        // the worm whose tail is passing through.
                        const LinkEnd &down =
                            rt.downstream(cand.port);
                        const InputVc &dvc =
                            net.router(down.node).inputVc(down.port,
                                                          v2);
                        if (dvc.free())
                            entry.anyFree = true;
                        else
                            entry.holders.push_back(dvc.msg);
                    }
                }
                if (!any_live) {
                    // Every candidate channel is faulted. The message
                    // is doomed, not deadlocked: the fault path will
                    // kill it this cycle, which frees its held
                    // channels — so for the fixpoint it behaves like
                    // a message that can advance.
                    entry.anyFree = true;
                }
                index.emplace(entry.msg, blocked.size());
                blocked.push_back(std::move(entry));
            }
        }
    }

    // Fixpoint: a blocked message can eventually advance if any
    // candidate is already reusable or held by a message that can.
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &entry : blocked) {
            if (entry.canAdvance)
                continue;
            bool ok = entry.anyFree;
            if (!ok) {
                for (const MsgId h : entry.holders) {
                    const auto it = index.find(h);
                    if (it == index.end() ||
                        blocked[it->second].canAdvance) {
                        ok = true;
                        break;
                    }
                }
            }
            if (ok) {
                entry.canAdvance = true;
                changed = true;
            }
        }
    }

    std::vector<MsgId> deadlocked;
    for (const auto &entry : blocked) {
        if (!entry.canAdvance)
            deadlocked.push_back(entry.msg);
    }
    std::sort(deadlocked.begin(), deadlocked.end());
    return deadlocked;
}

} // namespace wormnet
