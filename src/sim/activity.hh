/**
 * @file
 * Activity tracking for the simulation core.
 *
 * The per-cycle phases of sim::Network (routing, switch allocation,
 * injection, detector cycle-end) used to scan every node x port x VC
 * each cycle. The activity-driven core instead maintains small sets
 * of the entities that can actually do work this cycle — see the
 * "Hot path & activity tracking" section of docs/MECHANISMS.md.
 *
 * NodeBitset is the shared building block: a fixed-size bitset over
 * node ids with O(1) insert/erase/membership and iteration in
 * strictly ascending node order. Ascending iteration is what makes
 * the active sets *deterministically* equivalent to the exhaustive
 * scans they replace: every phase visits active nodes in exactly the
 * node order the full scan used, so skipping the idle ones is
 * unobservable.
 */

#ifndef WORMNET_SIM_ACTIVITY_HH
#define WORMNET_SIM_ACTIVITY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace wormnet
{

/** Bitset over node ids with ascending-order iteration. */
class NodeBitset
{
  public:
    /** Size for @p n nodes and clear all bits. */
    void
    init(std::size_t n)
    {
        words_.assign((n + 63) / 64, 0);
    }

    void
    insert(NodeId i)
    {
        words_[i >> 6] |= std::uint64_t(1) << (i & 63);
    }

    void
    erase(NodeId i)
    {
        words_[i >> 6] &= ~(std::uint64_t(1) << (i & 63));
    }

    bool
    contains(NodeId i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }

    bool
    empty() const
    {
        for (const std::uint64_t w : words_) {
            if (w != 0)
                return false;
        }
        return true;
    }

    /**
     * Visit the members in ascending node order, word-at-a-time.
     *
     * Each 64-bit word is copied before its bits are scanned, so the
     * callback may erase members: erasing a node in a *later* word
     * skips it (it no longer does work), erasing one in the current
     * word still visits it (its handler is a no-op by the same state
     * change that caused the erase). Inserting into the set mid-walk
     * is not supported — no per-cycle phase does it on its own set.
     * This replaces the snapshot-into-a-scratch-vector pattern: same
     * visit order, no intermediate store/reload pass.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                const unsigned b = static_cast<unsigned>(
                    __builtin_ctzll(w));
                w &= w - 1;
                fn(static_cast<NodeId>((wi << 6) + b));
            }
        }
    }

    /**
     * forEach restricted to members in [@p begin, @p end), for the
     * sharded stepping phases. Both bounds must be multiples of 64
     * (shard boundaries are 64-aligned), so concurrent walks over
     * disjoint ranges touch disjoint words and the callback may
     * erase members of its own range with the same rules as
     * forEach(). @p end is clamped to the set size.
     */
    template <typename Fn>
    void
    forEachInRange(NodeId begin, NodeId end, Fn &&fn) const
    {
        std::size_t wi = begin >> 6;
        std::size_t we = (std::size_t(end) + 63) >> 6;
        if (we > words_.size())
            we = words_.size();
        for (; wi < we; ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                const unsigned b = static_cast<unsigned>(
                    __builtin_ctzll(w));
                w &= w - 1;
                fn(static_cast<NodeId>((wi << 6) + b));
            }
        }
    }

    /** Append the members to @p out in ascending node order. */
    void
    appendTo(std::vector<NodeId> &out) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t w = words_[wi];
            while (w) {
                const unsigned b = static_cast<unsigned>(
                    __builtin_ctzll(w));
                w &= w - 1;
                out.push_back(
                    static_cast<NodeId>((wi << 6) + b));
            }
        }
    }

    /** Checkpoint support: word-for-word dump of the membership. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(static_cast<std::uint64_t>(words_.size()));
        for (const std::uint64_t w : words_)
            s.u64(w);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        words_.assign(d.u64(), 0);
        for (std::uint64_t &w : words_)
            w = d.u64();
    }

  private:
    std::vector<std::uint64_t> words_;
};

} // namespace wormnet

#endif // WORMNET_SIM_ACTIVITY_HH
