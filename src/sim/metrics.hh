/**
 * @file
 * Simulation statistics.
 *
 * Counters come in two flavours: lifetime totals and measurement-
 * window values. The paper's methodology simulates past a warm-up
 * phase and reports percentages over the messages transmitted during
 * the measurement window; startWindow() resets the windowed part.
 */

#ifndef WORMNET_SIM_METRICS_HH
#define WORMNET_SIM_METRICS_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace wormnet
{

/** All metrics gathered by a Network. */
struct SimStats
{
    /** @name Lifetime totals. */
    /// @{
    std::uint64_t generated = 0;   ///< messages created
    std::uint64_t injected = 0;    ///< messages that began injection
    std::uint64_t delivered = 0;   ///< messages fully consumed
    std::uint64_t flitsDelivered = 0;
    std::uint64_t detections = 0;  ///< deadlock verdicts raised
    std::uint64_t kills = 0;       ///< regressive recoveries
    std::uint64_t recoveredDeliveries = 0; ///< via recovery path
    std::uint64_t abandoned = 0;   ///< dropped after retry exhaustion
    /// @}

    /** @name Fault injection (lifetime totals). */
    /// @{
    std::uint64_t faultsInjected = 0;   ///< link/router fault events
    std::uint64_t faultsRepaired = 0;   ///< transient faults healed
    std::uint64_t faultKills = 0;       ///< worms stranded and killed
    std::uint64_t faultReroutes = 0;    ///< heads un-routed off a
                                        ///< faulted port before crossing
    std::uint64_t faultFlitsDropped = 0; ///< flits of stranded worms
    /// @}

    /** @name Measurement window. */
    /// @{
    Cycle windowStart = 0;
    std::uint64_t wGenerated = 0;
    /** Flits in messages generated inside the window (self-addressed
     *  draws never reach here, so this is the *effective* offered
     *  load — patterns like bit-reversal have self-mapped sources). */
    std::uint64_t wGeneratedFlits = 0;
    std::uint64_t wInjected = 0;
    std::uint64_t wDelivered = 0;
    std::uint64_t wFlitsDelivered = 0;
    /** Deadlock verdicts raised inside the window. */
    std::uint64_t wDetectionEvents = 0;
    /** Distinct messages first marked deadlocked inside the window. */
    std::uint64_t wDetectedMessages = 0;
    /** Detections the ground-truth oracle confirmed as true. */
    std::uint64_t wTrueDetections = 0;
    /** Detections the oracle refuted (false deadlocks). */
    std::uint64_t wFalseDetections = 0;
    std::uint64_t wKills = 0;
    std::uint64_t wRecoveredDeliveries = 0;

    /** End-to-end latency (generation -> delivery), cycles. */
    RunningStat latency;
    /** Network latency (injection start -> delivery), cycles. */
    RunningStat netLatency;
    Histogram latencyHist{32, 128};
    /// @}

    /** @name Detector control-plane traffic.
     *
     * Lifetime totals mirrored from DeadlockDetector::controlTraffic()
     * once per cycle; zero for purely local mechanisms (NDM, PDM,
     * timeouts). The wCtrl*0 snapshots are the totals at the start of
     * the measurement window, so windowed overhead is total minus
     * snapshot (see windowCtrlFlits() etc.).
     */
    /// @{
    std::uint64_t ctrlFlits = 0;    ///< control flits sent
    std::uint64_t ctrlFlitHops = 0; ///< control flit-hops traversed
    std::uint64_t ctrlBytes = 0;    ///< control payload bytes sent
    std::uint64_t wCtrlFlits0 = 0;
    std::uint64_t wCtrlFlitHops0 = 0;
    std::uint64_t wCtrlBytes0 = 0;
    /// @}

    /** @name Ground-truth oracle observations (lifetime). */
    /// @{
    /** Distinct messages the oracle ever saw truly deadlocked. */
    std::uint64_t trueDeadlockedMessages = 0;
    /** Longest time a message stayed truly deadlocked before being
     *  detected, recovered or the run ended. */
    Cycle maxDeadlockPersistence = 0;
    /** Oracle-confirmed deadlocked messages present right now. */
    std::uint64_t currentlyDeadlocked = 0;
    /**
     * For detections of oracle-confirmed deadlocks: cycles between
     * the oracle first seeing the message deadlocked and the
     * detector marking it (quantised by the oracle period). The
     * paper's argument for a low constant t2 is exactly that this
     * stays small.
     */
    RunningStat detectionLatency;
    /// @}

    /**
     * Peak resident-set size of the whole process, in bytes, as of
     * the last samplePeakRss() call (0 until then, or on platforms
     * without getrusage). Diagnostic only — it measures the host
     * process, not the simulated hardware — so it is deliberately
     * NOT serialized: a checkpoint restored on another machine must
     * not inherit the saving machine's memory footprint, and the
     * byte-exact resume tests would otherwise diverge. Benchmarks
     * sample it after their measured runs to keep the message-store
     * growth behaviour visible in BENCH_hotpath.json.
     */
    std::uint64_t peakRssBytes = 0;

    /** Refresh peakRssBytes from the OS (ru_maxrss). */
    void samplePeakRss();

    /** Checkpoint support: every counter and accumulator. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(generated);
        s.u64(injected);
        s.u64(delivered);
        s.u64(flitsDelivered);
        s.u64(detections);
        s.u64(kills);
        s.u64(recoveredDeliveries);
        s.u64(abandoned);
        s.u64(faultsInjected);
        s.u64(faultsRepaired);
        s.u64(faultKills);
        s.u64(faultReroutes);
        s.u64(faultFlitsDropped);
        s.u64(windowStart);
        s.u64(wGenerated);
        s.u64(wGeneratedFlits);
        s.u64(wInjected);
        s.u64(wDelivered);
        s.u64(wFlitsDelivered);
        s.u64(wDetectionEvents);
        s.u64(wDetectedMessages);
        s.u64(wTrueDetections);
        s.u64(wFalseDetections);
        s.u64(wKills);
        s.u64(wRecoveredDeliveries);
        latency.saveState(s);
        netLatency.saveState(s);
        latencyHist.saveState(s);
        s.u64(trueDeadlockedMessages);
        s.u64(maxDeadlockPersistence);
        s.u64(currentlyDeadlocked);
        detectionLatency.saveState(s);
        s.u64(ctrlFlits);
        s.u64(ctrlFlitHops);
        s.u64(ctrlBytes);
        s.u64(wCtrlFlits0);
        s.u64(wCtrlFlitHops0);
        s.u64(wCtrlBytes0);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        generated = d.u64();
        injected = d.u64();
        delivered = d.u64();
        flitsDelivered = d.u64();
        detections = d.u64();
        kills = d.u64();
        recoveredDeliveries = d.u64();
        abandoned = d.u64();
        faultsInjected = d.u64();
        faultsRepaired = d.u64();
        faultKills = d.u64();
        faultReroutes = d.u64();
        faultFlitsDropped = d.u64();
        windowStart = d.u64();
        wGenerated = d.u64();
        wGeneratedFlits = d.u64();
        wInjected = d.u64();
        wDelivered = d.u64();
        wFlitsDelivered = d.u64();
        wDetectionEvents = d.u64();
        wDetectedMessages = d.u64();
        wTrueDetections = d.u64();
        wFalseDetections = d.u64();
        wKills = d.u64();
        wRecoveredDeliveries = d.u64();
        latency.loadState(d);
        netLatency.loadState(d);
        latencyHist.loadState(d);
        trueDeadlockedMessages = d.u64();
        maxDeadlockPersistence = d.u64();
        currentlyDeadlocked = d.u64();
        detectionLatency.loadState(d);
        ctrlFlits = d.u64();
        ctrlFlitHops = d.u64();
        ctrlBytes = d.u64();
        wCtrlFlits0 = d.u64();
        wCtrlFlitHops0 = d.u64();
        wCtrlBytes0 = d.u64();
    }

    /** Reset the measurement window at cycle @p now. */
    void
    startWindow(Cycle now)
    {
        windowStart = now;
        wGenerated = wGeneratedFlits = 0;
        wInjected = wDelivered = wFlitsDelivered = 0;
        wDetectionEvents = wDetectedMessages = 0;
        wTrueDetections = wFalseDetections = 0;
        wKills = wRecoveredDeliveries = 0;
        wCtrlFlits0 = ctrlFlits;
        wCtrlFlitHops0 = ctrlFlitHops;
        wCtrlBytes0 = ctrlBytes;
        latency.reset();
        netLatency.reset();
        latencyHist.reset();
    }

    /** @name Control traffic inside the measurement window. */
    /// @{
    std::uint64_t
    windowCtrlFlits() const
    {
        return ctrlFlits - wCtrlFlits0;
    }
    std::uint64_t
    windowCtrlFlitHops() const
    {
        return ctrlFlitHops - wCtrlFlitHops0;
    }
    std::uint64_t
    windowCtrlBytes() const
    {
        return ctrlBytes - wCtrlBytes0;
    }
    /// @}

    /**
     * The paper's headline metric: fraction of messages detected as
     * possibly deadlocked among messages delivered in the window.
     */
    double
    detectionRate() const
    {
        if (wDelivered == 0)
            return 0.0;
        return static_cast<double>(wDetectedMessages) /
               static_cast<double>(wDelivered);
    }

    /** Effective offered load (generated flits/cycle/node). */
    double
    generatedFlitRate(Cycle now, unsigned nodes) const
    {
        const Cycle span = now - windowStart;
        if (span == 0 || nodes == 0)
            return 0.0;
        return static_cast<double>(wGeneratedFlits) /
               (static_cast<double>(span) * nodes);
    }

    /** Accepted throughput in flits/cycle over @p nodes nodes. */
    double
    acceptedFlitRate(Cycle now, unsigned nodes) const
    {
        const Cycle span = now - windowStart;
        if (span == 0 || nodes == 0)
            return 0.0;
        return static_cast<double>(wFlitsDelivered) /
               (static_cast<double>(span) * nodes);
    }
};

} // namespace wormnet

#endif // WORMNET_SIM_METRICS_HH
