#include "sim/reconfig.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/contracts.hh"
#include "common/log.hh"
#include "router/message.hh"
#include "sim/network.hh"

namespace wormnet
{

namespace
{

constexpr const char *kSpecUsage =
    "; expected a comma-separated list of "
    "\"link-:<a>><b>@<cycle>\", \"link+:<a>><b>@<cycle>\", "
    "\"router-:<n>@<cycle>\", \"router+:<n>@<cycle>\" or "
    "\"routing:<name>@<cycle>\"";

std::uint64_t
parseNumber(const std::string &s, const std::string &item)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == s.c_str() || *end != '\0')
        fatal("malformed --reconfig item '", item, "': '", s,
              "' is not a number", kSpecUsage);
    return v;
}

/** Map the directed link @p node -> @p peer to @p node's output
 *  port; fatal() when the topology has no such link. */
PortId
resolveLinkPort(const Topology &topo, NodeId node, NodeId peer)
{
    for (unsigned d = 0; d < topo.numDims(); ++d) {
        for (const bool positive : {true, false}) {
            if (topo.neighbor(node, d, positive) == peer)
                return Topology::outPort(d, positive);
        }
    }
    fatal("--reconfig: no link ", node, ">", peer,
          " in this topology");
}

/** The reverse direction of output port @p out (same dim, flipped
 *  sign), for draining a router's incoming links. */
PortId
reversePort(PortId out)
{
    return out ^ 1;
}

} // namespace

ReconfigPlan
ReconfigPlan::parse(const std::string &spec)
{
    ReconfigPlan plan;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto colon = item.find(':');
        if (colon == std::string::npos)
            fatal("malformed --reconfig item '", item, "'",
                  kSpecUsage);
        const std::string kind = item.substr(0, colon);
        const std::string rest = item.substr(colon + 1);

        const auto at = rest.rfind('@');
        if (at == std::string::npos)
            fatal("malformed --reconfig item '", item,
                  "': missing '@<cycle>'", kSpecUsage);
        const std::string where = rest.substr(0, at);

        ReconfigEdit e;
        e.at = parseNumber(rest.substr(at + 1), item);
        if (kind == "link-" || kind == "link+") {
            const auto arrow = where.find('>');
            if (arrow == std::string::npos)
                fatal("malformed --reconfig item '", item,
                      "': missing '>' between link endpoints",
                      kSpecUsage);
            e.kind = kind == "link-" ? ReconfigEdit::Kind::LinkDown
                                     : ReconfigEdit::Kind::LinkUp;
            e.node = static_cast<NodeId>(
                parseNumber(where.substr(0, arrow), item));
            e.peer = static_cast<NodeId>(
                parseNumber(where.substr(arrow + 1), item));
        } else if (kind == "router-" || kind == "router+") {
            e.kind = kind == "router-"
                         ? ReconfigEdit::Kind::RouterDrain
                         : ReconfigEdit::Kind::RouterRestore;
            e.node = static_cast<NodeId>(parseNumber(where, item));
        } else if (kind == "routing") {
            if (where.empty())
                fatal("malformed --reconfig item '", item,
                      "': empty routing name", kSpecUsage);
            e.kind = ReconfigEdit::Kind::RoutingSwitch;
            e.routingSpec = where;
        } else {
            fatal("malformed --reconfig item '", item,
                  "': unknown edit kind '", kind, "'", kSpecUsage);
        }
        plan.edits.push_back(std::move(e));
    }
    if (plan.edits.empty())
        fatal("--reconfig spec '", spec, "' contains no edits",
              kSpecUsage);
    std::stable_sort(plan.edits.begin(), plan.edits.end(),
                     [](const ReconfigEdit &a, const ReconfigEdit &b) {
                         return a.at < b.at;
                     });
    return plan;
}

std::vector<EpochStaticResult>
analyzePlanStatic(const ReconfigPlan &plan, const Topology &topo,
                  const RouterParams &params,
                  const std::string &initial_routing,
                  const CdgFaults &base)
{
    const NodeId n = topo.numNodes();
    const unsigned net_ports = topo.numNetPorts();

    std::vector<int> link_count(std::size_t(n) * net_ports, 0);
    std::vector<int> drain_count(n, 0);

    std::unique_ptr<RoutingFunction> routing =
        makeRoutingFunction(initial_routing, topo, params);

    std::vector<EpochStaticResult> out;
    const auto snapshot = [&](Cycle cycle, unsigned edits) {
        CdgFaults f = base;
        f.faultyOut.resize(n, 0);
        f.faultyRouter.resize(n, 0);
        for (NodeId node = 0; node < n; ++node) {
            for (PortId q = 0; q < net_ports; ++q) {
                if (link_count[std::size_t(node) * net_ports + q] > 0)
                    f.faultyOut[node] |= PortMask(1) << q;
            }
            if (drain_count[node] > 0)
                f.faultyRouter[node] = 1;
        }
        EpochStaticResult r;
        r.cycle = cycle;
        r.edits = edits;
        r.routing = routing->name();
        r.report =
            ChannelDepGraph(topo, *routing, params, std::move(f))
                .report();
        out.push_back(std::move(r));
    };

    const auto bump = [&](NodeId node, PortId q, int delta,
                          const char *what) {
        int &c = link_count[std::size_t(node) * net_ports + q];
        c += delta;
        if (c < 0)
            fatal("--reconfig: ", what,
                  " restores a link that is not removed (node ",
                  node, ", out port ", q, ")");
    };

    // The pre-plan configuration, for contrast with every epoch.
    snapshot(0, 0);

    std::size_t i = 0;
    while (i < plan.edits.size()) {
        const Cycle at = plan.edits[i].at;
        unsigned edits = 0;
        for (; i < plan.edits.size() && plan.edits[i].at == at; ++i) {
            const ReconfigEdit &e = plan.edits[i];
            ++edits;
            if (e.node != kInvalidNode && e.node >= n)
                fatal("--reconfig: node ", e.node,
                      " is outside this topology (", n, " nodes)");
            switch (e.kind) {
              case ReconfigEdit::Kind::LinkDown:
              case ReconfigEdit::Kind::LinkUp: {
                if (e.peer >= n)
                    fatal("--reconfig: node ", e.peer,
                          " is outside this topology (", n,
                          " nodes)");
                const PortId q =
                    resolveLinkPort(topo, e.node, e.peer);
                const bool down =
                    e.kind == ReconfigEdit::Kind::LinkDown;
                bump(e.node, q, down ? +1 : -1, "link+");
                break;
              }
              case ReconfigEdit::Kind::RouterDrain:
              case ReconfigEdit::Kind::RouterRestore: {
                const bool down =
                    e.kind == ReconfigEdit::Kind::RouterDrain;
                drain_count[e.node] += down ? +1 : -1;
                if (drain_count[e.node] < 0)
                    fatal("--reconfig: router+ restores router ",
                          e.node, " which is not drained");
                for (unsigned dd = 0; dd < topo.numDims(); ++dd) {
                    for (const bool positive : {true, false}) {
                        const NodeId peer =
                            topo.neighbor(e.node, dd, positive);
                        if (peer == kInvalidNode)
                            continue; // mesh edge
                        const PortId q =
                            Topology::outPort(dd, positive);
                        bump(e.node, q, down ? +1 : -1, "router+");
                        bump(peer, reversePort(q), down ? +1 : -1,
                             "router+");
                    }
                }
                break;
              }
              case ReconfigEdit::Kind::RoutingSwitch:
                routing = makeRoutingFunction(e.routingSpec, topo,
                                              params);
                break;
            }
        }
        snapshot(at, edits);
    }
    return out;
}

ReconfigManager::ReconfigManager(ReconfigPlan plan, bool cross_check)
    : plan_(std::move(plan)), crossCheck_(cross_check)
{
}

void
ReconfigManager::bind(Network &net)
{
    net_ = &net;
    topo_ = &net.topology();
    netPorts_ = topo_->numNetPorts();

    const NodeId n = topo_->numNodes();
    adminCount_.assign(std::size_t(n) * netPorts_, 0);
    adminMask_.assign(n, 0);
    drainCount_.assign(n, 0);
    activeLinks_ = 0;
    activeDrains_ = 0;

    resolved_.clear();
    routings_.clear();
    currentRouting_ = -1;
    nextEdit_ = 0;
    records_.clear();
    pending_.clear();

    for (const ReconfigEdit &e : plan_.edits) {
        if (e.kind != ReconfigEdit::Kind::RoutingSwitch &&
            e.node >= n)
            fatal("--reconfig: node ", e.node,
                  " is outside this topology (", n, " nodes)");
        ResolvedEdit r;
        r.kind = e.kind;
        r.node = e.node;
        r.at = e.at;
        switch (e.kind) {
          case ReconfigEdit::Kind::LinkDown:
          case ReconfigEdit::Kind::LinkUp:
            if (e.peer >= n)
                fatal("--reconfig: node ", e.peer,
                      " is outside this topology (", n, " nodes)");
            r.outPort = resolveLinkPort(*topo_, e.node, e.peer);
            break;
          case ReconfigEdit::Kind::RouterDrain:
          case ReconfigEdit::Kind::RouterRestore:
            break;
          case ReconfigEdit::Kind::RoutingSwitch:
            // Pre-building validates the name up front and makes the
            // live switch a pointer swap.
            routings_.push_back(makeRoutingFunction(
                e.routingSpec, *topo_, net.routerParams()));
            r.routingIdx =
                static_cast<std::int32_t>(routings_.size() - 1);
            break;
        }
        resolved_.push_back(r);
    }

    // Dry-run the admin reference counts so an unbalanced restore
    // fails at attach time, not mid-run.
    std::vector<int> link_count(adminCount_.size(), 0);
    std::vector<int> drain_count(n, 0);
    for (const ResolvedEdit &e : resolved_) {
        const auto bump = [&](NodeId node, PortId q, int delta) {
            int &c = link_count[std::size_t(node) * netPorts_ + q];
            c += delta;
            if (c < 0)
                fatal("--reconfig: restore of link (node ", node,
                      ", out port ", q,
                      ") at cycle ", e.at,
                      " has no matching removal");
        };
        switch (e.kind) {
          case ReconfigEdit::Kind::LinkDown:
            bump(e.node, e.outPort, +1);
            break;
          case ReconfigEdit::Kind::LinkUp:
            bump(e.node, e.outPort, -1);
            break;
          case ReconfigEdit::Kind::RouterDrain:
          case ReconfigEdit::Kind::RouterRestore: {
            const int delta =
                e.kind == ReconfigEdit::Kind::RouterDrain ? +1 : -1;
            drain_count[e.node] += delta;
            if (drain_count[e.node] < 0)
                fatal("--reconfig: router+ at cycle ", e.at,
                      " restores router ", e.node,
                      " which is not drained");
            for (unsigned d = 0; d < topo_->numDims(); ++d) {
                for (const bool positive : {true, false}) {
                    const NodeId peer =
                        topo_->neighbor(e.node, d, positive);
                    if (peer == kInvalidNode)
                        continue;
                    const PortId q = Topology::outPort(d, positive);
                    bump(e.node, q, delta);
                    bump(peer, reversePort(q), delta);
                }
            }
            break;
          }
          case ReconfigEdit::Kind::RoutingSwitch:
            break;
        }
    }
}

void
ReconfigManager::addLinkCause(NodeId node, PortId out_port, int delta)
{
    std::uint8_t &count =
        adminCount_[std::size_t(node) * netPorts_ + out_port];
    const bool was = count > 0;
    WORMNET_ASSERT(delta > 0 || count > 0);
    count = static_cast<std::uint8_t>(int(count) + delta);
    const bool is = count > 0;
    if (was == is)
        return;
    if (is) {
        adminMask_[node] |= PortMask(1) << out_port;
        ++activeLinks_;
    } else {
        adminMask_[node] &= ~(PortMask(1) << out_port);
        WORMNET_ASSERT(activeLinks_ > 0);
        --activeLinks_;
    }
}

void
ReconfigManager::applyEdit(const ResolvedEdit &e)
{
    switch (e.kind) {
      case ReconfigEdit::Kind::LinkDown:
        addLinkCause(e.node, e.outPort, +1);
        break;
      case ReconfigEdit::Kind::LinkUp:
        addLinkCause(e.node, e.outPort, -1);
        break;
      case ReconfigEdit::Kind::RouterDrain:
      case ReconfigEdit::Kind::RouterRestore: {
        const int delta =
            e.kind == ReconfigEdit::Kind::RouterDrain ? +1 : -1;
        if (e.kind == ReconfigEdit::Kind::RouterDrain) {
            if (drainCount_[e.node]++ == 0)
                ++activeDrains_;
        } else {
            WORMNET_ASSERT(drainCount_[e.node] > 0);
            if (--drainCount_[e.node] == 0) {
                WORMNET_ASSERT(activeDrains_ > 0);
                --activeDrains_;
            }
        }
        // A drained router takes every incident link with it, in
        // both directions, exactly like a router fault.
        for (unsigned d = 0; d < topo_->numDims(); ++d) {
            for (const bool positive : {true, false}) {
                const NodeId peer =
                    topo_->neighbor(e.node, d, positive);
                if (peer == kInvalidNode)
                    continue;
                const PortId q = Topology::outPort(d, positive);
                addLinkCause(e.node, q, delta);
                addLinkCause(peer, reversePort(q), delta);
            }
        }
        break;
      }
      case ReconfigEdit::Kind::RoutingSwitch:
        currentRouting_ = e.routingIdx;
        net_->setRoutingFunction(*routings_[e.routingIdx]);
        net_->resetBlockedHeads();
        break;
    }
}

void
ReconfigManager::applyDueEpochs(Cycle now)
{
    while (nextEdit_ < resolved_.size() &&
           resolved_[nextEdit_].at <= now) {
        const Cycle at = resolved_[nextEdit_].at;

        EpochRecord rec;
        rec.cycle = at;
        const std::uint64_t reroutes_before =
            net_->stats_.faultReroutes;

        bool any_down = false;
        while (nextEdit_ < resolved_.size() &&
               resolved_[nextEdit_].at == at) {
            const ResolvedEdit &e = resolved_[nextEdit_++];
            any_down |= e.kind == ReconfigEdit::Kind::LinkDown ||
                        e.kind == ReconfigEdit::Kind::RouterDrain;
            applyEdit(e);
            ++rec.edits;
        }

        // Same sequence a fault flip runs: reconcile the detector's
        // dead-port view, strand worms on removed resources, then
        // kill/requeue them through the bounded-retry path.
        net_->applyDeadPortChanges();
        WORMNET_ASSERT(net_->faultKillQueue_.empty());
        if (any_down)
            net_->scanForStrandedWorms();
        std::vector<MsgId> killed = net_->faultKillQueue_;
        net_->processFaultKills();

        rec.killed = killed.size();
        rec.rerouted =
            net_->stats_.faultReroutes - reroutes_before;
        rec.detectionsAtApply = net_->stats_.detections;
        rec.falseAtApply = net_->stats_.wFalseDetections;
        rec.oracleDeadlockedAtApply = net_->deadlockedNow().size();
        rec.routingAfter = net_->routing().name();
        if (crossCheck_)
            rec.staticVerdict = crossCheckNow();

        records_.push_back(std::move(rec));
        pending_.push_back(std::move(killed));
    }
}

void
ReconfigManager::updateSettle(Cycle now)
{
    for (std::size_t i = 0; i < records_.size(); ++i) {
        EpochRecord &rec = records_[i];
        if (rec.settled())
            continue;
        std::vector<MsgId> &pend = pending_[i];
        std::size_t w = 0;
        for (const MsgId msg : pend) {
            const MsgStatus status =
                net_->messages().get(msg).status;
            if (status == MsgStatus::Delivered)
                ++rec.redelivered;
            else if (status == MsgStatus::Abandoned)
                ++rec.abandonedOfKilled;
            else
                pend[w++] = msg; // still in flight or queued
        }
        pend.resize(w);
        if (pend.empty())
            rec.settleCycle = now;
    }
}

void
ReconfigManager::tick(Cycle now)
{
    if (nextEdit_ < resolved_.size() &&
        resolved_[nextEdit_].at <= now)
        applyDueEpochs(now);
    updateSettle(now);
}

bool
ReconfigManager::settled() const
{
    if (!planExhausted())
        return false;
    for (const std::vector<MsgId> &pend : pending_) {
        if (!pend.empty())
            return false;
    }
    return true;
}

std::string
ReconfigManager::crossCheckNow() const
{
    // The analyzer sees exactly what the live network sees: faulted
    // plus admin-removed links, faulted plus drained routers.
    const NodeId n = topo_->numNodes();
    CdgFaults f;
    f.faultyOut.assign(n, 0);
    f.faultyRouter.assign(n, 0);
    for (NodeId node = 0; node < n; ++node) {
        f.faultyOut[node] = net_->deadOutMask(node);
        f.faultyRouter[node] = net_->nodeOffline(node) ? 1 : 0;
    }
    const ChannelDepGraph graph(*topo_, net_->routing(),
                                net_->routerParams(), std::move(f));
    return toString(graph.report().verdict);
}

void
ReconfigManager::saveState(Serializer &s) const
{
    s.u64(nextEdit_);
    s.u32(static_cast<std::uint32_t>(currentRouting_));
    for (const std::uint8_t c : adminCount_)
        s.u8(c);
    for (const std::uint8_t c : drainCount_)
        s.u8(c);
    s.u32(static_cast<std::uint32_t>(records_.size()));
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const EpochRecord &rec = records_[i];
        s.u64(rec.cycle);
        s.u32(rec.edits);
        s.str(rec.routingAfter);
        s.str(rec.staticVerdict);
        s.u64(rec.killed);
        s.u64(rec.rerouted);
        s.u64(rec.redelivered);
        s.u64(rec.abandonedOfKilled);
        s.u64(rec.settleCycle);
        s.u64(rec.detectionsAtApply);
        s.u64(rec.falseAtApply);
        s.u64(rec.oracleDeadlockedAtApply);
        const std::vector<MsgId> &pend = pending_[i];
        s.u32(static_cast<std::uint32_t>(pend.size()));
        for (const MsgId msg : pend)
            s.u32(msg);
    }
}

void
ReconfigManager::loadState(Deserializer &d)
{
    nextEdit_ = d.u64();
    if (nextEdit_ > resolved_.size())
        fatal("reconfiguration checkpoint is ahead of the plan (",
              nextEdit_, " of ", resolved_.size(), " edits applied)");
    currentRouting_ = static_cast<std::int32_t>(d.u32());
    if (currentRouting_ >= 0 &&
        static_cast<std::size_t>(currentRouting_) >= routings_.size())
        fatal("reconfiguration checkpoint references routing #",
              currentRouting_, " but the plan only builds ",
              routings_.size());

    adminMask_.assign(adminMask_.size(), 0);
    activeLinks_ = 0;
    activeDrains_ = 0;
    for (std::size_t i = 0; i < adminCount_.size(); ++i) {
        adminCount_[i] = d.u8();
        if (adminCount_[i] > 0) {
            adminMask_[i / netPorts_] |= PortMask(1)
                                         << (i % netPorts_);
            ++activeLinks_;
        }
    }
    for (std::uint8_t &c : drainCount_) {
        c = d.u8();
        if (c > 0)
            ++activeDrains_;
    }

    records_.resize(d.u32());
    pending_.resize(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
        EpochRecord &rec = records_[i];
        rec.cycle = d.u64();
        rec.edits = d.u32();
        rec.routingAfter = d.str();
        rec.staticVerdict = d.str();
        rec.killed = d.u64();
        rec.rerouted = d.u64();
        rec.redelivered = d.u64();
        rec.abandonedOfKilled = d.u64();
        rec.settleCycle = d.u64();
        rec.detectionsAtApply = d.u64();
        rec.falseAtApply = d.u64();
        rec.oracleDeadlockedAtApply = d.u64();
        std::vector<MsgId> &pend = pending_[i];
        pend.resize(d.u32());
        for (MsgId &msg : pend)
            msg = d.u32();
    }

    // Re-install the routing function in force at save time. The
    // restored router state already reflects any post-switch routing
    // attempts, so blocked heads are NOT reset here.
    if (currentRouting_ >= 0)
        net_->setRoutingFunction(*routings_[currentRouting_]);
}

} // namespace wormnet
