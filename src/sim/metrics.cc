#include "sim/metrics.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace wormnet
{

void
SimStats::samplePeakRss()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
        peakRssBytes = static_cast<std::uint64_t>(ru.ru_maxrss);
#else
        peakRssBytes =
            static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
    }
#endif
}

} // namespace wormnet
