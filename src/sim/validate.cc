#include "sim/validate.hh"

#include <vector>

#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

namespace
{

/** Count the flits of @p msg in an input VC's FIFO (all must be
 *  owned by the VC's worm). */
std::size_t
checkFifoOwnership(const InputVc &vc, NodeId node, PortId port,
                   VcId v)
{
    // Ring-buffer walk via copy-free inspection is not exposed;
    // instead verify the cheap invariants and use size().
    if (vc.free()) {
        wn_assert(vc.fifo.empty(), " occupied FIFO on free VC at ",
                  node, ":", port, ":", unsigned(v));
        wn_assert(!vc.routed, " routing decision on free VC at ",
                  node, ":", port, ":", unsigned(v));
        return 0;
    }
    if (!vc.fifo.empty()) {
        wn_assert(vc.fifo.front().msg == vc.msg,
                  " foreign flit in VC at ", node, ":", port, ":",
                  unsigned(v));
    }
    return vc.fifo.size();
}

} // namespace

void
validateNetworkInvariants(const Network &net)
{
    const RouterParams &rp = net.routerParams();
    const MessageStore &msgs = net.messages();

    // Per-message tallies accumulated while walking the routers.
    std::vector<std::size_t> vc_count(msgs.size(), 0);
    std::vector<std::size_t> flit_count(msgs.size(), 0);

    for (NodeId node = 0; node < net.numNodes(); ++node) {
        const Router &rt = net.router(node);

        for (PortId p = 0; p < rp.numInPorts(); ++p) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                const std::size_t flits =
                    checkFifoOwnership(vc, node, p, v);
                if (vc.free())
                    continue;
                wn_assert(vc.msg < msgs.size());
                ++vc_count[vc.msg];
                flit_count[vc.msg] += flits;

                if (vc.routed) {
                    const OutputVc &out =
                        rt.outputVc(vc.outPort, vc.outVc);
                    wn_assert(out.allocated,
                              " routed VC points at unallocated "
                              "output at ",
                              node, ":", p, ":", unsigned(v));
                    wn_assert(out.msg == vc.msg);
                    wn_assert(out.srcPort == p &&
                              out.srcVc == v);
                    // Fault hygiene: a routing decision pointing at
                    // a dead link should have been backed out (head
                    // not crossed) or killed (worm straddling it)
                    // the moment the fault struck.
                    wn_assert(!net.portFaulty(node, vc.outPort),
                              " routed VC points at faulted port at ",
                              node, ":", p, ":", unsigned(v));
                }
            }
        }

        for (PortId q = 0; q < rp.numOutPorts(); ++q) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const OutputVc &out = rt.outputVc(q, v);
                if (rt.isEjectionPort(q)) {
                    wn_assert(out.credits == rp.bufDepth,
                              " ejection credits drifted at ", node,
                              ":", q);
                } else {
                    const LinkEnd &down = rt.downstream(q);
                    if (down.valid()) {
                        const InputVc &dvc =
                            net.router(down.node).inputVc(down.port,
                                                          v);
                        wn_assert(out.credits ==
                                      rp.bufDepth - dvc.fifo.size(),
                                  " credit mismatch at ", node, ":",
                                  q, ":", unsigned(v), " credits=",
                                  out.credits, " downstream size=",
                                  dvc.fifo.size());
                        if (out.allocated) {
                            wn_assert(dvc.msg == out.msg ||
                                          dvc.free(),
                                      " downstream worm mismatch at ",
                                      node, ":", q, ":", unsigned(v));
                        }
                    }
                }
                if (!out.allocated)
                    continue;
                wn_assert(!net.portFaulty(node, q),
                          " allocation survives on faulted link at ",
                          node, ":", q, ":", unsigned(v));
                const InputVc &src =
                    rt.inputVc(out.srcPort, out.srcVc);
                wn_assert(src.routed && src.outPort == q &&
                              src.outVc == v,
                          " allocation back-pointer broken at ",
                          node, ":", q, ":", unsigned(v));
                wn_assert(src.msg == out.msg);
            }
        }
    }

    // Message-level invariants.
    for (MsgId id = 0; id < msgs.size(); ++id) {
        const Message &m = msgs.get(id);
        switch (m.status) {
          case MsgStatus::Queued:
          case MsgStatus::Killed:
          case MsgStatus::Delivered:
          case MsgStatus::Abandoned:
            wn_assert(m.numLinks() == 0, " message ", id,
                      " holds links in status ",
                      unsigned(m.status));
            wn_assert(vc_count[id] == 0, " message ", id,
                      " occupies VCs in status ",
                      unsigned(m.status));
            break;
          case MsgStatus::Active:
          case MsgStatus::Recovering: {
            wn_assert(m.numLinks() == vc_count[id], " message ", id,
                      " links=", m.numLinks(),
                      " but occupies ", vc_count[id], " VCs");
            wn_assert(m.flitsInjected >= m.flitsEjected);
            wn_assert(m.flitsInjected - m.flitsEjected ==
                          flit_count[id],
                      " message ", id, " flit conservation: ",
                      m.flitsInjected, " injected, ",
                      m.flitsEjected, " ejected, ", flit_count[id],
                      " buffered");
            // Links are wired tail-to-head along real links: each
            // non-injection link's upstream router must host the
            // previous link.
            for (std::size_t i = 1; i < m.numLinks(); ++i) {
                const PathLink &prev = m.link(i - 1);
                const PathLink &cur = m.link(i);
                const LinkEnd &up =
                    net.router(cur.node).upstream(cur.port);
                wn_assert(up.valid(), " mid-chain link of message ",
                          id, " arrived through an injection port");
                wn_assert(up.node == prev.node, " broken chain for "
                          "message ", id, " at hop ", i);
            }
            break;
          }
        }
    }
}

} // namespace wormnet
