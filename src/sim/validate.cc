#include "sim/validate.hh"

#include <vector>

#include "common/contracts.hh"
#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

namespace
{

/** Count the flits of @p msg in an input VC's FIFO (all must be
 *  owned by the VC's worm). */
std::size_t
checkFifoOwnership(const InputVc &vc, NodeId node, PortId port,
                   VcId v)
{
    // Ring-buffer walk via copy-free inspection is not exposed;
    // instead verify the cheap invariants and use size().
    if (vc.free()) {
        WORMNET_ASSERT(vc.fifo.empty(), " occupied FIFO on free VC at ",
                  node, ":", port, ":", unsigned(v));
        WORMNET_ASSERT(!vc.routed, " routing decision on free VC at ",
                  node, ":", port, ":", unsigned(v));
        return 0;
    }
    if (!vc.fifo.empty()) {
        WORMNET_ASSERT(vc.fifo.front().msg == vc.msg,
                  " foreign flit in VC at ", node, ":", port, ":",
                  unsigned(v));
    }
    return vc.fifo.size();
}

} // namespace

void
validateNetworkInvariants(const Network &net)
{
    const RouterParams &rp = net.routerParams();
    const MessageStore &msgs = net.messages();

    // Per-message tallies accumulated while walking the routers.
    std::vector<std::size_t> vc_count(msgs.size(), 0);
    std::vector<std::size_t> flit_count(msgs.size(), 0);

    for (NodeId node = 0; node < net.numNodes(); ++node) {
        const Router &rt = net.router(node);

        for (PortId p = 0; p < rp.numInPorts(); ++p) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                const std::size_t flits =
                    checkFifoOwnership(vc, node, p, v);
                if (vc.free())
                    continue;
                WORMNET_ASSERT(vc.msg < msgs.size());
                ++vc_count[vc.msg];
                flit_count[vc.msg] += flits;

                if (vc.routed) {
                    const OutputVc &out =
                        rt.outputVc(vc.outPort, vc.outVc);
                    WORMNET_ASSERT(out.allocated,
                              " routed VC points at unallocated "
                              "output at ",
                              node, ":", p, ":", unsigned(v));
                    WORMNET_ASSERT(out.msg == vc.msg);
                    WORMNET_ASSERT(out.srcPort == p &&
                              out.srcVc == v);
                    // Fault hygiene: a routing decision pointing at
                    // a dead link should have been backed out (head
                    // not crossed) or killed (worm straddling it)
                    // the moment the fault struck.
                    WORMNET_ASSERT(!net.portFaulty(node, vc.outPort),
                              " routed VC points at faulted port at ",
                              node, ":", p, ":", unsigned(v));
                }
            }
        }

        for (PortId q = 0; q < rp.numOutPorts(); ++q) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const OutputVc &out = rt.outputVc(q, v);
                if (rt.isEjectionPort(q)) {
                    WORMNET_ASSERT(out.credits == rp.bufDepth,
                              " ejection credits drifted at ", node,
                              ":", q);
                } else {
                    const LinkEnd &down = rt.downstream(q);
                    if (down.valid()) {
                        const InputVc &dvc =
                            net.router(down.node).inputVc(down.port,
                                                          v);
                        WORMNET_ASSERT(out.credits ==
                                      rp.bufDepth - dvc.fifo.size(),
                                  " credit mismatch at ", node, ":",
                                  q, ":", unsigned(v), " credits=",
                                  out.credits, " downstream size=",
                                  dvc.fifo.size());
                        if (out.allocated) {
                            WORMNET_ASSERT(dvc.msg == out.msg ||
                                          dvc.free(),
                                      " downstream worm mismatch at ",
                                      node, ":", q, ":", unsigned(v));
                        }
                    }
                }
                if (!out.allocated)
                    continue;
                WORMNET_ASSERT(!net.portFaulty(node, q),
                          " allocation survives on faulted link at ",
                          node, ":", q, ":", unsigned(v));
                const InputVc &src =
                    rt.inputVc(out.srcPort, out.srcVc);
                WORMNET_ASSERT(src.routed && src.outPort == q &&
                              src.outVc == v,
                          " allocation back-pointer broken at ",
                          node, ":", q, ":", unsigned(v));
                WORMNET_ASSERT(src.msg == out.msg);
            }
        }
    }

    // Message-level invariants.
    for (MsgId id = 0; id < msgs.size(); ++id) {
        const Message &m = msgs.get(id);
        switch (m.status) {
          case MsgStatus::Queued:
          case MsgStatus::Killed:
          case MsgStatus::Delivered:
          case MsgStatus::Abandoned:
            WORMNET_ASSERT(m.numLinks() == 0, " message ", id,
                      " holds links in status ",
                      unsigned(m.status));
            WORMNET_ASSERT(vc_count[id] == 0, " message ", id,
                      " occupies VCs in status ",
                      unsigned(m.status));
            break;
          case MsgStatus::Active:
          case MsgStatus::Recovering: {
            WORMNET_ASSERT(m.numLinks() == vc_count[id], " message ", id,
                      " links=", m.numLinks(),
                      " but occupies ", vc_count[id], " VCs");
            WORMNET_ASSERT(m.flitsInjected >= m.flitsEjected);
            WORMNET_ASSERT(m.flitsInjected - m.flitsEjected ==
                          flit_count[id],
                      " message ", id, " flit conservation: ",
                      m.flitsInjected, " injected, ",
                      m.flitsEjected, " ejected, ", flit_count[id],
                      " buffered");
            // Links are wired tail-to-head along real links: each
            // non-injection link's upstream router must host the
            // previous link.
            for (std::size_t i = 1; i < m.numLinks(); ++i) {
                const PathLink &prev = m.link(i - 1);
                const PathLink &cur = m.link(i);
                const LinkEnd &up =
                    net.router(cur.node).upstream(cur.port);
                WORMNET_ASSERT(up.valid(), " mid-chain link of message ",
                          id, " arrived through an injection port");
                WORMNET_ASSERT(up.node == prev.node, " broken chain for "
                          "message ", id, " at hop ", i);
            }
            break;
          }
        }
    }
}

} // namespace wormnet
