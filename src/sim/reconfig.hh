/**
 * @file
 * Online topology reconfiguration.
 *
 * A ReconfigPlan is a timed sequence of administrative edits applied
 * to a *live* network — no drain, no barrier: traffic keeps flowing
 * while links are removed or restored, routers are taken out of
 * service for maintenance, and the routing function itself is swapped
 * (cf. the Double-Scheme and partial-progressive reconfiguration
 * lines of work). All edits scheduled for one cycle form an *epoch*
 * and are applied atomically between two simulator steps.
 *
 * Epoch semantics:
 *  - An admin-removed link transmits nothing, exactly like a faulted
 *    link; admin and fault causes are reference-counted separately
 *    and compose (removing an already-faulted link is legal, as is a
 *    fault on an admin-removed link). The deadlock detector hears
 *    only *combined* dead-state flips.
 *  - Draining a router takes the node plus every incident link (both
 *    directions) out of service, mirroring FaultModel router faults.
 *  - Worms caught across a removed resource are killed and re-queued
 *    at their source through the same bounded-retry path fault kills
 *    use; heads routed toward a removed link that have not crossed it
 *    yet are backed out and re-routed live.
 *  - A routing switch replaces the routing relation under the
 *    in-flight worms. Granted output VCs are honoured (worms finish
 *    their current hop chains); every *blocked* head is re-presented
 *    to the new relation as a fresh first attempt, and the detector's
 *    routing-dependent state is reset via onRoutingChanged() so no
 *    stale presumed-deadlock verdict survives the switch.
 *  - After applying an epoch the manager records how the transient
 *    resolved (worms killed / rerouted / redelivered / abandoned,
 *    settle cycle) and, when cross-checking is enabled, runs the
 *    static channel-dependency analyzer on the post-epoch
 *    configuration so runtime behaviour can be audited against the
 *    offline verdict.
 *
 * Plan grammar (comma-separated items, see ReconfigPlan::parse):
 *    link-:<a>><b>@<cycle>     remove the a->b link at <cycle>
 *    link+:<a>><b>@<cycle>     restore a previously removed link
 *    router-:<n>@<cycle>       drain router n (and incident links)
 *    router+:<n>@<cycle>       restore router n
 *    routing:<name>@<cycle>    switch to routing function <name>
 *                              (tfa | dor | duato | westfirst)
 */

#ifndef WORMNET_SIM_RECONFIG_HH
#define WORMNET_SIM_RECONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "analysis/cdg.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "router/router.hh"
#include "routing/routing.hh"
#include "topology/topology.hh"

namespace wormnet
{

class Network;

/** One administrative edit of a reconfiguration plan. */
struct ReconfigEdit
{
    enum class Kind : std::uint8_t
    {
        LinkDown,      ///< remove one directed link
        LinkUp,        ///< restore one directed link
        RouterDrain,   ///< take a router out of service
        RouterRestore, ///< return a drained router to service
        RoutingSwitch, ///< swap the routing function
    };

    Kind kind = Kind::LinkDown;
    NodeId node = kInvalidNode;  ///< link source, or the router
    NodeId peer = kInvalidNode;  ///< link destination (links only)
    std::string routingSpec;     ///< RoutingSwitch only
    Cycle at = 0;                ///< activation cycle
};

/** A parsed plan: edits stable-sorted by activation cycle. */
struct ReconfigPlan
{
    std::vector<ReconfigEdit> edits;

    bool empty() const { return edits.empty(); }

    /**
     * Parse a "--reconfig" spec string (grammar in the file header).
     * fatal() with a usage hint on any malformed item. Validation
     * against a concrete topology (does the link exist, do restores
     * balance removals) happens at ReconfigManager::bind() or
     * analyzePlanStatic().
     */
    static ReconfigPlan parse(const std::string &spec);
};

/** How one applied epoch played out at runtime. */
struct EpochRecord
{
    Cycle cycle = 0;      ///< activation cycle
    unsigned edits = 0;   ///< edits applied in this epoch

    /** Routing function in force after the epoch. */
    std::string routingAfter;

    /** Static analyzer verdict on the post-epoch configuration
     *  (empty when cross-checking is disabled). */
    std::string staticVerdict;

    /** @name Transient bookkeeping. */
    /// @{
    std::uint64_t killed = 0;    ///< worms killed by this epoch
    std::uint64_t rerouted = 0;  ///< heads backed off removed links
    /** Of the killed worms: delivered after re-injection so far. */
    std::uint64_t redelivered = 0;
    /** Of the killed worms: abandoned (retry budget exhausted). */
    std::uint64_t abandonedOfKilled = 0;
    /** First cycle at which every killed worm reached a terminal
     *  state (delivered or abandoned); kNever while outstanding. */
    Cycle settleCycle = kNever;
    /// @}

    /** @name Detection health snapshot at apply time. */
    /// @{
    std::uint64_t detectionsAtApply = 0; ///< lifetime verdicts so far
    std::uint64_t falseAtApply = 0;      ///< windowed false detections
    /** Oracle-confirmed deadlocked messages present at apply. */
    std::uint64_t oracleDeadlockedAtApply = 0;
    /// @}

    bool settled() const { return settleCycle != kNever; }
};

/** Static analyzer result for one epoch of a plan. */
struct EpochStaticResult
{
    Cycle cycle = 0;      ///< epoch activation cycle
    unsigned edits = 0;   ///< edits in this epoch
    std::string routing;  ///< routing in force after the epoch
    CdgReport report;     ///< full static analysis of the config
};

/**
 * Offline what-if analysis of a reconfiguration plan: fold each
 * epoch's edits into the admin dead-resource state, and run the
 * static channel-dependency analyzer on every post-epoch
 * configuration (epoch 0 entry = the initial configuration before
 * any edit). Shares the plan format and resolution rules with the
 * runtime manager, so `wormnet-analyze --reconfig` and the live
 * cross-check can never diverge on what a plan means. fatal() on
 * plans that reference missing links/nodes or unbalance restores.
 *
 * @param base static faults merged into every epoch (from --faults).
 */
std::vector<EpochStaticResult>
analyzePlanStatic(const ReconfigPlan &plan, const Topology &topo,
                  const RouterParams &params,
                  const std::string &initial_routing,
                  const CdgFaults &base = {});

/**
 * Applies a ReconfigPlan to a live Network and records per-epoch
 * outcome. Owned by the Simulation (or a test), attached via
 * Network::attachReconfig(), ticked once per cycle right after the
 * fault model.
 *
 * Admin link removals are reference-counted per directed link
 * (an explicit link- plus an overlapping router drain compose and
 * restore independently), mirroring the FaultModel.
 */
class ReconfigManager
{
  public:
    /**
     * @param plan the parsed edit plan
     * @param cross_check run the static CDG analyzer on every
     *        post-epoch configuration and record the verdict
     */
    explicit ReconfigManager(ReconfigPlan plan,
                             bool cross_check = true);

    /**
     * Resolve the plan against @p net's topology: map link endpoints
     * to output ports, dry-run the admin reference counts (fatal on
     * a restore without a matching removal), and pre-construct every
     * routing function the plan switches to. Called by
     * Network::attachReconfig().
     */
    void bind(Network &net);

    /**
     * Advance to cycle @p now: apply due epochs through the
     * stranded-worm machinery, then update the settle bookkeeping of
     * every epoch with outstanding killed worms.
     */
    void tick(Cycle now);

    /** @name Current admin state (queried by the Network). */
    /// @{
    /** Bitmask of admin-removed *network* output ports of @p node. */
    PortMask
    adminDownMask(NodeId node) const
    {
        return adminMask_[node];
    }

    /** Router @p node is drained (out of service). */
    bool drained(NodeId node) const { return drainCount_[node] != 0; }

    /** Links admin-removed right now (directions count separately). */
    std::size_t activeLinkRemovals() const { return activeLinks_; }

    /** Routers drained right now. */
    std::size_t activeDrains() const { return activeDrains_; }
    /// @}

    /** @name Progress. */
    /// @{
    /** Epochs applied so far (records grow as epochs fire). */
    const std::vector<EpochRecord> &epochs() const
    {
        return records_;
    }

    /** Every epoch has been applied. */
    bool planExhausted() const { return nextEdit_ >= plan_.edits.size(); }

    /** Every epoch applied and every killed worm terminal. */
    bool settled() const;
    /// @}

    const ReconfigPlan &plan() const { return plan_; }

    /** @name Checkpoint support. The plan itself is config (rebuilt
     *  by bind()); admin counts, applied-epoch records and the
     *  outstanding killed-worm lists are written. The active routing
     *  function is re-installed on the network during loadState(). */
    /// @{
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);
    /// @}

  private:
    /** Plan edit resolved against the topology. */
    struct ResolvedEdit
    {
        ReconfigEdit::Kind kind;
        NodeId node = kInvalidNode;
        PortId outPort = kInvalidPort; ///< links only
        /** RoutingSwitch: index into routings_. */
        std::int32_t routingIdx = -1;
        Cycle at = 0;
    };

    /** Adjust one directed link's admin reference count. */
    void addLinkCause(NodeId node, PortId out_port, int delta);

    /** Apply one resolved edit's admin flips. */
    void applyEdit(const ResolvedEdit &e);

    /** Apply every due epoch at cycle @p now. */
    void applyDueEpochs(Cycle now);

    /** Classify outstanding killed worms of unsettled epochs. */
    void updateSettle(Cycle now);

    /** Static cross-check of the current live configuration. */
    std::string crossCheckNow() const;

    ReconfigPlan plan_;
    bool crossCheck_;

    Network *net_ = nullptr;
    const Topology *topo_ = nullptr;
    unsigned netPorts_ = 0;

    /** Plan resolved to (node, out_port / routing idx); cycle order. */
    std::vector<ResolvedEdit> resolved_;
    std::size_t nextEdit_ = 0;

    /** Routing functions the plan switches to, pre-built at bind().
     *  Old functions are kept alive: granted paths may still be
     *  inspected, and checkpoints index into this vector. */
    std::vector<std::unique_ptr<RoutingFunction>> routings_;
    /** Active function: -1 = the network's construction-time one. */
    std::int32_t currentRouting_ = -1;

    /** Per (node, network out port): active admin-removal causes. */
    std::vector<std::uint8_t> adminCount_;
    /** Per node: bitmask of admin-removed network output ports. */
    std::vector<PortMask> adminMask_;
    /** Per node: active drain causes (plan edits are the only source
     *  today, but counted for symmetry with the FaultModel). */
    std::vector<std::uint8_t> drainCount_;

    std::size_t activeLinks_ = 0;
    std::size_t activeDrains_ = 0;

    /** One record per applied epoch, in application order. */
    std::vector<EpochRecord> records_;
    /** Per applied epoch: killed worms not yet terminal. */
    std::vector<std::vector<MsgId>> pending_;
};

} // namespace wormnet

#endif // WORMNET_SIM_RECONFIG_HH
