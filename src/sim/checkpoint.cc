#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/log.hh"

namespace wormnet
{

namespace
{

constexpr char kMagic[8] = {'W', 'N', 'C', 'K', 'P', 'T', '0', '1'};

} // namespace

void
writeCheckpointFile(const std::string &path,
                    const std::string &config,
                    const Serializer &payload)
{
    Serializer header;
    for (const char c : kMagic)
        header.u8(static_cast<std::uint8_t>(c));
    header.u32(kCheckpointVersion);
    header.u32(crc32(payload.bytes().data(), payload.bytes().size()));
    header.u64(payload.bytes().size());
    header.str(config);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot open checkpoint file '", tmp,
                  "' for writing");
        out.write(reinterpret_cast<const char *>(
                      header.bytes().data()),
                  static_cast<std::streamsize>(
                      header.bytes().size()));
        out.write(reinterpret_cast<const char *>(
                      payload.bytes().data()),
                  static_cast<std::streamsize>(
                      payload.bytes().size()));
        out.flush();
        if (!out)
            fatal("write to checkpoint file '", tmp, "' failed");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("cannot rename checkpoint file '", tmp, "' to '",
              path, "'");
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path,
                   const std::string &expected_config)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open checkpoint file '", path, "'");
    std::vector<std::uint8_t> raw(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        fatal("read of checkpoint file '", path, "' failed");

    Deserializer d(raw.data(), raw.size());
    if (d.remaining() < sizeof(kMagic))
        fatal("checkpoint file '", path, "' is truncated");
    char magic[sizeof(kMagic)];
    for (char &c : magic)
        c = static_cast<char>(d.u8());
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'", path, "' is not a wormnet checkpoint file");
    const std::uint32_t version = d.u32();
    if (version != kCheckpointVersion)
        fatal("checkpoint file '", path, "' has format version ",
              version, "; this build reads version ",
              kCheckpointVersion,
              " (checkpoints do not migrate across layout changes)");
    const std::uint32_t crc = d.u32();
    const std::uint64_t size = d.u64();
    const std::string config = d.str();
    if (config != expected_config)
        fatal("checkpoint file '", path,
              "' was written by a different configuration\n"
              "  checkpoint: ", config, "\n",
              "  this run:   ", expected_config);
    if (d.remaining() != size)
        fatal("checkpoint file '", path, "' payload is ", d.remaining(),
              " bytes; header promises ", size);

    std::vector<std::uint8_t> payload(raw.end() -
                                          static_cast<std::ptrdiff_t>(
                                              size),
                                      raw.end());
    if (crc32(payload.data(), payload.size()) != crc)
        fatal("checkpoint file '", path,
              "' is corrupt (CRC mismatch)");
    return payload;
}

} // namespace wormnet
