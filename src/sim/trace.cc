#include "sim/trace.hh"

#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

const char *
traceEventName(TraceEvent event)
{
    switch (event) {
      case TraceEvent::Generated:
        return "generated";
      case TraceEvent::InjectStart:
        return "inject";
      case TraceEvent::Routed:
        return "routed";
      case TraceEvent::Blocked:
        return "blocked";
      case TraceEvent::Detected:
        return "DETECTED";
      case TraceEvent::Killed:
        return "killed";
      case TraceEvent::Reinjected:
        return "reinjected";
      case TraceEvent::Delivered:
        return "delivered";
      case TraceEvent::DeliveredRecovered:
        return "delivered-recovered";
      case TraceEvent::FaultKilled:
        return "fault-killed";
      case TraceEvent::Rerouted:
        return "rerouted";
      case TraceEvent::Abandoned:
        return "ABANDONED";
    }
    return "?";
}

Tracer::Tracer(std::size_t capacity) : buf_(capacity)
{
    WORMNET_ASSERT(capacity >= 1);
}

void
Tracer::record(Cycle cycle, TraceEvent event, MsgId msg, NodeId node,
               PortId port, VcId vc)
{
    const std::size_t idx = (head_ + size_) % buf_.size();
    buf_[idx] = TraceRecord{cycle, event, msg, node, port, vc};
    if (size_ < buf_.size())
        ++size_;
    else
        head_ = (head_ + 1) % buf_.size();
    ++total_;
}

const TraceRecord &
Tracer::at(std::size_t i) const
{
    WORMNET_ASSERT(i < size_);
    return buf_[(head_ + i) % buf_.size()];
}

std::vector<TraceRecord>
Tracer::messageHistory(MsgId msg) const
{
    std::vector<TraceRecord> out;
    for (std::size_t i = 0; i < size_; ++i) {
        const TraceRecord &r = at(i);
        if (r.msg == msg)
            out.push_back(r);
    }
    return out;
}

std::size_t
Tracer::countEvent(TraceEvent event) const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < size_; ++i)
        count += at(i).event == event;
    return count;
}

std::string
Tracer::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < size_; ++i) {
        const TraceRecord &r = at(i);
        os << r.cycle << ' ' << traceEventName(r.event) << " msg="
           << r.msg;
        if (r.node != kInvalidNode) {
            os << " @" << r.node;
            if (r.port != kInvalidPort) {
                os << ':' << r.port;
                if (r.vc != kInvalidVc)
                    os << '.' << unsigned(r.vc);
            }
        }
        os << '\n';
    }
    return os.str();
}

void
Tracer::clear()
{
    head_ = 0;
    size_ = 0;
    total_ = 0;
}

} // namespace wormnet
