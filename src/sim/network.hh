/**
 * @file
 * The cycle-driven wormhole network simulator.
 *
 * Network owns the routers, the message store, the per-node source
 * queues and traffic generators, and advances the whole system one
 * clock cycle at a time. Each step() executes, in order:
 *
 *   1. traffic generation and message injection (gated by the
 *      injection-limitation mechanism of López & Duato when enabled);
 *   2. routing + virtual-channel allocation for every head flit
 *      (failed attempts drive the pluggable deadlock detector, whose
 *      verdicts are handed to the recovery manager);
 *   3. switch allocation and flit transfer — at most one flit per
 *      output physical channel per cycle, one-cycle link latency,
 *      credit-based backpressure;
 *   4. recovery-manager tick (progressive drains, delayed
 *      re-injections);
 *   5. per-router detector cycle-end hooks (inactivity counters);
 *   6. periodic ground-truth oracle bookkeeping.
 *
 * Timing matches the paper's model: routing, crossbar traversal and
 * link traversal each take one clock cycle; each virtual channel has a
 * private flit buffer; every node has multiple injection and ejection
 * ports ("four-port architecture").
 */

#ifndef WORMNET_SIM_NETWORK_HH
#define WORMNET_SIM_NETWORK_HH

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "common/contracts.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "detection/detector.hh"
#include "router/message.hh"
#include "router/router.hh"
#include "router/vc_state.hh"
#include "routing/routing.hh"
#include "sim/activity.hh"
#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "topology/topology.hh"
#include "traffic/generator.hh"

namespace wormnet
{

class RecoveryManager;
class FaultModel;
class ReconfigManager;
class Serializer;
class Deserializer;

/** How the allocator picks among multiple free candidate VCs. */
enum class VcSelection : std::uint8_t
{
    Random,   ///< uniform among the free candidates
    FirstFit, ///< first free candidate in routing-function order
};

/** Network-level knobs (router shape lives in RouterParams). */
struct NetworkParams
{
    unsigned vcs = 3;
    unsigned bufDepth = 4;
    unsigned injPorts = 4;
    unsigned ejePorts = 4;

    /** Enable the injection-limitation mechanism [López & Duato]. */
    bool injectionLimit = true;
    /**
     * A node may inject a new message only while the number of busy
     * (allocated) virtual channels on its network output ports does
     * not exceed fraction * (netPorts * vcs), rounded down.
     */
    double injectionLimitFraction = 0.4;

    VcSelection selection = VcSelection::Random;

    /** Cycles between ground-truth oracle sweeps (0 disables). */
    Cycle oraclePeriod = 128;

    /** Cap on messages queued per source before generation stalls
     *  (keeps saturated runs bounded; 0 = unbounded). */
    std::size_t maxSourceQueue = 0;

    /** @name Fault handling (only used with an attached FaultModel). */
    /// @{
    /** Kills a stranded message tolerates before being abandoned. */
    unsigned maxRetries = 32;
    /** Base re-injection delay after a fault kill. */
    Cycle faultRetryDelay = 32;
    /// @}
};

/** The simulator core. */
class Network
{
  public:
    /**
     * @param topo topology (kept by reference, not owned)
     * @param params network knobs
     * @param routing routing function (not owned)
     * @param detector deadlock detector (not owned)
     * @param recovery recovery manager (not owned, may be nullptr:
     *        verdicts are then counted but nothing is freed)
     * @param pattern traffic destination pattern (not owned)
     * @param lengths message length distribution (not owned)
     * @param flit_rate offered load in flits/cycle/node
     * @param seed master random seed
     */
    Network(const Topology &topo, const NetworkParams &params,
            RoutingFunction &routing, DeadlockDetector &detector,
            RecoveryManager *recovery, TrafficPattern &pattern,
            LengthDistribution &lengths, double flit_rate,
            std::uint64_t seed);

    /** Advance one clock cycle. */
    void step();

    /** Advance @p cycles clock cycles. */
    void run(Cycle cycles);

    /** Reset windowed statistics; subsequent messages are measured. */
    void startMeasurement();

    Cycle now() const { return now_; }

    /** Inside the measurement window (startMeasurement() ran). */
    bool measuring() const { return measuring_; }

    /** @name Component access. */
    /// @{
    const Topology &topology() const { return topo_; }
    const NetworkParams &params() const { return params_; }
    const RouterParams &routerParams() const { return routerParams_; }
    const RoutingFunction &routing() const { return *routing_; }

    NodeId numNodes() const { return nNodes_; }

    Router &router(NodeId node) { return routers_[node]; }
    const Router &router(NodeId node) const { return routers_[node]; }

    MessageStore &messages() { return messages_; }
    const MessageStore &messages() const { return messages_; }

    SimStats &stats() { return stats_; }
    const SimStats &stats() const { return stats_; }

    std::size_t sourceQueueLength(NodeId node) const
    {
        return sourceQueues_[node].size();
    }

    /** Total messages waiting in all source queues (O(1): maintained
     *  as a running counter, polled every drain-loop iteration). */
    std::size_t totalQueued() const { return totalQueuedCount_; }

    /** Messages currently inside the network (injecting/blocked). */
    std::size_t inFlight() const { return inFlight_; }
    /// @}

    /** Change the offered load on every node (saturation sweeps). */
    void setFlitRate(double flit_rate);

    /**
     * Shard this network's step() across @p jobs worker threads
     * (sharded stepping; see docs/MECHANISMS.md). Nodes are
     * partitioned into contiguous 64-aligned blocks; the read-only
     * per-cycle passes (traffic generation, route-candidate warming,
     * switch-arbitration decisions, detector cycle-end when the
     * detector is cycleEndShardSafe()) fan out one task per shard,
     * while every state commit stays on the caller thread in
     * ascending node order — so results, stdout and checkpoints are
     * bitwise-identical at any job count. jobs <= 1 (and any network
     * of <= 64 nodes, which yields a single shard) keeps the plain
     * sequential path with no pool at all. The shard count is a
     * runtime choice, never serialized: a checkpoint written at one
     * job count resumes at any other.
     */
    void setSimJobs(unsigned jobs);

    /** Configured intra-simulation worker count (>= 1). */
    unsigned simJobs() const { return simJobs_; }

    /** Attach (or detach with nullptr) an event tracer. Not owned. */
    void attachTracer(Tracer *tracer) { tracer_ = tracer; }

    /**
     * Attach a fault model (not owned; nullptr detaches). The model
     * is resolved against this network's topology and seeded from the
     * master stream; it then advances at the start of every step().
     */
    void attachFaultModel(FaultModel *faults);

    const FaultModel *faultModel() const { return faults_; }

    /**
     * Attach a reconfiguration manager (not owned; nullptr detaches).
     * It is ticked at the start of every step(), right after the
     * fault model, and applies its plan's epochs through the same
     * stranded-worm machinery faults use.
     */
    void attachReconfig(ReconfigManager *reconfig);

    const ReconfigManager *reconfig() const { return reconfig_; }

    /** Combined dead-output mask of @p node: faulted links plus
     *  links administratively removed by reconfiguration. */
    PortMask deadOutMask(NodeId node) const;

    /** @p node neither routes nor generates traffic: its router is
     *  faulted or administratively drained. */
    bool nodeOffline(NodeId node) const;

    /**
     * Swap the routing function under a live network (online
     * reconfiguration). The new function must be sized for this
     * topology. Existing output-VC allocations are honoured; blocked
     * heads must be re-presented via resetBlockedHeads() so their
     * next attempt consults the new relation as a fresh first try.
     */
    void setRoutingFunction(RoutingFunction &routing);

    /**
     * Reset the blocked-header bookkeeping (attempted, lastFeasible,
     * headBlockedSince) of every unrouted head and notify the
     * detector via onRoutingChanged(). Called by the reconfiguration
     * manager after a routing switch: detection state tied to the old
     * routing relation is dropped and re-seeded soundly.
     */
    void resetBlockedHeads();

    /** The (node, out_port) link cannot currently transmit — faulted,
     *  or administratively removed by reconfiguration. Always false
     *  for ejection ports. */
    bool portFaulty(NodeId node, PortId out_port) const;

    /** @name Channel utilisation (measurement window). */
    /// @{
    /** Flits transmitted on (node, out_port) during the window. */
    std::uint64_t
    channelTxCount(NodeId node, PortId out_port) const
    {
        return txCount_[std::size_t(node) *
                            routerParams_.numOutPorts() +
                        out_port];
    }

    /** Utilisation (flits/cycle) of one output physical channel. */
    double channelUtilization(NodeId node, PortId out_port) const;

    /** Distribution of utilisation over all *network* channels. */
    RunningStat utilizationSummary() const;
    /// @}

    /**
     * Hand-inject a specific message (testing and the paper-figure
     * scenarios). Bypasses the generators but follows the normal
     * injection path: the message is queued at @p src and injected as
     * capacity allows.
     * @return the new message id.
     */
    MsgId injectMessage(NodeId src, NodeId dst, unsigned length);

    /** @name Recovery-manager services. */
    /// @{
    /**
     * Pop one ready flit from @p msg's header VC into the node-local
     * recovery buffer (progressive recovery). Maintains credits, link
     * chains and detector hooks exactly as a switch traversal would.
     * @param[out] type the popped flit's type when successful.
     * @return false when no flit was ready this cycle.
     */
    bool drainHeaderFlit(MsgId msg, FlitType &type);

    /**
     * Mark @p msg delivered now (via the recovery path when
     * @p via_recovery). The message must not hold any VC.
     */
    void markDelivered(MsgId msg, bool via_recovery);

    /**
     * Flag @p msg's head input VC as draining into the recovery
     * buffer. Recovery managers must use this instead of writing
     * InputVc::recovering directly so the Network's activity sets
     * stay consistent.
     */
    void setHeadRecovering(MsgId msg);

    /**
     * Regressive recovery: remove @p msg's flits from every buffer it
     * occupies, release its VCs and credits, and re-queue it at its
     * source after @p reinject_delay cycles.
     */
    void killAndRequeue(MsgId msg, Cycle reinject_delay);

    /**
     * Give up on @p msg: remove its flits and release its VCs like
     * killAndRequeue, but do not re-queue it — the message ends in
     * MsgStatus::Abandoned and is counted in stats().abandoned.
     */
    void killAndAbandon(MsgId msg);
    /// @}

    /**
     * Ground-truth: message ids currently truly deadlocked (computed
     * by the oracle, memoised per cycle).
     */
    const std::vector<MsgId> &deadlockedNow();

    /** Downstream input VC of output (port, vc) can accept a new
     *  worm. Ejection ports are always ready. (Also used by the
     *  ground-truth oracle.) */
    bool downstreamVcFree(const Router &rt, PortId out_port,
                          VcId vc) const;

    /** @name Phase timers (microbenchmark support).
     *
     * When enabled, step() accumulates wall-clock nanoseconds spent
     * in the routing/VC-allocation phase (VA) and the switch
     * allocation + flit transfer phase (SA), alongside a running
     * count of flit-hops performed. Diagnostic state: never
     * serialized, zero overhead beyond one branch when disabled.
     */
    /// @{
    void enablePhaseTimers(bool on) { phaseTimers_ = on; }
    void
    resetPhaseTimers()
    {
        vaNanos_ = saNanos_ = 0;
        flitHops_ = 0;
    }
    std::uint64_t vaNanos() const { return vaNanos_; }
    std::uint64_t saNanos() const { return saNanos_; }
    std::uint64_t flitHops() const { return flitHops_; }
    /// @}

    /**
     * @name Checkpoint support.
     *
     * saveState() captures every bit of dynamic state at a step()
     * boundary: the clock, Rng streams, all router VC/buffer state,
     * the message store, source queues, pending re-injections,
     * statistics, activity sets, and the attached detector, recovery
     * manager and fault model. Static configuration (topology,
     * parameters, link wiring) is not written — the checkpoint
     * header's config string guarantees the loading network was
     * constructed identically. loadState() restores onto a freshly
     * constructed network and is bitwise-deterministic: a resumed
     * run produces exactly the cycles an uninterrupted run would.
     */
    /// @{
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);
    /// @}

  private:
    friend class ReconfigManager;
    /* The per-cycle phase drivers below are *commit* phase: they
     * mutate committed network state in ascending node order and own
     * the global RNG stream. Their shard-parallel decide passes are
     * declared further down with WN_DECIDE_PHASE; wormnet-lint
     * enforces the split (see docs/STATIC_ANALYSIS.md). */
    WN_COMMIT_PHASE void generateAndInject();
    void tryStartInjection(NodeId node);
    WN_COMMIT_PHASE void routeAll();
    WN_COMMIT_PHASE void routeOne(Router &rt, PortId port, VcId vc,
                                  PortMask fault_mask);
    WN_COMMIT_PHASE void switchAll();
    /** Move the winning flit of (out_port, out_vc) across the
     *  switch. @p out / @p vc are the already-resolved output VC and
     *  its routed source input VC (the pop is inlined here). */
    WN_COMMIT_PHASE void transferFlit(Router &rt, PortId out_port,
                                      VcId out_vc, OutputVc &out,
                                      InputVc &vc);
    void detectorCycleEnd();
    /** The per-node cycle-end sweep itself (exhaustive or
     *  active-set), without the control-traffic poll. */
    void runDetectorCycleEnd();
    void oracleTick();

    /** @name Fault handling. */
    /// @{
    /** Advance the fault model and react to state changes. */
    void faultTick();
    /** Find worms stranded by a fault-state change: un-route heads
     *  that had not crossed the dead link yet, queue kills for worms
     *  straddling it or sitting in a dead router. */
    void scanForStrandedWorms();
    /** Kill (re-queue or abandon) everything queued by the scan or by
     *  the routing phase. */
    void processFaultKills();

    /**
     * Reconcile the detector's per-port dead-channel view with the
     * current deadOutMask(). Fault and admin causes overlap — a
     * faulted link may also be admin-removed — so the detector's
     * onPortFaultChanged() must fire only when the *combined* state
     * flips, never when one cause joins or leaves an already-dead
     * port. Fires for every port whose combined state differs from
     * detectorDeadMask_, then updates the mask.
     */
    void applyDeadPortChanges();
    /// @}

    /** Release every VC, buffer and credit @p m's worm holds
     *  (shared by killAndRequeue and killAndAbandon). */
    void releaseWorm(Message &m);

    /** Enqueue @p flit into (router, port, vc), maintaining the
     *  message/link bookkeeping on head flits. */
    void enqueueFlit(Router &rt, PortId port, VcId vc,
                     const Flit &flit);

    /** Pop the front flit of (router, port, vc) with tail/credit
     *  bookkeeping shared by switch traversal and recovery drain. */
    Flit popFlit(Router &rt, PortId port, VcId vc);

    /** Apply queued credit returns (creditReturns_) to their output
     *  VCs, re-arming switch candidates that come off zero credits
     *  with a sendable source flit. */
    void replayCredits();

    /** Injection-limitation check for @p node. */
    bool injectionAllowed(NodeId node) const;

    /** @name Activity-set maintenance (see docs/MECHANISMS.md).
     *
     * The per-cycle phases iterate small active sets instead of
     * scanning every node x port x VC. Membership is updated at the
     * state transitions below; every set iterates in ascending node
     * order (and the unmodified inner port/VC order), which keeps the
     * cycle-level behaviour bitwise-identical to exhaustive scans.
     */
    /// @{
    /** Re-derive (node, port, vc)'s routable-head set membership
     *  after any mutation of its msg/routed/recovering state. */
    void syncRoutable(NodeId node, PortId port, VcId vc);

    /** Re-derive @p node's active-injector set membership from its
     *  source queue and injection-VC occupancy. */
    void syncInjActive(NodeId node);

    /** Allocate output (port, vc) of @p node to @p msg coming from
     *  input (src_port, src_vc), with switch/detector set upkeep. */
    void allocOutputVc(NodeId node, PortId port, VcId vc, MsgId msg,
                       PortId src_port, VcId src_vc);

    /** Release output (port, vc) of @p node, with set upkeep. */
    void releaseOutputVc(NodeId node, PortId port, VcId vc);

    /** Release input (port, vc) of @p node (worm fully left): resets
     *  the VC, maintains the activity sets and fires the detector's
     *  onInputVcFreed hook. */
    void releaseInputVc(NodeId node, PortId port, VcId vc);

    /** Queue @p msg for a fault kill unless already queued. */
    void queueFaultKill(MsgId msg);

    /** Push @p msg onto @p node's source queue (front when
     *  @p at_front: regressive re-injection) with counter upkeep. */
    void pushSource(NodeId node, MsgId msg, bool at_front);

    /** Pop the front of @p node's source queue with counter upkeep. */
    MsgId popSource(NodeId node);

    /** Cross-check every active set against a brute-force scan
     *  (a full-level structural invariant: on by default when built
     *  with WORMNET_CONTRACTS=full, and forced on/off by the
     *  WORMNET_CHECK_ACTIVE_SETS environment variable; panics on
     *  the first divergence). */
    void verifyActiveSets() const;
    /// @}

    /** Record a deadlock verdict for @p msg and invoke recovery. */
    void handleDetection(MsgId msg);

    /** @name Sharded stepping (see setSimJobs()).
     *
     * numShards_ == 0 means sequential: every phase runs its
     * original single-threaded code verbatim. With shards, each
     * phase splits into a parallel read-only pass over frozen state
     * (workers write only shard-private staging slots) and a
     * sequential commit that replays the staged results in ascending
     * node order — reproducing the exact sequential interleaving of
     * RNG draws, stats updates, message-id assignment and detector
     * verdicts.
     */
    /// @{
    NodeId shardBegin(unsigned s) const
    {
        return static_cast<NodeId>(s) * shardSize_;
    }
    NodeId shardEnd(unsigned s) const
    {
        return std::min<NodeId>(nNodes_,
                                static_cast<NodeId>(s + 1) *
                                    shardSize_);
    }

    /** Fork one task per shard onto the pool and join. @p fn is
     *  called as fn(shard, begin, end) with 64-aligned begin. */
    template <typename Fn>
    void
    runOnShards(Fn &&fn)
    {
        for (unsigned s = 0; s < numShards_; ++s) {
            simPool_->submit([this, &fn, s] {
                fn(s, shardBegin(s), shardEnd(s));
            });
        }
        simPool_->wait();
    }

    /** Parallel pass of the generation phase: tick every online
     *  node's generator in [begin, end) into genStage_. */
    WN_DECIDE_PHASE void stageGeneration(NodeId begin, NodeId end);

    /** Parallel pass of the routing phase: warm the route-candidate
     *  cache for every routable head in [begin, end) so the
     *  sequential routeAll() commit only replays cache hits. */
    WN_DECIDE_PHASE void warmRouteCandidates(unsigned shard,
                                             NodeId begin,
                                             NodeId end);

    /** One switch-arbitration winner, staged by the parallel decide
     *  pass and committed sequentially. */
    struct SwitchDecision
    {
        NodeId node;
        PortId port;
        VcId vc;
    };

    /** Parallel pass of the switch phase: run the arbitration scan
     *  for [begin, end) over frozen state, appending winners (in
     *  ascending node/port order) to the shard's decision list. */
    WN_DECIDE_PHASE void switchDecideShard(unsigned shard,
                                           NodeId begin, NodeId end);
    /// @}

    /** Emit a trace record when a tracer is attached. */
    void
    trace(TraceEvent event, MsgId msg, NodeId node = kInvalidNode,
          PortId port = kInvalidPort, VcId vc = kInvalidVc)
    {
        if (tracer_)
            tracer_->record(now_, event, msg, node, port, vc);
    }

    const Topology &topo_;
    /** topo_.numNodes(), memoised out of the virtual call: the value
     *  bounds every per-cycle loop. */
    NodeId nNodes_ = 0;
    NetworkParams params_;
    RouterParams routerParams_;
    RoutingFunction *routing_;
    DeadlockDetector &detector_;
    RecoveryManager *recovery_;
    TrafficPattern &pattern_;
    LengthDistribution &lengths_;

    Rng rng_;
    Cycle now_ = 0;
    bool measuring_ = false;
    Tracer *tracer_ = nullptr;
    FaultModel *faults_ = nullptr;
    ReconfigManager *reconfig_ = nullptr;

    /** The detector's last-seen per-node dead-port masks (fault and
     *  admin causes combined); see applyDeadPortChanges(). Derived
     *  state: recomputed on checkpoint load, not serialized. */
    std::vector<PortMask> detectorDeadMask_;

    /** Messages queued for a fault kill this cycle. */
    std::vector<MsgId> faultKillQueue_;

    /** Contiguous struct-of-arrays VC state for every router;
     *  declared before routers_, which are thin views into it. */
    VcStore vcStore_;
    std::vector<Router> routers_;
    MessageStore messages_;
    std::vector<std::deque<MsgId>> sourceQueues_;
    /* Each generator owns a private RNG stream keyed by node id, so
     * concurrent ticks from disjoint node ranges are shard-disjoint
     * by construction. */
    WN_SHARD_LOCAL std::vector<NodeGenerator> generators_;

    /** (cycle, msg) pairs waiting for regressive re-injection. */
    struct Reinject
    {
        Cycle when;
        MsgId msg;
        bool operator>(const Reinject &o) const
        {
            return when > o.when;
        }
    };
    std::priority_queue<Reinject, std::vector<Reinject>,
                        std::greater<Reinject>>
        pendingReinjects_;

    /** Per-router output-port transmit mask for the current cycle. */
    std::vector<PortMask> txMask_;

    /** Windowed per-channel transmit counters. */
    std::vector<std::uint64_t> txCount_;

    /** Deferred credit returns: (node, out_port, vc). */
    struct CreditReturn
    {
        NodeId node;
        PortId port;
        VcId vc;
    };
    std::vector<CreditReturn> creditReturns_;

    /** Scratch candidate buffer for the routing phase. */
    std::vector<RouteCandidate> candScratch_;
    std::vector<PortVc> freeScratch_;
    /** Fault-filtered candidates handed to onBlockedCandidates(). */
    std::vector<BlockedCandidate> blockedCandScratch_;

    /** @name Activity-driven core state.
     *
     * Counters are exact (every transition goes through the helpers
     * above); the bitsets are derived from them. detActive_ is the
     * one history-bearing set: a node stays in it for one trailing
     * cycle-end call after going idle, so idle-stable detectors see
     * their final (0, 0) reset before the node is dropped.
     */
    /// @{
    /** Cached router shape (hoisted out of the per-cycle loops). */
    unsigned inPorts_ = 0;
    unsigned outPorts_ = 0;
    unsigned vcs_ = 0;
    unsigned netPorts_ = 0;

    /** Nodes with >= 1 input VC holding an unrouted head. */
    NodeBitset routeActive_;
    /** Routable input VCs per (node, in_port) / per node. */
    std::vector<std::uint16_t> routablePerPort_;
    std::vector<std::uint16_t> routablePerNode_;

    /** Nodes with >= 1 allocated output VC. */
    NodeBitset switchActive_;
    /** Allocated output VCs per (node, out_port) / per node, the
     *  derived per-node port mask, and the network-ports-only count
     *  feeding the injection-limitation check. */
    std::vector<std::uint8_t> allocPerPort_;
    std::vector<std::uint16_t> allocPerNode_;
    std::vector<PortMask> allocOutMask_;
    std::vector<std::uint16_t> netAllocPerNode_;

    /** Nodes with a nonempty source queue or an occupied injection
     *  VC (the only ones tryStartInjection can do anything for). */
    NodeBitset injActive_;
    std::vector<std::uint16_t> injVcBusy_;

    /** Nodes owed a detector cycle-end call (active now, or active
     *  at their previous call: one trailing reset call). */
    NodeBitset detActive_;
    /** The attached detector tolerates skipping idle routers. */
    bool detectorIdleStable_ = false;
    /** The attached detector wants the candidate list on failures. */
    bool detectorWantsCandidates_ = false;
    /** The attached detector consumes injection-stall reports. */
    bool detectorWantsInjStall_ = false;

    /** Nodes whose txMask_ entry is nonzero this cycle (cleared at
     *  the next step() instead of re-filling the whole vector). */
    std::vector<NodeId> txNodes_;

    /** Snapshot buffers for iterating the bitsets. */
    std::vector<NodeId> nodeScratch_;

    /** Messages waiting in all source queues (satellite: totalQueued
     *  used to re-sum every queue per call). */
    std::size_t totalQueuedCount_ = 0;

    /** Brute-force cross-check of every set each cycle. */
    bool checkActiveSets_ = false;
    /// @}

    /** @name Struct-of-arrays hot-path state.
     *
     * Incrementally maintained VC-occupancy masks plus a per-input-VC
     * route-candidate cache. All of it is derived from router/message
     * state (rebuilt on checkpoint load, cross-checked against a
     * brute-force recomputation by verifySoaState() when built with
     * WORMNET_CONTRACTS=full or forced via WORMNET_CHECK_SOA=1).
     */
    /// @{
    /** Per (node, out_port): bit v set when outputVc(port, v) is
     *  allocated. Mirrors allocPerPort_ at VC granularity so the
     *  routing phase tests a whole physical channel in one load. */
    std::vector<std::uint32_t> outAllocVcMask_;
    /** Per (node, out_port): bit v set when the downstream input VC
     *  on lane v can accept a new worm (free with an empty buffer).
     *  All-ones for ejection ports, zero for dangling mesh-edge
     *  ports; maintained at head-enqueue and input-VC release. */
    std::vector<std::uint32_t> downFreeVcMask_;

    /** Route-candidate cache, keyed by flat input-VC id: the routing
     *  function is pure in (node, dst, in_port, in_vc), so a blocked
     *  head re-presents identical candidates every cycle until it is
     *  granted. candMsg_ names the message an entry describes
     *  (kInvalidMsg = empty/uncacheable); entries are invalidated in
     *  bulk whenever the routing relation changes. */
    WN_SHARD_LOCAL std::vector<MsgId> candMsg_;
    WN_SHARD_LOCAL std::vector<std::uint8_t> candCount_;
    WN_SHARD_LOCAL std::vector<std::uint16_t>
        candPort_; ///< [flatIn * outPorts_ + i]
    WN_SHARD_LOCAL std::vector<std::uint32_t> candMask_;
    /** Spill buffers for candidate lists wider than outPorts_. */
    std::vector<std::uint16_t> candPortOv_;
    std::vector<std::uint32_t> candMaskOv_;

    /** Per (node, in_port): bit v set when inputVc(port, v) holds an
     *  unrouted, non-recovering head (== inRouteSet). Lets the
     *  routing phase visit exactly the routable VCs. */
    std::vector<std::uint32_t> routableVcMask_;
    /** Per (node, out_port): bit v set when outputVc(port, v) is
     *  allocated, has credit to move a flit (ejection ports don't
     *  consume credits, so any allocation qualifies there), and its
     *  routed source VC holds a buffered flit and is not recovering.
     *  The switch arbiter scans only these; the cycle-local
     *  conditions (flit ready this cycle, not routed this very
     *  cycle) are re-checked on load. Blocked worms stretched thin
     *  — credits in hand but nothing buffered to send — carry a
     *  clear bit, which is what keeps saturated-network switch
     *  scans short. */
    std::vector<std::uint32_t> switchCandVcMask_;
    /** Per node: occupied injection-port VCs still mid-injection
     *  (flitsInjected < length). When every injection VC is busy and
     *  none is mid-injection, tryStartInjection can do nothing —
     *  the common state of a saturated node — and is skipped. */
    std::vector<std::uint16_t> injIncomplete_;
    /** Injection VC slots per node (injPorts * vcs). */
    unsigned injSlots_ = 0;

    /** Brute-force cross-check of the SoA mirrors each cycle. */
    bool checkSoa_ = false;

    /** @name Sharded-stepping state (runtime choice, not
     *  serialized; see setSimJobs()). */
    /// @{
    /** Configured worker count (>= 1; 1 = sequential). */
    unsigned simJobs_ = 1;
    /** Shards actually formed (0 = sequential stepping). */
    unsigned numShards_ = 0;
    /** Nodes per shard, a multiple of 64 so shard boundaries fall on
     *  NodeBitset word boundaries (disjoint words per worker). */
    NodeId shardSize_ = 0;
    /** Intra-simulation worker pool (one thread per shard). */
    std::unique_ptr<ThreadPool> simPool_;
    /** The attached detector's cycle-end sweep may fan out. */
    bool detectorCycleEndShardSafe_ = false;

    /** Per-node staged generator draw (parallel tick, sequential
     *  commit). Valid only within generateAndInject(). */
    struct GenStage
    {
        NodeId dst = kInvalidNode;
        unsigned length = 0;
        bool has = false;
    };
    WN_SHARD_LOCAL std::vector<GenStage> genStage_;

    /** Per-shard scratch: a private route() output buffer for the
     *  cache-warming pass and the staged switch decisions. */
    struct ShardScratch
    {
        std::vector<RouteCandidate> cand;
        std::vector<SwitchDecision> wins;
    };
    WN_SHARD_LOCAL std::vector<ShardScratch> shardScratch_;
    /// @}

    /** Drop every candidate-cache entry (routing relation changed
     *  or state restored from a checkpoint). */
    void invalidateRouteCache();
    void verifySoaState() const;
    /// @}

    /** @name Phase-timer state (see enablePhaseTimers()). */
    /// @{
    bool phaseTimers_ = false;
    std::uint64_t vaNanos_ = 0;
    std::uint64_t saNanos_ = 0;
    std::uint64_t flitHops_ = 0;
    /// @}

    std::size_t inFlight_ = 0;
    std::size_t injectionLimitCount_ = 0;

    SimStats stats_;

    /** @name Oracle memoisation and persistence tracking. */
    /// @{
    Cycle oracleCacheCycle_ = kNever;
    std::vector<MsgId> oracleCache_;
    /** Cycle each message was first seen deadlocked, flat-indexed by
     *  MsgId (kNever = not currently tracked; lazily sized, so always
     *  bounds-check). Replaces a hash map: the detection hot path
     *  now costs one array load instead of a hash probe. */
    std::vector<Cycle> deadlockFirstSeen_;
    /** Sorted ids with a live deadlockFirstSeen_ entry — drives the
     *  per-sweep expiry walk and keeps checkpoint bytes identical to
     *  the sorted dump the hash map produced. */
    std::vector<MsgId> deadlockTracked_;
    /// @}
};

} // namespace wormnet

#endif // WORMNET_SIM_NETWORK_HH
