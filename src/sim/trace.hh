/**
 * @file
 * Lightweight event tracing for simulations.
 *
 * A Tracer is a fixed-capacity ring buffer of message lifecycle
 * events (generation, injection, per-hop routing, blocking,
 * detection, recovery, delivery). Attach one to a Network with
 * Network::attachTracer(); recording is a couple of stores per
 * event, so tracing a full run is cheap, and the ring bounds memory
 * on long runs. Intended uses: debugging choreographed scenarios,
 * post-mortem of detection decisions, and the figure walk-through
 * example.
 */

#ifndef WORMNET_SIM_TRACE_HH
#define WORMNET_SIM_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wormnet
{

/** Message lifecycle events recorded by the Network. */
enum class TraceEvent : std::uint8_t
{
    Generated,          ///< created by a traffic source
    InjectStart,        ///< head flit entered an injection VC
    Routed,             ///< head granted an output VC at a router
    Blocked,            ///< first failed routing attempt at a router
    Detected,           ///< marked presumed-deadlocked
    Killed,             ///< removed by regressive recovery
    Reinjected,         ///< re-queued at the source after a kill
    Delivered,          ///< consumed at the destination
    DeliveredRecovered, ///< delivered through the recovery path
    FaultKilled,        ///< worm stranded by a link/router fault
    Rerouted,           ///< head backed off a freshly faulted port
    Abandoned,          ///< dropped after exhausting its retries
};

/** Human-readable name of a trace event. */
const char *traceEventName(TraceEvent event);

/** One recorded event. */
struct TraceRecord
{
    Cycle cycle = 0;
    TraceEvent event = TraceEvent::Generated;
    MsgId msg = kInvalidMsg;
    NodeId node = kInvalidNode;
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
};

/** Fixed-capacity ring buffer of TraceRecords. */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 65536);

    /** Append a record (drops the oldest when full). */
    void record(Cycle cycle, TraceEvent event, MsgId msg,
                NodeId node = kInvalidNode,
                PortId port = kInvalidPort, VcId vc = kInvalidVc);

    /** Records currently retained, oldest first. */
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }

    /** i-th retained record (0 = oldest). */
    const TraceRecord &at(std::size_t i) const;

    /** Total records ever recorded (including dropped ones). */
    std::uint64_t totalRecorded() const { return total_; }

    /** All retained records for one message, oldest first. */
    std::vector<TraceRecord> messageHistory(MsgId msg) const;

    /** Count of retained records with the given event type. */
    std::size_t countEvent(TraceEvent event) const;

    /** Multi-line text dump ("cycle event msg @node:port.vc"). */
    std::string toString() const;

    void clear();

  private:
    std::vector<TraceRecord> buf_;
    std::size_t head_ = 0; ///< index of the oldest record
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace wormnet

#endif // WORMNET_SIM_TRACE_HH
