/**
 * @file
 * Public facade: build a complete simulation from a declarative
 * configuration. This is the entry point a library user is expected
 * to touch first; it wires topology, traffic, routing, detection and
 * recovery together and owns all of them.
 */

#ifndef WORMNET_CORE_SIMULATION_HH
#define WORMNET_CORE_SIMULATION_HH

#include <memory>
#include <string>

#include "common/config.hh"
#include "common/types.hh"
#include "detection/detector.hh"
#include "fault/fault.hh"
#include "recovery/recovery.hh"
#include "routing/routing.hh"
#include "sim/network.hh"
#include "sim/reconfig.hh"
#include "topology/topology.hh"
#include "traffic/generator.hh"

namespace wormnet
{

/** Declarative description of a complete simulation. */
struct SimulationConfig
{
    /** @name Topology. */
    /// @{
    std::string topology = "torus"; ///< "torus" | "mesh"
    unsigned radix = 8;
    unsigned dims = 2;
    /** Mixed-radix override, e.g. "8x4x2" (torus only). When
     *  non-empty it supersedes radix/dims. */
    std::string radices;
    /// @}

    /** @name Router shape (paper defaults). */
    /// @{
    unsigned vcs = 3;
    unsigned bufDepth = 4;
    unsigned injPorts = 4;
    unsigned ejePorts = 4;
    /// @}

    /** @name Policies. */
    /// @{
    std::string routing = "tfa";          ///< see makeRoutingFunction
    std::string detector = "ndm:32";      ///< see makeDetector
    std::string recovery = "progressive"; ///< see makeRecoveryManager,
                                          ///< or "none"
    std::string selection = "random";     ///< "random" | "firstfit"
    /// @}

    /** @name Traffic. */
    /// @{
    std::string pattern = "uniform"; ///< see makePattern
    std::string lengths = "s";       ///< see makeLengthDistribution
    double flitRate = 0.2;           ///< flits/cycle/node
    /// @}

    /** @name Mechanisms and instrumentation. */
    /// @{
    bool injectionLimit = true;
    double injectionLimitFraction = 0.4;
    Cycle oraclePeriod = 128; ///< 0 disables the ground-truth oracle
    std::size_t maxSourceQueue = 0;
    /// @}

    /** @name Fault injection. */
    /// @{
    /** Fault spec (see FaultModel::parseSpec); empty disables. */
    std::string faults;
    /** Cycles until an injected fault self-repairs (0 = permanent). */
    Cycle faultRepair = 0;
    /** Kills a stranded message tolerates before being abandoned. */
    unsigned maxRetries = 32;
    /// @}

    /** @name Online reconfiguration. */
    /// @{
    /** Reconfiguration plan (see ReconfigPlan::parse); empty
     *  disables. */
    std::string reconfig;
    /** Cross-check every applied epoch with the static CDG
     *  analyzer (recorded in the per-epoch records). */
    bool reconfigCheck = true;
    /// @}

    std::uint64_t seed = 1;

    /**
     * Intra-simulation worker threads for sharded stepping
     * (--sim-jobs; see Network::setSimJobs()). 0 resolves to the
     * WORMNET_SIM_JOBS environment variable, else 1 (sequential).
     * Purely a runtime execution choice: results are
     * bitwise-identical at every value, so it is deliberately
     * excluded from canonicalString() — checkpoints written at one
     * job count resume at any other.
     */
    unsigned simJobs = 0;

    /**
     * Canonical single-line "key=value" rendering of every field.
     * Two configs produce byte-identical strings iff they build
     * identical simulations; checkpoint files embed it so a resume
     * under a different configuration fails loudly.
     */
    std::string canonicalString() const;

    /**
     * Build from a command-line Config; every field maps to an option
     * of the same name (snake-case): --topology, --radix, --dims,
     * --vcs, --buf-depth, --inj-ports, --eje-ports, --routing,
     * --detector, --recovery, --selection, --pattern, --lengths,
     * --rate, --injection-limit, --injection-limit-fraction,
     * --oracle-period, --max-source-queue, --faults, --fault-repair,
     * --max-retries, --reconfig, --reconfig-check, --seed.
     */
    static SimulationConfig fromConfig(const Config &cfg);
};

/** Headline results of one run (see also Network::stats()). */
struct SimSummary
{
    Cycle measuredCycles = 0;
    std::uint64_t delivered = 0;
    std::uint64_t detectedMessages = 0;
    std::uint64_t trueDetections = 0;
    std::uint64_t falseDetections = 0;
    double detectionRate = 0.0;  ///< detected / delivered
    double acceptedFlitRate = 0.0;
    double offeredFlitRate = 0.0;
    /** Effective offered load: generated flits/cycle/node (lower
     *  than offeredFlitRate for self-mapping patterns). */
    double generatedFlitRate = 0.0;
    double avgLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    std::uint64_t recoveredDeliveries = 0;
    std::uint64_t kills = 0;
    std::uint64_t trueDeadlockedMessages = 0;

    /** @name Fault injection (lifetime; zero without faults). */
    /// @{
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsRepaired = 0;
    std::uint64_t faultKills = 0;
    std::uint64_t faultReroutes = 0;
    std::uint64_t abandoned = 0;
    /// @}

    /** @name Detector control-plane overhead (measurement window;
     *  zero for purely local mechanisms). */
    /// @{
    std::uint64_t ctrlFlits = 0;
    std::uint64_t ctrlFlitHops = 0;
    std::uint64_t ctrlBytes = 0;
    /// @}

    /** Mean cycles from the oracle first seeing a message
     *  deadlocked to the detector marking it (oracle-period
     *  granularity; 0 without confirmed detections). */
    double avgDetectionLatency = 0.0;

    /** Multi-line human-readable report. */
    std::string toString() const;
};

/** Owns a fully wired simulator built from a SimulationConfig. */
class Simulation
{
  public:
    explicit Simulation(const SimulationConfig &config);
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** The live network (stepping, inspection, hand injection). */
    Network &net() { return *network_; }
    const Network &net() const { return *network_; }

    const SimulationConfig &config() const { return config_; }
    const Topology &topology() const { return *topology_; }

    /**
     * Convenience: run @p warmup cycles, reset the measurement
     * window, run @p measure cycles, and summarise.
     */
    SimSummary warmupAndMeasure(Cycle warmup, Cycle measure);

    /** Summarise the current measurement window. */
    SimSummary summary() const;

    /** The attached reconfiguration manager (nullptr without
     *  --reconfig). */
    const ReconfigManager *reconfigManager() const
    {
        return reconfig_.get();
    }

    /** The attached deadlock detector (white-box inspection in
     *  tests; downcast to the concrete mechanism if needed). */
    const DeadlockDetector &detector() const { return *detector_; }

    /**
     * @name Checkpoint/restore.
     *
     * saveCheckpoint() snapshots the complete simulation state
     * (network, RNGs, detector, recovery, faults, reconfiguration)
     * at the current step() boundary into a versioned, CRC-checked
     * file (see sim/checkpoint.hh). loadCheckpoint() restores it
     * onto this freshly constructed simulation; the file's embedded
     * config string must match this simulation's canonicalString().
     * A resumed run is bitwise-identical to one that never stopped.
     */
    /// @{
    void saveCheckpoint(const std::string &path) const;
    void loadCheckpoint(const std::string &path);
    /// @}

  private:
    SimulationConfig config_;
    std::unique_ptr<Topology> topology_;
    std::unique_ptr<TrafficPattern> pattern_;
    std::unique_ptr<LengthDistribution> lengths_;
    std::unique_ptr<RoutingFunction> routing_;
    std::unique_ptr<DeadlockDetector> detector_;
    std::unique_ptr<RecoveryManager> recovery_;
    std::unique_ptr<FaultModel> faults_;
    std::unique_ptr<ReconfigManager> reconfig_;
    std::unique_ptr<Network> network_;
};

} // namespace wormnet

#endif // WORMNET_CORE_SIMULATION_HH
