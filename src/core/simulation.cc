#include "core/simulation.hh"

#include <cstdlib>
#include <sstream>

#include "common/log.hh"
#include "sim/checkpoint.hh"

namespace wormnet
{

SimulationConfig
SimulationConfig::fromConfig(const Config &cfg)
{
    SimulationConfig c;
    c.topology = cfg.getString("topology", c.topology);
    c.radix = static_cast<unsigned>(cfg.getUint("radix", c.radix));
    c.dims = static_cast<unsigned>(cfg.getUint("dims", c.dims));
    c.radices = cfg.getString("radices", c.radices);
    c.vcs = static_cast<unsigned>(cfg.getUint("vcs", c.vcs));
    c.bufDepth =
        static_cast<unsigned>(cfg.getUint("buf-depth", c.bufDepth));
    c.injPorts =
        static_cast<unsigned>(cfg.getUint("inj-ports", c.injPorts));
    c.ejePorts =
        static_cast<unsigned>(cfg.getUint("eje-ports", c.ejePorts));
    c.routing = cfg.getString("routing", c.routing);
    c.detector = cfg.getString("detector", c.detector);
    c.recovery = cfg.getString("recovery", c.recovery);
    c.selection = cfg.getString("selection", c.selection);
    c.pattern = cfg.getString("pattern", c.pattern);
    c.lengths = cfg.getString("lengths", c.lengths);
    c.flitRate = cfg.getDouble("rate", c.flitRate);
    c.injectionLimit =
        cfg.getBool("injection-limit", c.injectionLimit);
    c.injectionLimitFraction = cfg.getDouble(
        "injection-limit-fraction", c.injectionLimitFraction);
    c.oraclePeriod = cfg.getUint("oracle-period", c.oraclePeriod);
    c.maxSourceQueue = cfg.getUint("max-source-queue",
                                   c.maxSourceQueue);
    c.faults = cfg.getString("faults", c.faults);
    c.faultRepair = cfg.getUint("fault-repair", c.faultRepair);
    c.maxRetries = static_cast<unsigned>(
        cfg.getUint("max-retries", c.maxRetries));
    c.reconfig = cfg.getString("reconfig", c.reconfig);
    c.reconfigCheck = cfg.getBool("reconfig-check", c.reconfigCheck);
    c.seed = cfg.getUint("seed", c.seed);
    c.simJobs = static_cast<unsigned>(
        cfg.getUint("sim-jobs", c.simJobs));
    return c;
}

std::string
SimulationConfig::canonicalString() const
{
    std::ostringstream os;
    os.precision(17);
    os << "topology=" << topology << " radix=" << radix
       << " dims=" << dims << " radices=" << radices
       << " vcs=" << vcs << " buf-depth=" << bufDepth
       << " inj-ports=" << injPorts << " eje-ports=" << ejePorts
       << " routing=" << routing << " detector=" << detector
       << " recovery=" << recovery << " selection=" << selection
       << " pattern=" << pattern << " lengths=" << lengths
       << " rate=" << flitRate
       << " injection-limit=" << injectionLimit
       << " injection-limit-fraction=" << injectionLimitFraction
       << " oracle-period=" << oraclePeriod
       << " max-source-queue=" << maxSourceQueue
       << " faults=" << faults << " fault-repair=" << faultRepair
       << " max-retries=" << maxRetries
       << " reconfig=" << reconfig
       << " reconfig-check=" << reconfigCheck
       << " seed=" << seed;
    return os.str();
}

Simulation::Simulation(const SimulationConfig &config)
    : config_(config)
{
    topology_ = makeTopology(config.topology, config.radix,
                             config.dims, config.radices);

    pattern_ = makePattern(config.pattern, *topology_);
    lengths_ = makeLengthDistribution(config.lengths);

    RouterParams rp;
    rp.netPorts = topology_->numNetPorts();
    rp.injPorts = config.injPorts;
    rp.ejePorts = config.ejePorts;
    rp.vcs = config.vcs;
    rp.bufDepth = config.bufDepth;
    routing_ = makeRoutingFunction(config.routing, *topology_, rp);

    detector_ = makeDetector(config.detector);
    if (config.recovery != "none")
        recovery_ = makeRecoveryManager(config.recovery);

    NetworkParams np;
    np.vcs = config.vcs;
    np.bufDepth = config.bufDepth;
    np.injPorts = config.injPorts;
    np.ejePorts = config.ejePorts;
    np.injectionLimit = config.injectionLimit;
    np.injectionLimitFraction = config.injectionLimitFraction;
    np.oraclePeriod = config.oraclePeriod;
    np.maxSourceQueue = config.maxSourceQueue;
    np.maxRetries = config.maxRetries;
    if (config.selection == "random")
        np.selection = VcSelection::Random;
    else if (config.selection == "firstfit")
        np.selection = VcSelection::FirstFit;
    else
        fatal("unknown selection policy '", config.selection, "'");

    network_ = std::make_unique<Network>(
        *topology_, np, *routing_, *detector_, recovery_.get(),
        *pattern_, *lengths_, config.flitRate, config.seed);

    // Sharded stepping is a runtime execution choice (results are
    // bitwise-identical at any count): --sim-jobs when given, else
    // the WORMNET_SIM_JOBS environment variable, else sequential.
    unsigned sim_jobs = config.simJobs;
    if (sim_jobs == 0) {
        if (const char *env = std::getenv("WORMNET_SIM_JOBS"))
            sim_jobs = static_cast<unsigned>(
                std::strtoul(env, nullptr, 10));
    }
    if (sim_jobs > 1)
        network_->setSimJobs(sim_jobs);

    if (!config.faults.empty()) {
        FaultParams fp = FaultModel::parseSpec(config.faults);
        fp.repairDelay = config.faultRepair;
        faults_ = std::make_unique<FaultModel>(fp);
        network_->attachFaultModel(faults_.get());
    }

    if (!config.reconfig.empty()) {
        reconfig_ = std::make_unique<ReconfigManager>(
            ReconfigPlan::parse(config.reconfig),
            config.reconfigCheck);
        network_->attachReconfig(reconfig_.get());
    }
}

Simulation::~Simulation() = default;

void
Simulation::saveCheckpoint(const std::string &path) const
{
    Serializer s;
    network_->saveState(s);
    writeCheckpointFile(path, config_.canonicalString(), s);
}

void
Simulation::loadCheckpoint(const std::string &path)
{
    const std::vector<std::uint8_t> payload =
        readCheckpointFile(path, config_.canonicalString());
    Deserializer d(payload.data(), payload.size());
    network_->loadState(d);
}

SimSummary
Simulation::warmupAndMeasure(Cycle warmup, Cycle measure)
{
    network_->run(warmup);
    network_->startMeasurement();
    network_->run(measure);
    return summary();
}

SimSummary
Simulation::summary() const
{
    const SimStats &s = network_->stats();
    SimSummary out;
    out.measuredCycles = network_->now() - s.windowStart;
    out.delivered = s.wDelivered;
    out.detectedMessages = s.wDetectedMessages;
    out.trueDetections = s.wTrueDetections;
    out.falseDetections = s.wFalseDetections;
    out.detectionRate = s.detectionRate();
    out.acceptedFlitRate =
        s.acceptedFlitRate(network_->now(), network_->numNodes());
    out.offeredFlitRate = config_.flitRate;
    out.generatedFlitRate =
        s.generatedFlitRate(network_->now(), network_->numNodes());
    out.avgLatency = s.latency.mean();
    out.p50Latency = s.latencyHist.quantile(0.50);
    out.p95Latency = s.latencyHist.quantile(0.95);
    out.p99Latency = s.latencyHist.quantile(0.99);
    out.recoveredDeliveries = s.wRecoveredDeliveries;
    out.kills = s.wKills;
    out.trueDeadlockedMessages = s.trueDeadlockedMessages;
    out.faultsInjected = s.faultsInjected;
    out.faultsRepaired = s.faultsRepaired;
    out.faultKills = s.faultKills;
    out.faultReroutes = s.faultReroutes;
    out.abandoned = s.abandoned;
    out.ctrlFlits = s.windowCtrlFlits();
    out.ctrlFlitHops = s.windowCtrlFlitHops();
    out.ctrlBytes = s.windowCtrlBytes();
    out.avgDetectionLatency = s.detectionLatency.count() > 0
                                  ? s.detectionLatency.mean()
                                  : 0.0;
    return out;
}

std::string
SimSummary::toString() const
{
    std::ostringstream os;
    os << "measured cycles:        " << measuredCycles << '\n'
       << "messages delivered:     " << delivered << '\n'
       << "detected as deadlocked: " << detectedMessages << " ("
       << detectionRate * 100.0 << " %)\n"
       << "  oracle-confirmed:     " << trueDetections << '\n'
       << "  false positives:      " << falseDetections << '\n'
       << "offered load:           " << offeredFlitRate
       << " flits/cycle/node\n"
       << "accepted throughput:    " << acceptedFlitRate
       << " flits/cycle/node\n"
       << "mean latency:           " << avgLatency << " cycles\n"
       << "latency p50/p95/p99:    " << p50Latency << " / "
       << p95Latency << " / " << p99Latency << " cycles\n"
       << "recovered deliveries:   " << recoveredDeliveries << '\n'
       << "regressive kills:       " << kills << '\n';
    if (faultsInjected > 0) {
        os << "faults injected:        " << faultsInjected
           << " (repaired " << faultsRepaired << ")\n"
           << "fault kills/reroutes:   " << faultKills << " / "
           << faultReroutes << '\n'
           << "messages abandoned:     " << abandoned << '\n';
    }
    if (ctrlFlits > 0) {
        os << "control flits:          " << ctrlFlits << " ("
           << ctrlFlitHops << " flit-hops, " << ctrlBytes
           << " bytes)\n";
    }
    if (avgDetectionLatency > 0.0) {
        os << "mean detection latency: " << avgDetectionLatency
           << " cycles\n";
    }
    return os.str();
}

} // namespace wormnet
