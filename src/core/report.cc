#include "core/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/table.hh"

namespace wormnet
{

namespace
{

void
sectionHeader(std::ostringstream &os, const char *title)
{
    os << '\n' << title << '\n'
       << std::string(std::char_traits<char>::length(title), '-')
       << '\n';
}

} // namespace

std::string
buildReport(const Simulation &sim, const ReportOptions &options)
{
    const Network &net = sim.net();
    const SimStats &s = net.stats();
    const SimulationConfig &cfg = sim.config();
    const SimSummary sum = sim.summary();

    std::ostringstream os;
    os << std::fixed << std::setprecision(3);

    os << "wormnet run report\n==================\n";

    sectionHeader(os, "configuration");
    os << "topology:            " << sim.topology().name() << " ("
       << net.numNodes() << " nodes)\n"
       << "router:              " << cfg.vcs << " VCs/channel, "
       << cfg.bufDepth << "-flit buffers, " << cfg.injPorts
       << " inj / " << cfg.ejePorts << " eje ports\n"
       << "routing:             " << cfg.routing << '\n'
       << "detector:            " << cfg.detector << '\n'
       << "recovery:            " << cfg.recovery << '\n'
       << "traffic:             " << cfg.pattern << ", lengths "
       << cfg.lengths << ", " << cfg.flitRate
       << " flits/cycle/node\n"
       << "injection limit:     "
       << (cfg.injectionLimit
               ? "on (fraction " +
                     formatSig(cfg.injectionLimitFraction, 3) + ")"
               : std::string("off"))
       << '\n'
       << "seed:                " << cfg.seed << '\n';

    sectionHeader(os, "traffic and throughput");
    os << "measured cycles:     " << sum.measuredCycles << '\n'
       << "generated:           " << s.wGenerated << " messages\n"
       << "injected:            " << s.wInjected << '\n'
       << "delivered:           " << s.wDelivered << " ("
       << s.wFlitsDelivered << " flits)\n"
       << "offered load:        " << sum.offeredFlitRate
       << " flits/cycle/node (effective "
       << sum.generatedFlitRate << ")\n"
       << "accepted throughput: " << sum.acceptedFlitRate
       << " flits/cycle/node\n"
       << "source queues now:   " << net.totalQueued()
       << " messages\n"
       << "in flight now:       " << net.inFlight() << " messages\n";

    sectionHeader(os, "latency (cycles)");
    os << "mean:                " << s.latency.mean() << " (stddev "
       << s.latency.stddev() << ")\n"
       << "min/max:             " << s.latency.min() << " / "
       << s.latency.max() << '\n'
       << "p50 / p95 / p99:     " << sum.p50Latency << " / "
       << sum.p95Latency << " / " << sum.p99Latency << '\n';
    if (options.latencyHistogram && s.latencyHist.count() > 0) {
        os << "histogram (bucket " << s.latencyHist.bucketWidth()
           << " cycles):\n"
           << s.latencyHist.toString();
    }

    sectionHeader(os, "deadlock detection");
    os << "verdicts raised:     " << s.wDetectionEvents << '\n'
       << "messages marked:     " << s.wDetectedMessages << " ("
       << formatPercentPaperStyle(s.detectionRate())
       << " % of delivered)\n"
       << "oracle-confirmed:    " << s.wTrueDetections << '\n'
       << "false positives:     " << s.wFalseDetections << '\n'
       << "true deadlocked ever:" << ' ' << s.trueDeadlockedMessages
       << " messages\n"
       << "max persistence:     " << s.maxDeadlockPersistence
       << " cycles\n";
    if (s.detectionLatency.count() > 0) {
        os << "detection latency:   " << s.detectionLatency.mean()
           << " cycles mean over " << s.detectionLatency.count()
           << " true detections\n";
    }

    sectionHeader(os, "recovery");
    os << "recovered deliveries:" << ' ' << s.wRecoveredDeliveries
       << '\n'
       << "regressive kills:    " << s.wKills << '\n';

    if (const FaultModel *fm = net.faultModel()) {
        sectionHeader(os, "faults");
        os << "spec:                " << cfg.faults << '\n'
           << "injected / repaired: " << s.faultsInjected << " / "
           << s.faultsRepaired << '\n'
           << "active links down:   " << fm->activeLinkFaults()
           << '\n'
           << "active routers down: " << fm->activeRouterFaults()
           << '\n'
           << "stranded kills:      " << s.faultKills << " ("
           << s.faultFlitsDropped << " flits dropped)\n"
           << "heads rerouted:      " << s.faultReroutes << '\n'
           << "messages abandoned:  " << s.abandoned << '\n';
    }

    sectionHeader(os, "channel utilisation (flits/cycle)");
    const RunningStat util = net.utilizationSummary();
    os << "mean / max / min:    " << util.mean() << " / "
       << util.max() << " / " << util.min() << '\n';
    if (options.hottestChannels > 0) {
        struct Hot
        {
            double util;
            NodeId node;
            PortId port;
        };
        std::vector<Hot> hot;
        for (NodeId n = 0; n < net.numNodes(); ++n) {
            for (PortId q = 0; q < net.routerParams().netPorts;
                 ++q) {
                if (net.router(n).downstream(q).valid())
                    hot.push_back(
                        Hot{net.channelUtilization(n, q), n, q});
            }
        }
        std::partial_sort(
            hot.begin(),
            hot.begin() +
                std::min<std::size_t>(options.hottestChannels,
                                      hot.size()),
            hot.end(), [](const Hot &a, const Hot &b) {
                return a.util > b.util;
            });
        os << "hottest channels:\n";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(options.hottestChannels,
                                       hot.size());
             ++i) {
            os << "  node " << hot[i].node << " dim "
               << Topology::dimOfPort(hot[i].port)
               << (Topology::isPositivePort(hot[i].port) ? '+' : '-')
               << ": " << hot[i].util << '\n';
        }
    }
    return os.str();
}

} // namespace wormnet
