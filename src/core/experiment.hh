/**
 * @file
 * Experiment harness: threshold-sweep grids in the shape of the
 * paper's Tables 1-7, plus saturation-point search.
 *
 * A table cell is one simulation: (traffic pattern, message-size
 * class, injection rate, detection threshold) -> percentage of
 * messages detected as possibly deadlocked. Rows sweep the detection
 * threshold; column groups sweep the injection rate; columns within a
 * group sweep the message-size class. Cells where the ground-truth
 * oracle confirmed at least one true deadlock are starred, matching
 * the paper's "(*)" annotation.
 */

#ifndef WORMNET_CORE_EXPERIMENT_HH
#define WORMNET_CORE_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/table.hh"
#include "core/simulation.hh"

namespace wormnet
{

/** One simulated table cell (possibly averaged over seeds). */
struct CellResult
{
    double detectionRate = 0.0;  ///< fraction of delivered messages
    /** Sample standard deviation of detectionRate across the seed
     *  replications (0 with a single replication). */
    double detectionRateStd = 0.0;
    unsigned replications = 1;
    bool sawTrueDeadlock = false;
    std::uint64_t delivered = 0;
    std::uint64_t detectedMessages = 0;
    double acceptedFlitRate = 0.0;
    /** Generated (post-self-drop) flits/cycle/node — the effective
     *  offered load the saturation search compares against. */
    double generatedFlitRate = 0.0;
    double avgLatency = 0.0;
};

/** Specification of one paper-style detection table. */
struct TableSpec
{
    std::string title;

    /** Base configuration; detector / lengths / rate are overridden
     *  per cell. */
    SimulationConfig base;

    /** Detector spec with "%T" replaced by the threshold, e.g.
     *  "ndm:%T" or "pdm:%T" or "timeout:%T". */
    std::string detectorTemplate = "ndm:%T";

    std::vector<Cycle> thresholds;
    std::vector<std::string> sizeClasses; ///< length specs, e.g. "s"
    std::vector<double> rates;            ///< flits/cycle/node
    std::vector<std::string> rateLabels;  ///< column-group headers

    Cycle warmup = 3000;
    Cycle measure = 15000;

    /** Independent seeds averaged per cell (seed, seed+1, ...). */
    unsigned replications = 1;
};

/** All cells of a simulated table. */
struct TableResult
{
    TableSpec spec;
    /** cells[rate][size][threshold]. */
    std::vector<std::vector<std::vector<CellResult>>> cells;
};

/** Runs table specs and saturation searches. */
class ExperimentRunner
{
  public:
    /** Optional per-cell progress callback (e.g. a dot to stderr). */
    using Progress = std::function<void(const std::string &)>;

    explicit ExperimentRunner(Progress progress = {});

    /** Run every cell of @p spec (each cell is one simulation). */
    TableResult runTable(const TableSpec &spec) const;

    /**
     * Render @p result in the paper's layout. When @p paper_ref is
     * non-null it must be indexed [threshold][rate*sizes + size] and
     * the rendering appends the paper's value in parentheses.
     */
    static TextTable formatTable(const TableResult &result,
                                 const double *paper_ref = nullptr);

    /**
     * Estimate the saturation injection rate for @p base (pattern,
     * lengths and all policies taken from it): the largest rate whose
     * accepted throughput still tracks the offered load within
     * @p slack (fractional). Bisection over [lo, hi].
     */
    double findSaturationRate(const SimulationConfig &base, double lo,
                              double hi, double slack = 0.05,
                              Cycle warmup = 2000,
                              Cycle measure = 6000,
                              unsigned iterations = 7) const;

    /** Run a single cell. */
    CellResult runCell(const SimulationConfig &config, Cycle warmup,
                       Cycle measure) const;

    /**
     * Run a cell @p replications times with seeds config.seed,
     * config.seed+1, ... and average the scalar results (detection
     * rate carries a sample standard deviation; true-deadlock flags
     * OR together).
     */
    CellResult runCellReplicated(const SimulationConfig &config,
                                 Cycle warmup, Cycle measure,
                                 unsigned replications) const;

  private:
    Progress progress_;
};

} // namespace wormnet

#endif // WORMNET_CORE_EXPERIMENT_HH
