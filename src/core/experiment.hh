/**
 * @file
 * Experiment harness: threshold-sweep grids in the shape of the
 * paper's Tables 1-7, plus saturation-point search.
 *
 * A table cell is one simulation: (traffic pattern, message-size
 * class, injection rate, detection threshold) -> percentage of
 * messages detected as possibly deadlocked. Rows sweep the detection
 * threshold; column groups sweep the injection rate; columns within a
 * group sweep the message-size class. Cells where the ground-truth
 * oracle confirmed at least one true deadlock are starred, matching
 * the paper's "(*)" annotation.
 *
 * Execution is parallel: every independent simulation (cell x seed
 * replication, saturation probe) fans out over a thread pool
 * (common/parallel.hh) controlled by the jobs knob (0 = WORMNET_JOBS
 * env, else hardware concurrency; 1 = serial on the caller thread).
 * Results land in pre-sized slots and are reduced sequentially in
 * serial order, so every output is bitwise-identical regardless of
 * the job count.
 */

#ifndef WORMNET_CORE_EXPERIMENT_HH
#define WORMNET_CORE_EXPERIMENT_HH

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "common/table.hh"
#include "core/simulation.hh"

namespace wormnet
{

/** One simulated table cell (possibly averaged over seeds). */
struct CellResult
{
    double detectionRate = 0.0;  ///< fraction of delivered messages
    /** Sample standard deviation of detectionRate across the seed
     *  replications (0 with a single replication). */
    double detectionRateStd = 0.0;
    unsigned replications = 1;
    bool sawTrueDeadlock = false;
    std::uint64_t delivered = 0;
    std::uint64_t detectedMessages = 0;
    double acceptedFlitRate = 0.0;
    /** Generated (post-self-drop) flits/cycle/node — the effective
     *  offered load the saturation search compares against. */
    double generatedFlitRate = 0.0;
    double avgLatency = 0.0;

    /** @name Checkpoint support (bit-exact: doubles round-trip
     *  through their raw encoding, so a resumed sweep renders
     *  byte-identical tables). */
    /// @{
    template <typename S>
    void
    saveState(S &s) const
    {
        s.f64(detectionRate);
        s.f64(detectionRateStd);
        s.u32(replications);
        s.boolean(sawTrueDeadlock);
        s.u64(delivered);
        s.u64(detectedMessages);
        s.f64(acceptedFlitRate);
        s.f64(generatedFlitRate);
        s.f64(avgLatency);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        detectionRate = d.f64();
        detectionRateStd = d.f64();
        replications = d.u32();
        sawTrueDeadlock = d.boolean();
        delivered = d.u64();
        detectedMessages = d.u64();
        acceptedFlitRate = d.f64();
        generatedFlitRate = d.f64();
        avgLatency = d.f64();
    }
    /// @}
};

/** Specification of one paper-style detection table. */
struct TableSpec
{
    std::string title;

    /** Base configuration; detector / lengths / rate are overridden
     *  per cell. */
    SimulationConfig base;

    /** Detector spec with "%T" replaced by the threshold, e.g.
     *  "ndm:%T" or "pdm:%T" or "timeout:%T". */
    std::string detectorTemplate = "ndm:%T";

    std::vector<Cycle> thresholds;
    std::vector<std::string> sizeClasses; ///< length specs, e.g. "s"
    std::vector<double> rates;            ///< flits/cycle/node
    std::vector<std::string> rateLabels;  ///< column-group headers

    Cycle warmup = 3000;
    Cycle measure = 15000;

    /** Independent seeds averaged per cell; each replication's seed
     *  is deriveSeed(base.seed, cell index, replication index). */
    unsigned replications = 1;
};

/** All cells of a simulated table. */
struct TableResult
{
    TableSpec spec;
    /** cells[rate][size][threshold]. */
    std::vector<std::vector<std::vector<CellResult>>> cells;

    /** @name Timing (not part of the deterministic payload). */
    /// @{
    double wallSeconds = 0.0; ///< elapsed wall clock for the sweep
    /** Summed single-simulation run time; busySeconds / wallSeconds
     *  is the effective parallel speedup. */
    double busySeconds = 0.0;
    /// @}
};

/** Runs table specs and saturation searches. */
class ExperimentRunner
{
  public:
    /**
     * Optional per-cell progress callback (e.g. a dot to stderr).
     * With jobs > 1 it fires from worker threads, serialized by an
     * internal mutex, in whatever order cells are picked up.
     */
    using Progress = std::function<void(const std::string &)>;

    /**
     * @param progress optional per-cell callback
     * @param jobs worker threads for independent simulations:
     *        0 = defaultJobs() (WORMNET_JOBS env, else hardware
     *        concurrency), 1 = serial on the caller thread
     */
    explicit ExperimentRunner(Progress progress = {},
                              unsigned jobs = 0);

    /** Override the job count (same semantics as the constructor). */
    void setJobs(unsigned jobs) { jobs_ = jobs; }
    unsigned jobs() const { return jobs_; }

    /**
     * @name Sweep-level checkpointing.
     *
     * With a checkpoint path set, runTable() atomically saves every
     * finished cell slot to @p path (CRC-checked, see
     * sim/checkpoint.hh) each time @p every_cells more cells
     * complete. setResume() pre-loads those slots and skips the
     * finished work; the file embeds the full table spec, so a
     * resume under a different spec fails loudly. Because slots are
     * restored bit-exactly and the reduction is serial, a resumed
     * table is byte-identical to an uninterrupted one at any job
     * count. The WORMNET_CRASH_AFTER_CELLS environment variable
     * (used by the crash tests and scripts/chaos.sh) saves and
     * calls _Exit(86) after that many newly finished cells.
     */
    /// @{
    void
    setCheckpoint(const std::string &path, unsigned every_cells)
    {
        checkpointPath_ = path;
        checkpointEvery_ = every_cells > 0 ? every_cells : 1;
    }

    void setResume(const std::string &path) { resumePath_ = path; }
    /// @}

    /** Run every cell of @p spec (each cell is one simulation). */
    TableResult runTable(const TableSpec &spec) const;

    /**
     * Render @p result in the paper's layout. When @p paper_ref is
     * non-null it must be indexed [threshold][rate*sizes + size] and
     * the rendering appends the paper's value in parentheses.
     */
    static TextTable formatTable(const TableResult &result,
                                 const double *paper_ref = nullptr);

    /**
     * Estimate the saturation injection rate for @p base (pattern,
     * lengths and all policies taken from it): the largest rate whose
     * accepted throughput still tracks the offered load within
     * @p slack (fractional). Each round probes kSaturationProbes
     * interior rates of [lo, hi] concurrently and keeps the bracket
     * that straddles the knee, narrowing (kSaturationProbes + 1)x per
     * round; the probe grid is fixed, so the result is independent of
     * the job count.
     */
    double findSaturationRate(const SimulationConfig &base, double lo,
                              double hi, double slack = 0.05,
                              Cycle warmup = 2000,
                              Cycle measure = 6000,
                              unsigned iterations = 4) const;

    /** Interior probes per saturation-search round. */
    static constexpr unsigned kSaturationProbes = 3;

    /** Run a single cell. */
    CellResult runCell(const SimulationConfig &config, Cycle warmup,
                       Cycle measure) const;

    /**
     * Run a cell @p replications times with seeds
     * deriveSeed(config.seed, cell_index, 0 .. replications-1) and
     * average the scalar results (detection rate carries a sample
     * standard deviation; true-deadlock flags OR together). The
     * replications fan out over the runner's job count; the reduction
     * is sequential in replication order, so the result is identical
     * for every job count.
     */
    CellResult runCellReplicated(const SimulationConfig &config,
                                 Cycle warmup, Cycle measure,
                                 unsigned replications,
                                 std::uint64_t cell_index = 0) const;

  private:
    /** Serial in-order reduction shared by runTable and
     *  runCellReplicated; @p slots must be non-empty. */
    static CellResult reduceReplications(
        const std::vector<CellResult> &slots);

    /** Fire the progress callback (thread-safe). */
    void reportProgress(const std::string &message) const;

    Progress progress_;
    unsigned jobs_;
    /** Serializes progress_ invocations from worker threads. */
    mutable std::mutex progressMutex_;

    /** @name Sweep checkpointing (see setCheckpoint). */
    /// @{
    std::string checkpointPath_;
    unsigned checkpointEvery_ = 8;
    std::string resumePath_;
    /** Guards the done flags and slot reads during a save. */
    mutable std::mutex checkpointMutex_;
    /// @}
};

} // namespace wormnet

#endif // WORMNET_CORE_EXPERIMENT_HH
