#include "core/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "sim/checkpoint.hh"

namespace wormnet
{

namespace
{

/** Replace the "%T" placeholder with a threshold value. */
std::string
instantiateDetector(const std::string &tmpl, Cycle threshold)
{
    const auto pos = tmpl.find("%T");
    if (pos == std::string::npos)
        fatal("detector template '", tmpl, "' lacks a %T placeholder");
    std::ostringstream os;
    os << tmpl.substr(0, pos) << threshold << tmpl.substr(pos + 2);
    return os.str();
}

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    // wormnet-lint: allow(banned-api): progress reporting only —
    // elapsed seconds go to stderr, never into a table cell
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/**
 * Canonical rendering of everything that determines a table's cell
 * grid and contents. Embedded in sweep checkpoints: a resume whose
 * spec differs in any way is rejected before any slot is trusted.
 */
std::string
tableConfigString(const TableSpec &spec)
{
    std::ostringstream os;
    os.precision(17);
    os << "table=" << spec.title
       << " base=[" << spec.base.canonicalString() << "]"
       << " detector-template=" << spec.detectorTemplate;
    os << " thresholds=";
    for (const Cycle t : spec.thresholds)
        os << t << ';';
    os << " sizes=";
    for (const std::string &s : spec.sizeClasses)
        os << s << ';';
    os << " rates=";
    for (const double r : spec.rates)
        os << r << ';';
    os << " warmup=" << spec.warmup << " measure=" << spec.measure
       << " replications=" << spec.replications;
    return os.str();
}

} // namespace

ExperimentRunner::ExperimentRunner(Progress progress, unsigned jobs)
    : progress_(std::move(progress)), jobs_(jobs)
{
}

void
ExperimentRunner::reportProgress(const std::string &message) const
{
    if (!progress_)
        return;
    std::lock_guard<std::mutex> lock(progressMutex_);
    progress_(message);
}

CellResult
ExperimentRunner::runCell(const SimulationConfig &config, Cycle warmup,
                          Cycle measure) const
{
    Simulation sim(config);
    const SimSummary s = sim.warmupAndMeasure(warmup, measure);
    CellResult cell;
    cell.detectionRate = s.detectionRate;
    cell.sawTrueDeadlock =
        s.trueDetections > 0 || s.trueDeadlockedMessages > 0;
    cell.delivered = s.delivered;
    cell.detectedMessages = s.detectedMessages;
    cell.acceptedFlitRate = s.acceptedFlitRate;
    cell.generatedFlitRate = s.generatedFlitRate;
    cell.avgLatency = s.avgLatency;
    return cell;
}

CellResult
ExperimentRunner::reduceReplications(
    const std::vector<CellResult> &slots)
{
    WORMNET_ASSERT(!slots.empty());
    RunningStat det;
    CellResult out;
    for (const CellResult &cell : slots) {
        det.add(cell.detectionRate);
        out.sawTrueDeadlock |= cell.sawTrueDeadlock;
        out.delivered += cell.delivered;
        out.detectedMessages += cell.detectedMessages;
        out.acceptedFlitRate += cell.acceptedFlitRate;
        out.generatedFlitRate += cell.generatedFlitRate;
        out.avgLatency += cell.avgLatency;
    }
    const auto n = static_cast<unsigned>(slots.size());
    out.detectionRate = det.mean();
    out.detectionRateStd = det.stddev();
    out.replications = n;
    out.acceptedFlitRate /= n;
    out.generatedFlitRate /= n;
    out.avgLatency /= n;
    return out;
}

CellResult
ExperimentRunner::runCellReplicated(const SimulationConfig &config,
                                    Cycle warmup, Cycle measure,
                                    unsigned replications,
                                    std::uint64_t cell_index) const
{
    WORMNET_ASSERT(replications >= 1);
    std::vector<CellResult> slots(replications);
    parallelFor(replications, jobs_, [&](std::size_t p) {
        SimulationConfig cfg = config;
        cfg.seed = deriveSeed(config.seed, cell_index, p);
        slots[p] = runCell(cfg, warmup, measure);
    });
    return reduceReplications(slots);
}

TableResult
ExperimentRunner::runTable(const TableSpec &spec) const
{
    WORMNET_ASSERT(spec.rates.size() == spec.rateLabels.size());
    WORMNET_ASSERT(spec.replications >= 1);
    const std::size_t nRates = spec.rates.size();
    const std::size_t nSizes = spec.sizeClasses.size();
    const std::size_t nThs = spec.thresholds.size();
    const std::size_t reps = spec.replications;
    const std::size_t nCells = nRates * nSizes * nThs;

    TableResult result;
    result.spec = spec;
    result.cells.resize(nRates);
    for (auto &per_rate : result.cells)
        per_rate.resize(nSizes);

    // Fan every independent simulation — cell x replication — across
    // the pool at once; each writes its own slot, and the per-cell
    // reduction below walks the slots in serial order, so the table
    // is bitwise-identical for every job count.
    // wormnet-lint: allow(banned-api): stderr progress ETA baseline
    const auto start = Clock::now();
    std::vector<CellResult> raw(nCells * reps);

    // Sweep checkpointing: done[w] marks slot w as final. Resumed
    // slots are restored bit-exactly before the pool starts and
    // skipped by the workers; the reduction cannot tell the
    // difference, so resumed output is byte-identical.
    std::vector<std::uint8_t> done(nCells * reps, 0);
    const std::string ckpt_config = tableConfigString(spec);
    if (!resumePath_.empty()) {
        const std::vector<std::uint8_t> payload =
            readCheckpointFile(resumePath_, ckpt_config);
        Deserializer d(payload.data(), payload.size());
        const std::uint64_t slots = d.u64();
        if (slots != raw.size())
            fatal("sweep checkpoint '", resumePath_, "' has ", slots,
                  " slots; this table has ", raw.size());
        for (std::size_t w = 0; w < raw.size(); ++w) {
            done[w] = d.boolean() ? 1 : 0;
            if (done[w])
                raw[w].loadState(d);
        }
        if (!d.atEnd())
            fatal("sweep checkpoint '", resumePath_, "' has ",
                  d.remaining(), " unread trailing bytes");
    }

    const char *crash_env =
        std::getenv("WORMNET_CRASH_AFTER_CELLS");
    const std::uint64_t crash_after =
        crash_env ? std::strtoull(crash_env, nullptr, 10) : 0;
    const bool track_completion =
        !checkpointPath_.empty() || crash_after > 0;

    // All guarded by checkpointMutex_.
    std::uint64_t completed_this_run = 0;
    std::uint64_t completed_since_save = 0;
    const auto save_locked = [&]() {
        Serializer s;
        s.u64(raw.size());
        for (std::size_t w = 0; w < raw.size(); ++w) {
            s.boolean(done[w] != 0);
            if (done[w])
                raw[w].saveState(s);
        }
        writeCheckpointFile(checkpointPath_, ckpt_config, s);
    };

    std::atomic<std::uint64_t> busyNanos{0};
    parallelFor(nCells * reps, jobs_, [&](std::size_t w) {
        if (done[w])
            return; // restored from the resume checkpoint
        const std::size_t c = w / reps;
        const std::size_t p = w % reps;
        const std::size_t t = c % nThs;
        const std::size_t s = (c / nThs) % nSizes;
        const std::size_t r = c / (nThs * nSizes);

        if (p == 0 && progress_) {
            std::ostringstream os;
            os << spec.title << " rate=" << spec.rates[r]
               << " size=" << spec.sizeClasses[s]
               << " th=" << spec.thresholds[t];
            reportProgress(os.str());
        }

        SimulationConfig cfg = spec.base;
        cfg.flitRate = spec.rates[r];
        cfg.lengths = spec.sizeClasses[s];
        cfg.detector =
            instantiateDetector(spec.detectorTemplate,
                                spec.thresholds[t]);
        cfg.seed = deriveSeed(spec.base.seed, c, p);

        // wormnet-lint: allow(banned-api): busy-time accounting for
        // the stderr progress line; table cells never see it
        const auto cellStart = Clock::now();
        raw[w] = runCell(cfg, spec.warmup, spec.measure);
        busyNanos.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    // wormnet-lint: allow(banned-api): same busy-time
                    Clock::now() - cellStart)
                    .count()),
            std::memory_order_relaxed);

        if (!track_completion) {
            done[w] = 1; // slot is only ever touched by this worker
            return;
        }
        // The mutex both serializes saves and publishes raw[w] (the
        // owner writes it before locking; a saver only reads slots
        // whose done flag it observed under the same lock).
        std::lock_guard<std::mutex> lock(checkpointMutex_);
        done[w] = 1;
        ++completed_this_run;
        ++completed_since_save;
        const bool crash =
            crash_after > 0 && completed_this_run >= crash_after;
        if (!checkpointPath_.empty() &&
            (crash || completed_since_save >= checkpointEvery_)) {
            save_locked();
            completed_since_save = 0;
        }
        if (crash) {
            // _Exit: no atexit / static destructors — the point is
            // to die abruptly mid-sweep, and LSan would otherwise
            // report every live allocation of the worker threads.
            std::fflush(nullptr);
            std::_Exit(86);
        }
    });

    // A final save so a completed sweep leaves a complete file (a
    // later resume then skips every cell).
    if (!checkpointPath_.empty()) {
        std::lock_guard<std::mutex> lock(checkpointMutex_);
        save_locked();
    }

    for (std::size_t r = 0; r < nRates; ++r) {
        for (std::size_t s = 0; s < nSizes; ++s) {
            result.cells[r][s].reserve(nThs);
            for (std::size_t t = 0; t < nThs; ++t) {
                const std::size_t c = (r * nSizes + s) * nThs + t;
                const std::vector<CellResult> slots(
                    raw.begin() + static_cast<std::ptrdiff_t>(c * reps),
                    raw.begin() +
                        static_cast<std::ptrdiff_t>((c + 1) * reps));
                result.cells[r][s].push_back(
                    reduceReplications(slots));
            }
        }
    }
    result.wallSeconds = secondsSince(start);
    result.busySeconds = static_cast<double>(busyNanos.load()) * 1e-9;
    return result;
}

TextTable
ExperimentRunner::formatTable(const TableResult &result,
                              const double *paper_ref)
{
    const TableSpec &spec = result.spec;
    const std::size_t sizes = spec.sizeClasses.size();
    const std::size_t cols = 1 + spec.rates.size() * sizes;
    TextTable table(cols);

    // Header 1: rate labels spanning their size columns; a column
    // group is starred when any of its cells saw a true deadlock.
    {
        std::vector<std::string> row(cols);
        row[0] = "";
        for (std::size_t r = 0; r < spec.rates.size(); ++r)
            row[1 + r * sizes] = spec.rateLabels[r];
        table.addRow(std::move(row));
    }
    // Header 2: size class per column, starred if the column's cells
    // include a confirmed true deadlock.
    {
        std::vector<std::string> row(cols);
        row[0] = "M. Size";
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                bool starred = false;
                for (const auto &cell : result.cells[r][s])
                    starred |= cell.sawTrueDeadlock;
                row[1 + r * sizes + s] =
                    spec.sizeClasses[s] + (starred ? " (*)" : "");
            }
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();

    for (std::size_t t = 0; t < spec.thresholds.size(); ++t) {
        std::vector<std::string> row(cols);
        {
            std::ostringstream os;
            os << "Th " << spec.thresholds[t];
            row[0] = os.str();
        }
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                const CellResult &cell = result.cells[r][s][t];
                std::string text =
                    formatPercentPaperStyle(cell.detectionRate);
                if (paper_ref) {
                    const double ref =
                        paper_ref[t * spec.rates.size() * sizes +
                                  r * sizes + s];
                    text += " (" +
                            formatPercentPaperStyle(ref / 100.0) +
                            ")";
                }
                row[1 + r * sizes + s] = std::move(text);
            }
        }
        table.addRow(std::move(row));
    }
    return table;
}

double
ExperimentRunner::findSaturationRate(const SimulationConfig &base,
                                     double lo, double hi,
                                     double slack, Cycle warmup,
                                     Cycle measure,
                                     unsigned iterations) const
{
    WORMNET_ASSERT(lo > 0.0 && hi > lo);
    const auto saturatedAt = [&](double rate) {
        SimulationConfig cfg = base;
        cfg.flitRate = rate;
        const CellResult cell = runCell(cfg, warmup, measure);
        // Compare against the *generated* load: self-mapping
        // patterns (bit-reversal, butterfly) drop self-addressed
        // draws at the source, which must not read as saturation.
        return cell.acceptedFlitRate <
               (1.0 - slack) * cell.generatedFlitRate;
    };

    // Ensure the bracket actually straddles saturation; the two
    // endpoint probes are independent, so run them concurrently.
    bool endpoints[2];
    {
        const double rates[2] = {lo, hi};
        parallelFor(2, jobs_, [&](std::size_t i) {
            endpoints[i] = saturatedAt(rates[i]);
        });
    }
    if (endpoints[0])
        return lo;
    if (!endpoints[1])
        return hi;

    // Deterministic multisection: every round evaluates the same
    // kSaturationProbes evenly spaced interior rates (concurrently
    // when jobs allow) and narrows to the sub-interval that straddles
    // the knee — a (kSaturationProbes + 1)-fold reduction per round
    // whose result does not depend on the job count.
    constexpr unsigned kProbes = kSaturationProbes;
    for (unsigned i = 0; i < iterations; ++i) {
        double probes[kProbes];
        bool saturated[kProbes];
        const double step = (hi - lo) / (kProbes + 1);
        for (unsigned k = 0; k < kProbes; ++k)
            probes[k] = lo + step * (k + 1);
        parallelFor(kProbes, jobs_, [&](std::size_t k) {
            saturated[k] = saturatedAt(probes[k]);
        });
        double new_lo = lo, new_hi = hi;
        for (unsigned k = 0; k < kProbes; ++k) {
            if (saturated[k]) {
                new_hi = probes[k];
                break;
            }
            new_lo = probes[k];
        }
        lo = new_lo;
        hi = new_hi;
    }
    return 0.5 * (lo + hi);
}

} // namespace wormnet
