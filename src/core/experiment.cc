#include "core/experiment.hh"

#include <sstream>

#include "common/log.hh"

namespace wormnet
{

namespace
{

/** Replace the "%T" placeholder with a threshold value. */
std::string
instantiateDetector(const std::string &tmpl, Cycle threshold)
{
    const auto pos = tmpl.find("%T");
    if (pos == std::string::npos)
        fatal("detector template '", tmpl, "' lacks a %T placeholder");
    std::ostringstream os;
    os << tmpl.substr(0, pos) << threshold << tmpl.substr(pos + 2);
    return os.str();
}

} // namespace

ExperimentRunner::ExperimentRunner(Progress progress)
    : progress_(std::move(progress))
{
}

CellResult
ExperimentRunner::runCell(const SimulationConfig &config, Cycle warmup,
                          Cycle measure) const
{
    Simulation sim(config);
    const SimSummary s = sim.warmupAndMeasure(warmup, measure);
    CellResult cell;
    cell.detectionRate = s.detectionRate;
    cell.sawTrueDeadlock =
        s.trueDetections > 0 || s.trueDeadlockedMessages > 0;
    cell.delivered = s.delivered;
    cell.detectedMessages = s.detectedMessages;
    cell.acceptedFlitRate = s.acceptedFlitRate;
    cell.generatedFlitRate = s.generatedFlitRate;
    cell.avgLatency = s.avgLatency;
    return cell;
}

CellResult
ExperimentRunner::runCellReplicated(const SimulationConfig &config,
                                    Cycle warmup, Cycle measure,
                                    unsigned replications) const
{
    wn_assert(replications >= 1);
    if (replications == 1)
        return runCell(config, warmup, measure);

    RunningStat det;
    CellResult out;
    for (unsigned i = 0; i < replications; ++i) {
        SimulationConfig cfg = config;
        cfg.seed = config.seed + i;
        const CellResult cell = runCell(cfg, warmup, measure);
        det.add(cell.detectionRate);
        out.sawTrueDeadlock |= cell.sawTrueDeadlock;
        out.delivered += cell.delivered;
        out.detectedMessages += cell.detectedMessages;
        out.acceptedFlitRate += cell.acceptedFlitRate;
        out.generatedFlitRate += cell.generatedFlitRate;
        out.avgLatency += cell.avgLatency;
    }
    out.detectionRate = det.mean();
    out.detectionRateStd = det.stddev();
    out.replications = replications;
    out.acceptedFlitRate /= replications;
    out.generatedFlitRate /= replications;
    out.avgLatency /= replications;
    return out;
}

TableResult
ExperimentRunner::runTable(const TableSpec &spec) const
{
    wn_assert(spec.rates.size() == spec.rateLabels.size());
    TableResult result;
    result.spec = spec;
    result.cells.resize(spec.rates.size());

    for (std::size_t r = 0; r < spec.rates.size(); ++r) {
        result.cells[r].resize(spec.sizeClasses.size());
        for (std::size_t s = 0; s < spec.sizeClasses.size(); ++s) {
            for (const Cycle th : spec.thresholds) {
                SimulationConfig cfg = spec.base;
                cfg.flitRate = spec.rates[r];
                cfg.lengths = spec.sizeClasses[s];
                cfg.detector =
                    instantiateDetector(spec.detectorTemplate, th);
                if (progress_) {
                    std::ostringstream os;
                    os << spec.title << " rate=" << spec.rates[r]
                       << " size=" << spec.sizeClasses[s]
                       << " th=" << th;
                    progress_(os.str());
                }
                result.cells[r][s].push_back(runCellReplicated(
                    cfg, spec.warmup, spec.measure,
                    spec.replications));
            }
        }
    }
    return result;
}

TextTable
ExperimentRunner::formatTable(const TableResult &result,
                              const double *paper_ref)
{
    const TableSpec &spec = result.spec;
    const std::size_t sizes = spec.sizeClasses.size();
    const std::size_t cols = 1 + spec.rates.size() * sizes;
    TextTable table(cols);

    // Header 1: rate labels spanning their size columns; a column
    // group is starred when any of its cells saw a true deadlock.
    {
        std::vector<std::string> row(cols);
        row[0] = "";
        for (std::size_t r = 0; r < spec.rates.size(); ++r)
            row[1 + r * sizes] = spec.rateLabels[r];
        table.addRow(std::move(row));
    }
    // Header 2: size class per column, starred if the column's cells
    // include a confirmed true deadlock.
    {
        std::vector<std::string> row(cols);
        row[0] = "M. Size";
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                bool starred = false;
                for (const auto &cell : result.cells[r][s])
                    starred |= cell.sawTrueDeadlock;
                row[1 + r * sizes + s] =
                    spec.sizeClasses[s] + (starred ? " (*)" : "");
            }
        }
        table.addRow(std::move(row));
    }
    table.addSeparator();

    for (std::size_t t = 0; t < spec.thresholds.size(); ++t) {
        std::vector<std::string> row(cols);
        {
            std::ostringstream os;
            os << "Th " << spec.thresholds[t];
            row[0] = os.str();
        }
        for (std::size_t r = 0; r < spec.rates.size(); ++r) {
            for (std::size_t s = 0; s < sizes; ++s) {
                const CellResult &cell = result.cells[r][s][t];
                std::string text =
                    formatPercentPaperStyle(cell.detectionRate);
                if (paper_ref) {
                    const double ref =
                        paper_ref[t * spec.rates.size() * sizes +
                                  r * sizes + s];
                    text += " (" +
                            formatPercentPaperStyle(ref / 100.0) +
                            ")";
                }
                row[1 + r * sizes + s] = std::move(text);
            }
        }
        table.addRow(std::move(row));
    }
    return table;
}

double
ExperimentRunner::findSaturationRate(const SimulationConfig &base,
                                     double lo, double hi,
                                     double slack, Cycle warmup,
                                     Cycle measure,
                                     unsigned iterations) const
{
    wn_assert(lo > 0.0 && hi > lo);
    const auto saturatedAt = [&](double rate) {
        SimulationConfig cfg = base;
        cfg.flitRate = rate;
        const CellResult cell = runCell(cfg, warmup, measure);
        // Compare against the *generated* load: self-mapping
        // patterns (bit-reversal, butterfly) drop self-addressed
        // draws at the source, which must not read as saturation.
        return cell.acceptedFlitRate <
               (1.0 - slack) * cell.generatedFlitRate;
    };

    // Ensure the bracket actually straddles saturation.
    if (saturatedAt(lo))
        return lo;
    if (!saturatedAt(hi))
        return hi;

    for (unsigned i = 0; i < iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (saturatedAt(mid))
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace wormnet
