/**
 * @file
 * Human-readable run reports.
 *
 * buildReport() renders everything a simulation measured into one
 * multi-section text document: configuration echo, traffic and
 * throughput summary, latency distribution, detection breakdown
 * (with the oracle's true/false split and detection latency),
 * recovery activity and channel-utilisation hot spots. Used by
 * `examples/quickstart --report` and by downstream users who want a
 * one-call summary of an experiment.
 */

#ifndef WORMNET_CORE_REPORT_HH
#define WORMNET_CORE_REPORT_HH

#include <string>

#include "core/simulation.hh"

namespace wormnet
{

/** Options controlling report verbosity. */
struct ReportOptions
{
    /** Include the latency histogram dump. */
    bool latencyHistogram = true;
    /** Number of hottest channels to list (0 disables). */
    unsigned hottestChannels = 5;
};

/** Render a full report for the simulation's measurement window. */
std::string buildReport(const Simulation &sim,
                        const ReportOptions &options = {});

} // namespace wormnet

#endif // WORMNET_CORE_REPORT_HH
