/**
 * @file
 * Static channel-dependency-graph (CDG) analysis.
 *
 * Given any configuration the simulator accepts — topology, routing
 * function, virtual-channel layout, injected faults — this module
 * builds the *extended channel-dependency graph* offline and decides,
 * from first principles, whether the configuration can deadlock at
 * all (cf. Dally & Seitz; Duato; and the formalisations in
 * arXiv:1110.4677 and arXiv:2101.06015):
 *
 *  - A CDG vertex is one network virtual channel: the (link, VC)
 *    pair entering router `node` through network input port
 *    `in_port`.
 *  - A CDG edge c1 -> c2 exists when a worm whose header occupies c1
 *    can request c2 next. Edges are *realizable*: they are collected
 *    by forward-propagating (channel, destination) states from every
 *    injection, so a dependency that no actually-routed message can
 *    exercise (e.g. the wrong side of a dateline class) is never
 *    added. This per-destination reachability is what lets the
 *    analyzer prove dateline-based dimension-order routing on tori
 *    deadlock-free.
 *
 * Verdicts:
 *  - DeadlockFree: the full CDG is acyclic. No reachable
 *    configuration of blocked worms can form a wait cycle, for any
 *    traffic — a proof, not a heuristic.
 *  - DeadlockFreeEscape: the full CDG is cyclic, but the routing
 *    function's escape layer (RoutingFunction::escapeVcCount())
 *    satisfies Duato's condition: every reachable blocked state
 *    offers an escape candidate, and the escape layer's extended
 *    CDG — direct escape->escape dependencies plus indirect ones
 *    through adaptive channels — is acyclic.
 *  - CyclicDependencies: cycles survive the escape analysis. This
 *    does NOT prove a deadlock will occur (cyclic dependencies are
 *    necessary, not sufficient), but every dynamic deadlock the
 *    ground-truth oracle can ever report must lie inside one of
 *    these cycles; a minimal cyclic witness is enumerated.
 *
 * The simulator cross-links against this module in
 * tests/test_cdg_cross_check.cpp: oracle-confirmed deadlocks are
 * asserted to sit on statically reachable cycles, and statically
 * acyclic configurations are asserted to never deadlock dynamically.
 */

#ifndef WORMNET_ANALYSIS_CDG_HH
#define WORMNET_ANALYSIS_CDG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"
#include "router/router.hh"
#include "routing/routing.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** Dense id of one network virtual channel in the CDG. */
using ChanId = std::uint32_t;

/** Sentinel: "no channel" (nonexistent link, injection port, ...). */
inline constexpr ChanId kInvalidChan =
    std::numeric_limits<ChanId>::max();

/** Outcome of the static analysis. */
enum class CdgVerdict : std::uint8_t
{
    /** Full CDG acyclic: provably deadlock-free. */
    DeadlockFree,
    /** Cyclic, but the escape layer satisfies Duato's condition. */
    DeadlockFreeEscape,
    /** Cyclic dependencies survive: deadlock possible. */
    CyclicDependencies,
};

/** Human-readable verdict name (used in reports and the CLI). */
std::string toString(CdgVerdict verdict);

/** Static fault state applied to the graph before analysis. */
struct CdgFaults
{
    /** Per-node bitmask of faulted *network output* ports; empty
     *  means fault-free. */
    std::vector<PortMask> faultyOut;
    /** Per-node flag: the whole router is failed (never a source,
     *  destination or transit node). Empty means none. */
    std::vector<std::uint8_t> faultyRouter;

    bool
    empty() const
    {
        return faultyOut.empty() && faultyRouter.empty();
    }
};

/**
 * Resolve a FaultModel spec into the static fault state the analyzer
 * uses: every *scheduled* link/router fault is applied regardless of
 * its activation cycle (the analysis asks "can this configuration
 * deadlock while these faults are active"). Stochastic rate faults
 * and self-repair delays have no static meaning and produce a
 * warn(). fatal() when a scheduled link does not exist.
 */
CdgFaults resolveFaults(const Topology &topo,
                        const RouterParams &params,
                        const FaultParams &faults);

/** Headline numbers and witnesses of one analysis. */
struct CdgReport
{
    CdgVerdict verdict = CdgVerdict::DeadlockFree;

    /** @name Graph shape. */
    /// @{
    std::size_t channels = 0;    ///< existing network VCs
    std::size_t reachable = 0;   ///< reachable from some injection
    std::size_t edges = 0;       ///< realizable dependencies
    /// @}

    /** @name Strongly connected components of the full CDG. */
    /// @{
    std::size_t sccCount = 0;       ///< over reachable channels
    std::size_t cyclicSccCount = 0; ///< non-trivial or self-loop
    std::size_t largestScc = 0;
    /// @}

    /** @name Escape-layer (Duato condition) analysis. */
    /// @{
    unsigned escapeVcs = 0;      ///< VCs in the escape layer
    bool escapeDistinct = false; ///< escape layer != whole function
    bool escapeConnected = true; ///< every blocked state offers escape
    bool escapeAcyclic = true;   ///< extended escape CDG acyclic
    std::size_t escapeEdges = 0; ///< extended escape dependencies
    /// @}

    /**
     * Minimal cyclic witness: a shortest realizable dependency cycle
     * (witness[i] depends on witness[(i+1) % size]). Empty when the
     * verdict proves deadlock-freedom outright; for
     * DeadlockFreeEscape it holds a (harmless) adaptive-layer cycle.
     */
    std::vector<ChanId> witness;

    /** Shortest cycle of the extended escape CDG, when cyclic. */
    std::vector<ChanId> escapeWitness;
};

/**
 * The static channel-dependency graph of one configuration.
 *
 * Construction runs the whole analysis eagerly (build, SCC, escape
 * pass, witness search); the object is immutable afterwards. All
 * referenced components are kept by reference and must outlive the
 * graph.
 */
class ChannelDepGraph
{
  public:
    ChannelDepGraph(const Topology &topo,
                    const RoutingFunction &routing,
                    const RouterParams &params,
                    CdgFaults faults = {});

    const CdgReport &report() const { return report_; }

    /** @name Channel id mapping. */
    /// @{
    /** Id of the channel entering @p node through network input
     *  @p in_port on @p vc; kInvalidChan when the link does not
     *  exist (mesh edge, injection port, faulted). */
    ChanId channelId(NodeId node, PortId in_port, VcId vc) const;

    /** Id of the channel leaving @p node through network output
     *  @p out_port on @p vc (the same link seen from upstream). */
    ChanId channelFromOutput(NodeId node, PortId out_port,
                             VcId vc) const;

    /** Total channel-id space (node x netPort x vc, dense). */
    std::size_t numChannelIds() const { return exists_.size(); }
    /// @}

    /** @name Per-channel facts. */
    /// @{
    bool exists(ChanId c) const { return exists_[c] != 0; }

    /** Reachable by some (source, destination) routed message. */
    bool reachableChan(ChanId c) const { return reachable_[c] != 0; }

    /** Lies on a realizable dependency cycle. */
    bool inCycle(ChanId c) const { return inCycle_[c] != 0; }

    /** Can reach a dependency cycle (inCycle channels included). */
    bool reachesCycle(ChanId c) const
    {
        return reachesCycle_[c] != 0;
    }

    /** Realizable dependency successors of @p c, ascending. */
    const std::vector<ChanId> &successors(ChanId c) const
    {
        return succ_[c];
    }

    /** "(x,y) -d+-> (x',y') vc0" — for witnesses and reports. */
    std::string describe(ChanId c) const;
    /// @}

    /** @name Reports. */
    /// @{
    /**
     * GraphViz DOT rendering. With @p cyclic_only, only channels in
     * cyclic SCCs (plus witness highlighting) are emitted — the full
     * graph of a large network is unreadable.
     */
    std::string toDot(bool cyclic_only) const;

    /**
     * JSON report: configuration echo (@p config key/value pairs
     * supplied by the caller), graph shape, SCC statistics, escape
     * analysis, verdict and decoded witness cycles.
     */
    std::string
    toJson(const std::vector<std::pair<std::string, std::string>>
               &config) const;
    /// @}

  private:
    void build();
    void computeSccs();
    void escapeAnalysis();
    void findWitnesses();

    /** Upstream router of channel (node, in_port), or kInvalidNode. */
    NodeId upstreamOf(NodeId node, PortId in_port) const;

    bool linkFaulty(NodeId node, PortId out_port) const;
    bool routerFaulty(NodeId node) const;

    /** Shortest cycle through any vertex of a cyclic SCC of the
     *  graph in @p succ, restricted to @p scc_of components. */
    std::vector<ChanId>
    shortestCycle(const std::vector<std::vector<ChanId>> &succ,
                  const std::vector<std::int32_t> &scc_of,
                  const std::vector<std::uint8_t> &scc_cyclic) const;

    const Topology &topo_;
    const RoutingFunction &routing_;
    RouterParams params_;
    CdgFaults faults_;

    unsigned netPorts_ = 0;
    unsigned vcs_ = 0;
    unsigned escapeVcs_ = 0;

    std::vector<std::uint8_t> exists_;
    std::vector<std::uint8_t> reachable_;
    std::vector<std::vector<ChanId>> succ_;
    std::vector<std::uint8_t> inCycle_;
    std::vector<std::uint8_t> reachesCycle_;

    /** Component id per channel (-1 for unreachable). */
    std::vector<std::int32_t> sccOf_;
    std::vector<std::uint8_t> sccCyclic_;

    /** Extended escape CDG (vertices reuse ChanIds). */
    std::vector<std::vector<ChanId>> escSucc_;

    CdgReport report_;
};

} // namespace wormnet

#endif // WORMNET_ANALYSIS_CDG_HH
