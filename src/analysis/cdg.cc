#include "analysis/cdg.hh"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

namespace
{

/** Strongly connected components (iterative Tarjan). */
struct SccResult
{
    /** Component id per vertex; -1 for vertices not in @p active. */
    std::vector<std::int32_t> comp;
    /** Per component: non-trivial (size > 1) or has a self-loop. */
    std::vector<std::uint8_t> cyclic;
    std::size_t count = 0;
    std::size_t cyclicCount = 0;
    std::size_t largest = 0;
};

SccResult
tarjanScc(std::size_t n,
          const std::vector<std::vector<ChanId>> &succ,
          const std::vector<std::uint8_t> &active)
{
    constexpr std::uint32_t kUnvisited =
        std::numeric_limits<std::uint32_t>::max();

    SccResult res;
    res.comp.assign(n, -1);

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> low(n, 0);
    std::vector<std::uint8_t> onStack(n, 0);
    std::vector<ChanId> stack;
    std::uint32_t next = 0;

    struct Frame
    {
        ChanId v;
        std::size_t child;
    };
    std::vector<Frame> dfs;

    std::vector<std::size_t> compSize;

    for (std::size_t root = 0; root < n; ++root) {
        if (!active[root] || index[root] != kUnvisited)
            continue;
        dfs.push_back({static_cast<ChanId>(root), 0});
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            const ChanId v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = next++;
                stack.push_back(v);
                onStack[v] = 1;
            }
            bool descended = false;
            while (f.child < succ[v].size()) {
                const ChanId w = succ[v][f.child++];
                if (!active[w])
                    continue;
                if (index[w] == kUnvisited) {
                    dfs.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[v] = std::min(low[v], index[w]);
            }
            if (descended)
                continue;
            if (low[v] == index[v]) {
                const auto id =
                    static_cast<std::int32_t>(res.count++);
                std::size_t size = 0;
                ChanId w;
                do {
                    w = stack.back();
                    stack.pop_back();
                    onStack[w] = 0;
                    res.comp[w] = id;
                    ++size;
                } while (w != v);
                compSize.push_back(size);
            }
            dfs.pop_back();
            if (!dfs.empty()) {
                Frame &parent = dfs.back();
                low[parent.v] = std::min(low[parent.v], low[v]);
            }
        }
    }

    res.cyclic.assign(res.count, 0);
    for (std::size_t i = 0; i < res.count; ++i) {
        if (compSize[i] > 1)
            res.cyclic[i] = 1;
        res.largest = std::max(res.largest, compSize[i]);
    }
    // Self-loops make a singleton component cyclic.
    for (std::size_t v = 0; v < n; ++v) {
        if (!active[v])
            continue;
        for (ChanId w : succ[v]) {
            if (w == static_cast<ChanId>(v)) {
                res.cyclic[static_cast<std::size_t>(res.comp[v])] = 1;
                break;
            }
        }
    }
    for (std::size_t i = 0; i < res.count; ++i)
        if (res.cyclic[i])
            ++res.cyclicCount;
    return res;
}

/** JSON string escaping for the report emitter. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += ch;
        }
    }
    return out;
}

/** Dimension letter for human-readable channel names. */
char
dimLetter(unsigned dim)
{
    static constexpr char kNames[] = {'x', 'y', 'z', 'w'};
    return dim < 4 ? kNames[dim] : '?';
}

} // namespace

std::string
toString(CdgVerdict verdict)
{
    switch (verdict) {
    case CdgVerdict::DeadlockFree:
        return "deadlock-free";
    case CdgVerdict::DeadlockFreeEscape:
        return "deadlock-free-via-escape";
    case CdgVerdict::CyclicDependencies:
        return "cyclic-dependencies";
    }
    panic("unhandled CdgVerdict");
}

CdgFaults
resolveFaults(const Topology &topo, const RouterParams &params,
              const FaultParams &faults)
{
    CdgFaults out;
    if (faults.linkRate > 0.0)
        warn("static analysis ignores stochastic 'rate:' faults "
             "(no fixed fault set to analyze)");
    if (faults.repairDelay > 0)
        warn("static analysis ignores fault repair: the question "
             "asked is \"can the network deadlock while the "
             "scheduled faults are active\"");
    if (faults.schedule.empty())
        return out;

    const NodeId n = topo.numNodes();
    out.faultyOut.assign(n, 0);
    out.faultyRouter.assign(n, 0);

    const auto failLink = [&](NodeId src, NodeId dst) {
        for (unsigned d = 0; d < topo.numDims(); ++d) {
            for (bool positive : {true, false}) {
                if (topo.neighbor(src, d, positive) == dst) {
                    out.faultyOut[src] |=
                        PortMask(1) << Topology::outPort(d, positive);
                    return true;
                }
            }
        }
        return false;
    };

    for (const ScheduledFault &f : faults.schedule) {
        if (f.kind == ScheduledFault::Kind::Router) {
            if (f.node >= n)
                fatal("fault spec names router ", f.node,
                      " outside the ", n, "-node topology");
            out.faultyRouter[f.node] = 1;
            // A dead router takes every incident link with it.
            for (unsigned d = 0; d < topo.numDims(); ++d) {
                for (bool positive : {true, false}) {
                    const NodeId peer =
                        topo.neighbor(f.node, d, positive);
                    if (peer == kInvalidNode)
                        continue;
                    out.faultyOut[f.node] |=
                        PortMask(1) << Topology::outPort(d, positive);
                    failLink(peer, f.node);
                }
            }
            continue;
        }
        if (f.node >= n || f.peer >= n || !failLink(f.node, f.peer))
            fatal("fault spec names link ", f.node, ">", f.peer,
                  " which does not exist in ", topo.name());
    }
    (void)params;
    return out;
}

ChannelDepGraph::ChannelDepGraph(const Topology &topo,
                                 const RoutingFunction &routing,
                                 const RouterParams &params,
                                 CdgFaults faults)
    : topo_(topo), routing_(routing), params_(params),
      faults_(std::move(faults))
{
    WORMNET_ASSERT(params_.netPorts == topo_.numNetPorts());
    netPorts_ = params_.netPorts;
    vcs_ = params_.vcs;
    escapeVcs_ = std::min(routing_.escapeVcCount(), vcs_);

    build();
    computeSccs();
    escapeAnalysis();
    findWitnesses();

    report_.verdict = CdgVerdict::CyclicDependencies;
    if (report_.cyclicSccCount == 0)
        report_.verdict = CdgVerdict::DeadlockFree;
    else if (report_.escapeDistinct && report_.escapeConnected &&
             report_.escapeAcyclic)
        report_.verdict = CdgVerdict::DeadlockFreeEscape;
}

ChanId
ChannelDepGraph::channelId(NodeId node, PortId in_port, VcId vc) const
{
    if (node >= topo_.numNodes() || in_port >= netPorts_ ||
        vc >= vcs_)
        return kInvalidChan;
    const ChanId c = static_cast<ChanId>(
        (static_cast<std::size_t>(node) * netPorts_ + in_port) *
            vcs_ +
        vc);
    return exists_[c] ? c : kInvalidChan;
}

ChanId
ChannelDepGraph::channelFromOutput(NodeId node, PortId out_port,
                                   VcId vc) const
{
    if (node >= topo_.numNodes() || out_port >= netPorts_)
        return kInvalidChan;
    const NodeId down =
        topo_.neighbor(node, Topology::dimOfPort(out_port),
                       Topology::isPositivePort(out_port));
    if (down == kInvalidNode)
        return kInvalidChan;
    return channelId(down, Topology::peerInPort(out_port), vc);
}

NodeId
ChannelDepGraph::upstreamOf(NodeId node, PortId in_port) const
{
    // Input ports are named after the direction the link came from,
    // so the upstream router lies in that same direction.
    return topo_.neighbor(node, Topology::dimOfPort(in_port),
                          Topology::isPositivePort(in_port));
}

bool
ChannelDepGraph::linkFaulty(NodeId node, PortId out_port) const
{
    return !faults_.faultyOut.empty() &&
           ((faults_.faultyOut[node] >> out_port) & 1u) != 0;
}

bool
ChannelDepGraph::routerFaulty(NodeId node) const
{
    return !faults_.faultyRouter.empty() &&
           faults_.faultyRouter[node] != 0;
}

void
ChannelDepGraph::build()
{
    const NodeId n = topo_.numNodes();
    const std::size_t space =
        static_cast<std::size_t>(n) * netPorts_ * vcs_;

    exists_.assign(space, 0);
    for (NodeId node = 0; node < n; ++node) {
        if (routerFaulty(node))
            continue;
        for (PortId ip = 0; ip < netPorts_; ++ip) {
            const NodeId up = upstreamOf(node, ip);
            if (up == kInvalidNode || routerFaulty(up))
                continue;
            // The link enters through `ip`; upstream drives it from
            // the opposite direction port of the same dimension.
            const PortId op = Topology::peerInPort(ip);
            if (linkFaulty(up, op))
                continue;
            for (VcId v = 0; v < vcs_; ++v) {
                const std::size_t c =
                    (static_cast<std::size_t>(node) * netPorts_ +
                     ip) *
                        vcs_ +
                    v;
                exists_[c] = 1;
                ++report_.channels;
            }
        }
    }

    reachable_.assign(space, 0);
    succ_.assign(space, {});
    report_.escapeVcs = escapeVcs_;
    report_.escapeDistinct = escapeVcs_ < vcs_;

    std::unordered_set<std::uint64_t> edgeSeen;
    std::unordered_set<std::uint64_t> escSeen;
    if (report_.escapeDistinct)
        escSucc_.assign(space, {});

    // Per-destination scratch, epoch-stamped with the destination id.
    std::vector<NodeId> mark(space, kInvalidNode);
    std::vector<ChanId> stack;
    std::vector<ChanId> visitedList;
    std::vector<std::pair<ChanId, ChanId>> localEdges;
    std::vector<RouteCandidate> cands;

    const auto addEdge = [&](ChanId c1, ChanId c2) {
        localEdges.emplace_back(c1, c2);
        const std::uint64_t key =
            static_cast<std::uint64_t>(c1) * space + c2;
        if (edgeSeen.insert(key).second) {
            succ_[c1].push_back(c2);
            ++report_.edges;
        }
    };

    for (NodeId dst = 0; dst < n; ++dst) {
        if (routerFaulty(dst))
            continue;
        stack.clear();
        visitedList.clear();
        localEdges.clear();

        // Expand one (channel-or-injection, dst) state: route, filter
        // faults, record dependency edges and newly reached channels.
        // `from` is kInvalidChan for injection states.
        const auto expand = [&](NodeId at, PortId in_port, VcId in_vc,
                                ChanId from) {
            routing_.route(at, dst, in_port, in_vc, cands);
            bool anyLive = false;
            bool anyEscape = false;
            for (const RouteCandidate &cand : cands) {
                if (linkFaulty(at, cand.port))
                    continue;
                for (VcId v = 0; v < vcs_; ++v) {
                    if (!((cand.vcMask >> v) & 1u))
                        continue;
                    const ChanId c2 =
                        channelFromOutput(at, cand.port, v);
                    if (c2 == kInvalidChan)
                        continue;
                    anyLive = true;
                    if (v < escapeVcs_)
                        anyEscape = true;
                    if (from != kInvalidChan)
                        addEdge(from, c2);
                    if (mark[c2] != dst) {
                        mark[c2] = dst;
                        visitedList.push_back(c2);
                        stack.push_back(c2);
                    }
                }
            }
            // Duato escape connectivity: every reachable blocked
            // state must offer an escape candidate. States whose
            // candidates are all faulted are excluded — the
            // simulator kills such worms, so they cannot deadlock.
            if (anyLive && !anyEscape)
                report_.escapeConnected = false;
        };

        for (NodeId src = 0; src < n; ++src) {
            if (src == dst || routerFaulty(src))
                continue;
            // All injection ports share one routing view; VC 0 is
            // representative (header sits in an injection buffer).
            expand(src, static_cast<PortId>(netPorts_), 0,
                   kInvalidChan);
        }

        while (!stack.empty()) {
            const ChanId c = stack.back();
            stack.pop_back();
            reachable_[c] = 1;
            const NodeId at = static_cast<NodeId>(
                c / (static_cast<std::size_t>(netPorts_) * vcs_));
            if (at == dst)
                continue; // drains into ejection, no dependencies
            const PortId ip =
                static_cast<PortId>((c / vcs_) % netPorts_);
            const VcId v = static_cast<VcId>(c % vcs_);
            expand(at, ip, v, c);
        }

        if (report_.escapeDistinct) {
            // Extend the escape CDG for this destination: direct
            // escape->escape dependencies, plus indirect ones routed
            // through adaptive channels (Duato's extended graph).
            // FirstEscape[x] = escape channels reachable from
            // adaptive channel x through adaptive channels only;
            // computed bottom-up over the adaptive condensation.
            std::vector<std::vector<ChanId>> localSucc(space);
            std::vector<std::uint8_t> adaptive(space, 0);
            for (const auto &[a, b] : localEdges)
                localSucc[a].push_back(b);
            for (ChanId c : visitedList)
                if (static_cast<VcId>(c % vcs_) >= escapeVcs_)
                    adaptive[c] = 1;

            SccResult asc = tarjanScc(space, localSucc, adaptive);
            // Tarjan emits components in reverse topological order,
            // so successors' sets are final before predecessors'.
            std::vector<std::vector<ChanId>> firstEscape(asc.count);
            const auto mergeInto = [](std::vector<ChanId> &dstSet,
                                      const std::vector<ChanId>
                                          &srcSet) {
                dstSet.insert(dstSet.end(), srcSet.begin(),
                              srcSet.end());
            };
            std::vector<std::vector<ChanId>> members(asc.count);
            for (ChanId c : visitedList)
                if (adaptive[c])
                    members[static_cast<std::size_t>(asc.comp[c])]
                        .push_back(c);
            for (std::size_t comp = 0; comp < asc.count; ++comp) {
                auto &fe = firstEscape[comp];
                for (ChanId m : members[comp]) {
                    for (ChanId s : localSucc[m]) {
                        if (static_cast<VcId>(s % vcs_) <
                            escapeVcs_) {
                            fe.push_back(s);
                        } else if (asc.comp[s] !=
                                   static_cast<std::int32_t>(comp)) {
                            mergeInto(fe,
                                      firstEscape[static_cast<
                                          std::size_t>(
                                          asc.comp[s])]);
                        }
                    }
                }
                std::sort(fe.begin(), fe.end());
                fe.erase(std::unique(fe.begin(), fe.end()),
                         fe.end());
            }

            const auto addEscEdge = [&](ChanId e1, ChanId e2) {
                const std::uint64_t key =
                    static_cast<std::uint64_t>(e1) * space + e2;
                if (escSeen.insert(key).second) {
                    escSucc_[e1].push_back(e2);
                    ++report_.escapeEdges;
                }
            };
            for (ChanId e : visitedList) {
                if (static_cast<VcId>(e % vcs_) >= escapeVcs_)
                    continue;
                for (ChanId s : localSucc[e]) {
                    if (static_cast<VcId>(s % vcs_) < escapeVcs_) {
                        addEscEdge(e, s);
                    } else {
                        for (ChanId t : firstEscape[static_cast<
                                 std::size_t>(asc.comp[s])])
                            addEscEdge(e, t);
                    }
                }
            }
        }
    }

    for (std::size_t c = 0; c < space; ++c) {
        if (reachable_[c])
            ++report_.reachable;
        std::sort(succ_[c].begin(), succ_[c].end());
    }
}

void
ChannelDepGraph::computeSccs()
{
    const std::size_t space = exists_.size();
    SccResult scc = tarjanScc(space, succ_, reachable_);
    sccOf_ = std::move(scc.comp);
    sccCyclic_ = std::move(scc.cyclic);
    report_.sccCount = scc.count;
    report_.cyclicSccCount = scc.cyclicCount;
    report_.largestScc = scc.largest;

    inCycle_.assign(space, 0);
    for (std::size_t c = 0; c < space; ++c)
        if (reachable_[c] &&
            sccCyclic_[static_cast<std::size_t>(sccOf_[c])])
            inCycle_[c] = 1;

    // reachesCycle = backward closure of the cyclic channels.
    std::vector<std::vector<ChanId>> pred(space);
    for (std::size_t c = 0; c < space; ++c)
        for (ChanId s : succ_[c])
            pred[s].push_back(static_cast<ChanId>(c));
    reachesCycle_.assign(space, 0);
    std::vector<ChanId> work;
    for (std::size_t c = 0; c < space; ++c) {
        if (inCycle_[c]) {
            reachesCycle_[c] = 1;
            work.push_back(static_cast<ChanId>(c));
        }
    }
    while (!work.empty()) {
        const ChanId c = work.back();
        work.pop_back();
        for (ChanId p : pred[c]) {
            if (!reachesCycle_[p]) {
                reachesCycle_[p] = 1;
                work.push_back(p);
            }
        }
    }
}

void
ChannelDepGraph::escapeAnalysis()
{
    if (!report_.escapeDistinct) {
        // The routing relation is its own escape subfunction; the
        // Duato condition degenerates to plain CDG acyclicity.
        report_.escapeAcyclic = report_.cyclicSccCount == 0;
        return;
    }
    const std::size_t space = exists_.size();
    std::vector<std::uint8_t> isEscape(space, 0);
    for (std::size_t c = 0; c < space; ++c)
        if (reachable_[c] &&
            static_cast<VcId>(c % vcs_) < escapeVcs_)
            isEscape[c] = 1;
    SccResult scc = tarjanScc(space, escSucc_, isEscape);
    report_.escapeAcyclic = scc.cyclicCount == 0;
    if (!report_.escapeAcyclic)
        report_.escapeWitness =
            shortestCycle(escSucc_, scc.comp, scc.cyclic);
}

void
ChannelDepGraph::findWitnesses()
{
    if (report_.cyclicSccCount > 0)
        report_.witness = shortestCycle(succ_, sccOf_, sccCyclic_);
}

std::vector<ChanId>
ChannelDepGraph::shortestCycle(
    const std::vector<std::vector<ChanId>> &succ,
    const std::vector<std::int32_t> &scc_of,
    const std::vector<std::uint8_t> &scc_cyclic) const
{
    const std::size_t space = succ.size();
    constexpr std::uint32_t kInf =
        std::numeric_limits<std::uint32_t>::max();

    std::vector<std::uint32_t> dist(space, kInf);
    std::vector<ChanId> parent(space, kInvalidChan);
    std::vector<ChanId> touched;
    std::vector<ChanId> queue;

    std::vector<ChanId> best;
    std::size_t bestLen = std::numeric_limits<std::size_t>::max();

    const auto inCyclicScc = [&](ChanId c) {
        return scc_of[c] >= 0 &&
               scc_cyclic[static_cast<std::size_t>(scc_of[c])];
    };

    for (std::size_t s = 0; s < space; ++s) {
        if (!inCyclicScc(static_cast<ChanId>(s)))
            continue;
        // BFS inside s's SCC; the shortest cycle through s closes
        // with an edge back to s.
        for (ChanId t : touched) {
            dist[t] = kInf;
            parent[t] = kInvalidChan;
        }
        touched.clear();
        queue.clear();

        const ChanId start = static_cast<ChanId>(s);
        dist[start] = 0;
        touched.push_back(start);
        queue.push_back(start);
        std::size_t head = 0;
        ChanId closer = kInvalidChan;
        while (head < queue.size() && closer == kInvalidChan) {
            const ChanId v = queue[head++];
            if (static_cast<std::size_t>(dist[v]) + 1 >= bestLen)
                break; // cannot beat the best cycle found so far
            for (ChanId w : succ[v]) {
                if (w == start) {
                    closer = v;
                    break;
                }
                if (scc_of[w] != scc_of[start] || dist[w] != kInf)
                    continue;
                dist[w] = dist[v] + 1;
                parent[w] = v;
                touched.push_back(w);
                queue.push_back(w);
            }
        }
        if (closer == kInvalidChan)
            continue;
        std::vector<ChanId> cycle;
        for (ChanId v = closer; v != kInvalidChan; v = parent[v])
            cycle.push_back(v);
        std::reverse(cycle.begin(), cycle.end());
        if (cycle.size() < bestLen) {
            bestLen = cycle.size();
            best = std::move(cycle);
            if (bestLen == 1)
                break; // a self-loop cannot be beaten
        }
    }
    return best;
}

std::string
ChannelDepGraph::describe(ChanId c) const
{
    const NodeId node = static_cast<NodeId>(
        c / (static_cast<std::size_t>(netPorts_) * vcs_));
    const PortId ip = static_cast<PortId>((c / vcs_) % netPorts_);
    const VcId v = static_cast<VcId>(c % vcs_);
    const NodeId up = upstreamOf(node, ip);

    const auto coords = [&](NodeId x) {
        std::ostringstream os;
        os << '(';
        for (unsigned d = 0; d < topo_.numDims(); ++d)
            os << (d ? "," : "") << topo_.coordinate(x, d);
        os << ')';
        return os.str();
    };

    std::ostringstream os;
    os << coords(up) << " -" << dimLetter(Topology::dimOfPort(ip))
       << (Topology::isPositivePort(ip) ? '-' : '+') << "-> "
       << coords(node) << " vc" << unsigned(v);
    return os.str();
}

std::string
ChannelDepGraph::toDot(bool cyclic_only) const
{
    std::ostringstream os;
    os << "digraph cdg {\n"
       << "  rankdir=LR;\n"
       << "  node [shape=box, fontname=\"monospace\", "
          "fontsize=10];\n";

    std::unordered_set<std::uint64_t> witnessEdges;
    const std::size_t space = exists_.size();
    const auto &w = report_.witness;
    for (std::size_t i = 0; i < w.size(); ++i)
        witnessEdges.insert(static_cast<std::uint64_t>(w[i]) *
                                space +
                            w[(i + 1) % w.size()]);

    const auto emitVertex = [&](ChanId c) {
        os << "  c" << c << " [label=\"" << describe(c) << '"';
        if (inCycle(c))
            os << ", color=red";
        if (static_cast<VcId>(c % vcs_) < escapeVcs_ &&
            report_.escapeDistinct)
            os << ", style=bold";
        os << "];\n";
    };

    for (std::size_t c = 0; c < space; ++c) {
        if (!reachable_[c])
            continue;
        if (cyclic_only && !inCycle_[c])
            continue;
        emitVertex(static_cast<ChanId>(c));
        for (ChanId s : succ_[c]) {
            if (cyclic_only && !inCycle_[s])
                continue;
            os << "  c" << c << " -> c" << s;
            if (witnessEdges.count(
                    static_cast<std::uint64_t>(c) * space + s))
                os << " [color=red, penwidth=2]";
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string
ChannelDepGraph::toJson(
    const std::vector<std::pair<std::string, std::string>> &config)
    const
{
    std::ostringstream os;
    os << "{\n  \"config\": {";
    for (std::size_t i = 0; i < config.size(); ++i) {
        os << (i ? ", " : "") << '"' << jsonEscape(config[i].first)
           << "\": \"" << jsonEscape(config[i].second) << '"';
    }
    os << "},\n";
    os << "  \"verdict\": \"" << toString(report_.verdict)
       << "\",\n";
    os << "  \"graph\": {\"channels\": " << report_.channels
       << ", \"reachable\": " << report_.reachable
       << ", \"edges\": " << report_.edges << "},\n";
    os << "  \"sccs\": {\"count\": " << report_.sccCount
       << ", \"cyclic\": " << report_.cyclicSccCount
       << ", \"largest\": " << report_.largestScc << "},\n";
    os << "  \"escape\": {\"vcs\": " << report_.escapeVcs
       << ", \"distinct\": "
       << (report_.escapeDistinct ? "true" : "false")
       << ", \"connected\": "
       << (report_.escapeConnected ? "true" : "false")
       << ", \"acyclic\": "
       << (report_.escapeAcyclic ? "true" : "false")
       << ", \"edges\": " << report_.escapeEdges << "},\n";

    const auto emitCycle = [&](const char *key,
                               const std::vector<ChanId> &cycle,
                               bool last) {
        os << "  \"" << key << "\": [";
        for (std::size_t i = 0; i < cycle.size(); ++i) {
            os << (i ? ", " : "") << "{\"id\": " << cycle[i]
               << ", \"channel\": \""
               << jsonEscape(describe(cycle[i])) << "\"}";
        }
        os << ']' << (last ? "\n" : ",\n");
    };
    emitCycle("witness", report_.witness, false);
    emitCycle("escape_witness", report_.escapeWitness, true);
    os << "}\n";
    return os.str();
}

} // namespace wormnet
