/**
 * @file
 * wormnet-analyze: offline deadlock-freedom certification.
 *
 * Builds the static channel-dependency graph of a simulator
 * configuration (topology x routing x VCs x faults), decides
 * deadlock-freedom (plain acyclicity or Duato's escape condition),
 * and prints a human-readable report; optional DOT and JSON outputs.
 *
 * Exit status: 0 when the configuration is provably deadlock-free
 * (directly or via escape), 1 when cyclic dependencies remain
 * (deadlock possible), 2 on a configuration error.
 */

#include <fstream>
#include <iostream>

#include "analysis/cdg.hh"
#include "common/config.hh"
#include "common/log.hh"

namespace
{

constexpr const char *kUsage = R"(wormnet-analyze: static channel-dependency-graph deadlock analysis

Usage: wormnet-analyze [--key value | --key=value]...

Configuration (same surface as the simulator):
  --topology <torus|mesh>   topology family          [torus]
  --radix <k>               nodes per dimension      [4]
  --dims <n>                dimensions               [2]
  --radices <k1xk2x...>     mixed-radix torus (overrides radix/dims)
  --vcs <n>                 virtual channels         [3]
  --inj-ports <n>           injection ports          [4]
  --eje-ports <n>           ejection ports           [4]
  --routing <name>          tfa|dor|duato|westfirst  [tfa]
  --faults <spec>           link:<a>><b>@<c>,router:<n>@<c>,...

Outputs:
  --json <path|->           write JSON report (- = stdout)
  --dot <path|->            write GraphViz DOT (- = stdout)
  --cyclic-only             restrict DOT to cyclic components
  --quiet                   suppress the human-readable report
  --help                    this text

Exit status: 0 deadlock-free (possibly via escape), 1 cyclic
dependencies (deadlock possible), 2 configuration error.
)";

void
writeOutput(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::cout << text;
        return;
    }
    std::ofstream os(path);
    if (!os)
        wormnet::fatal("cannot write '", path, "'");
    os << text;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wormnet;

    const Config cfg = Config::parseArgs(argc, argv);
    if (cfg.getBool("help", false)) {
        std::cout << kUsage;
        return 0;
    }

    try {
        const auto topo = makeTopology(
            cfg.getString("topology", "torus"),
            static_cast<unsigned>(cfg.getUint("radix", 4)),
            static_cast<unsigned>(cfg.getUint("dims", 2)),
            cfg.getString("radices", ""));

        RouterParams rp;
        rp.netPorts = topo->numNetPorts();
        rp.injPorts =
            static_cast<unsigned>(cfg.getUint("inj-ports", 4));
        rp.ejePorts =
            static_cast<unsigned>(cfg.getUint("eje-ports", 4));
        rp.vcs = static_cast<unsigned>(cfg.getUint("vcs", 3));

        const std::string routingName =
            cfg.getString("routing", "tfa");
        const auto routing =
            makeRoutingFunction(routingName, *topo, rp);

        CdgFaults faults;
        const std::string faultSpec = cfg.getString("faults", "");
        if (!faultSpec.empty())
            faults = resolveFaults(
                *topo, rp, FaultModel::parseSpec(faultSpec));

        const ChannelDepGraph cdg(*topo, *routing, rp,
                                  std::move(faults));
        const CdgReport &r = cdg.report();

        if (!cfg.getBool("quiet", false)) {
            std::cout
                << "configuration:   " << topo->name() << ", "
                << routingName << " routing, " << rp.vcs
                << " VCs"
                << (faultSpec.empty() ? ""
                                      : ", faults " + faultSpec)
                << '\n'
                << "channels:        " << r.channels << " ("
                << r.reachable << " reachable)\n"
                << "dependencies:    " << r.edges << '\n'
                << "SCCs:            " << r.sccCount << " ("
                << r.cyclicSccCount << " cyclic, largest "
                << r.largestScc << ")\n";
            if (r.escapeDistinct) {
                std::cout
                    << "escape layer:    " << r.escapeVcs
                    << " VC(s), "
                    << (r.escapeConnected ? "connected"
                                          : "NOT connected")
                    << ", extended CDG "
                    << (r.escapeAcyclic ? "acyclic" : "CYCLIC")
                    << " (" << r.escapeEdges << " edges)\n";
            }
            std::cout << "verdict:         "
                      << toString(r.verdict) << '\n';
            const auto printCycle =
                [&](const char *what,
                    const std::vector<ChanId> &cycle) {
                    if (cycle.empty())
                        return;
                    std::cout << what << " (" << cycle.size()
                              << " channels):\n";
                    for (ChanId c : cycle)
                        std::cout << "    " << cdg.describe(c)
                                  << '\n';
                };
            switch (r.verdict) {
            case CdgVerdict::DeadlockFree:
                break;
            case CdgVerdict::DeadlockFreeEscape:
                printCycle("  adaptive-layer cycle (harmless)",
                           r.witness);
                break;
            case CdgVerdict::CyclicDependencies:
                printCycle("  minimal cyclic witness", r.witness);
                printCycle("  escape-layer cycle",
                           r.escapeWitness);
                break;
            }
        }

        if (cfg.has("json")) {
            std::vector<std::pair<std::string, std::string>> echo;
            echo.emplace_back("topology", topo->name());
            echo.emplace_back("routing", routingName);
            echo.emplace_back("vcs", std::to_string(rp.vcs));
            if (!faultSpec.empty())
                echo.emplace_back("faults", faultSpec);
            writeOutput(cfg.getString("json"), cdg.toJson(echo));
        }
        if (cfg.has("dot"))
            writeOutput(
                cfg.getString("dot"),
                cdg.toDot(cfg.getBool("cyclic-only", false)));

        return r.verdict == CdgVerdict::CyclicDependencies ? 1 : 0;
    } catch (const FatalError &e) {
        std::cerr << "wormnet-analyze: " << e.what() << '\n';
        return 2;
    }
}
