/**
 * @file
 * wormnet-analyze: offline deadlock-freedom certification.
 *
 * Builds the static channel-dependency graph of a simulator
 * configuration (topology x routing x VCs x faults), decides
 * deadlock-freedom (plain acyclicity or Duato's escape condition),
 * and prints a human-readable report; optional DOT and JSON outputs.
 *
 * Exit status: 0 when the configuration is provably deadlock-free
 * (directly or via escape), 1 when cyclic dependencies remain
 * (deadlock possible), 2 on a configuration error.
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/cdg.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "sim/reconfig.hh"

namespace
{

constexpr const char *kUsage = R"(wormnet-analyze: static channel-dependency-graph deadlock analysis

Usage: wormnet-analyze [--key value | --key=value]...

Configuration (same surface as the simulator):
  --topology <torus|mesh>   topology family          [torus]
  --radix <k>               nodes per dimension      [4]
  --dims <n>                dimensions               [2]
  --radices <k1xk2x...>     mixed-radix torus (overrides radix/dims)
  --vcs <n>                 virtual channels         [3]
  --inj-ports <n>           injection ports          [4]
  --eje-ports <n>           ejection ports           [4]
  --routing <name>          tfa|dor|duato|westfirst  [tfa]
  --faults <spec>           link:<a>><b>@<c>,router:<n>@<c>,...
  --reconfig <plan>         analyze every epoch of an online
                            reconfiguration plan instead of a single
                            configuration. Same grammar as the
                            simulator's --reconfig:
                            link-:<a>><b>@<c>, link+:<a>><b>@<c>,
                            router-:<n>@<c>, router+:<n>@<c>,
                            routing:<name>@<c> (comma-separated).
                            Scheduled --faults are folded into every
                            epoch. One verdict per epoch, plus the
                            pre-plan configuration.

Outputs:
  --json <path|->           write JSON report (- = stdout)
  --dot <path|->            write GraphViz DOT (- = stdout)
  --cyclic-only             restrict DOT to cyclic components
  --quiet                   suppress the human-readable report
  --help                    this text

Exit status: 0 deadlock-free (possibly via escape), 1 cyclic
dependencies (deadlock possible — with --reconfig: in ANY epoch),
2 configuration error.
)";

void
writeOutput(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::cout << text;
        return;
    }
    std::ofstream os(path);
    if (!os)
        wormnet::fatal("cannot write '", path, "'");
    os << text;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace wormnet;

    const Config cfg = Config::parseArgs(argc, argv);
    if (cfg.getBool("help", false)) {
        std::cout << kUsage;
        return 0;
    }

    try {
        const auto topo = makeTopology(
            cfg.getString("topology", "torus"),
            static_cast<unsigned>(cfg.getUint("radix", 4)),
            static_cast<unsigned>(cfg.getUint("dims", 2)),
            cfg.getString("radices", ""));

        RouterParams rp;
        rp.netPorts = topo->numNetPorts();
        rp.injPorts =
            static_cast<unsigned>(cfg.getUint("inj-ports", 4));
        rp.ejePorts =
            static_cast<unsigned>(cfg.getUint("eje-ports", 4));
        rp.vcs = static_cast<unsigned>(cfg.getUint("vcs", 3));

        const std::string routingName =
            cfg.getString("routing", "tfa");
        const auto routing =
            makeRoutingFunction(routingName, *topo, rp);

        CdgFaults faults;
        const std::string faultSpec = cfg.getString("faults", "");
        if (!faultSpec.empty())
            faults = resolveFaults(
                *topo, rp, FaultModel::parseSpec(faultSpec));

        if (cfg.has("reconfig")) {
            // Per-epoch what-if analysis of an online
            // reconfiguration plan (the exact computation the live
            // cross-check runs after each epoch).
            const auto epochs = analyzePlanStatic(
                ReconfigPlan::parse(cfg.getString("reconfig")),
                *topo, rp, routingName, faults);

            bool anyCyclic = false;
            if (!cfg.getBool("quiet", false)) {
                std::cout << "configuration:   " << topo->name()
                          << ", " << rp.vcs << " VCs"
                          << (faultSpec.empty()
                                  ? ""
                                  : ", faults " + faultSpec)
                          << "\nreconfig plan:   "
                          << cfg.getString("reconfig") << "\n\n";
                for (const EpochStaticResult &e : epochs) {
                    if (e.cycle == 0 && e.edits == 0)
                        std::cout << "  initial";
                    else
                        std::cout << "  epoch @" << e.cycle << " ("
                                  << e.edits << " edit"
                                  << (e.edits == 1 ? "" : "s")
                                  << ")";
                    std::cout << ": routing " << e.routing << ", "
                              << e.report.cyclicSccCount
                              << " cyclic SCC(s) -> "
                              << toString(e.report.verdict) << '\n';
                }
            }
            for (const EpochStaticResult &e : epochs)
                anyCyclic |= e.report.verdict ==
                             CdgVerdict::CyclicDependencies;
            if (!cfg.getBool("quiet", false))
                std::cout << "\nplan verdict:    "
                          << (anyCyclic
                                  ? "cyclic dependencies in at "
                                    "least one epoch"
                                  : "deadlock-free in every epoch")
                          << '\n';

            if (cfg.has("json")) {
                std::ostringstream os;
                os << "{\n  \"plan\": \""
                   << cfg.getString("reconfig")
                   << "\",\n  \"epochs\": [\n";
                for (std::size_t i = 0; i < epochs.size(); ++i) {
                    const EpochStaticResult &e = epochs[i];
                    os << "    {\"cycle\": " << e.cycle
                       << ", \"edits\": " << e.edits
                       << ", \"routing\": \"" << e.routing
                       << "\",\n     \"channels\": "
                       << e.report.channels
                       << ", \"reachable\": " << e.report.reachable
                       << ", \"edges\": " << e.report.edges
                       << ",\n     \"cyclic_sccs\": "
                       << e.report.cyclicSccCount
                       << ", \"verdict\": \""
                       << toString(e.report.verdict) << "\"}"
                       << (i + 1 < epochs.size() ? "," : "")
                       << '\n';
                }
                os << "  ],\n  \"any_cyclic\": "
                   << (anyCyclic ? "true" : "false") << "\n}\n";
                writeOutput(cfg.getString("json"), os.str());
            }
            return anyCyclic ? 1 : 0;
        }

        const ChannelDepGraph cdg(*topo, *routing, rp,
                                  std::move(faults));
        const CdgReport &r = cdg.report();

        if (!cfg.getBool("quiet", false)) {
            std::cout
                << "configuration:   " << topo->name() << ", "
                << routingName << " routing, " << rp.vcs
                << " VCs"
                << (faultSpec.empty() ? ""
                                      : ", faults " + faultSpec)
                << '\n'
                << "channels:        " << r.channels << " ("
                << r.reachable << " reachable)\n"
                << "dependencies:    " << r.edges << '\n'
                << "SCCs:            " << r.sccCount << " ("
                << r.cyclicSccCount << " cyclic, largest "
                << r.largestScc << ")\n";
            if (r.escapeDistinct) {
                std::cout
                    << "escape layer:    " << r.escapeVcs
                    << " VC(s), "
                    << (r.escapeConnected ? "connected"
                                          : "NOT connected")
                    << ", extended CDG "
                    << (r.escapeAcyclic ? "acyclic" : "CYCLIC")
                    << " (" << r.escapeEdges << " edges)\n";
            }
            std::cout << "verdict:         "
                      << toString(r.verdict) << '\n';
            const auto printCycle =
                [&](const char *what,
                    const std::vector<ChanId> &cycle) {
                    if (cycle.empty())
                        return;
                    std::cout << what << " (" << cycle.size()
                              << " channels):\n";
                    for (ChanId c : cycle)
                        std::cout << "    " << cdg.describe(c)
                                  << '\n';
                };
            switch (r.verdict) {
            case CdgVerdict::DeadlockFree:
                break;
            case CdgVerdict::DeadlockFreeEscape:
                printCycle("  adaptive-layer cycle (harmless)",
                           r.witness);
                break;
            case CdgVerdict::CyclicDependencies:
                printCycle("  minimal cyclic witness", r.witness);
                printCycle("  escape-layer cycle",
                           r.escapeWitness);
                break;
            }
        }

        if (cfg.has("json")) {
            std::vector<std::pair<std::string, std::string>> echo;
            echo.emplace_back("topology", topo->name());
            echo.emplace_back("routing", routingName);
            echo.emplace_back("vcs", std::to_string(rp.vcs));
            if (!faultSpec.empty())
                echo.emplace_back("faults", faultSpec);
            writeOutput(cfg.getString("json"), cdg.toJson(echo));
        }
        if (cfg.has("dot"))
            writeOutput(
                cfg.getString("dot"),
                cdg.toDot(cfg.getBool("cyclic-only", false)));

        return r.verdict == CdgVerdict::CyclicDependencies ? 1 : 0;
    } catch (const FatalError &e) {
        std::cerr << "wormnet-analyze: " << e.what() << '\n';
        return 2;
    }
}
