#include "recovery/disha.hh"

#include <algorithm>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

DishaRecovery::DishaRecovery(const DishaParams &params)
    : params_(params)
{
    if (params.tokens < 1)
        fatal("disha recovery needs at least one token");
}

void
DishaRecovery::init(Network &net)
{
    net_ = &net;
    freeTokens_ = params_.tokens;
    waiting_.clear();
    draining_.clear();
}

void
DishaRecovery::onDeadlockDetected(MsgId msg)
{
    WORMNET_ASSERT(net_ != nullptr);
    Message &m = net_->messages().get(msg);
    WORMNET_ASSERT(m.status == MsgStatus::Active);
    WORMNET_ASSERT(m.numLinks() > 0);

    const PathLink head = m.headLink();
    InputVc &vc = net_->router(head.node).inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg);
    if (vc.routed)
        return; // advancing again; verdict is stale

    // Mark now (so the verdict is not re-raised every cycle) but the
    // worm keeps holding its channels until a lane token arrives.
    m.status = MsgStatus::Recovering;
    net_->setHeadRecovering(msg);
    waiting_.push_back(msg);
    grantTokens();
}

void
DishaRecovery::grantTokens()
{
    while (freeTokens_ > 0 && !waiting_.empty()) {
        const MsgId msg = waiting_.front();
        waiting_.pop_front();
        --freeTokens_;
        const Message &m = net_->messages().get(msg);
        draining_.push_back(
            Drain{msg, net_->now() + params_.tokenHandoff,
                  m.numLinks() > 0 ? m.headLink().node
                                   : m.src});
    }
}

void
DishaRecovery::tick()
{
    WORMNET_ASSERT(net_ != nullptr);
    const Cycle now = net_->now();

    while (!deliveries_.empty() && deliveries_.top().when <= now) {
        const MsgId msg = deliveries_.top().msg;
        deliveries_.pop();
        net_->markDelivered(msg, true);
        ++freeTokens_;
    }
    grantTokens();

    for (std::size_t i = 0; i < draining_.size();) {
        const Drain &d = draining_[i];
        if (d.eligibleAt > now) {
            ++i;
            continue;
        }
        FlitType type;
        if (!net_->drainHeaderFlit(d.msg, type)) {
            ++i;
            continue;
        }
        if (isTailFlit(type)) {
            Message &m = net_->messages().get(d.msg);
            WORMNET_ASSERT(m.numLinks() == 0);
            const Cycle dist =
                net_->topology().distance(d.headNode, m.dst);
            deliveries_.push(PendingDelivery{
                now + params_.laneHopCost * std::max<Cycle>(dist, 1),
                d.msg});
            draining_.erase(draining_.begin() +
                            static_cast<std::ptrdiff_t>(i));
            continue;
        }
        ++i;
    }
}

void
DishaRecovery::onMessageKilled(MsgId msg)
{
    // Fault-killed while queueing for a token: just forget it.
    const auto w = std::find(waiting_.begin(), waiting_.end(), msg);
    if (w != waiting_.end()) {
        waiting_.erase(w);
        return;
    }
    // Fault-killed mid-drain: return the token.
    const auto d = std::find_if(draining_.begin(), draining_.end(),
                                [msg](const Drain &dr) {
                                    return dr.msg == msg;
                                });
    if (d != draining_.end()) {
        draining_.erase(d);
        ++freeTokens_;
        grantTokens();
    }
}

std::size_t
DishaRecovery::pending() const
{
    return waiting_.size() + draining_.size() + deliveries_.size();
}

void
DishaRecovery::saveState(Serializer &s) const
{
    s.u32(freeTokens_);
    s.u32(static_cast<std::uint32_t>(waiting_.size()));
    for (const MsgId m : waiting_)
        s.u32(m);
    s.u32(static_cast<std::uint32_t>(draining_.size()));
    for (const Drain &dr : draining_) {
        s.u32(dr.msg);
        s.u64(dr.eligibleAt);
        s.u32(dr.headNode);
    }
    const auto &heap = pqContainer(deliveries_);
    s.u32(static_cast<std::uint32_t>(heap.size()));
    for (const PendingDelivery &pd : heap) {
        s.u64(pd.when);
        s.u32(pd.msg);
    }
}

void
DishaRecovery::loadState(Deserializer &d)
{
    freeTokens_ = d.u32();
    waiting_.assign(d.u32(), kInvalidMsg);
    for (MsgId &m : waiting_)
        m = d.u32();
    draining_.assign(d.u32(), Drain{});
    for (Drain &dr : draining_) {
        dr.msg = d.u32();
        dr.eligibleAt = d.u64();
        dr.headNode = d.u32();
    }
    auto &heap = pqContainer(deliveries_);
    heap.clear();
    heap.resize(d.u32());
    for (PendingDelivery &pd : heap) {
        pd.when = d.u64();
        pd.msg = d.u32();
    }
}

std::string
DishaRecovery::name() const
{
    std::ostringstream os;
    os << "disha(tokens=" << params_.tokens
       << ", hop=" << params_.laneHopCost
       << ", handoff=" << params_.tokenHandoff << ")";
    return os.str();
}

} // namespace wormnet
