/**
 * @file
 * Deadlock-recovery interface.
 *
 * The detector marks messages as presumed deadlocked; a recovery
 * manager owns what happens next. Two families are implemented:
 *
 *  - ProgressiveRecovery (software-based, after Martínez et al.
 *    ICPP'97): the marked message is absorbed into a node-local
 *    recovery buffer at the node holding its header (one flit per
 *    node per cycle), freeing its virtual channels as the worm drains
 *    forward, and is then delivered to its destination with a
 *    modelled software + remaining-distance latency penalty.
 *
 *  - RegressiveRecovery (abort-and-retry, after compressionless
 *    routing / Reeves et al.): the marked message is killed — all of
 *    its flits are removed at once — and re-injected at its source
 *    after a delay.
 */

#ifndef WORMNET_RECOVERY_RECOVERY_HH
#define WORMNET_RECOVERY_RECOVERY_HH

#include <memory>
#include <string>

#include "common/serialize.hh"
#include "common/types.hh"

namespace wormnet
{

class Network;

/** Abstract recovery manager driven by the Network. */
class RecoveryManager
{
  public:
    virtual ~RecoveryManager() = default;

    /** Bind to the network; called once before the first cycle. */
    virtual void init(Network &net) = 0;

    /** The detector marked @p msg as presumed deadlocked. */
    virtual void onDeadlockDetected(MsgId msg) = 0;

    /** Called once per cycle after the switch phase. */
    virtual void tick() = 0;

    /**
     * The Network is about to kill @p msg outside this manager's
     * control (a fault stranded the worm). Fired *before* the kill,
     * while the message still holds its channels, so managers can
     * drop any bookkeeping that refers to it (drain lists, token
     * queues, pending kills). Default: nothing to drop.
     */
    virtual void onMessageKilled(MsgId msg) { (void)msg; }

    /** Messages currently being recovered (draining or in flight on
     *  the recovery path). */
    virtual std::size_t pending() const = 0;

    /** Checkpoint support: serialize all dynamic state. The header's
     *  config string guarantees matching specs on save and load. */
    virtual void saveState(Serializer &s) const { (void)s; }
    virtual void loadState(Deserializer &d) { (void)d; }

    virtual std::string name() const = 0;
};

/**
 * Build a recovery manager from a spec string:
 *   "progressive[:overhead[:per_hop]]" |
 *   "regressive[:delay[:max_retries]]" |
 *   "disha[:tokens[:lane_hop_cost[:token_handoff]]]"
 */
std::unique_ptr<RecoveryManager>
makeRecoveryManager(const std::string &spec);

} // namespace wormnet

#endif // WORMNET_RECOVERY_RECOVERY_HH
