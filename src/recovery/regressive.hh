/**
 * @file
 * Regressive (abort-and-retry) deadlock recovery, in the style of
 * compressionless routing (Kim, Liu & Chien) and Reeves et al.: the
 * marked message is killed — every flit it holds is removed and all
 * of its virtual channels are released — and the message is
 * re-injected at its source after a back-off delay.
 */

#ifndef WORMNET_RECOVERY_REGRESSIVE_HH
#define WORMNET_RECOVERY_REGRESSIVE_HH

#include <vector>

#include "recovery/recovery.hh"

namespace wormnet
{

/**
 * Configuration for RegressiveRecovery.
 *
 * The actual delay before re-injection is
 *   retryDelay * (retries) + jitter(msg)
 * — linear back-off plus a deterministic per-message jitter. Without
 * the jitter, the members of a killed cycle are re-injected in
 * lockstep and can re-form the identical deadlock forever (the
 * classic synchronised-retry livelock of abort-and-retry schemes).
 */
struct RegressiveParams
{
    /** Base back-off unit between the kill and the re-injection. */
    Cycle retryDelay = 32;
};

/** Abort-and-retry recovery manager. */
class RegressiveRecovery : public RecoveryManager
{
  public:
    explicit RegressiveRecovery(const RegressiveParams &params);

    void init(Network &net) override;
    void onDeadlockDetected(MsgId msg) override;
    void tick() override;
    std::size_t pending() const override;
    std::string name() const override;

    const RegressiveParams &params() const { return params_; }

  private:
    RegressiveParams params_;
    Network *net_ = nullptr;
    /** Kills requested this cycle, applied at tick(). */
    std::vector<MsgId> killList_;
};

} // namespace wormnet

#endif // WORMNET_RECOVERY_REGRESSIVE_HH
