/**
 * @file
 * Regressive (abort-and-retry) deadlock recovery, in the style of
 * compressionless routing (Kim, Liu & Chien) and Reeves et al.: the
 * marked message is killed — every flit it holds is removed and all
 * of its virtual channels are released — and the message is
 * re-injected at its source after a back-off delay.
 */

#ifndef WORMNET_RECOVERY_REGRESSIVE_HH
#define WORMNET_RECOVERY_REGRESSIVE_HH

#include <vector>

#include "recovery/recovery.hh"

namespace wormnet
{

/**
 * Configuration for RegressiveRecovery.
 *
 * The actual delay before re-injection is
 *   retryDelay * min(retries + 1, backoffCap) + jitter(msg)
 * — linear back-off, capped, plus a deterministic per-message jitter.
 * Without the jitter, the members of a killed cycle are re-injected
 * in lockstep and can re-form the identical deadlock forever (the
 * classic synchronised-retry livelock of abort-and-retry schemes).
 * A message killed more than maxRetries times is abandoned instead of
 * retried — under a permanent fault or a persistent adversarial
 * pattern, unbounded retries just re-offer the same doomed load.
 */
struct RegressiveParams
{
    /** Base back-off unit between the kill and the re-injection. */
    Cycle retryDelay = 32;
    /** Kills after which the message is abandoned, not re-queued. */
    unsigned maxRetries = 32;
    /** Back-off stops growing past retryDelay * backoffCap. */
    unsigned backoffCap = 8;
};

/** Abort-and-retry recovery manager. */
class RegressiveRecovery : public RecoveryManager
{
  public:
    explicit RegressiveRecovery(const RegressiveParams &params);

    void init(Network &net) override;
    void onDeadlockDetected(MsgId msg) override;
    void tick() override;
    void onMessageKilled(MsgId msg) override;
    std::size_t pending() const override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

    const RegressiveParams &params() const { return params_; }

  private:
    RegressiveParams params_;
    Network *net_ = nullptr;
    /** Kills requested this cycle, applied at tick(). */
    std::vector<MsgId> killList_;
};

} // namespace wormnet

#endif // WORMNET_RECOVERY_REGRESSIVE_HH
