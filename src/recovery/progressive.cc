#include "recovery/progressive.hh"

#include <algorithm>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

ProgressiveRecovery::ProgressiveRecovery(
    const ProgressiveParams &params)
    : params_(params)
{
}

void
ProgressiveRecovery::init(Network &net)
{
    net_ = &net;
    draining_.assign(net.numNodes(), {});
    drainRr_.assign(net.numNodes(), 0);
    numDraining_ = 0;
}

void
ProgressiveRecovery::onDeadlockDetected(MsgId msg)
{
    WORMNET_ASSERT(net_ != nullptr);
    Message &m = net_->messages().get(msg);
    WORMNET_ASSERT(m.status == MsgStatus::Active);
    WORMNET_ASSERT(m.numLinks() > 0);

    const PathLink head = m.headLink();
    InputVc &vc = net_->router(head.node).inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg);
    if (vc.routed) {
        // Source-side mechanisms can raise verdicts on worms whose
        // header is actually advancing (injection stalled for
        // bandwidth reasons). Absorbing an advancing worm is not
        // meaningful for progressive recovery: ignore the verdict;
        // it will re-fire if the worm truly blocks.
        return;
    }

    m.status = MsgStatus::Recovering;
    net_->setHeadRecovering(msg);
    draining_[head.node].push_back(msg);
    ++numDraining_;
}

void
ProgressiveRecovery::tick()
{
    WORMNET_ASSERT(net_ != nullptr);
    const Cycle now = net_->now();

    // Complete deliveries that reached their destination.
    while (!deliveries_.empty() && deliveries_.top().when <= now) {
        const MsgId msg = deliveries_.top().msg;
        deliveries_.pop();
        net_->markDelivered(msg, true);
    }

    if (numDraining_ == 0)
        return;

    // One recovery-buffer flit per node per cycle, round-robin over
    // the node's draining messages.
    for (NodeId node = 0; node < net_->numNodes(); ++node) {
        auto &list = draining_[node];
        if (list.empty())
            continue;
        const std::size_t n = list.size();
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t idx = (drainRr_[node] + k) % n;
            const MsgId msg = list[idx];
            FlitType type;
            if (!net_->drainHeaderFlit(msg, type))
                continue;
            drainRr_[node] = (idx + 1) % n;
            if (isTailFlit(type)) {
                // Worm fully absorbed: deliver via recovery path.
                Message &m = net_->messages().get(msg);
                WORMNET_ASSERT(m.numLinks() == 0);
                const Cycle dist = net_->topology().distance(
                    node, m.dst);
                deliveries_.push(PendingDelivery{
                    now + params_.softwareOverhead +
                        params_.perHopCost * dist,
                    msg});
                list.erase(list.begin() +
                           static_cast<std::ptrdiff_t>(idx));
                --numDraining_;
                if (drainRr_[node] >= list.size())
                    drainRr_[node] = 0;
            }
            break; // one flit per node per cycle
        }
    }
}

void
ProgressiveRecovery::onMessageKilled(MsgId msg)
{
    // A fault strands a worm only while it still holds channels, i.e.
    // while it may be on some node's drain list. Fully absorbed
    // messages (in deliveries_) hold nothing and are never
    // fault-killed.
    for (auto &list : draining_) {
        const auto it = std::find(list.begin(), list.end(), msg);
        if (it == list.end())
            continue;
        list.erase(it);
        --numDraining_;
        return;
    }
}

std::size_t
ProgressiveRecovery::pending() const
{
    return numDraining_ + deliveries_.size();
}

void
ProgressiveRecovery::saveState(Serializer &s) const
{
    s.u64(static_cast<std::uint64_t>(draining_.size()));
    for (const auto &list : draining_) {
        s.u32(static_cast<std::uint32_t>(list.size()));
        for (const MsgId m : list)
            s.u32(m);
    }
    for (const std::size_t rr : drainRr_)
        s.u64(rr);
    s.u64(numDraining_);
    const auto &heap = pqContainer(deliveries_);
    s.u32(static_cast<std::uint32_t>(heap.size()));
    for (const PendingDelivery &pd : heap) {
        s.u64(pd.when);
        s.u32(pd.msg);
    }
}

void
ProgressiveRecovery::loadState(Deserializer &d)
{
    draining_.assign(d.u64(), {});
    for (auto &list : draining_) {
        list.assign(d.u32(), kInvalidMsg);
        for (MsgId &m : list)
            m = d.u32();
    }
    drainRr_.assign(draining_.size(), 0);
    for (std::size_t &rr : drainRr_)
        rr = d.u64();
    numDraining_ = d.u64();
    auto &heap = pqContainer(deliveries_);
    heap.clear();
    heap.resize(d.u32());
    for (PendingDelivery &pd : heap) {
        pd.when = d.u64();
        pd.msg = d.u32();
    }
}

std::string
ProgressiveRecovery::name() const
{
    std::ostringstream os;
    os << "progressive(sw=" << params_.softwareOverhead
       << ", hop=" << params_.perHopCost << ")";
    return os.str();
}

} // namespace wormnet
