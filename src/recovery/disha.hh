/**
 * @file
 * Disha-style progressive recovery (after Anjan K.V. & Pinkston).
 *
 * Disha recovers deadlocked packets through a dedicated one-flit
 * "deadlock buffer" per router forming a hardware recovery lane.
 * In Disha Sequential, a circulating token guarantees that at most
 * one packet network-wide uses the lane at a time; Disha Concurrent
 * relaxes this to structured sets. This model captures the essential
 * behaviour at the granularity the detection study needs:
 *
 *  - a configurable number of lane tokens (1 = Sequential,
 *    >1 approximates Concurrent);
 *  - a marked message must hold a token before its drain starts;
 *    token waiters queue FIFO, and while waiting the message stays
 *    blocked in place (its channels remain held — exactly why
 *    minimal detection counts matter for Disha);
 *  - once granted, the worm drains through the recovery lane at one
 *    flit per cycle and completes after a per-hop lane latency, then
 *    releases its token.
 */

#ifndef WORMNET_RECOVERY_DISHA_HH
#define WORMNET_RECOVERY_DISHA_HH

#include <deque>
#include <queue>
#include <vector>

#include "recovery/recovery.hh"

namespace wormnet
{

/** Configuration for DishaRecovery. */
struct DishaParams
{
    /** Simultaneous recovery-lane users (1 = Disha Sequential). */
    unsigned tokens = 1;
    /** Cycles per hop on the deadlock-buffer lane. */
    Cycle laneHopCost = 2;
    /** Token hand-off overhead when a waiter acquires it. */
    Cycle tokenHandoff = 8;
};

/** Token-arbitrated recovery through a dedicated lane. */
class DishaRecovery : public RecoveryManager
{
  public:
    explicit DishaRecovery(const DishaParams &params);

    void init(Network &net) override;
    void onDeadlockDetected(MsgId msg) override;
    void tick() override;
    void onMessageKilled(MsgId msg) override;
    std::size_t pending() const override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

    unsigned freeTokens() const { return freeTokens_; }
    std::size_t tokenQueueLength() const { return waiting_.size(); }

  private:
    /** Try to grant tokens to the head of the waiting queue. */
    void grantTokens();

    DishaParams params_;
    Network *net_ = nullptr;

    unsigned freeTokens_ = 0;
    /** Marked messages waiting for a token (FIFO). */
    std::deque<MsgId> waiting_;
    /** A message draining through the lane. */
    struct Drain
    {
        MsgId msg;
        Cycle eligibleAt; ///< token hand-off complete
        NodeId headNode;  ///< where the worm is being absorbed
    };
    std::vector<Drain> draining_;

    struct PendingDelivery
    {
        Cycle when;
        MsgId msg;
        bool operator>(const PendingDelivery &o) const
        {
            return when > o.when;
        }
    };
    std::priority_queue<PendingDelivery, std::vector<PendingDelivery>,
                        std::greater<PendingDelivery>>
        deliveries_;
};

} // namespace wormnet

#endif // WORMNET_RECOVERY_DISHA_HH
