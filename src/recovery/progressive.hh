/**
 * @file
 * Progressive (software-based) deadlock recovery, after Martínez,
 * López, Duato & Pinkston, ICPP 1997.
 *
 * When a message is marked deadlocked, the node holding its header
 * absorbs the worm into a local recovery buffer — one flit per node
 * per cycle, like an extra consumption port — freeing the virtual
 * channels it holds as the worm drains forward. Once the tail has
 * been absorbed the message is re-sent to its destination through the
 * (modelled) dedicated recovery path and counted as delivered after
 *
 *   softwareOverhead + perHopCost * distance(header node, dst)
 *
 * cycles. The recovery path itself is not a simulated set of channels
 * (the paper's evaluation only requires that recovery frees the
 * blocked resources and eventually delivers the message); the latency
 * model keeps end-to-end latency statistics meaningful.
 */

#ifndef WORMNET_RECOVERY_PROGRESSIVE_HH
#define WORMNET_RECOVERY_PROGRESSIVE_HH

#include <queue>
#include <vector>

#include "recovery/recovery.hh"

namespace wormnet
{

/** Configuration for ProgressiveRecovery. */
struct ProgressiveParams
{
    /** Fixed software handling cost per recovered message, cycles. */
    Cycle softwareOverhead = 32;
    /** Cycles per remaining hop on the recovery path. */
    Cycle perHopCost = 4;
};

/** Software-based progressive recovery manager. */
class ProgressiveRecovery : public RecoveryManager
{
  public:
    explicit ProgressiveRecovery(const ProgressiveParams &params);

    void init(Network &net) override;
    void onDeadlockDetected(MsgId msg) override;
    void tick() override;
    void onMessageKilled(MsgId msg) override;
    std::size_t pending() const override;
    void saveState(Serializer &s) const override;
    void loadState(Deserializer &d) override;
    std::string name() const override;

    const ProgressiveParams &params() const { return params_; }

  private:
    ProgressiveParams params_;
    Network *net_ = nullptr;

    /** Messages draining at each node (the header node). */
    std::vector<std::vector<MsgId>> draining_;
    /** Per-node round-robin position over the draining list. */
    std::vector<std::size_t> drainRr_;
    std::size_t numDraining_ = 0;

    /** Fully absorbed messages awaiting delivery completion. */
    struct PendingDelivery
    {
        Cycle when;
        MsgId msg;
        bool operator>(const PendingDelivery &o) const
        {
            return when > o.when;
        }
    };
    std::priority_queue<PendingDelivery, std::vector<PendingDelivery>,
                        std::greater<PendingDelivery>>
        deliveries_;
};

} // namespace wormnet

#endif // WORMNET_RECOVERY_PROGRESSIVE_HH
