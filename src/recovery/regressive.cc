#include "recovery/regressive.hh"

#include <algorithm>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"
#include "sim/network.hh"

namespace wormnet
{

RegressiveRecovery::RegressiveRecovery(const RegressiveParams &params)
    : params_(params)
{
}

void
RegressiveRecovery::init(Network &net)
{
    net_ = &net;
    killList_.clear();
}

void
RegressiveRecovery::onDeadlockDetected(MsgId msg)
{
    WORMNET_ASSERT(net_ != nullptr);
    Message &m = net_->messages().get(msg);
    WORMNET_ASSERT(m.status == MsgStatus::Active);
    WORMNET_ASSERT(m.numLinks() > 0);

    // Mark now so further verdicts this cycle are ignored; remove the
    // flits at tick() (after the switch phase) so the cycle's
    // transfers act on consistent state.
    const PathLink head = m.headLink();
    InputVc &vc = net_->router(head.node).inputVc(head.port, head.vc);
    WORMNET_ASSERT(vc.msg == msg);
    m.status = MsgStatus::Recovering;
    net_->setHeadRecovering(msg);
    killList_.push_back(msg);
}

void
RegressiveRecovery::tick()
{
    WORMNET_ASSERT(net_ != nullptr);
    for (const MsgId msg : killList_) {
        const Message &m = net_->messages().get(msg);
        if (m.retries >= params_.maxRetries) {
            net_->killAndAbandon(msg);
            continue;
        }
        // Capped linear back-off with deterministic per-message
        // jitter so the members of a killed cycle do not retry in
        // lockstep.
        const Cycle steps = std::min<Cycle>(m.retries + 1,
                                            params_.backoffCap);
        const Cycle backoff = params_.retryDelay * steps;
        const Cycle jitter =
            (static_cast<Cycle>(msg) * 2654435761u) %
            (params_.retryDelay + 1);
        net_->killAndRequeue(msg, backoff + jitter);
    }
    killList_.clear();
}

void
RegressiveRecovery::onMessageKilled(MsgId msg)
{
    // The fault path beat us to the kill; drop our pending one so the
    // message is not killed twice.
    killList_.erase(
        std::remove(killList_.begin(), killList_.end(), msg),
        killList_.end());
}

std::size_t
RegressiveRecovery::pending() const
{
    return killList_.size();
}

void
RegressiveRecovery::saveState(Serializer &s) const
{
    // killList_ is drained by tick() every cycle, so at a step
    // boundary it is normally empty; serialize it anyway for safety.
    s.u32(static_cast<std::uint32_t>(killList_.size()));
    for (const MsgId m : killList_)
        s.u32(m);
}

void
RegressiveRecovery::loadState(Deserializer &d)
{
    killList_.assign(d.u32(), kInvalidMsg);
    for (MsgId &m : killList_)
        m = d.u32();
}

std::string
RegressiveRecovery::name() const
{
    std::ostringstream os;
    os << "regressive(retry=" << params_.retryDelay
       << ", max=" << params_.maxRetries << ")";
    return os.str();
}

} // namespace wormnet
