#include "recovery/recovery.hh"

#include <sstream>
#include <vector>

#include "common/log.hh"
#include "recovery/disha.hh"
#include "recovery/progressive.hh"
#include "recovery/regressive.hh"

namespace wormnet
{

namespace
{

std::vector<std::string>
splitColon(const std::string &spec)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ':'))
        parts.push_back(item);
    return parts;
}

Cycle
parseCycle(const std::string &s, const char *what)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0')
        fatal("bad ", what, " value '", s, "'");
    return v;
}

} // namespace

std::unique_ptr<RecoveryManager>
makeRecoveryManager(const std::string &spec)
{
    const auto parts = splitColon(spec);
    if (parts.empty())
        fatal("empty recovery spec");
    const std::string &kind = parts[0];

    if (kind == "progressive") {
        ProgressiveParams p;
        if (parts.size() > 1)
            p.softwareOverhead =
                parseCycle(parts[1], "progressive overhead");
        if (parts.size() > 2)
            p.perHopCost = parseCycle(parts[2], "progressive per-hop");
        return std::make_unique<ProgressiveRecovery>(p);
    }

    if (kind == "regressive") {
        RegressiveParams p;
        if (parts.size() > 1)
            p.retryDelay = parseCycle(parts[1], "regressive delay");
        if (parts.size() > 2)
            p.maxRetries = static_cast<unsigned>(
                parseCycle(parts[2], "regressive max retries"));
        return std::make_unique<RegressiveRecovery>(p);
    }

    if (kind == "disha") {
        DishaParams p;
        if (parts.size() > 1)
            p.tokens = static_cast<unsigned>(
                parseCycle(parts[1], "disha tokens"));
        if (parts.size() > 2)
            p.laneHopCost = parseCycle(parts[2], "disha lane cost");
        if (parts.size() > 3)
            p.tokenHandoff =
                parseCycle(parts[3], "disha token hand-off");
        return std::make_unique<DishaRecovery>(p);
    }

    fatal("unknown recovery manager '", spec, "'");
}

} // namespace wormnet
