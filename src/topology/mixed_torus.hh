/**
 * @file
 * Mixed-radix torus: a bidirectional torus whose dimensions may have
 * different radices (e.g. 8x4x2). Generalises KAryNCube for machines
 * whose packaging dictates asymmetric dimensions; not used by the
 * paper's evaluation but a natural library extension — all routing
 * functions and detection mechanisms work unchanged.
 */

#ifndef WORMNET_TOPOLOGY_MIXED_TORUS_HH
#define WORMNET_TOPOLOGY_MIXED_TORUS_HH

#include <vector>

#include "topology/topology.hh"

namespace wormnet
{

/** Torus with per-dimension radices (each >= 2). */
class MixedRadixTorus : public Topology
{
  public:
    /** @param radices nodes per dimension, one entry per dimension
     *         (1..kMaxDims entries, each >= 2). */
    explicit MixedRadixTorus(std::vector<unsigned> radices);

    NodeId numNodes() const override { return numNodes_; }
    unsigned numDims() const override
    {
        return static_cast<unsigned>(radices_.size());
    }
    unsigned radix() const override { return maxRadix_; }
    unsigned radixOf(unsigned dim) const override;

    unsigned coordinate(NodeId node, unsigned dim) const override;
    NodeId neighbor(NodeId node, unsigned dim,
                    bool positive) const override;
    void minimalSteps(NodeId src, NodeId dst,
                      MinimalSteps &steps) const override;
    std::string name() const override;
    bool wraparound() const override { return true; }

  private:
    std::vector<unsigned> radices_;
    unsigned maxRadix_;
    NodeId numNodes_;
    std::vector<NodeId> stride_;
};

} // namespace wormnet

#endif // WORMNET_TOPOLOGY_MIXED_TORUS_HH
