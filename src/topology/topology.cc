#include "topology/topology.hh"

namespace wormnet
{

unsigned
Topology::distance(NodeId src, NodeId dst) const
{
    MinimalSteps steps;
    minimalSteps(src, dst, steps);
    unsigned total = 0;
    for (unsigned d = 0; d < numDims(); ++d)
        total += steps[d].hops;
    return total;
}

} // namespace wormnet
