#include "topology/topology.hh"

#include <sstream>

#include "common/log.hh"
#include "topology/mesh.hh"
#include "topology/mixed_torus.hh"
#include "topology/torus.hh"

namespace wormnet
{

unsigned
Topology::distance(NodeId src, NodeId dst) const
{
    MinimalSteps steps;
    minimalSteps(src, dst, steps);
    unsigned total = 0;
    for (unsigned d = 0; d < numDims(); ++d)
        total += steps[d].hops;
    return total;
}

std::unique_ptr<Topology>
makeTopology(const std::string &name, unsigned radix, unsigned dims,
             const std::string &radices)
{
    if (!radices.empty()) {
        if (name != "torus")
            fatal("mixed radices are only supported on tori");
        std::vector<unsigned> parsed;
        std::stringstream ss(radices);
        std::string item;
        while (std::getline(ss, item, 'x')) {
            try {
                parsed.push_back(
                    static_cast<unsigned>(std::stoul(item)));
            } catch (const std::exception &) {
                fatal("malformed radices spec '", radices,
                      "': expected e.g. \"8x4x2\"");
            }
        }
        return std::make_unique<MixedRadixTorus>(std::move(parsed));
    }
    if (name == "torus")
        return std::make_unique<KAryNCube>(radix, dims);
    if (name == "mesh")
        return std::make_unique<KAryNMesh>(radix, dims);
    fatal("unknown topology '", name, "'");
}

} // namespace wormnet
