#include "topology/mixed_torus.hh"

#include <algorithm>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

MixedRadixTorus::MixedRadixTorus(std::vector<unsigned> radices)
    : radices_(std::move(radices))
{
    if (radices_.empty() || radices_.size() > kMaxDims)
        fatal("MixedRadixTorus: need 1..", kMaxDims,
              " dimensions, got ", radices_.size());
    maxRadix_ = 0;
    NodeId n = 1;
    stride_.reserve(radices_.size() + 1);
    stride_.push_back(1);
    for (const unsigned k : radices_) {
        if (k < 2)
            fatal("MixedRadixTorus: every radix must be >= 2");
        const NodeId prev = n;
        n *= k;
        if (n / k != prev)
            fatal("MixedRadixTorus: node count overflows NodeId");
        stride_.push_back(n);
        maxRadix_ = std::max(maxRadix_, k);
    }
    numNodes_ = n;
}

unsigned
MixedRadixTorus::radixOf(unsigned dim) const
{
    WORMNET_ASSERT(dim < radices_.size());
    return radices_[dim];
}

unsigned
MixedRadixTorus::coordinate(NodeId node, unsigned dim) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < radices_.size());
    return (node / stride_[dim]) % radices_[dim];
}

NodeId
MixedRadixTorus::neighbor(NodeId node, unsigned dim,
                          bool positive) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < radices_.size());
    const unsigned k = radices_[dim];
    const unsigned c = coordinate(node, dim);
    const unsigned nc = positive ? (c + 1) % k : (c + k - 1) % k;
    return node + (nc - c) * stride_[dim];
}

void
MixedRadixTorus::minimalSteps(NodeId src, NodeId dst,
                              MinimalSteps &steps) const
{
    WORMNET_ASSERT(src < numNodes_ && dst < numNodes_);
    for (unsigned d = 0; d < radices_.size(); ++d) {
        const unsigned k = radices_[d];
        const unsigned sc = coordinate(src, d);
        const unsigned dc = coordinate(dst, d);
        DimStep &step = steps[d];
        if (sc == dc) {
            step.dirMask = 0;
            step.hops = 0;
            continue;
        }
        const unsigned fwd = (dc + k - sc) % k;
        const unsigned bwd = k - fwd;
        if (fwd < bwd) {
            step.dirMask = 0x1;
            step.hops = static_cast<std::uint16_t>(fwd);
        } else if (bwd < fwd) {
            step.dirMask = 0x2;
            step.hops = static_cast<std::uint16_t>(bwd);
        } else {
            step.dirMask = 0x3;
            step.hops = static_cast<std::uint16_t>(fwd);
        }
    }
    for (unsigned d = static_cast<unsigned>(radices_.size());
         d < kMaxDims; ++d)
        steps[d] = DimStep{};
}

std::string
MixedRadixTorus::name() const
{
    std::ostringstream os;
    for (std::size_t d = 0; d < radices_.size(); ++d) {
        if (d)
            os << 'x';
        os << radices_[d];
    }
    os << " torus";
    return os.str();
}

} // namespace wormnet
