/**
 * @file
 * Bidirectional k-ary n-cube (torus) topology — the network evaluated
 * in the paper (8-ary 3-cube, 512 nodes).
 */

#ifndef WORMNET_TOPOLOGY_TORUS_HH
#define WORMNET_TOPOLOGY_TORUS_HH

#include "topology/topology.hh"

namespace wormnet
{

/**
 * k-ary n-cube with wraparound links in every dimension. Radix >= 2
 * and 1 <= dims <= kMaxDims. With radix 2 the "+" and "-" neighbours
 * coincide, yielding two parallel links, which the wiring convention
 * handles naturally.
 */
class KAryNCube : public Topology
{
  public:
    /**
     * @param radix nodes per dimension (>= 2)
     * @param dims number of dimensions (1..kMaxDims)
     */
    KAryNCube(unsigned radix, unsigned dims);

    NodeId numNodes() const override { return numNodes_; }
    unsigned numDims() const override { return dims_; }
    unsigned radix() const override { return radix_; }

    unsigned coordinate(NodeId node, unsigned dim) const override;
    NodeId neighbor(NodeId node, unsigned dim,
                    bool positive) const override;
    void minimalSteps(NodeId src, NodeId dst,
                      MinimalSteps &steps) const override;
    std::string name() const override;
    bool wraparound() const override { return true; }

  private:
    unsigned radix_;
    unsigned dims_;
    NodeId numNodes_;
    /** stride_[d] = radix^d, for coordinate extraction. */
    std::array<NodeId, kMaxDims + 1> stride_;
};

} // namespace wormnet

#endif // WORMNET_TOPOLOGY_TORUS_HH
