#include "topology/torus.hh"

#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

KAryNCube::KAryNCube(unsigned radix, unsigned dims)
    : radix_(radix), dims_(dims)
{
    if (radix < 2)
        fatal("KAryNCube: radix must be >= 2, got ", radix);
    if (dims < 1 || dims > kMaxDims)
        fatal("KAryNCube: dims must be in [1, ", kMaxDims, "], got ",
              dims);

    NodeId n = 1;
    stride_[0] = 1;
    for (unsigned d = 0; d < dims; ++d) {
        const NodeId prev = n;
        n *= radix;
        if (n / radix != prev)
            fatal("KAryNCube: ", radix, "^", dims, " overflows NodeId");
        stride_[d + 1] = n;
    }
    numNodes_ = n;
}

unsigned
KAryNCube::coordinate(NodeId node, unsigned dim) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < dims_);
    return (node / stride_[dim]) % radix_;
}

NodeId
KAryNCube::neighbor(NodeId node, unsigned dim, bool positive) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < dims_);
    const unsigned c = coordinate(node, dim);
    const unsigned nc =
        positive ? (c + 1) % radix_ : (c + radix_ - 1) % radix_;
    return node + (nc - c) * stride_[dim];
}

void
KAryNCube::minimalSteps(NodeId src, NodeId dst,
                        MinimalSteps &steps) const
{
    WORMNET_ASSERT(src < numNodes_ && dst < numNodes_);
    for (unsigned d = 0; d < dims_; ++d) {
        const unsigned sc = coordinate(src, d);
        const unsigned dc = coordinate(dst, d);
        DimStep &step = steps[d];
        if (sc == dc) {
            step.dirMask = 0;
            step.hops = 0;
            continue;
        }
        const unsigned fwd = (dc + radix_ - sc) % radix_;
        const unsigned bwd = radix_ - fwd;
        if (fwd < bwd) {
            step.dirMask = 0x1;
            step.hops = static_cast<std::uint16_t>(fwd);
        } else if (bwd < fwd) {
            step.dirMask = 0x2;
            step.hops = static_cast<std::uint16_t>(bwd);
        } else {
            // Equidistant both ways (even radix): both minimal.
            step.dirMask = 0x3;
            step.hops = static_cast<std::uint16_t>(fwd);
        }
    }
    for (unsigned d = dims_; d < kMaxDims; ++d)
        steps[d] = DimStep{};
}

std::string
KAryNCube::name() const
{
    std::ostringstream os;
    os << radix_ << "-ary " << dims_ << "-cube (torus)";
    return os.str();
}

} // namespace wormnet
