#include "topology/mesh.hh"

#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

KAryNMesh::KAryNMesh(unsigned radix, unsigned dims)
    : radix_(radix), dims_(dims)
{
    if (radix < 2)
        fatal("KAryNMesh: radix must be >= 2, got ", radix);
    if (dims < 1 || dims > kMaxDims)
        fatal("KAryNMesh: dims must be in [1, ", kMaxDims, "], got ",
              dims);

    NodeId n = 1;
    stride_[0] = 1;
    for (unsigned d = 0; d < dims; ++d) {
        const NodeId prev = n;
        n *= radix;
        if (n / radix != prev)
            fatal("KAryNMesh: ", radix, "^", dims, " overflows NodeId");
        stride_[d + 1] = n;
    }
    numNodes_ = n;
}

unsigned
KAryNMesh::coordinate(NodeId node, unsigned dim) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < dims_);
    return (node / stride_[dim]) % radix_;
}

NodeId
KAryNMesh::neighbor(NodeId node, unsigned dim, bool positive) const
{
    WORMNET_ASSERT(node < numNodes_);
    WORMNET_ASSERT(dim < dims_);
    const unsigned c = coordinate(node, dim);
    if (positive) {
        if (c + 1 >= radix_)
            return kInvalidNode;
        return node + stride_[dim];
    }
    if (c == 0)
        return kInvalidNode;
    return node - stride_[dim];
}

void
KAryNMesh::minimalSteps(NodeId src, NodeId dst,
                        MinimalSteps &steps) const
{
    WORMNET_ASSERT(src < numNodes_ && dst < numNodes_);
    for (unsigned d = 0; d < dims_; ++d) {
        const unsigned sc = coordinate(src, d);
        const unsigned dc = coordinate(dst, d);
        DimStep &step = steps[d];
        if (sc == dc) {
            step.dirMask = 0;
            step.hops = 0;
        } else if (dc > sc) {
            step.dirMask = 0x1;
            step.hops = static_cast<std::uint16_t>(dc - sc);
        } else {
            step.dirMask = 0x2;
            step.hops = static_cast<std::uint16_t>(sc - dc);
        }
    }
    for (unsigned d = dims_; d < kMaxDims; ++d)
        steps[d] = DimStep{};
}

std::string
KAryNMesh::name() const
{
    std::ostringstream os;
    os << radix_ << "-ary " << dims_ << "-mesh";
    return os.str();
}

} // namespace wormnet
