/**
 * @file
 * k-ary n-mesh topology: like the torus but without wraparound links.
 * Not used by the paper's evaluation, but included so the library can
 * express deadlock-avoidance baselines (e.g. dimension-order routing
 * on a mesh needs only one virtual channel to be deadlock-free).
 */

#ifndef WORMNET_TOPOLOGY_MESH_HH
#define WORMNET_TOPOLOGY_MESH_HH

#include "topology/topology.hh"

namespace wormnet
{

/** k-ary n-dimensional mesh. Edge routers have dangling ports. */
class KAryNMesh : public Topology
{
  public:
    /**
     * @param radix nodes per dimension (>= 2)
     * @param dims number of dimensions (1..kMaxDims)
     */
    KAryNMesh(unsigned radix, unsigned dims);

    NodeId numNodes() const override { return numNodes_; }
    unsigned numDims() const override { return dims_; }
    unsigned radix() const override { return radix_; }

    unsigned coordinate(NodeId node, unsigned dim) const override;
    NodeId neighbor(NodeId node, unsigned dim,
                    bool positive) const override;
    void minimalSteps(NodeId src, NodeId dst,
                      MinimalSteps &steps) const override;
    std::string name() const override;
    bool wraparound() const override { return false; }

  private:
    unsigned radix_;
    unsigned dims_;
    NodeId numNodes_;
    std::array<NodeId, kMaxDims + 1> stride_;
};

} // namespace wormnet

#endif // WORMNET_TOPOLOGY_MESH_HH
