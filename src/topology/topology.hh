/**
 * @file
 * Topology abstraction for direct networks.
 *
 * A topology maps dense node ids onto a coordinate space and defines
 * the wiring between routers. Network ports follow a fixed convention
 * shared with the router and routing libraries:
 *
 *   network port index = 2 * dim + (0 for the "+" direction,
 *                                   1 for the "-" direction)
 *
 * so a router has 2*numDims() network ports, in both its input and its
 * output port spaces. The output port (d,+) of node X is wired to the
 * input port (d,-) of X's positive neighbour in dimension d, i.e. input
 * ports are named after the direction the link *came from* the remote
 * side. Injection/ejection ports are appended after the network ports
 * by the Network itself and are not a topology concern.
 */

#ifndef WORMNET_TOPOLOGY_TOPOLOGY_HH
#define WORMNET_TOPOLOGY_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace wormnet
{

/** Upper bound on dimensions; keeps per-message step arrays inline. */
inline constexpr unsigned kMaxDims = 8;

/**
 * Minimal-path step options in one dimension: which directions are
 * productive (minimal) and how many hops remain in this dimension.
 */
struct DimStep
{
    /** Bit 0: "+" direction productive; bit 1: "-" productive. */
    std::uint8_t dirMask = 0;
    /** Remaining hops in this dimension along a minimal path. */
    std::uint16_t hops = 0;
};

/** Per-dimension minimal-direction summary for a (src, dst) pair. */
using MinimalSteps = std::array<DimStep, kMaxDims>;

/** Abstract direct-network topology. */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Total number of nodes (== routers). */
    virtual NodeId numNodes() const = 0;

    /** Number of dimensions. */
    virtual unsigned numDims() const = 0;

    /** Nodes per dimension (largest radix for mixed-radix shapes;
     *  uniform topologies return their single radix). */
    virtual unsigned radix() const = 0;

    /** Nodes along dimension @p dim (defaults to the uniform radix;
     *  mixed-radix topologies override). */
    virtual unsigned
    radixOf(unsigned dim) const
    {
        (void)dim;
        return radix();
    }

    /** Network ports per router (2 per dimension). */
    unsigned numNetPorts() const { return 2 * numDims(); }

    /** Coordinate of @p node in dimension @p dim. */
    virtual unsigned coordinate(NodeId node, unsigned dim) const = 0;

    /**
     * Neighbour of @p node in dimension @p dim, direction @p positive.
     * @return kInvalidNode when the link does not exist (mesh edges).
     */
    virtual NodeId neighbor(NodeId node, unsigned dim,
                            bool positive) const = 0;

    /**
     * Fill @p steps with the minimal-direction options from @p src
     * toward @p dst (entries past numDims() are left zeroed).
     */
    virtual void minimalSteps(NodeId src, NodeId dst,
                              MinimalSteps &steps) const = 0;

    /** Minimal hop distance between two nodes. */
    unsigned distance(NodeId src, NodeId dst) const;

    /** True when the topology has wraparound links (torus). Routing
     *  functions use this to decide whether dateline virtual-channel
     *  classes are needed for deadlock-free escape paths. */
    virtual bool wraparound() const = 0;

    /** Human-readable description, e.g. "8-ary 3-cube (torus)". */
    virtual std::string name() const = 0;

    /** Output port index for (dim, direction). */
    static PortId
    outPort(unsigned dim, bool positive)
    {
        return static_cast<PortId>(2 * dim + (positive ? 0 : 1));
    }

    /** Dimension of a network port index. */
    static unsigned dimOfPort(PortId port) { return port / 2; }

    /** True iff the network port points in the "+" direction. */
    static bool isPositivePort(PortId port) { return (port % 2) == 0; }

    /**
     * Input port on the receiving router for a link leaving through
     * output port @p out_port: the opposite direction in the same
     * dimension.
     */
    static PortId
    peerInPort(PortId out_port)
    {
        return static_cast<PortId>(out_port ^ 1u);
    }
};

/**
 * Build a topology from a declarative description:
 *   name     "torus" | "mesh"
 *   radix    nodes per dimension
 *   dims     number of dimensions
 *   radices  mixed-radix override such as "8x4x2" (torus only);
 *            when non-empty it supersedes radix/dims.
 * fatal() on unknown names, malformed radices or mixed-radix meshes.
 * Shared by the Simulation facade and the wormnet-analyze CLI so
 * both accept the same configuration surface.
 */
std::unique_ptr<Topology>
makeTopology(const std::string &name, unsigned radix, unsigned dims,
             const std::string &radices = "");

} // namespace wormnet

#endif // WORMNET_TOPOLOGY_TOPOLOGY_HH
