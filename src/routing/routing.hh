/**
 * @file
 * Routing functions.
 *
 * A routing function maps (current node, destination, arrival VC) to
 * the set of output virtual channels a head flit may request. The
 * Network then grants one of the free candidates (selection policy)
 * or records a failed attempt (which drives deadlock detection).
 *
 * Implemented algorithms:
 *  - TrueFullyAdaptiveRouting: any minimal direction, any virtual
 *    channel — the unrestricted algorithm the paper pairs with
 *    deadlock recovery.
 *  - DimensionOrderRouting: deterministic baseline; on tori the escape
 *    deadlock-freedom is provided by dateline virtual-channel classes
 *    (Dally/Seitz), on meshes all VCs are usable uniformly.
 *  - DuatoProtocolRouting: deadlock-avoidance baseline — adaptive
 *    minimal routing on the upper VCs with a dimension-order escape
 *    layer on the lower VC class(es) (Duato's methodology).
 */

#ifndef WORMNET_ROUTING_ROUTING_HH
#define WORMNET_ROUTING_ROUTING_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "router/router.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** One candidate: an output port plus the VCs allowed on it. */
struct RouteCandidate
{
    PortId port = kInvalidPort;
    /** Bit v set: virtual channel v of @p port may be requested. */
    std::uint32_t vcMask = 0;
};

/** Abstract routing function. */
class RoutingFunction
{
  public:
    /**
     * @param topo network topology (kept by reference)
     * @param params router shape (ports, VCs)
     */
    RoutingFunction(const Topology &topo, const RouterParams &params);
    virtual ~RoutingFunction() = default;

    /**
     * Compute the candidate output VCs for a head flit of a message
     * to @p dst whose header currently sits at @p current on input
     * (@p in_port, @p in_vc). When current == dst the candidates are
     * the ejection ports (all VCs), for every algorithm.
     *
     * @param out cleared and filled with the candidates.
     */
    void route(NodeId current, NodeId dst, PortId in_port, VcId in_vc,
               std::vector<RouteCandidate> &out) const;

    /**
     * True when the algorithm may use every virtual channel of a
     * physical channel interchangeably — the condition under which
     * the paper's detection mechanisms monitor physical (rather than
     * virtual) channel activity.
     */
    virtual bool usesAllVcsUniformly() const = 0;

    /**
     * Number of virtual channels (per physical channel, counting
     * from VC 0) that form the deadlock-free escape layer the
     * static CDG analyzer must certify. Algorithms without a
     * distinguished escape layer return the full VC count: the
     * routing relation is then its own "escape subfunction" and the
     * analyzer's Duato condition degenerates to plain
     * channel-dependency-graph acyclicity.
     */
    virtual unsigned escapeVcCount() const { return params_.vcs; }

    virtual std::string name() const = 0;

  protected:
    /** Network-port candidates only; ejection handled by route(). */
    virtual void networkCandidates(
        NodeId current, NodeId dst, PortId in_port, VcId in_vc,
        std::vector<RouteCandidate> &out) const = 0;

    /** Mask with bits [0, vcs) set. */
    std::uint32_t allVcsMask() const;

    const Topology &topo_;
    RouterParams params_;
};

/** Any minimal direction, any virtual channel. */
class TrueFullyAdaptiveRouting : public RoutingFunction
{
  public:
    using RoutingFunction::RoutingFunction;

    bool usesAllVcsUniformly() const override { return true; }
    std::string name() const override { return "tfa"; }

  protected:
    void networkCandidates(NodeId current, NodeId dst, PortId in_port,
                           VcId in_vc,
                           std::vector<RouteCandidate>
                               &out) const override;
};

/**
 * Deterministic dimension-order routing. On tori, virtual channels 0
 * and 1 form the dateline classes of the traversed ring (requires
 * >= 2 VCs); on meshes all VCs are used uniformly.
 */
class DimensionOrderRouting : public RoutingFunction
{
  public:
    DimensionOrderRouting(const Topology &topo,
                          const RouterParams &params);

    bool
    usesAllVcsUniformly() const override
    {
        return !topo_.wraparound();
    }
    std::string name() const override { return "dor"; }

    /**
     * Dateline VC class for a hop in @p dim, direction @p positive,
     * from coordinate @p cur_c to destination coordinate @p dst_c:
     * 0 before crossing the wraparound edge, 1 after.
     */
    static VcId datelineVc(bool positive, unsigned cur_c,
                           unsigned dst_c);

  protected:
    void networkCandidates(NodeId current, NodeId dst, PortId in_port,
                           VcId in_vc,
                           std::vector<RouteCandidate>
                               &out) const override;
};

/**
 * Duato-protocol fully adaptive routing with escape channels:
 * VCs >= escapeVcs() are fully adaptive (any minimal direction);
 * the lower VCs form a dimension-order escape layer (with dateline
 * classes on tori). Deadlock-avoidance baseline; needs no detection.
 */
class DuatoProtocolRouting : public RoutingFunction
{
  public:
    DuatoProtocolRouting(const Topology &topo,
                         const RouterParams &params);

    bool usesAllVcsUniformly() const override { return false; }
    std::string name() const override { return "duato"; }

    /** VCs reserved for the escape layer (2 on tori, 1 on meshes). */
    unsigned escapeVcs() const { return escapeVcs_; }

    unsigned escapeVcCount() const override { return escapeVcs_; }

  protected:
    void networkCandidates(NodeId current, NodeId dst, PortId in_port,
                           VcId in_vc,
                           std::vector<RouteCandidate>
                               &out) const override;

  private:
    unsigned escapeVcs_;
};

/**
 * West-first turn-model routing (Glass & Ni), meshes only: all "-x"
 * hops are taken first (deterministically), after which the message
 * routes fully adaptively among the remaining minimal directions —
 * none of which can be "-x" again, so the west-first turn
 * restriction makes the network deadlock-free with a single virtual
 * channel. Partially-adaptive deadlock-avoidance baseline.
 */
class WestFirstRouting : public RoutingFunction
{
  public:
    WestFirstRouting(const Topology &topo, const RouterParams &params);

    bool usesAllVcsUniformly() const override { return true; }
    std::string name() const override { return "westfirst"; }

  protected:
    void networkCandidates(NodeId current, NodeId dst, PortId in_port,
                           VcId in_vc,
                           std::vector<RouteCandidate>
                               &out) const override;
};

/**
 * Build a routing function from a name:
 * "tfa" | "dor" | "duato" | "westfirst". fatal() on unknown names.
 */
std::unique_ptr<RoutingFunction>
makeRoutingFunction(const std::string &name, const Topology &topo,
                    const RouterParams &params);

} // namespace wormnet

#endif // WORMNET_ROUTING_ROUTING_HH
