#include "routing/routing.hh"

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

RoutingFunction::RoutingFunction(const Topology &topo,
                                 const RouterParams &params)
    : topo_(topo), params_(params)
{
    WORMNET_ASSERT(params.netPorts == topo.numNetPorts());
}

std::uint32_t
RoutingFunction::allVcsMask() const
{
    return (std::uint32_t(1) << params_.vcs) - 1;
}

void
RoutingFunction::route(NodeId current, NodeId dst, PortId in_port,
                       VcId in_vc,
                       std::vector<RouteCandidate> &out) const
{
    out.clear();
    if (current == dst) {
        // Consume locally: every ejection port, every VC.
        for (unsigned e = 0; e < params_.ejePorts; ++e) {
            out.push_back(RouteCandidate{
                static_cast<PortId>(params_.netPorts + e),
                allVcsMask()});
        }
        return;
    }
    networkCandidates(current, dst, in_port, in_vc, out);
    WORMNET_ASSERT(!out.empty(), " no route from ", current, " to ", dst);
}

void
TrueFullyAdaptiveRouting::networkCandidates(
    NodeId current, NodeId dst, PortId, VcId,
    std::vector<RouteCandidate> &out) const
{
    MinimalSteps steps;
    topo_.minimalSteps(current, dst, steps);
    const std::uint32_t vcs = allVcsMask();
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        if (steps[d].dirMask & 0x1)
            out.push_back(
                RouteCandidate{Topology::outPort(d, true), vcs});
        if (steps[d].dirMask & 0x2)
            out.push_back(
                RouteCandidate{Topology::outPort(d, false), vcs});
    }
}

DimensionOrderRouting::DimensionOrderRouting(
    const Topology &topo, const RouterParams &params)
    : RoutingFunction(topo, params)
{
    if (topo.wraparound() && params.vcs < 2)
        fatal("dimension-order routing on a torus needs >= 2 virtual "
              "channels for the dateline classes");
}

VcId
DimensionOrderRouting::datelineVc(bool positive, unsigned cur_c,
                                  unsigned dst_c)
{
    // Travelling "+" the wraparound edge (k-1 -> 0) still lies ahead
    // iff cur > dst; travelling "-" the edge (0 -> k-1) lies ahead iff
    // cur < dst. Before crossing use class 0, after crossing class 1.
    if (positive)
        return cur_c > dst_c ? 0 : 1;
    return cur_c < dst_c ? 0 : 1;
}

void
DimensionOrderRouting::networkCandidates(
    NodeId current, NodeId dst, PortId, VcId,
    std::vector<RouteCandidate> &out) const
{
    MinimalSteps steps;
    topo_.minimalSteps(current, dst, steps);
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        if (steps[d].dirMask == 0)
            continue;
        // Lowest unresolved dimension; break direction ties toward +.
        const bool positive = (steps[d].dirMask & 0x1) != 0;
        const PortId port = Topology::outPort(d, positive);
        if (!topo_.wraparound()) {
            out.push_back(RouteCandidate{port, allVcsMask()});
            return;
        }
        const VcId vc = datelineVc(positive, topo_.coordinate(current, d),
                                   topo_.coordinate(dst, d));
        out.push_back(
            RouteCandidate{port, std::uint32_t(1) << vc});
        return;
    }
}

DuatoProtocolRouting::DuatoProtocolRouting(const Topology &topo,
                                           const RouterParams &params)
    : RoutingFunction(topo, params),
      escapeVcs_(topo.wraparound() ? 2 : 1)
{
    if (params.vcs <= escapeVcs_)
        fatal("duato routing needs > ", escapeVcs_,
              " virtual channels (", escapeVcs_,
              " escape + >=1 adaptive), got ", params.vcs);
}

void
DuatoProtocolRouting::networkCandidates(
    NodeId current, NodeId dst, PortId, VcId,
    std::vector<RouteCandidate> &out) const
{
    MinimalSteps steps;
    topo_.minimalSteps(current, dst, steps);

    // Adaptive layer: any minimal direction on VCs >= escapeVcs_.
    const std::uint32_t adaptive_mask =
        allVcsMask() & ~((std::uint32_t(1) << escapeVcs_) - 1);
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        if (steps[d].dirMask & 0x1)
            out.push_back(RouteCandidate{Topology::outPort(d, true),
                                         adaptive_mask});
        if (steps[d].dirMask & 0x2)
            out.push_back(RouteCandidate{Topology::outPort(d, false),
                                         adaptive_mask});
    }

    // Escape layer: the dimension-order hop on the escape class.
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        if (steps[d].dirMask == 0)
            continue;
        const bool positive = (steps[d].dirMask & 0x1) != 0;
        const PortId port = Topology::outPort(d, positive);
        std::uint32_t mask;
        if (topo_.wraparound()) {
            mask = std::uint32_t(1)
                   << DimensionOrderRouting::datelineVc(
                          positive, topo_.coordinate(current, d),
                          topo_.coordinate(dst, d));
        } else {
            mask = 0x1;
        }
        // Merge with an existing candidate for the same port if any.
        bool merged = false;
        for (auto &cand : out) {
            if (cand.port == port) {
                cand.vcMask |= mask;
                merged = true;
                break;
            }
        }
        if (!merged)
            out.push_back(RouteCandidate{port, mask});
        break;
    }
}

WestFirstRouting::WestFirstRouting(const Topology &topo,
                                   const RouterParams &params)
    : RoutingFunction(topo, params)
{
    if (topo.wraparound())
        fatal("west-first routing requires a mesh (turn-model "
              "restrictions do not cover wraparound links)");
}

void
WestFirstRouting::networkCandidates(
    NodeId current, NodeId dst, PortId, VcId,
    std::vector<RouteCandidate> &out) const
{
    MinimalSteps steps;
    topo_.minimalSteps(current, dst, steps);
    // All "-x" (west) hops first, with no adaptivity.
    if (steps[0].dirMask & 0x2) {
        out.push_back(RouteCandidate{Topology::outPort(0, false),
                                     allVcsMask()});
        return;
    }
    // Then fully adaptive among the remaining minimal directions
    // (none of which is west).
    const std::uint32_t vcs = allVcsMask();
    for (unsigned d = 0; d < topo_.numDims(); ++d) {
        if (steps[d].dirMask & 0x1)
            out.push_back(
                RouteCandidate{Topology::outPort(d, true), vcs});
        if (d > 0 && (steps[d].dirMask & 0x2))
            out.push_back(
                RouteCandidate{Topology::outPort(d, false), vcs});
    }
}

std::unique_ptr<RoutingFunction>
makeRoutingFunction(const std::string &name, const Topology &topo,
                    const RouterParams &params)
{
    if (name == "tfa")
        return std::make_unique<TrueFullyAdaptiveRouting>(topo, params);
    if (name == "dor")
        return std::make_unique<DimensionOrderRouting>(topo, params);
    if (name == "duato")
        return std::make_unique<DuatoProtocolRouting>(topo, params);
    if (name == "westfirst")
        return std::make_unique<WestFirstRouting>(topo, params);
    fatal("unknown routing function '", name, "'");
}

} // namespace wormnet
