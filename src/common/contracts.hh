/**
 * @file
 * Contract / invariant macro layer.
 *
 * Every runtime correctness check in wormnet goes through one of two
 * macros, graded by cost so builds can trade checking for speed:
 *
 *  - WORMNET_ASSERT(cond, ...): a *cheap* contract — O(1) index and
 *    state checks on hot paths (buffer bounds, credit conservation,
 *    VC ownership). Enabled at contract level >= 1.
 *  - WORMNET_INVARIANT(cond, ...): a *full* structural invariant —
 *    potentially O(network) validation (whole-structure scans,
 *    redundant recomputation cross-checks). Enabled at level >= 2
 *    only; never in default or release-performance builds.
 *
 * The level is fixed at compile time by WORMNET_CONTRACT_LEVEL
 * (0 = off, 1 = cheap, 2 = full), normally set through the CMake
 * cache variable WORMNET_CONTRACTS=off|cheap|full. The default is
 * "cheap", matching the repo's long-standing rule that simulation
 * correctness beats the trivial cost of O(1) branches even in
 * release builds.
 *
 * Failed contracts call panic() (an internal wormnet bug, throws
 * PanicError); they are not for user errors — use fatal() for those.
 * Conditions must be side-effect free: at level "off" they are not
 * evaluated at all.
 *
 * WORMNET_INVARIANT_ENABLED is a constexpr bool for code that wants
 * to gate a *block* of full-level checking (e.g. the Network's
 * active-set brute-force cross-check) rather than one expression.
 */

#ifndef WORMNET_COMMON_CONTRACTS_HH
#define WORMNET_COMMON_CONTRACTS_HH

#include "common/log.hh"

/** 0 = off, 1 = cheap (default), 2 = full. */
#ifndef WORMNET_CONTRACT_LEVEL
#define WORMNET_CONTRACT_LEVEL 1
#endif

namespace wormnet
{

/** True when full structural invariants are compiled in. */
inline constexpr bool WORMNET_INVARIANT_ENABLED =
    WORMNET_CONTRACT_LEVEL >= 2;

} // namespace wormnet

#define WORMNET_CONTRACT_FAIL_(kind, cond, ...)                        \
    ::wormnet::panic(kind " violated: ", #cond, " at ", __FILE__,      \
                     ":", __LINE__ __VA_OPT__(, ) __VA_ARGS__)

#if WORMNET_CONTRACT_LEVEL >= 1
#define WORMNET_ASSERT(cond, ...)                                      \
    do {                                                               \
        if (!(cond)) {                                                 \
            WORMNET_CONTRACT_FAIL_("contract", cond, __VA_ARGS__);     \
        }                                                              \
    } while (0)
#else
#define WORMNET_ASSERT(cond, ...)                                      \
    do {                                                               \
    } while (0)
#endif

#if WORMNET_CONTRACT_LEVEL >= 2
#define WORMNET_INVARIANT(cond, ...)                                   \
    do {                                                               \
        if (!(cond)) {                                                 \
            WORMNET_CONTRACT_FAIL_("invariant", cond, __VA_ARGS__);    \
        }                                                              \
    } while (0)
#else
#define WORMNET_INVARIANT(cond, ...)                                   \
    do {                                                               \
    } while (0)
#endif

/**
 * Back-compat alias: historical call sites and tests use the old
 * wn_assert spelling; it now is the cheap contract level. New code
 * should spell out WORMNET_ASSERT or WORMNET_INVARIANT.
 */
#define wn_assert(cond, ...)                                           \
    WORMNET_ASSERT(cond __VA_OPT__(, ) __VA_ARGS__)

/**
 * @name Phase-discipline annotations (statically checked).
 *
 * The sharded stepping of PR 9 splits every per-cycle pass into a
 * *decide* phase — fanned out across shard workers over frozen state
 * — and a *commit* phase that replays the staged decisions in
 * ascending node order on the caller thread. Bitwise identity at any
 * --sim-jobs count rests on three rules inside decide-phase code:
 *
 *   1. never draw from the global RNG (consumption order would
 *      depend on the shard schedule);
 *   2. write only members whose writes are shard-disjoint by
 *      construction (marked WN_SHARD_LOCAL at the declaration);
 *   3. never call into commit-phase code.
 *
 * WN_DECIDE_PHASE / WN_COMMIT_PHASE go on the function declaration;
 * WN_SHARD_LOCAL goes on the member declaration. tools/wormnet-lint
 * enforces the rules statically (the built-in frontend reads the
 * macro spellings; the clang frontend reads the underlying
 * [[clang::annotate]] attributes), and the runtime cross-checks
 * (WORMNET_CHECK_ACTIVE_SETS / WORMNET_CHECK_SOA, the ShardStep
 * bitwise-identity suite, TSan) remain the dynamic backstop. See
 * docs/STATIC_ANALYSIS.md for the full contract.
 *
 * Under non-clang compilers the attributes vanish: they carry no
 * runtime semantics, only checkable intent.
 */
/// @{
#if defined(__clang__)
#define WN_DECIDE_PHASE [[clang::annotate("wormnet::decide_phase")]]
#define WN_COMMIT_PHASE [[clang::annotate("wormnet::commit_phase")]]
#define WN_SHARD_LOCAL [[clang::annotate("wormnet::shard_local")]]
#else
#define WN_DECIDE_PHASE
#define WN_COMMIT_PHASE
#define WN_SHARD_LOCAL
#endif
/// @}

#endif // WORMNET_COMMON_CONTRACTS_HH
