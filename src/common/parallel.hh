/**
 * @file
 * Work-stealing thread pool and a deterministic parallel_for layer.
 *
 * The experiment harness runs hundreds of independent simulations
 * (table cells x seed replications, saturation probes); this module
 * fans them across threads without sacrificing reproducibility. The
 * contract that makes that possible: parallelFor() bodies are
 * independent and each writes only to its own pre-sized output slot,
 * so results are identical to a serial loop regardless of job count
 * or scheduling order. Reductions over those slots then happen
 * sequentially in index order, which keeps floating-point
 * accumulation bitwise-identical to the serial code path.
 *
 * Job-count resolution (defaultJobs()): the WORMNET_JOBS environment
 * variable when set to a positive integer, otherwise the hardware
 * concurrency. Benches additionally accept --jobs, which overrides
 * both. jobs=1 always executes on the caller thread with no pool.
 */

#ifndef WORMNET_COMMON_PARALLEL_HH
#define WORMNET_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wormnet
{

/**
 * Fixed-size thread pool with a bounded external queue and per-worker
 * deques for nested submissions.
 *
 * - submit() from outside the pool blocks while the shared queue is
 *   at capacity (backpressure instead of unbounded memory).
 * - submit() from inside a task goes to the submitting worker's own
 *   deque (never blocks), so tasks may spawn subtasks freely without
 *   deadlocking against the queue bound.
 * - Idle workers steal from the back of other workers' deques.
 * - wait() blocks until every submitted task has finished and
 *   rethrows the first exception a task raised, if any.
 * - The destructor drains all pending tasks before joining; no
 *   submitted task is ever dropped (exceptions raised while draining
 *   are swallowed, since a destructor cannot rethrow).
 */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param threads worker-thread count (>= 1)
     * @param queue_capacity bound on externally submitted tasks
     *        awaiting execution
     */
    explicit ThreadPool(unsigned threads,
                        std::size_t queue_capacity = 1024);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; see the class comment for blocking rules. */
    void submit(Task task);

    /**
     * Block until all tasks submitted so far (including nested ones)
     * have finished. Rethrows the first task exception, clearing it.
     */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop(std::size_t index);
    bool takeTask(std::size_t index, Task &out);

    mutable std::mutex mutex_;
    std::condition_variable cvWork_;  ///< workers: a task is available
    std::condition_variable cvSpace_; ///< submitters: queue has room
    std::condition_variable cvIdle_;  ///< wait(): everything finished

    std::deque<Task> queue_; ///< external submissions (FIFO)
    /** Per-worker deques: own tasks pop LIFO, thieves steal FIFO. */
    std::vector<std::deque<Task>> local_;
    std::vector<std::thread> workers_;

    std::size_t queueCapacity_;
    std::size_t unfinished_ = 0; ///< submitted but not yet completed
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Resolve the job count used when a caller passes jobs=0: the
 * WORMNET_JOBS environment variable if set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (minimum 1).
 */
unsigned defaultJobs();

/**
 * Run body(0) .. body(n-1) across @p jobs threads.
 *
 * Scheduling is dynamic (an atomic index counter), so iteration order
 * is unspecified; the body must write only to per-index state.
 * jobs=0 resolves via defaultJobs(); an effective job count of 1 (or
 * n <= 1) runs the plain loop on the caller thread with no threads
 * created.
 *
 * Exceptions: the exception thrown by the *lowest failing index* is
 * rethrown once all in-flight iterations finish — the same exception
 * a serial run would surface, keeping error behaviour independent of
 * the job count. Indices above a failed one are skipped best-effort.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace wormnet

#endif // WORMNET_COMMON_PARALLEL_HH
