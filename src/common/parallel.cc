#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

namespace
{

/** Identifies the pool (and worker slot) the current thread runs in,
 *  so submit() can route nested submissions to the worker's own
 *  deque instead of blocking on the bounded external queue. */
thread_local ThreadPool *tlsPool = nullptr;
thread_local std::size_t tlsWorker = 0;

} // namespace

ThreadPool::ThreadPool(unsigned threads, std::size_t queue_capacity)
    : queueCapacity_(queue_capacity)
{
    WORMNET_ASSERT(threads >= 1);
    WORMNET_ASSERT(queue_capacity >= 1);
    local_.resize(threads);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cvWork_.notify_all();
    cvSpace_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    WORMNET_ASSERT(task != nullptr);
    std::unique_lock<std::mutex> lock(mutex_);
    if (tlsPool == this) {
        // Nested submission from one of our own workers: the worker's
        // private deque is unbounded, so spawning subtasks can never
        // deadlock against the queue bound.
        local_[tlsWorker].push_back(std::move(task));
    } else {
        cvSpace_.wait(lock, [this] {
            return queue_.size() < queueCapacity_ || stopping_;
        });
        if (stopping_)
            panic("ThreadPool::submit during shutdown");
        queue_.push_back(std::move(task));
    }
    ++unfinished_;
    lock.unlock();
    cvWork_.notify_one();
}

bool
ThreadPool::takeTask(std::size_t index, Task &out)
{
    // Own deque first (LIFO keeps nested work hot), then the shared
    // queue, then steal the oldest task from another worker.
    if (!local_[index].empty()) {
        out = std::move(local_[index].back());
        local_[index].pop_back();
        return true;
    }
    if (!queue_.empty()) {
        out = std::move(queue_.front());
        queue_.pop_front();
        cvSpace_.notify_one();
        return true;
    }
    for (std::size_t k = 1; k < local_.size(); ++k) {
        auto &victim = local_[(index + k) % local_.size()];
        if (!victim.empty()) {
            out = std::move(victim.front());
            victim.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    tlsPool = this;
    tlsWorker = index;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        Task task;
        if (takeTask(index, task)) {
            lock.unlock();
            try {
                task();
            } catch (...) {
                lock.lock();
                if (!firstError_)
                    firstError_ = std::current_exception();
                lock.unlock();
            }
            task = nullptr; // destroy captures outside the lock
            lock.lock();
            if (--unfinished_ == 0)
                cvIdle_.notify_all();
            continue;
        }
        // Drain everything before honouring shutdown so no submitted
        // task is ever dropped.
        if (stopping_)
            return;
        cvWork_.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cvIdle_.wait(lock, [this] { return unfinished_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("WORMNET_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
        warn("ignoring WORMNET_JOBS='", env,
             "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (n < jobs)
        jobs = static_cast<unsigned>(n);

    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errMutex;
    std::size_t errIndex = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;

    ThreadPool pool(jobs);
    for (unsigned j = 0; j < jobs; ++j) {
        pool.submit([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                {
                    // Best-effort cancellation: indices above a
                    // failed one would not have run serially.
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (error && i > errIndex)
                        continue;
                }
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (!error || i < errIndex) {
                        errIndex = i;
                        error = std::current_exception();
                    }
                }
            }
        });
    }
    pool.wait();
    if (error)
        std::rethrow_exception(error);
}

} // namespace wormnet
