#include "common/rng.hh"

namespace wormnet
{

namespace
{

/** SplitMix64 step used for seeding and stream splitting. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Debiased modulo via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    // 53 top bits into the double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split()
{
    std::uint64_t derive = next();
    return Rng(splitMix64(derive));
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream,
           std::uint64_t index)
{
    // Absorb each input with a full SplitMix64 step so that a
    // difference in any single one avalanches through the result.
    std::uint64_t state = base;
    state = splitMix64(state) ^ stream;
    state = splitMix64(state) ^ index;
    return splitMix64(state);
}

} // namespace wormnet
