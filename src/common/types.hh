/**
 * @file
 * Fundamental scalar types and sentinels shared across all wormnet
 * libraries.
 *
 * The simulator follows the conventions of flit-level network-on-chip
 * simulators: time is measured in integral clock cycles, nodes/routers
 * are densely numbered, and the per-router port/virtual-channel spaces
 * are small dense integers suitable for bitmask representation.
 */

#ifndef WORMNET_COMMON_TYPES_HH
#define WORMNET_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace wormnet
{

/** Simulation time in clock cycles. */
using Cycle = std::uint64_t;

/** Dense node (== router) identifier, in [0, numNodes). */
using NodeId = std::uint32_t;

/** Dense message identifier assigned at generation time. */
using MsgId = std::uint32_t;

/** Physical-channel (port) index local to one router. */
using PortId = std::uint16_t;

/** Virtual-channel index within one physical channel. */
using VcId = std::uint8_t;

/**
 * Bitmask over a router's output physical channels. Routers never have
 * more than 32 physical channels (2*dims network ports plus a handful
 * of ejection ports), so 32 bits always suffice; this is checked at
 * network construction time.
 */
using PortMask = std::uint32_t;

/** Sentinel: "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel: "no message". */
inline constexpr MsgId kInvalidMsg = std::numeric_limits<MsgId>::max();

/** Sentinel: "no port". */
inline constexpr PortId kInvalidPort =
    std::numeric_limits<PortId>::max();

/** Sentinel: "no virtual channel". */
inline constexpr VcId kInvalidVc = std::numeric_limits<VcId>::max();

/** Sentinel: "never" / "not yet" timestamp. */
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

/**
 * A (port, virtual channel) pair identifying one virtual channel local
 * to a router. Used both for output candidates produced by routing
 * functions and for input-side buffer references.
 */
struct PortVc
{
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;

    bool valid() const { return port != kInvalidPort; }

    bool
    operator==(const PortVc &other) const
    {
        return port == other.port && vc == other.vc;
    }
};

} // namespace wormnet

#endif // WORMNET_COMMON_TYPES_HH
