/**
 * @file
 * Minimal logging / error-reporting facility in the spirit of gem5's
 * base/logging.hh.
 *
 * - fatal():   the simulation cannot continue because of a user error
 *              (bad configuration, inconsistent parameters). Throws
 *              FatalError so that library users and tests can catch it.
 * - panic():   an internal invariant was violated (a wormnet bug).
 *              Also throws (PanicError) so tests can assert on it, but
 *              callers are not expected to recover.
 * - warn()/inform(): advisory messages to stderr, rate-unlimited.
 */

#ifndef WORMNET_COMMON_LOG_HH
#define WORMNET_COMMON_LOG_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace wormnet
{

/** Error thrown by fatal(): user-caused, unrecoverable condition. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Error thrown by panic(): internal invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

namespace log_detail
{

/** Fold arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Global verbosity: 0 = silent, 1 = warn, 2 = inform. */
int verbosity();
void setVerbosity(int level);

} // namespace log_detail

/** Abort the simulation due to a user error. Throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    log_detail::fatalImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Abort the simulation due to an internal bug. Throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    log_detail::panicImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr (verbosity >= 1). */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::warnImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Print an informational note to stderr (verbosity >= 2). */
template <typename... Args>
void
inform(Args &&...args)
{
    log_detail::informImpl(
        log_detail::concat(std::forward<Args>(args)...));
}

/** Set global log verbosity (0 silent, 1 warn, 2 inform). */
inline void
setLogVerbosity(int level)
{
    log_detail::setVerbosity(level);
}

} // namespace wormnet

#endif // WORMNET_COMMON_LOG_HH
