/**
 * @file
 * Column-aligned text tables for experiment output.
 *
 * The bench harness reproduces the paper's Tables 1-7, which are grids
 * of detection percentages with row labels ("Th 2" .. "Th 1024") and
 * grouped column headers (one group per injection rate, one column per
 * message-size class). TextTable renders such grids with alignment,
 * optional per-cell annotations (the paper's "(*)" true-deadlock
 * marker), and CSV export for downstream plotting.
 */

#ifndef WORMNET_COMMON_TABLE_HH
#define WORMNET_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace wormnet
{

/** A rectangular grid of strings rendered with aligned columns. */
class TextTable
{
  public:
    /** @param num_columns total columns including the row-label one. */
    explicit TextTable(std::size_t num_columns);

    /** Append a full row; must have exactly numColumns() cells. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    std::size_t numColumns() const { return numColumns_; }
    std::size_t numRows() const { return rows_.size(); }

    /** Render with 2-space gutters, right-aligned data columns. */
    std::string render() const;

    /** Render as CSV (separators skipped, cells comma-escaped). */
    std::string renderCsv() const;

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::size_t numColumns_;
    std::vector<Row> rows_;
};

/**
 * Format a fraction as the paper formats detection percentages:
 * three significant digits, e.g. 0.00055 -> ".055" style for small
 * values and "26.0" for large ones. @p frac is a ratio in [0,1];
 * output is in percent.
 */
std::string formatPercentPaperStyle(double frac);

/** Format a double with @p digits significant digits. */
std::string formatSig(double value, int digits);

} // namespace wormnet

#endif // WORMNET_COMMON_TABLE_HH
