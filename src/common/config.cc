#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace wormnet
{

namespace
{

std::string
lowered(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

Config
Config::parseArgs(int argc, const char *const *argv)
{
    Config cfg;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            cfg.positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            cfg.set(arg, argv[++i]);
        } else {
            cfg.set(arg, "true");
        }
    }
    return cfg;
}

Config
Config::parseString(const std::string &text)
{
    Config cfg;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto eq = item.find('=');
        if (eq == std::string::npos)
            cfg.set(item, "true");
        else
            cfg.set(item.substr(0, eq), item.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --", key, ": '", it->second,
              "' is not an integer");
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::int64_t v = getInt(key, 0);
    if (v < 0)
        fatal("option --", key, ": must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --", key, ": '", it->second,
              "' is not a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string v = lowered(it->second);
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("option --", key, ": '", it->second, "' is not a boolean");
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream os;
    for (const auto &kv : values_)
        os << kv.first << '=' << kv.second << '\n';
    return os.str();
}

} // namespace wormnet
