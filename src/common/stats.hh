/**
 * @file
 * Lightweight statistics primitives used by the simulator's metric
 * collection: streaming mean/variance accumulators and fixed-bucket
 * histograms. All are resettable so that warm-up samples can be
 * discarded at the start of the measurement phase.
 */

#ifndef WORMNET_COMMON_STATS_HH
#define WORMNET_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wormnet
{

/**
 * Streaming scalar statistic: count, mean, variance (Welford), min and
 * max. Cheap enough to update per message.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Unbiased sample variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Checkpoint support: dump/restore the accumulator verbatim. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(count_);
        s.f64(mean_);
        s.f64(m2_);
        s.f64(sum_);
        s.f64(min_);
        s.f64(max_);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        count_ = d.u64();
        mean_ = d.f64();
        m2_ = d.f64();
        sum_ = d.f64();
        min_ = d.f64();
        max_ = d.f64();
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over non-negative integer samples with uniform buckets and
 * an explicit overflow bucket. Used for latency distributions.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (>= 1)
     * @param num_buckets number of regular buckets before overflow
     */
    explicit Histogram(std::uint64_t bucket_width = 16,
                       std::size_t num_buckets = 64);

    void add(std::uint64_t x);
    void reset();

    std::uint64_t count() const { return total_; }

    /** Samples in regular bucket i (i < numBuckets()). */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Approximate p-quantile (q in [0,1]) assuming uniform density
     * within buckets; returns the upper edge of the overflow region's
     * start when the quantile falls in overflow.
     */
    double quantile(double q) const;

    /** Multi-line textual rendering for reports. */
    std::string toString() const;

    /** Checkpoint support: geometry is config-fixed, counts are not. */
    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(width_);
        s.u64(static_cast<std::uint64_t>(buckets_.size()));
        for (std::uint64_t b : buckets_)
            s.u64(b);
        s.u64(overflow_);
        s.u64(total_);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        width_ = d.u64();
        buckets_.assign(d.u64(), 0);
        for (std::uint64_t &b : buckets_)
            b = d.u64();
        overflow_ = d.u64();
        total_ = d.u64();
    }

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Windowed rate estimator: tracks an event count and an elapsed-cycle
 * denominator, resettable at phase boundaries. Used for accepted
 * throughput (flits/cycle/node).
 */
class RateEstimator
{
  public:
    void addEvents(std::uint64_t n) { events_ += n; }
    void addCycles(std::uint64_t n) { cycles_ += n; }
    void reset() { events_ = 0; cycles_ = 0; }

    std::uint64_t events() const { return events_; }
    std::uint64_t cycles() const { return cycles_; }

    /** Events per cycle (0 when no cycles elapsed). */
    double rate() const
    {
        return cycles_ ? static_cast<double>(events_) / cycles_ : 0.0;
    }

    template <typename S>
    void
    saveState(S &s) const
    {
        s.u64(events_);
        s.u64(cycles_);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        events_ = d.u64();
        cycles_ = d.u64();
    }

  private:
    std::uint64_t events_ = 0;
    std::uint64_t cycles_ = 0;
};

} // namespace wormnet

#endif // WORMNET_COMMON_STATS_HH
