/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * wormnet simulations must be exactly reproducible from a single seed,
 * so all stochastic decisions (traffic destinations, message lengths,
 * tie-breaking in allocators) draw from explicitly threaded Rng
 * instances rather than global state. The generator is xoshiro256**,
 * seeded through SplitMix64 as recommended by its authors.
 */

#ifndef WORMNET_COMMON_RNG_HH
#define WORMNET_COMMON_RNG_HH

#include <cstdint>

namespace wormnet
{

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Not thread-safe; each simulation owns its instances. Satisfies the
 * essential parts of UniformRandomBitGenerator so it can be handed to
 * standard algorithms if needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (any value, including 0). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed in place, discarding all existing state. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t
    max()
    {
        return ~std::uint64_t(0);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Derive an independent child generator; used to give each node a
     * private stream while keeping a single top-level seed.
     */
    Rng split();

    /** Checkpoint support: the full state is the four words. */
    template <typename S>
    void
    saveState(S &s) const
    {
        for (std::uint64_t w : s_)
            s.u64(w);
    }

    template <typename D>
    void
    loadState(D &d)
    {
        for (std::uint64_t &w : s_)
            w = d.u64();
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Derive an independent 64-bit seed from (base seed, stream, index)
 * by chaining the SplitMix64 finalizer over all three inputs.
 *
 * The experiment harness seeds every (table cell, seed replication)
 * simulation with deriveSeed(base, cell, replication): unlike the
 * naive base + replication, nearby base seeds and adjacent cells can
 * never hand overlapping seed sequences to different simulations, so
 * replications stay statistically independent across the whole grid.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream,
                         std::uint64_t index);

} // namespace wormnet

#endif // WORMNET_COMMON_RNG_HH
