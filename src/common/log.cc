#include "common/log.hh"

#include <cstdio>

namespace wormnet
{
namespace log_detail
{

namespace
{
int g_verbosity = 1;
} // namespace

int
verbosity()
{
    return g_verbosity;
}

void
setVerbosity(int level)
{
    g_verbosity = level;
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panicImpl(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    throw PanicError(msg);
}

void
warnImpl(const std::string &msg)
{
    if (g_verbosity >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_verbosity >= 2)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace wormnet
