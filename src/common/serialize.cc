#include "common/serialize.hh"

#include <array>

#include "common/log.hh"

namespace wormnet
{

void
Serializer::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t
Deserializer::u8()
{
    if (pos_ >= size_)
        fatal("checkpoint payload truncated: read past byte ", size_);
    return data_[pos_++];
}

std::string
Deserializer::str()
{
    const std::uint32_t len = u32();
    if (len > remaining())
        fatal("checkpoint payload truncated: string of ", len,
              " bytes with only ", remaining(), " remaining");
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

namespace
{

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace wormnet
