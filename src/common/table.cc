#include "common/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

TextTable::TextTable(std::size_t num_columns)
    : numColumns_(num_columns)
{
    WORMNET_ASSERT(num_columns >= 1);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    WORMNET_ASSERT(cells.size() == numColumns_,
              " (got ", cells.size(), ", want ", numColumns_, ")");
    rows_.push_back(Row{false, std::move(cells)});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(numColumns_, 0);
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < numColumns_; ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    std::size_t total = 0;
    for (const auto w : widths)
        total += w;
    total += 2 * (numColumns_ - 1);

    std::ostringstream os;
    for (const auto &row : rows_) {
        if (row.separator) {
            os << std::string(total, '-') << '\n';
            continue;
        }
        for (std::size_t c = 0; c < numColumns_; ++c) {
            const auto &cell = row.cells[c];
            const std::size_t pad = widths[c] - cell.size();
            if (c == 0) {
                // Row labels left-aligned.
                os << cell << std::string(pad, ' ');
            } else {
                os << std::string(pad, ' ') << cell;
            }
            if (c + 1 < numColumns_)
                os << "  ";
        }
        os << '\n';
    }
    return os.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    for (const auto &row : rows_) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < numColumns_; ++c) {
            std::string cell = row.cells[c];
            const bool quote =
                cell.find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                std::string escaped = "\"";
                for (const char ch : cell) {
                    if (ch == '"')
                        escaped += "\"\"";
                    else
                        escaped += ch;
                }
                escaped += '"';
                cell = std::move(escaped);
            }
            os << cell;
            if (c + 1 < numColumns_)
                os << ',';
        }
        os << '\n';
    }
    return os.str();
}

std::string
formatSig(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

std::string
formatPercentPaperStyle(double frac)
{
    const double pct = frac * 100.0;
    char buf[64];
    if (pct == 0.0)
        return ".000";
    if (pct < 1.0) {
        // ".055" style: three decimals, no leading zero.
        std::snprintf(buf, sizeof(buf), "%.3f", pct);
        const char *s = buf;
        if (s[0] == '0')
            ++s;
        return s;
    }
    if (pct < 10.0) {
        std::snprintf(buf, sizeof(buf), "%.2f", pct);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "%.1f", pct);
    return buf;
}

} // namespace wormnet
