/**
 * @file
 * Minimal deterministic binary serialization used by the checkpoint
 * subsystem.
 *
 * The encoding is explicit little-endian with fixed-width integers and
 * IEEE-754 doubles carried as their 64-bit patterns, so a checkpoint
 * written on one host restores bit-identically on any other. There is
 * no schema evolution inside the payload: compatibility is governed by
 * the single version number in the checkpoint file header, and any
 * layout change bumps that version.
 */

#ifndef WORMNET_COMMON_SERIALIZE_HH
#define WORMNET_COMMON_SERIALIZE_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace wormnet
{

/** Append-only byte sink for checkpoint payloads. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Length-prefixed string. */
    void str(const std::string &s);

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Cursor over a checkpoint payload. Any read past the end is a
 * corruption (the CRC already vouched for the bytes, so a structural
 * mismatch means writer and reader disagree) and is fatal.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t u8();

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t(u8()) << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t(u16()) << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t(u32()) << 32);
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    bool boolean() { return u8() != 0; }

    std::string str();

    /** True when every payload byte has been consumed. */
    bool atEnd() const { return pos_ == size_; }

    std::size_t remaining() const { return size_ - pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** CRC-32 (IEEE 802.3 polynomial, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/**
 * Access a std::priority_queue's underlying container.
 *
 * Checkpointing must preserve a priority queue's exact pop order,
 * including the order among equal keys, which is an artifact of the
 * concrete heap layout. Re-pushing elements would rebuild a
 * different (still valid) heap and silently reorder ties, so the
 * heap array is serialized verbatim instead: the standard guarantees
 * the container is the protected member `c`, reachable through a
 * derived-class member pointer. A saved valid heap restored by
 * direct container assignment is the same valid heap.
 */
template <class PQ>
auto &
pqContainer(PQ &pq)
{
    struct Opener : PQ
    {
        using PQ::c;
    };
    return pq.*(&Opener::c);
}

template <class PQ>
const auto &
pqContainer(const PQ &pq)
{
    struct Opener : PQ
    {
        using PQ::c;
    };
    return pq.*(&Opener::c);
}

} // namespace wormnet

#endif // WORMNET_COMMON_SERIALIZE_HH
