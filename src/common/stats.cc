#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : width_(bucket_width), buckets_(num_buckets, 0)
{
    WORMNET_ASSERT(bucket_width >= 1);
    WORMNET_ASSERT(num_buckets >= 1);
}

void
Histogram::add(std::uint64_t x)
{
    const std::size_t idx = static_cast<std::size_t>(x / width_);
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    ++total_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(total_);
    double cum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target && buckets_[i] > 0) {
            const double frac = (target - cum) / buckets_[i];
            return (static_cast<double>(i) + frac) * width_;
        }
        cum = next;
    }
    return static_cast<double>(buckets_.size()) * width_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << '[' << i * width_ << ',' << (i + 1) * width_ << "): "
           << buckets_[i] << '\n';
    }
    if (overflow_ > 0)
        os << "[overflow): " << overflow_ << '\n';
    return os.str();
}

} // namespace wormnet
