/**
 * @file
 * A small typed key=value configuration store with command-line
 * parsing, used by example programs and bench harnesses to override
 * simulation parameters without recompiling.
 *
 * Accepted command-line forms: "--key value", "--key=value" and bare
 * "--flag" (stored as "true"). Unknown keys are kept; consumers decide
 * what is meaningful. Typed getters validate and convert on access and
 * call fatal() on malformed values, which matches gem5's "user errors
 * are fatal" convention.
 */

#ifndef WORMNET_COMMON_CONFIG_HH
#define WORMNET_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wormnet
{

/** Ordered string->string option store with typed access. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse argv-style options. Positional (non "--") arguments are
     * collected separately and retrievable via positional().
     */
    static Config parseArgs(int argc, const char *const *argv);

    /** Parse "key=value,key2=value2" style compact strings. */
    static Config parseString(const std::string &text);

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);

    /** @return true iff the key is present. */
    bool has(const std::string &key) const;

    /** String getter with default. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer getter with default; fatal() on malformed value. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t def = 0) const;

    /** Unsigned getter with default; fatal() on negatives. */
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def = 0) const;

    /** Double getter with default; fatal() on malformed value. */
    double getDouble(const std::string &key, double def = 0.0) const;

    /**
     * Boolean getter with default. Accepts true/false/1/0/yes/no/on/off
     * (case-insensitive); fatal() otherwise.
     */
    bool getBool(const std::string &key, bool def = false) const;

    /** Positional arguments in order of appearance. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** All keys, sorted, for diagnostics. */
    std::vector<std::string> keys() const;

    /** Render as "key=value" lines (sorted) for reproducibility logs. */
    std::string toString() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace wormnet

#endif // WORMNET_COMMON_CONFIG_HH
