/**
 * @file
 * Deterministic iteration over unordered containers.
 *
 * The repo's bitwise-reproducibility contract (golden tables at any
 * --jobs, sharded stepping at any --sim-jobs) forbids letting
 * hash-iteration order reach committed state, statistics, or any
 * serialized/printed byte. Hash containers are still the right tool
 * for membership and lookup — the rule is only that *iteration* on
 * such paths must happen in a key-determined order.
 *
 * wormnet::sorted_view(c) is the sanctioned way to do that: it
 * snapshots pointers to the container's elements, sorts them by key
 * (pairs sort by .first, sets by value), and iterates the snapshot.
 * O(n log n) with one pointer per element — no element copies. The
 * static checker (tools/wormnet-lint) recognises the call and
 * silences its nondet-iter diagnostic; everything else iterating an
 * unordered container on a determinism-critical path is an error.
 *
 * The view holds pointers into the container: do not insert into or
 * erase from the container while iterating the view (the same rule
 * ordinary iterators impose).
 *
 *     for (const auto &kv : wormnet::sorted_view(map_)) { ... }
 */

#ifndef WORMNET_COMMON_SORTED_VIEW_HH
#define WORMNET_COMMON_SORTED_VIEW_HH

#include <algorithm>
#include <cstddef>
#include <vector>

namespace wormnet
{

namespace detail
{

template <class T>
concept PairLike = requires(const T &t) {
    t.first;
    t.second;
};

} // namespace detail

template <class Container>
class SortedView
{
public:
    using value_type = typename Container::value_type;

    explicit SortedView(const Container &c)
    {
        items_.reserve(c.size());
        // wormnet-lint: allow(nondet-iter): this is the adapter
        // itself — the order of this walk is erased by the sort
        // below, which is the whole point of sorted_view().
        for (const auto &e : c)
            items_.push_back(&e);
        std::sort(items_.begin(), items_.end(),
                  [](const value_type *a, const value_type *b) {
                      if constexpr (detail::PairLike<value_type>)
                          return a->first < b->first;
                      else
                          return *a < *b;
                  });
    }

    class iterator
    {
    public:
        explicit iterator(const value_type *const *p) : p_(p) {}
        const value_type &operator*() const { return **p_; }
        const value_type *operator->() const { return *p_; }
        iterator &operator++()
        {
            ++p_;
            return *this;
        }
        bool operator!=(const iterator &o) const
        {
            return p_ != o.p_;
        }
        bool operator==(const iterator &o) const
        {
            return p_ == o.p_;
        }

    private:
        const value_type *const *p_;
    };

    iterator begin() const { return iterator(items_.data()); }
    iterator end() const
    {
        return iterator(items_.data() + items_.size());
    }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

private:
    std::vector<const value_type *> items_;
};

/** Deterministically ordered snapshot view of @p c (see file doc). */
template <class Container>
SortedView<Container>
sorted_view(const Container &c)
{
    return SortedView<Container>(c);
}

} // namespace wormnet

#endif // WORMNET_COMMON_SORTED_VIEW_HH
