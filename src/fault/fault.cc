#include "fault/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/contracts.hh"
#include "common/log.hh"

namespace wormnet
{

namespace
{

constexpr const char *kSpecUsage =
    "; expected a comma-separated list of "
    "\"link:<src>><dst>@<cycle>\", \"router:<node>@<cycle>\" or "
    "\"rate:<p>\"";

std::uint64_t
parseNumber(const std::string &s, const std::string &item)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || end == s.c_str() || *end != '\0')
        fatal("malformed --faults item '", item, "': '", s,
              "' is not a number", kSpecUsage);
    return v;
}

} // namespace

FaultParams
FaultModel::parseSpec(const std::string &spec)
{
    FaultParams params;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        const auto colon = item.find(':');
        if (colon == std::string::npos)
            fatal("malformed --faults item '", item, "'", kSpecUsage);
        const std::string kind = item.substr(0, colon);
        const std::string rest = item.substr(colon + 1);

        if (kind == "rate") {
            char *end = nullptr;
            const double p = std::strtod(rest.c_str(), &end);
            if (rest.empty() || end == rest.c_str() || *end != '\0' ||
                p < 0.0 || p > 1.0)
                fatal("malformed --faults item '", item,
                      "': rate must be a probability in [0,1]",
                      kSpecUsage);
            params.linkRate = p;
            continue;
        }

        const auto at = rest.find('@');
        if (at == std::string::npos)
            fatal("malformed --faults item '", item,
                  "': missing '@<cycle>'", kSpecUsage);
        const std::string where = rest.substr(0, at);
        const Cycle when = parseNumber(rest.substr(at + 1), item);

        ScheduledFault f;
        f.at = when;
        if (kind == "link") {
            const auto arrow = where.find('>');
            if (arrow == std::string::npos)
                fatal("malformed --faults item '", item,
                      "': missing '>' between link endpoints",
                      kSpecUsage);
            f.kind = ScheduledFault::Kind::Link;
            f.node = static_cast<NodeId>(
                parseNumber(where.substr(0, arrow), item));
            f.peer = static_cast<NodeId>(
                parseNumber(where.substr(arrow + 1), item));
        } else if (kind == "router") {
            f.kind = ScheduledFault::Kind::Router;
            f.node = static_cast<NodeId>(parseNumber(where, item));
        } else {
            fatal("malformed --faults item '", item,
                  "': unknown fault kind '", kind, "'", kSpecUsage);
        }
        params.schedule.push_back(f);
    }
    if (params.schedule.empty() && params.linkRate == 0.0)
        fatal("--faults spec '", spec, "' contains no faults",
              kSpecUsage);
    return params;
}

FaultModel::FaultModel(const FaultParams &params) : params_(params)
{
}

void
FaultModel::init(const Topology &topo, const RouterParams &rp,
                 std::uint64_t seed)
{
    topo_ = &topo;
    netPorts_ = topo.numNetPorts();
    WORMNET_ASSERT(netPorts_ == rp.netPorts);
    rng_.reseed(seed);

    const NodeId n = topo.numNodes();
    causeCount_.assign(std::size_t(n) * netPorts_, 0);
    faultyMask_.assign(n, 0);
    routerFaulty_.assign(n, 0);

    schedule_.clear();
    nextScheduled_ = 0;
    for (const ScheduledFault &f : params_.schedule) {
        if (f.node >= n)
            fatal("--faults: node ", f.node,
                  " is outside this topology (", n, " nodes)");
        ResolvedFault r;
        r.kind = f.kind;
        r.node = f.node;
        r.outPort = kInvalidPort;
        r.at = f.at;
        if (f.kind == ScheduledFault::Kind::Link) {
            if (f.peer >= n)
                fatal("--faults: node ", f.peer,
                      " is outside this topology (", n, " nodes)");
            for (unsigned d = 0;
                 d < topo.numDims() && r.outPort == kInvalidPort;
                 ++d) {
                for (const bool positive : {true, false}) {
                    if (topo.neighbor(f.node, d, positive) ==
                        f.peer) {
                        r.outPort = Topology::outPort(d, positive);
                        break;
                    }
                }
            }
            if (r.outPort == kInvalidPort)
                fatal("--faults: no link ", f.node, ">", f.peer,
                      " in this topology");
        }
        schedule_.push_back(r);
    }
    std::stable_sort(schedule_.begin(), schedule_.end(),
                     [](const ResolvedFault &a,
                        const ResolvedFault &b) {
                         return a.at < b.at;
                     });
}

void
FaultModel::addLinkCause(NodeId node, PortId out_port, int delta)
{
    std::uint8_t &count =
        causeCount_[std::size_t(node) * netPorts_ + out_port];
    const bool was = count > 0;
    WORMNET_ASSERT(delta > 0 || count > 0);
    count = static_cast<std::uint8_t>(int(count) + delta);
    const bool is = count > 0;
    if (was == is)
        return;
    if (is) {
        faultyMask_[node] |= PortMask(1) << out_port;
        ++activeLinks_;
    } else {
        faultyMask_[node] &= ~(PortMask(1) << out_port);
        WORMNET_ASSERT(activeLinks_ > 0);
        --activeLinks_;
    }
    changes_.push_back(FaultChange{node, out_port, is});
}

void
FaultModel::failLink(NodeId node, PortId out_port, Cycle now)
{
    ++injected_;
    addLinkCause(node, out_port, +1);
    if (params_.repairDelay > 0)
        repairs_.push(Repair{now + params_.repairDelay,
                             ScheduledFault::Kind::Link, node,
                             out_port});
}

void
FaultModel::repairLink(NodeId node, PortId out_port)
{
    ++repaired_;
    addLinkCause(node, out_port, -1);
}

void
FaultModel::failRouter(NodeId node, Cycle now)
{
    ++injected_;
    if (routerFaulty_[node]++ == 0)
        ++activeRouters_;
    // Every incident link fails with the router: the router's own
    // output ports and each neighbour's port towards it.
    for (unsigned d = 0; d < topo_->numDims(); ++d) {
        for (const bool positive : {true, false}) {
            const NodeId peer = topo_->neighbor(node, d, positive);
            if (peer == kInvalidNode)
                continue; // mesh edge
            addLinkCause(node, Topology::outPort(d, positive), +1);
            addLinkCause(peer, Topology::outPort(d, !positive), +1);
        }
    }
    if (params_.repairDelay > 0)
        repairs_.push(Repair{now + params_.repairDelay,
                             ScheduledFault::Kind::Router, node,
                             kInvalidPort});
}

void
FaultModel::repairRouter(NodeId node)
{
    ++repaired_;
    WORMNET_ASSERT(routerFaulty_[node] > 0);
    if (--routerFaulty_[node] == 0) {
        WORMNET_ASSERT(activeRouters_ > 0);
        --activeRouters_;
    }
    for (unsigned d = 0; d < topo_->numDims(); ++d) {
        for (const bool positive : {true, false}) {
            const NodeId peer = topo_->neighbor(node, d, positive);
            if (peer == kInvalidNode)
                continue;
            addLinkCause(node, Topology::outPort(d, positive), -1);
            addLinkCause(peer, Topology::outPort(d, !positive), -1);
        }
    }
}

bool
FaultModel::tick(Cycle now)
{
    WORMNET_ASSERT(topo_ != nullptr && "FaultModel used before init()");
    changes_.clear();

    while (!repairs_.empty() && repairs_.top().when <= now) {
        const Repair r = repairs_.top();
        repairs_.pop();
        if (r.kind == ScheduledFault::Kind::Link)
            repairLink(r.node, r.outPort);
        else
            repairRouter(r.node);
    }

    while (nextScheduled_ < schedule_.size() &&
           schedule_[nextScheduled_].at <= now) {
        const ResolvedFault &f = schedule_[nextScheduled_++];
        if (f.kind == ScheduledFault::Kind::Link)
            failLink(f.node, f.outPort, now);
        else
            failRouter(f.node, now);
    }

    if (params_.linkRate > 0.0) {
        for (NodeId node = 0; node < topo_->numNodes(); ++node) {
            for (unsigned d = 0; d < topo_->numDims(); ++d) {
                for (const bool positive : {true, false}) {
                    if (topo_->neighbor(node, d, positive) ==
                        kInvalidNode)
                        continue;
                    const PortId q =
                        Topology::outPort(d, positive);
                    if (linkFaulty(node, q))
                        continue; // already down
                    if (rng_.nextBool(params_.linkRate))
                        failLink(node, q, now);
                }
            }
        }
    }

    return !changes_.empty();
}

void
FaultModel::saveState(Serializer &s) const
{
    rng_.saveState(s);
    s.u64(nextScheduled_);
    s.u64(static_cast<std::uint64_t>(causeCount_.size()));
    for (const std::uint8_t c : causeCount_)
        s.u8(c);
    for (const PortMask m : faultyMask_)
        s.u32(m);
    for (const std::uint8_t r : routerFaulty_)
        s.u8(r);
    // The repair heap is written verbatim so equal-cycle repairs pop
    // in the exact pre-checkpoint order.
    const auto &heap = pqContainer(repairs_);
    s.u32(static_cast<std::uint32_t>(heap.size()));
    for (const Repair &r : heap) {
        s.u64(r.when);
        s.u8(static_cast<std::uint8_t>(r.kind));
        s.u32(r.node);
        s.u16(r.outPort);
    }
    s.u64(activeLinks_);
    s.u64(activeRouters_);
    s.u64(injected_);
    s.u64(repaired_);
}

void
FaultModel::loadState(Deserializer &d)
{
    rng_.loadState(d);
    nextScheduled_ = d.u64();
    const std::uint64_t links = d.u64();
    causeCount_.assign(links, 0);
    for (std::uint8_t &c : causeCount_)
        c = d.u8();
    faultyMask_.assign(causeCount_.size() / netPorts_, 0);
    for (PortMask &m : faultyMask_)
        m = d.u32();
    routerFaulty_.assign(faultyMask_.size(), 0);
    for (std::uint8_t &r : routerFaulty_)
        r = d.u8();
    auto &heap = pqContainer(repairs_);
    heap.clear();
    heap.resize(d.u32());
    for (Repair &r : heap) {
        r.when = d.u64();
        r.kind = static_cast<ScheduledFault::Kind>(d.u8());
        r.node = d.u32();
        r.outPort = d.u16();
    }
    activeLinks_ = d.u64();
    activeRouters_ = d.u64();
    injected_ = d.u64();
    repaired_ = d.u64();
    changes_.clear();
}

} // namespace wormnet
