/**
 * @file
 * Fault injection for links and routers.
 *
 * The paper's detection heuristics assume every physical channel can
 * eventually transmit; a failed link would make its inactivity
 * counter grow without bound and turn every message routed toward it
 * into a false presumed deadlock. The FaultModel hardens the
 * simulator against exactly that: it fails individual links or whole
 * routers, either on a deterministic schedule or stochastically, and
 * (optionally) repairs them after a fixed delay — in the spirit of
 * dynamic-reconfiguration schemes (DBR) and detection mechanisms that
 * must stay sound in lossy data planes (DCFIT).
 *
 * Fault semantics:
 *  - A faulted *link* transmits no flits in either use of its data
 *    path (the Network masks the output port out of switch allocation
 *    and out of every routing feasible set). The credit-return wire
 *    is assumed to survive, so buffer bookkeeping stays exact and a
 *    repaired link is immediately usable.
 *  - A faulted *router* fails every incident link (its own output
 *    ports and each neighbour's port towards it) and stops generating
 *    and injecting traffic until repaired.
 *  - Worms caught mid-flight across a failing link are stranded: the
 *    Network kills them and re-queues them at their source with
 *    bounded retries, after which they are counted as abandoned.
 *
 * Spec grammar (comma-separated items, see parseSpec):
 *    link:<src>><dst>@<cycle>   fail the src->dst link at <cycle>
 *    router:<node>@<cycle>      fail the whole router at <cycle>
 *    rate:<p>                   each healthy link fails independently
 *                               with probability p per cycle
 */

#ifndef WORMNET_FAULT_FAULT_HH
#define WORMNET_FAULT_FAULT_HH

#include <queue>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/types.hh"
#include "router/router.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** One scheduled (deterministic) fault. */
struct ScheduledFault
{
    enum class Kind : std::uint8_t
    {
        Link,
        Router,
    };

    Kind kind = Kind::Link;
    NodeId node = kInvalidNode; ///< link source, or the router
    NodeId peer = kInvalidNode; ///< link destination (links only)
    Cycle at = 0;               ///< activation cycle
};

/** Configuration for a FaultModel. */
struct FaultParams
{
    /** Deterministic fault schedule (may be empty). */
    std::vector<ScheduledFault> schedule;

    /** Per-link per-cycle failure probability (0 disables). */
    double linkRate = 0.0;

    /** Cycles until a fault self-repairs (0 = permanent). */
    Cycle repairDelay = 0;
};

/** A link whose fault state flipped during the last tick(). */
struct FaultChange
{
    NodeId node = kInvalidNode;
    PortId outPort = kInvalidPort;
    bool faulty = false; ///< new state
};

/**
 * Tracks which links and routers are currently faulted and advances
 * that state one cycle at a time. Owned by the Simulation (or a
 * test), attached to the Network, which queries it every cycle.
 *
 * Link fault state is reference-counted so overlapping causes (a
 * scheduled link fault on a link also covered by a router fault)
 * compose and repair independently.
 */
class FaultModel
{
  public:
    explicit FaultModel(const FaultParams &params);

    /**
     * Parse a "--faults" spec string into FaultParams. fatal() with a
     * usage hint on any malformed item (note repairDelay is not part
     * of the spec; it comes from --fault-repair).
     */
    static FaultParams parseSpec(const std::string &spec);

    /**
     * Resolve the schedule against a concrete topology and seed the
     * stochastic stream. fatal() when a scheduled link does not exist.
     * Called by Network::attachFaultModel().
     */
    void init(const Topology &topo, const RouterParams &params,
              std::uint64_t seed);

    /**
     * Advance to cycle @p now: activate due scheduled faults, draw
     * stochastic link faults, apply due repairs.
     * @return true when any link or router changed state; the
     *         individual link flips are then available via changes().
     */
    bool tick(Cycle now);

    /** Link flips from the last tick() that returned true. */
    const std::vector<FaultChange> &changes() const
    {
        return changes_;
    }

    /** @name Current fault state. */
    /// @{
    /** Bitmask of faulted *network* output ports of @p node. */
    PortMask faultyOutMask(NodeId node) const
    {
        return faultyMask_[node];
    }

    bool
    linkFaulty(NodeId node, PortId out_port) const
    {
        return (faultyMask_[node] >> out_port) & 1u;
    }

    bool routerFaulty(NodeId node) const
    {
        return routerFaulty_[node] != 0;
    }

    /** Links faulted right now (each direction counts separately). */
    std::size_t activeLinkFaults() const { return activeLinks_; }

    /** Routers faulted right now. */
    std::size_t activeRouterFaults() const { return activeRouters_; }
    /// @}

    /** @name Lifetime fault counters. */
    /// @{
    std::uint64_t faultsInjected() const { return injected_; }
    std::uint64_t faultsRepaired() const { return repaired_; }
    /// @}

    const FaultParams &params() const { return params_; }

    /** @name Checkpoint support. schedule_ is rebuilt by init() (it
     *  is config-derived); everything that evolves is written. */
    /// @{
    void saveState(Serializer &s) const;
    void loadState(Deserializer &d);
    /// @}

  private:
    /** A pending self-repair. */
    struct Repair
    {
        Cycle when = 0;
        ScheduledFault::Kind kind = ScheduledFault::Kind::Link;
        NodeId node = kInvalidNode;
        PortId outPort = kInvalidPort; ///< links only

        bool operator>(const Repair &o) const
        {
            return when > o.when;
        }
    };

    void failLink(NodeId node, PortId out_port, Cycle now);
    void repairLink(NodeId node, PortId out_port);
    void failRouter(NodeId node, Cycle now);
    void repairRouter(NodeId node);

    /** Adjust one link's fault reference count and record the flip. */
    void addLinkCause(NodeId node, PortId out_port, int delta);

    FaultParams params_;
    const Topology *topo_ = nullptr;
    unsigned netPorts_ = 0;
    Rng rng_;

    /** Schedule resolved to (node, out_port); ordered by cycle. */
    struct ResolvedFault
    {
        ScheduledFault::Kind kind;
        NodeId node;
        PortId outPort; ///< links only
        Cycle at;
    };
    std::vector<ResolvedFault> schedule_;
    std::size_t nextScheduled_ = 0;

    /** Per (node, network out port): number of active fault causes. */
    std::vector<std::uint8_t> causeCount_;
    /** Per node: bitmask of faulted network output ports. */
    std::vector<PortMask> faultyMask_;
    /** Per node: active router-fault causes (schedule is the only
     *  source today, but counted for symmetry). */
    std::vector<std::uint8_t> routerFaulty_;

    std::priority_queue<Repair, std::vector<Repair>,
                        std::greater<Repair>>
        repairs_;

    std::vector<FaultChange> changes_;
    std::size_t activeLinks_ = 0;
    std::size_t activeRouters_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t repaired_ = 0;
};

} // namespace wormnet

#endif // WORMNET_FAULT_FAULT_HH
