#include "lexer.hh"

#include <cctype>
#include <cstring>

namespace wormnet_lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '$';
}

/** Multi-character punctuators, longest first within a family. */
const char *const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "<<", ">>", "<=", ">=", "==",
    "!=",  "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "->",  ".*",
};

} // namespace

LexedFile
lex(const std::string &path, const std::string &src)
{
    LexedFile out;
    out.path = path;

    std::size_t i = 0;
    const std::size_t n = src.size();
    int line = 1;
    int col = 1;

    const auto advance = [&](std::size_t k) {
        for (std::size_t j = 0; j < k && i < n; ++j, ++i) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
    };

    const auto peek = [&](std::size_t off) -> char {
        return i + off < n ? src[i + off] : '\0';
    };

    bool atLineStart = true; // only whitespace so far on this line

    while (i < n) {
        const char c = src[i];

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            if (c == '\n')
                atLineStart = true;
            advance(1);
            continue;
        }

        // Line comment.
        if (c == '/' && peek(1) == '/') {
            Comment cm;
            cm.line = cm.endLine = line;
            std::size_t j = i + 2;
            while (j < n && src[j] != '\n')
                ++j;
            cm.text = src.substr(i + 2, j - (i + 2));
            out.comments.push_back(std::move(cm));
            advance(j - i);
            continue;
        }

        // Block comment.
        if (c == '/' && peek(1) == '*') {
            Comment cm;
            cm.line = line;
            std::size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/'))
                ++j;
            cm.text = src.substr(i + 2, j - (i + 2));
            const std::size_t skip = (j + 1 < n) ? j + 2 - i : n - i;
            advance(skip);
            cm.endLine = line;
            out.comments.push_back(std::move(cm));
            continue;
        }

        // Preprocessor directive: skip to end of (continued) line,
        // but still harvest comments inside it.
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (src[i] == '/' && peek(1) == '/') {
                    Comment cm;
                    cm.line = cm.endLine = line;
                    std::size_t j = i + 2;
                    while (j < n && src[j] != '\n')
                        ++j;
                    cm.text = src.substr(i + 2, j - (i + 2));
                    out.comments.push_back(std::move(cm));
                    advance(j - i);
                    continue;
                }
                if (src[i] == '\\' && peek(1) == '\n') {
                    advance(2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                advance(1);
            }
            continue;
        }
        atLineStart = false;

        // Raw string literal: R"delim( ... )delim"
        if (c == 'R' && peek(1) == '"') {
            // Find the delimiter up to the '('.
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(' && j - i < 20)
                delim += src[j++];
            if (j < n && src[j] == '(') {
                const std::string close = ")" + delim + "\"";
                std::size_t k = src.find(close, j + 1);
                if (k == std::string::npos)
                    k = n;
                else
                    k += close.size();
                Token t{TokKind::String, "<raw-string>", line, col};
                out.tokens.push_back(std::move(t));
                advance(k - i);
                continue;
            }
            // Not actually a raw string: fall through as identifier.
        }

        if (identStart(c)) {
            std::size_t j = i;
            while (j < n && identChar(src[j]))
                ++j;
            Token t{TokKind::Ident, src.substr(i, j - i), line, col};
            out.tokens.push_back(std::move(t));
            advance(j - i);
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            // pp-number: digits, idents, dots, exponent signs.
            std::size_t j = i;
            while (j < n &&
                   (identChar(src[j]) || src[j] == '.' ||
                    ((src[j] == '+' || src[j] == '-') && j > i &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            Token t{TokKind::Number, src.substr(i, j - i), line, col};
            out.tokens.push_back(std::move(t));
            advance(j - i);
            continue;
        }

        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            Token t{quote == '"' ? TokKind::String : TokKind::Char,
                    "<literal>", line, col};
            out.tokens.push_back(std::move(t));
            advance((j < n ? j + 1 : n) - i);
            continue;
        }

        // Punctuation, longest match first.
        bool matched = false;
        for (const char *p : kPuncts) {
            const std::size_t len = std::strlen(p);
            if (src.compare(i, len, p) == 0) {
                out.tokens.push_back(
                    Token{TokKind::Punct, p, line, col});
                advance(len);
                matched = true;
                break;
            }
        }
        if (matched)
            continue;

        out.tokens.push_back(
            Token{TokKind::Punct, std::string(1, c), line, col});
        advance(1);
    }

    return out;
}

} // namespace wormnet_lint
