/**
 * @file
 * Minimal C++ lexer for wormnet-lint.
 *
 * wormnet-lint's built-in frontend does not depend on a clang
 * installation: it tokenizes C++ itself and drives heuristic,
 * brace-tracking parsing (model.hh) over the token stream. The lexer
 * therefore only needs to be faithful about the things a linter can
 * be confused by — comments (kept separately, they carry suppression
 * directives), string/char literals (never scanned for code),
 * raw strings, and preprocessor lines — not about the full grammar.
 */

#ifndef WORMNET_LINT_LEXER_HH
#define WORMNET_LINT_LEXER_HH

#include <string>
#include <vector>

namespace wormnet_lint
{

enum class TokKind
{
    Ident,   ///< identifiers and keywords
    Number,  ///< numeric literals (pp-numbers)
    String,  ///< string literals, incl. raw strings
    Char,    ///< character literals
    Punct,   ///< operators and punctuation, longest-match
};

struct Token
{
    TokKind kind;
    std::string text;
    int line = 0; ///< 1-based
    int col = 0;  ///< 1-based

    bool is(const char *t) const { return text == t; }
    bool isIdent() const { return kind == TokKind::Ident; }
};

/** A comment, kept out of the token stream for suppression lookup. */
struct Comment
{
    int line = 0;     ///< line the comment starts on
    int endLine = 0;  ///< last line (block comments span several)
    std::string text; ///< contents without the // or open/close marks
};

struct LexedFile
{
    std::string path;
    std::vector<Token> tokens;
    std::vector<Comment> comments;
};

/**
 * Tokenize @p source. Preprocessor directives are skipped whole
 * (including continuation lines) except that their comments are still
 * collected. Never throws on malformed input: the worst case is a
 * skewed token stream, which downstream heuristics tolerate.
 */
LexedFile lex(const std::string &path, const std::string &source);

} // namespace wormnet_lint

#endif // WORMNET_LINT_LEXER_HH
