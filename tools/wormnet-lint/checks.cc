#include "checks.hh"

#include <algorithm>
#include <deque>
#include <map>

namespace wormnet_lint
{

const char *const kCheckFamilies[3] = {"nondet-iter",
                                       "phase-discipline",
                                       "banned-api"};

namespace
{

/** Render a token span as readable source text (fix-it payloads). */
std::string
renderTokens(const std::vector<Token> &toks, std::size_t b,
             std::size_t e)
{
    std::string out;
    for (std::size_t i = b; i < e && i < toks.size(); ++i) {
        const std::string &s = toks[i].text;
        if (!out.empty()) {
            const std::string &prev = toks[i - 1].text;
            const bool noSpace =
                s == "::" || prev == "::" || s == "." || prev == "." ||
                s == "->" || prev == "->" || s == "," || s == ")" ||
                s == "]" || s == ";" || prev == "(" || prev == "[" ||
                s == "(" || s == "[" || prev == "<" || s == ">" ||
                s == "<";
            if (!noSpace)
                out += ' ';
        }
        out += s;
    }
    return out;
}

std::size_t
matchForward(const std::vector<Token> &toks, std::size_t open,
             const char *o, const char *c, std::size_t limit)
{
    int depth = 0;
    for (std::size_t i = open; i < limit; ++i) {
        if (toks[i].is(o))
            ++depth;
        else if (toks[i].is(c)) {
            --depth;
            if (depth == 0)
                return i;
        }
    }
    return limit;
}

bool
isClockName(const std::string &s)
{
    return s == "steady_clock" || s == "system_clock" ||
           s == "high_resolution_clock";
}

bool
isStdRngEngine(const std::string &s)
{
    return s == "mt19937" || s == "mt19937_64" ||
           s == "minstd_rand" || s == "minstd_rand0" ||
           s == "default_random_engine" || s == "ranlux24" ||
           s == "ranlux48" || s == "knuth_b";
}

struct Engine
{
    const Model &model;
    const CheckOptions &opt;
    std::vector<Diagnostic> diags;

    /** Unqualified name -> function indices. */
    std::map<std::string, std::vector<std::size_t>> byName;
    /** Reachability from output/commit/stats roots: for each
     *  function index, the root reason ("" = unreachable) and the
     *  predecessor on the BFS path. */
    std::vector<std::string> rootReason;
    std::vector<int> pred;

    explicit Engine(const Model &m, const CheckOptions &o)
        : model(m), opt(o)
    {
    }

    bool enabled(const char *family) const
    {
        return opt.enabled.empty() || opt.enabled.count(family) != 0;
    }

    void emit(const FunctionInfo *fn, const Token &at,
              const char *family, const char *kind,
              std::string message, std::string fixit = "",
              std::string note = "")
    {
        Diagnostic d;
        d.file = fn ? fn->file : "";
        d.line = at.line;
        d.col = at.col;
        d.check = family;
        d.kind = kind;
        d.message = std::move(message);
        if (opt.fixits)
            d.fixit = std::move(fixit);
        d.note = std::move(note);
        diags.push_back(std::move(d));
    }

    // ---- shared infrastructure -------------------------------------

    void buildCallGraph()
    {
        for (std::size_t i = 0; i < model.functions.size(); ++i)
            byName[model.functions[i].name].push_back(i);

        const std::size_t n = model.functions.size();
        rootReason.assign(n, "");
        pred.assign(n, -1);

        std::deque<std::size_t> queue;
        for (std::size_t i = 0; i < n; ++i) {
            const FunctionInfo &fn = model.functions[i];
            std::string why;
            if (fn.anno & kAnnoCommit)
                why = "commit phase";
            else if (fn.hasOstreamParam)
                why = "ostream output path";
            else if (fn.mentions.count("cout") ||
                     fn.mentions.count("printf") ||
                     fn.mentions.count("fprintf") ||
                     fn.mentions.count("puts") ||
                     fn.mentions.count("fwrite"))
                why = "stdout path";
            else if (fn.name.find("erialize") != std::string::npos ||
                     fn.name == "saveState" || fn.name == "loadState")
                why = "serialization path";
            else if (fn.mentions.count("stats_"))
                why = "stats/committed-state path";
            if (!why.empty()) {
                rootReason[i] = why + " '" + fn.qualName + "'";
                queue.push_back(i);
            }
        }
        while (!queue.empty()) {
            const std::size_t cur = queue.front();
            queue.pop_front();
            for (const std::string &callee :
                 model.functions[cur].callees) {
                auto it = byName.find(callee);
                if (it == byName.end())
                    continue;
                for (std::size_t nxt : it->second) {
                    if (nxt == cur || !rootReason[nxt].empty())
                        continue;
                    rootReason[nxt] = rootReason[cur];
                    pred[nxt] = static_cast<int>(cur);
                    queue.push_back(nxt);
                }
            }
        }
    }

    std::string chainNote(std::size_t fnIdx) const
    {
        std::string chain = model.functions[fnIdx].qualName;
        int p = pred[fnIdx];
        int guard = 0;
        while (p >= 0 && guard++ < 32) {
            chain = model.functions[p].qualName + " -> " + chain;
            p = pred[p];
        }
        return "reachable from " + rootReason[fnIdx] +
               (pred[fnIdx] >= 0 ? " via " + chain : "");
    }

    /** Is @p name an unordered container as seen from @p fn? */
    bool isUnorderedVar(const FunctionInfo &fn,
                        const std::string &name) const
    {
        for (const LocalVar &v : fn.locals)
            if (v.name == name && v.unorderedType)
                return true;
        if (const MemberInfo *m =
                model.findMember(fn.className, name))
            return m->unorderedType;
        if (const MemberInfo *m = model.findMemberAnyClass(name))
            return m->unorderedType;
        return false;
    }

    bool isFloatingVar(const FunctionInfo &fn,
                       const std::string &name) const
    {
        for (const LocalVar &v : fn.locals)
            if (v.name == name && v.floating)
                return true;
        return false;
    }

    static bool isAssignOp(const std::string &s)
    {
        return s == "=" || s == "+=" || s == "-=" || s == "*=" ||
               s == "/=" || s == "%=" || s == "|=" || s == "&=" ||
               s == "^=" || s == "<<=" || s == ">>=";
    }

    // ---- check 1: nondeterministic iteration -----------------------

    void checkNondetIter(std::size_t fnIdx)
    {
        const FunctionInfo &fn = model.functions[fnIdx];
        const std::vector<Token> &toks =
            model.files[fn.fileIndex].lx.tokens;
        const bool onPath = !rootReason[fnIdx].empty();

        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (toks[i].is("for") && i + 1 < fn.bodyEnd &&
                toks[i + 1].is("(")) {
                const std::size_t close =
                    matchForward(toks, i + 1, "(", ")", fn.bodyEnd);
                // Top-level ':' marks a range-for ('::' is one token).
                std::size_t colon = 0;
                int depth = 0;
                for (std::size_t k = i + 2; k < close; ++k) {
                    if (toks[k].is("(") || toks[k].is("[") ||
                        toks[k].is("{"))
                        ++depth;
                    else if (toks[k].is(")") || toks[k].is("]") ||
                             toks[k].is("}"))
                        --depth;
                    else if (depth == 0 && toks[k].is(":")) {
                        colon = k;
                        break;
                    }
                }
                if (colon == 0)
                    continue;

                bool sorted = false;
                std::string culprit;
                for (std::size_t k = colon + 1; k < close; ++k) {
                    if (toks[k].is("sorted_view")) {
                        sorted = true;
                        break;
                    }
                    if (toks[k].isIdent() && culprit.empty() &&
                        isUnorderedVar(fn, toks[k].text))
                        culprit = toks[k].text;
                }
                if (!sorted && !culprit.empty()) {
                    const std::string declText =
                        renderTokens(toks, i + 2, colon);
                    const std::string rangeText =
                        renderTokens(toks, colon + 1, close);
                    if (onPath && enabled("nondet-iter")) {
                        emit(&fn, toks[i], "nondet-iter", "range-for",
                             "range-for over unordered container '" +
                                 culprit + "' in '" + fn.qualName +
                                 "' on a determinism-critical path",
                             "for (" + declText +
                                 " : wormnet::sorted_view(" +
                                 rangeText +
                                 "))  [#include "
                                 "\"common/sorted_view.hh\"]",
                             chainNote(fnIdx));
                    }
                    checkFloatAccum(fnIdx, close, culprit);
                }
            }

            // Iterator loops: unordered.begin() / .cbegin().
            if (enabled("nondet-iter") && onPath && toks[i].isIdent() &&
                i + 3 < fn.bodyEnd && toks[i + 1].is(".") &&
                (toks[i + 2].is("begin") || toks[i + 2].is("cbegin")) &&
                toks[i + 3].is("(") &&
                isUnorderedVar(fn, toks[i].text)) {
                emit(&fn, toks[i], "nondet-iter", "iterator-loop",
                     "iterator over unordered container '" +
                         toks[i].text + "' in '" + fn.qualName +
                         "' on a determinism-critical path",
                     "iterate wormnet::sorted_view(" + toks[i].text +
                         ") instead",
                     chainNote(fnIdx));
            }
        }
    }

    /** Float accumulation inside a loop over @p container (the body
     *  starts after the for-header's closing paren @p close). */
    void checkFloatAccum(std::size_t fnIdx, std::size_t close,
                         const std::string &container)
    {
        if (!enabled("banned-api"))
            return;
        const FunctionInfo &fn = model.functions[fnIdx];
        const std::vector<Token> &toks =
            model.files[fn.fileIndex].lx.tokens;
        std::size_t bodyEnd;
        if (close + 1 < fn.bodyEnd && toks[close + 1].is("{"))
            bodyEnd = matchForward(toks, close + 1, "{", "}",
                                   fn.bodyEnd);
        else {
            bodyEnd = close + 1;
            while (bodyEnd < fn.bodyEnd && !toks[bodyEnd].is(";"))
                ++bodyEnd;
        }
        for (std::size_t k = close + 1; k < bodyEnd; ++k) {
            if (toks[k].isIdent() && k + 1 < bodyEnd &&
                toks[k + 1].is("+=") &&
                isFloatingVar(fn, toks[k].text)) {
                emit(&fn, toks[k], "banned-api", "float-accum",
                     "floating-point accumulation into '" +
                         toks[k].text +
                         "' ordered by unordered container '" +
                         container + "' in '" + fn.qualName +
                         "': the sum depends on hash-iteration "
                         "order",
                     "accumulate over wormnet::sorted_view(" +
                         container + ") or into an ordered "
                         "intermediate");
            }
        }
    }

    // ---- check 2: phase discipline ---------------------------------

    void checkPhase(std::size_t fnIdx)
    {
        const FunctionInfo &fn = model.functions[fnIdx];
        if (!(fn.anno & kAnnoDecide))
            return;
        const std::vector<Token> &toks =
            model.files[fn.fileIndex].lx.tokens;

        // (a) global RNG draws.
        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (toks[i].isIdent() && (toks[i].is("rng_") ||
                                      toks[i].is("globalRng"))) {
                emit(&fn, toks[i], "phase-discipline", "decide-rng",
                     "WN_DECIDE_PHASE function '" + fn.qualName +
                         "' draws from the global RNG ('" +
                         toks[i].text +
                         "'): RNG consumption order would depend on "
                         "the shard schedule",
                     "consume the RNG in the commit phase, or use a "
                     "per-node/per-shard stream");
            }
        }

        // (b) calls into commit-annotated code, transitively through
        // un-annotated helpers. Paths are function indices so the
        // diagnostic can anchor at the first-hop call site.
        std::deque<std::vector<std::size_t>> queue;
        queue.push_back({fnIdx});
        std::set<std::size_t> seen{fnIdx};
        while (!queue.empty()) {
            std::vector<std::size_t> path = std::move(queue.front());
            queue.pop_front();
            const std::size_t cur = path.back();
            for (const std::string &callee :
                 model.functions[cur].callees) {
                auto it = byName.find(callee);
                if (it == byName.end())
                    continue;
                for (std::size_t nxt : it->second) {
                    if (seen.count(nxt))
                        continue;
                    seen.insert(nxt);
                    const FunctionInfo &g = model.functions[nxt];
                    auto npath = path;
                    npath.push_back(nxt);
                    if (g.anno & kAnnoCommit) {
                        std::string chain;
                        for (std::size_t s : npath)
                            chain += (chain.empty() ? "" : " -> ") +
                                     model.functions[s].qualName;
                        // Anchor at the call of the first hop out of
                        // fn (the direct callee on this path).
                        const std::string &hop =
                            model.functions[npath[1]].name;
                        Token at{TokKind::Ident, fn.name, fn.line, 1};
                        for (std::size_t i = fn.bodyBegin;
                             i < fn.bodyEnd; ++i)
                            if (toks[i].is(hop.c_str())) {
                                at = toks[i];
                                break;
                            }
                        emit(&fn, at, "phase-discipline",
                             "decide-calls-commit",
                             "WN_DECIDE_PHASE function '" +
                                 fn.qualName +
                                 "' reaches WN_COMMIT_PHASE "
                                 "function '" +
                                 g.qualName + "'",
                             "", "call chain: " + chain);
                        continue; // don't traverse past commit fns
                    }
                    if (!(g.anno & kAnnoDecide))
                        queue.push_back(std::move(npath));
                }
            }
        }

        // (c) writes to members that are not WN_SHARD_LOCAL.
        checkDecideWrites(fnIdx);
    }

    void checkDecideWrites(std::size_t fnIdx)
    {
        const FunctionInfo &fn = model.functions[fnIdx];
        const std::vector<Token> &toks =
            model.files[fn.fileIndex].lx.tokens;

        const auto flagWrite = [&](const Token &at,
                                   const MemberInfo &m,
                                   const char *how) {
            emit(&fn, at, "phase-discipline", "decide-write",
                 std::string("WN_DECIDE_PHASE function '") +
                     fn.qualName + "' " + how + " member '" + m.name +
                     "' which is not WN_SHARD_LOCAL",
                 "mark the member WN_SHARD_LOCAL if writes are "
                 "shard-disjoint by construction, or move the write "
                 "to the commit phase");
        };

        // Statement-level pass for non-const reference / pointer
        // bindings: `Type &x = ...member_...;` without const.
        std::vector<std::size_t> stmt; // token indices
        const auto flushStmt = [&]() {
            if (stmt.size() < 3) {
                stmt.clear();
                return;
            }
            // Find a top-level '=' with a declarator LHS.
            int depth = 0;
            std::size_t eq = 0;
            for (std::size_t k = 0; k < stmt.size(); ++k) {
                const Token &t = toks[stmt[k]];
                if (t.is("(") || t.is("[") || t.is("<"))
                    ++depth;
                else if (t.is(")") || t.is("]") || t.is(">"))
                    --depth;
                else if (depth == 0 && t.is("=") && k > 0) {
                    eq = k;
                    break;
                }
            }
            if (eq >= 2 && toks[stmt[eq - 1]].isIdent()) {
                bool hasRef = false, hasConst = false;
                for (std::size_t k = 0; k < eq - 1; ++k) {
                    if (toks[stmt[k]].is("&") || toks[stmt[k]].is("*"))
                        hasRef = true;
                    if (toks[stmt[k]].is("const"))
                        hasConst = true;
                }
                if (hasRef && !hasConst) {
                    // Only the *first* member named after '=' can be
                    // the root of the bound lvalue; members deeper in
                    // the expression (index arithmetic, call
                    // arguments) are reads.
                    for (std::size_t k = eq + 1; k < stmt.size();
                         ++k) {
                        const Token &t = toks[stmt[k]];
                        if (!t.isIdent())
                            continue;
                        const MemberInfo *m = model.findMember(
                            fn.className, t.text);
                        if (!m)
                            continue;
                        if (!m->shardLocal)
                            flagWrite(t, *m,
                                      "binds a mutable reference to");
                        break;
                    }
                }
            }
            stmt.clear();
        };

        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            const Token &t = toks[i];
            if (t.is(";") || t.is("{") || t.is("}")) {
                flushStmt();
                continue;
            }
            stmt.push_back(i);

            if (!t.isIdent())
                continue;
            const MemberInfo *m =
                model.findMember(fn.className, t.text);
            if (!m)
                continue;

            // Direct write: member [idx]... (.field)* <assign-op>
            std::size_t k = i + 1;
            while (k < fn.bodyEnd) {
                if (toks[k].is("[")) {
                    k = matchForward(toks, k, "[", "]", fn.bodyEnd) +
                        1;
                    continue;
                }
                if ((toks[k].is(".") || toks[k].is("->")) &&
                    k + 1 < fn.bodyEnd && toks[k + 1].isIdent() &&
                    (k + 2 >= fn.bodyEnd || !toks[k + 2].is("("))) {
                    k += 2;
                    continue;
                }
                break;
            }
            bool wrote = false;
            if (k < fn.bodyEnd && (isAssignOp(toks[k].text) ||
                                   toks[k].is("++") ||
                                   toks[k].is("--")))
                wrote = true;
            if (i > fn.bodyBegin && (toks[i - 1].is("++") ||
                                     toks[i - 1].is("--")))
                wrote = true;
            // Mutating method call on the member (or its element).
            if (!wrote && k + 1 < fn.bodyEnd &&
                (toks[k].is(".") || toks[k].is("->"))) {
                static const std::set<std::string> mut = {
                    "push_back", "emplace_back", "pop_back", "clear",
                    "insert",    "emplace",      "erase",    "resize",
                    "assign",    "push",         "pop",      "swap",
                    "fill",      "reserve",      "shrink_to_fit"};
                if (mut.count(toks[k + 1].text) &&
                    k + 2 < fn.bodyEnd && toks[k + 2].is("("))
                    wrote = true;
            }
            if (!wrote && i > fn.bodyBegin && toks[i - 1].is("&")) {
                // Address-of as a call argument: &member_ handed out
                // mutably.
                const Token &before =
                    i >= 2 ? toks[i - 2] : toks[i - 1];
                if (before.is("(") || before.is(","))
                    wrote = true;
            }
            if (wrote && !m->shardLocal)
                flagWrite(t, *m, "writes");
        }
        flushStmt();
    }

    // ---- check 3: banned APIs --------------------------------------

    void checkBannedApi(std::size_t fnIdx)
    {
        if (!enabled("banned-api"))
            return;
        const FunctionInfo &fn = model.functions[fnIdx];
        const FileModel &fm = model.files[fn.fileIndex];
        const std::vector<Token> &toks = fm.lx.tokens;

        for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            const Token &t = toks[i];
            if (!t.isIdent())
                continue;
            const Token *prev = i > 0 ? &toks[i - 1] : nullptr;
            const bool memberAccess =
                prev && (prev->is(".") || prev->is("->"));
            const bool stdQualified =
                prev && prev->is("::") && i >= 2 &&
                toks[i - 2].is("std");
            const bool otherQualified =
                prev && prev->is("::") && !stdQualified;

            // rand()/srand()/time(): C nondeterminism.
            if ((t.is("rand") || t.is("srand") || t.is("time")) &&
                i + 1 < fn.bodyEnd && toks[i + 1].is("(") &&
                !memberAccess && !otherQualified) {
                emit(&fn, t, "banned-api", "libc",
                     "call to '" + t.text + "()' in '" + fn.qualName +
                         "': nondeterministic across runs; draw "
                         "from a seeded wormnet::Rng instead");
                continue;
            }

            // Wall-clock reads, directly or through a using-alias.
            if (i + 2 < fn.bodyEnd && toks[i + 1].is("::") &&
                toks[i + 2].is("now")) {
                const bool direct = isClockName(t.text);
                const bool viaAlias =
                    !direct &&
                    (fm.aliases.count(t.text)
                         ? fm.aliases.at(t.text).find("_clock") !=
                               std::string::npos
                         : model.aliasTextContains(t.text, "_clock"));
                if (direct || viaAlias) {
                    emit(&fn, t, "banned-api", "wall-clock",
                         "wall-clock read '" + t.text +
                             "::now()' in '" + fn.qualName +
                             "': simulation state and output must "
                             "not depend on host time");
                    continue;
                }
            }

            if (t.is("random_device")) {
                emit(&fn, t, "banned-api", "random-device",
                     "std::random_device in '" + fn.qualName +
                         "': nondeterministic seed source; derive "
                         "seeds with deriveSeed()/Rng::split()");
                continue;
            }

            // Default-constructed std RNG engines (unpinned seed).
            if (isStdRngEngine(t.text) && !memberAccess) {
                std::size_t k = i + 1;
                if (k < fn.bodyEnd && toks[k].isIdent()) {
                    const std::size_t after = k + 1;
                    if (after >= fn.bodyEnd ||
                        toks[after].is(";") || toks[after].is(",") ||
                        toks[after].is(")")) {
                        emit(&fn, t, "banned-api", "rng-seed",
                             "default-seeded std::" + t.text +
                                 " in '" + fn.qualName +
                                 "': seed it explicitly from the "
                                 "experiment's seed derivation");
                        continue;
                    }
                }
            }

            // Pointer-value ordering / hashing.
            if ((t.is("hash") || t.is("less") || t.is("greater")) &&
                stdQualified && i + 1 < fn.bodyEnd &&
                toks[i + 1].is("<")) {
                const std::size_t close = matchForward(
                    toks, i + 1, "<", ">", fn.bodyEnd);
                for (std::size_t k = i + 2; k < close; ++k)
                    if (toks[k].is("*")) {
                        emit(&fn, t, "banned-api", "ptr-order",
                             "std::" + t.text +
                                 " over a pointer type in '" +
                                 fn.qualName +
                                 "': pointer values vary run to "
                                 "run; key by a stable id");
                        break;
                    }
            }

            // Pointer-keyed associative containers.
            if ((t.text.rfind("unordered_", 0) == 0 ||
                 t.is("map") || t.is("set")) &&
                i + 1 < fn.bodyEnd && toks[i + 1].is("<") &&
                !memberAccess) {
                const std::size_t close = matchForward(
                    toks, i + 1, "<", ">", fn.bodyEnd);
                // First template argument only.
                int depth = 0;
                for (std::size_t k = i + 2; k < close; ++k) {
                    if (toks[k].is("<") || toks[k].is("("))
                        ++depth;
                    else if (toks[k].is(">") || toks[k].is(")"))
                        --depth;
                    else if (depth == 0 && toks[k].is(","))
                        break;
                    else if (depth == 0 && toks[k].is("*")) {
                        emit(&fn, t, "banned-api", "ptr-key",
                             "pointer-keyed '" + t.text + "' in '" +
                                 fn.qualName +
                                 "': iteration/ordering follows "
                                 "the allocator; key by a stable "
                                 "id");
                        break;
                    }
                }
            }
        }
    }

    // ---- suppression handling --------------------------------------

    void applySuppressions()
    {
        std::vector<Diagnostic> kept;
        for (Diagnostic &d : diags) {
            const FileModel *fm = nullptr;
            for (const FileModel &f : model.files)
                if (f.path == d.file) {
                    fm = &f;
                    break;
                }
            bool suppressed = false;
            if (fm) {
                for (const Suppression &s : fm->suppressions) {
                    if (!s.checks.count(d.check) &&
                        !s.checks.count("all"))
                        continue;
                    if (s.wholeFile || s.appliesToLine == d.line ||
                        s.line == d.line) {
                        s.used = true;
                        suppressed = true;
                    }
                }
            }
            if (!suppressed)
                kept.push_back(std::move(d));
        }
        diags = std::move(kept);

        // Suppression policy: a justification is mandatory; unused
        // directives are surfaced (warning) so stale allows rot away.
        for (const FileModel &f : model.files) {
            for (const Suppression &s : f.suppressions) {
                Diagnostic d;
                d.file = f.path;
                d.line = s.line;
                d.col = 1;
                d.check = "suppression";
                if (s.justification.empty()) {
                    d.kind = "missing-justification";
                    d.severity = Severity::Error;
                    d.message =
                        "wormnet-lint suppression without a written "
                        "justification: add '// wormnet-lint: "
                        "allow(<check>): <why this is safe>'";
                    diags.push_back(std::move(d));
                } else if (!s.used && opt.strictSuppressions) {
                    d.kind = "unused";
                    d.severity = Severity::Warning;
                    d.message =
                        "unused wormnet-lint suppression (no "
                        "matching diagnostic on the target line)";
                    diags.push_back(std::move(d));
                }
            }
        }
    }

    std::vector<Diagnostic> run()
    {
        buildCallGraph();
        for (std::size_t i = 0; i < model.functions.size(); ++i) {
            if (enabled("nondet-iter") || enabled("banned-api"))
                checkNondetIter(i);
            if (enabled("phase-discipline"))
                checkPhase(i);
            checkBannedApi(i);
        }
        applySuppressions();
        std::sort(diags.begin(), diags.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.file != b.file)
                          return a.file < b.file;
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.col < b.col;
                  });
        return std::move(diags);
    }
};

} // namespace

std::vector<Diagnostic>
runChecks(const Model &model, const CheckOptions &opt)
{
    Engine eng(model, opt);
    return eng.run();
}

} // namespace wormnet_lint
