/**
 * @file
 * Clang LibTooling frontend for wormnet-lint (opt-in, see
 * CMakeLists.txt: -DWORMNET_LINT_CLANG=ON).
 *
 * Implements the same three check families as the built-in frontend
 * on real ASTs built from compile_commands.json:
 *
 *  - nondet-iter: CXXForRangeStmt whose range's desugared record
 *    type is a std::unordered_* container and is not wrapped in
 *    wormnet::sorted_view().
 *  - phase-discipline: functions carrying the
 *    [[clang::annotate("wormnet::decide_phase")]] attribute (spelled
 *    WN_DECIDE_PHASE) must not reference the global RNG, must not
 *    write fields lacking the wormnet::shard_local annotation, and
 *    must not call commit_phase-annotated functions.
 *  - banned-api: rand/srand/time, *_clock::now(),
 *    std::random_device, default-seeded std RNG engines.
 *
 * Reachability gating of nondet-iter (commit/serialization/stats/
 * stdout paths) matches the built-in frontend's root set: any
 * function that references a std stream, a printf-family function,
 * a field named stats_, or is (de)serialization by name.
 *
 * Suppressions are honoured by re-reading the physical source line
 * (and the one above) for `wormnet-lint: allow(<check>)`, identical
 * to the built-in frontend's contract; justification text is
 * mandatory.
 */

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

#include <set>
#include <string>

using namespace clang;

namespace
{

llvm::cl::OptionCategory kCat("wormnet-lint options");

int gErrors = 0;

bool
hasAnnotation(const Decl *d, llvm::StringRef what)
{
    if (!d)
        return false;
    for (const auto *attr : d->specific_attrs<AnnotateAttr>())
        if (attr->getAnnotation() == what)
            return true;
    return false;
}

bool
typeIsUnordered(QualType qt)
{
    if (qt.isNull())
        return false;
    const std::string name = qt.getCanonicalType().getAsString();
    return name.find("unordered_map") != std::string::npos ||
           name.find("unordered_set") != std::string::npos;
}

/** Same-line / previous-line allow() lookup on the physical source. */
bool
isSuppressed(const SourceManager &sm, SourceLocation loc,
             llvm::StringRef family)
{
    if (loc.isInvalid())
        return false;
    const FileID fid = sm.getFileID(loc);
    const unsigned line = sm.getSpellingLineNumber(loc);
    bool invalid = false;
    const llvm::StringRef buf = sm.getBufferData(fid, &invalid);
    if (invalid)
        return false;
    llvm::SmallVector<llvm::StringRef, 0> lines;
    buf.split(lines, '\n');
    for (unsigned l : {line, line > 1 ? line - 1 : line}) {
        if (l == 0 || l > lines.size())
            continue;
        const llvm::StringRef text = lines[l - 1];
        const std::size_t p = text.find("wormnet-lint:");
        if (p == llvm::StringRef::npos)
            continue;
        if (text.find("allow(" + family.str()) !=
                llvm::StringRef::npos ||
            text.find("allow(all") != llvm::StringRef::npos)
            return true;
    }
    return false;
}

void
report(const SourceManager &sm, SourceLocation loc,
       llvm::StringRef family, llvm::StringRef msg)
{
    if (isSuppressed(sm, loc, family))
        return;
    ++gErrors;
    llvm::errs() << sm.getFilename(loc) << ":"
                 << sm.getSpellingLineNumber(loc) << ":"
                 << sm.getSpellingColumnNumber(loc) << ": error: ["
                 << family << "] " << msg << "\n";
}

class Visitor : public RecursiveASTVisitor<Visitor>
{
public:
    explicit Visitor(ASTContext &ctx) : ctx_(ctx) {}

    bool TraverseFunctionDecl(FunctionDecl *fd)
    {
        const FunctionDecl *prev = current_;
        current_ = fd;
        const bool r =
            RecursiveASTVisitor::TraverseFunctionDecl(fd);
        current_ = prev;
        return r;
    }

    bool TraverseCXXMethodDecl(CXXMethodDecl *md)
    {
        const FunctionDecl *prev = current_;
        current_ = md;
        const bool r =
            RecursiveASTVisitor::TraverseCXXMethodDecl(md);
        current_ = prev;
        return r;
    }

    bool VisitCXXForRangeStmt(CXXForRangeStmt *s)
    {
        const Expr *range = s->getRangeInit();
        if (!range)
            return true;
        if (typeIsUnordered(range->getType()) &&
            !rangeUsesSortedView(range)) {
            report(ctx_.getSourceManager(), s->getForLoc(),
                   "nondet-iter",
                   "range-for over unordered container; route "
                   "through wormnet::sorted_view()");
        }
        return true;
    }

    bool VisitCallExpr(CallExpr *ce)
    {
        const FunctionDecl *callee = ce->getDirectCallee();
        if (!callee)
            return true;
        const std::string name = callee->getNameAsString();
        const SourceManager &sm = ctx_.getSourceManager();
        if (name == "rand" || name == "srand" || name == "time")
            report(sm, ce->getBeginLoc(), "banned-api",
                   "call to '" + name + "()': nondeterministic");
        if (name == "now") {
            if (const auto *md =
                    llvm::dyn_cast<CXXMethodDecl>(callee)) {
                (void)md;
            }
            const std::string qual =
                callee->getQualifiedNameAsString();
            if (qual.find("_clock::now") != std::string::npos)
                report(sm, ce->getBeginLoc(), "banned-api",
                       "wall-clock read '" + qual + "'");
        }
        if (current_ &&
            hasAnnotation(current_, "wormnet::decide_phase") &&
            hasAnnotation(callee, "wormnet::commit_phase"))
            report(sm, ce->getBeginLoc(), "phase-discipline",
                   "decide-phase code calls commit-phase function '" +
                       name + "'");
        return true;
    }

    bool VisitDeclRefExpr(DeclRefExpr *dre)
    {
        if (!current_ ||
            !hasAnnotation(current_, "wormnet::decide_phase"))
            return true;
        const std::string name =
            dre->getDecl()->getNameAsString();
        if (name == "rng_" || name == "globalRng")
            report(ctx_.getSourceManager(), dre->getBeginLoc(),
                   "phase-discipline",
                   "decide-phase code references the global RNG");
        return true;
    }

    bool VisitBinaryOperator(BinaryOperator *bo)
    {
        if (!bo->isAssignmentOp() || !current_ ||
            !hasAnnotation(current_, "wormnet::decide_phase"))
            return true;
        const Expr *lhs = bo->getLHS()->IgnoreParenImpCasts();
        if (const auto *me = llvm::dyn_cast<MemberExpr>(lhs)) {
            const ValueDecl *field = me->getMemberDecl();
            if (llvm::isa<FieldDecl>(field) &&
                !hasAnnotation(field, "wormnet::shard_local"))
                report(ctx_.getSourceManager(), bo->getOperatorLoc(),
                       "phase-discipline",
                       "decide-phase write to member '" +
                           field->getNameAsString() +
                           "' not marked WN_SHARD_LOCAL");
        }
        return true;
    }

    bool VisitVarDecl(VarDecl *vd)
    {
        const std::string t =
            vd->getType().getCanonicalType().getAsString();
        const SourceManager &sm = ctx_.getSourceManager();
        if (t.find("random_device") != std::string::npos)
            report(sm, vd->getLocation(), "banned-api",
                   "std::random_device: nondeterministic seed");
        if ((t.find("mersenne_twister_engine") != std::string::npos ||
             t.find("linear_congruential_engine") !=
                 std::string::npos) &&
            !vd->hasInit())
            report(sm, vd->getLocation(), "banned-api",
                   "default-seeded std RNG engine; seed explicitly");
        return true;
    }

private:
    bool rangeUsesSortedView(const Expr *range) const
    {
        if (const auto *call = llvm::dyn_cast<CallExpr>(
                range->IgnoreParenImpCasts())) {
            if (const FunctionDecl *fd = call->getDirectCallee())
                return fd->getQualifiedNameAsString().find(
                           "sorted_view") != std::string::npos;
        }
        return false;
    }

    ASTContext &ctx_;
    const FunctionDecl *current_ = nullptr;
};

class Consumer : public ASTConsumer
{
public:
    void HandleTranslationUnit(ASTContext &ctx) override
    {
        Visitor v(ctx);
        v.TraverseDecl(ctx.getTranslationUnitDecl());
    }
};

class Action : public ASTFrontendAction
{
public:
    std::unique_ptr<ASTConsumer>
    CreateASTConsumer(CompilerInstance &, llvm::StringRef) override
    {
        return std::make_unique<Consumer>();
    }
};

} // namespace

int
main(int argc, const char **argv)
{
    auto parser =
        tooling::CommonOptionsParser::create(argc, argv, kCat);
    if (!parser) {
        llvm::errs() << llvm::toString(parser.takeError()) << "\n";
        return 2;
    }
    tooling::ClangTool tool(parser->getCompilations(),
                            parser->getSourcePathList());
    const int rc = tool.run(
        tooling::newFrontendActionFactory<Action>().get());
    if (rc != 0)
        return 2;
    return gErrors != 0 ? 1 : 0;
}
