/**
 * @file
 * wormnet-lint: static determinism & phase-discipline checker.
 *
 * Guards the repo's bitwise-reproducibility invariant at compile
 * time: byte-identical golden tables at any --jobs, bitwise-identical
 * sharded stepping at any --sim-jobs, and zero-false-positive DWFG
 * verdicts all assume that no committed state, stats or stdout ever
 * depends on hash-iteration order, wall clocks, or the shard
 * schedule. This tool makes those conventions diagnosable instead of
 * tribal. See docs/STATIC_ANALYSIS.md for the check catalogue and
 * the suppression policy.
 *
 * Frontends: the built-in frontend (always available, zero external
 * dependencies) lexes and models the C++ itself — see lexer.hh /
 * model.hh for the accuracy contract. When the build host has a full
 * clang development installation, -DWORMNET_LINT_CLANG=ON compiles
 * the LibTooling/AST-matcher frontend instead (frontend_clang.cc),
 * which consumes compile_commands.json directly; both emit the same
 * diagnostics format, and the fixture suite pins the behaviour of
 * whichever one is built.
 *
 * Usage:
 *   wormnet-lint [options] <file-or-dir>...
 *   wormnet-lint -p build src bench tests   # compile_commands mode
 *
 * Options:
 *   -p <dir>          read <dir>/compile_commands.json and lint every
 *                     listed source plus headers next to them
 *   --check=a,b       run only the named families
 *                     (nondet-iter, phase-discipline, banned-api)
 *   --exclude=substr  skip paths containing substr (repeatable)
 *   --no-fixits       omit fix-it hints
 *   --json            machine-readable output
 *   --list-checks     print the check families and exit
 *
 * Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include "checks.hh"
#include "lexer.hh"
#include "model.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace wormnet_lint;

namespace
{

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".hpp" || ext == ".h";
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Pull the "file" entries out of compile_commands.json. A linter-
 *  grade scan, not a JSON parser: entries are written by CMake with
 *  predictable quoting. */
std::vector<std::string>
compileCommandsFiles(const fs::path &jsonPath)
{
    std::vector<std::string> out;
    const std::string text = readFile(jsonPath);
    std::size_t pos = 0;
    while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
        pos = text.find(':', pos);
        if (pos == std::string::npos)
            break;
        pos = text.find('"', pos);
        if (pos == std::string::npos)
            break;
        const std::size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        out.push_back(text.substr(pos + 1, end - pos - 1));
        pos = end + 1;
    }
    return out;
}

void
printJsonEscaped(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (c == '\n')
            os << "\\n";
        else
            os << c;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::vector<std::string> excludes;
    std::string buildDir;
    CheckOptions opt;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-p") {
            if (++i >= argc) {
                std::cerr << "wormnet-lint: -p needs a directory\n";
                return 2;
            }
            buildDir = argv[i];
        } else if (a.rfind("--check=", 0) == 0) {
            std::string list = a.substr(8);
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                const std::string c =
                    list.substr(start, comma - start);
                if (!c.empty())
                    opt.enabled.insert(c);
                start = comma + 1;
            }
        } else if (a.rfind("--exclude=", 0) == 0) {
            excludes.push_back(a.substr(10));
        } else if (a == "--no-fixits") {
            opt.fixits = false;
        } else if (a == "--strict-suppressions") {
            opt.strictSuppressions = true;
        } else if (a == "--json") {
            json = true;
        } else if (a == "--list-checks") {
            for (const char *f : kCheckFamilies)
                std::cout << f << "\n";
            return 0;
        } else if (a == "--help" || a == "-h") {
            std::cout
                << "usage: wormnet-lint [-p <builddir>] "
                   "[--check=a,b] [--exclude=substr] [--json] "
                   "[--no-fixits] <file-or-dir>...\n";
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::cerr << "wormnet-lint: unknown option " << a << "\n";
            return 2;
        } else {
            inputs.push_back(a);
        }
    }

    // Gather the file set: explicit files, recursive directories,
    // and/or everything compile_commands.json names (plus the
    // headers sitting next to those sources — headers never appear
    // in the database but carry the class/annotation declarations).
    std::set<std::string> files;
    std::set<std::string> headerDirs;
    if (!buildDir.empty()) {
        const fs::path cc =
            fs::path(buildDir) / "compile_commands.json";
        if (!fs::exists(cc)) {
            std::cerr << "wormnet-lint: " << cc.string()
                      << " not found (configure with "
                         "CMAKE_EXPORT_COMPILE_COMMANDS=ON)\n";
            return 2;
        }
        for (const std::string &f : compileCommandsFiles(cc)) {
            files.insert(f);
            headerDirs.insert(fs::path(f).parent_path().string());
        }
        for (const std::string &d : headerDirs) {
            std::error_code ec;
            for (fs::directory_iterator it(d, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file() &&
                    isSourceFile(it->path()))
                    files.insert(it->path().string());
            }
        }
    }
    for (const std::string &in : inputs) {
        std::error_code ec;
        if (fs::is_directory(in, ec)) {
            for (fs::recursive_directory_iterator it(in, ec), end;
                 !ec && it != end; it.increment(ec)) {
                if (it->is_regular_file() &&
                    isSourceFile(it->path()))
                    files.insert(it->path().string());
            }
        } else if (fs::exists(in, ec)) {
            files.insert(in);
        } else {
            std::cerr << "wormnet-lint: no such file or directory: "
                      << in << "\n";
            return 2;
        }
    }
    if (files.empty()) {
        std::cerr << "wormnet-lint: no input files (pass paths or "
                     "-p <builddir>)\n";
        return 2;
    }

    Model model;
    for (const std::string &f : files) {
        bool skip = false;
        for (const std::string &ex : excludes)
            if (f.find(ex) != std::string::npos)
                skip = true;
        if (skip)
            continue;
        buildFileModel(model, lex(f, readFile(f)));
    }
    finalizeModel(model);

    const std::vector<Diagnostic> diags = runChecks(model, opt);

    std::size_t errors = 0, warnings = 0;
    if (json) {
        std::cout << "[";
        bool first = true;
        for (const Diagnostic &d : diags) {
            if (!first)
                std::cout << ",";
            first = false;
            std::cout << "\n  {\"file\": \"";
            printJsonEscaped(std::cout, d.file);
            std::cout << "\", \"line\": " << d.line
                      << ", \"col\": " << d.col << ", \"severity\": \""
                      << (d.severity == Severity::Error ? "error"
                                                        : "warning")
                      << "\", \"check\": \"" << d.check
                      << "\", \"kind\": \"" << d.kind
                      << "\", \"message\": \"";
            printJsonEscaped(std::cout, d.message);
            std::cout << "\"";
            if (!d.fixit.empty()) {
                std::cout << ", \"fixit\": \"";
                printJsonEscaped(std::cout, d.fixit);
                std::cout << "\"";
            }
            std::cout << "}";
        }
        std::cout << "\n]\n";
    }
    for (const Diagnostic &d : diags) {
        const bool err = d.severity == Severity::Error;
        (err ? errors : warnings) += 1;
        if (json)
            continue;
        std::cout << d.file << ":" << d.line << ":" << d.col << ": "
                  << (err ? "error" : "warning") << ": [" << d.check
                  << (d.kind.empty() ? "" : "/" + d.kind) << "] "
                  << d.message << "\n";
        if (!d.fixit.empty())
            std::cout << d.file << ":" << d.line
                      << ": fixit: " << d.fixit << "\n";
        if (!d.note.empty())
            std::cout << d.file << ":" << d.line
                      << ": note: " << d.note << "\n";
    }
    if (!json)
        std::cerr << "wormnet-lint: " << model.files.size()
                  << " files, " << errors << " error(s), " << warnings
                  << " warning(s)\n";

    return errors != 0 ? 1 : 0;
}
