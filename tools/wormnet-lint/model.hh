/**
 * @file
 * Source model for wormnet-lint.
 *
 * A deliberately approximate, linter-grade view of the code: scopes
 * are recovered by brace tracking, functions by the
 * `name (args) [qualifiers] {` shape, members by class-scope
 * declaration statements. The model over-approximates (every
 * `ident(` inside a body is a potential call; a member with the same
 * name in two classes is matched in both) — which is the right
 * direction for determinism checks: reachability may include too
 * much, never too little. Anything genuinely ambiguous is resolved
 * by the suppression mechanism, never by silently dropping code.
 */

#ifndef WORMNET_LINT_MODEL_HH
#define WORMNET_LINT_MODEL_HH

#include "lexer.hh"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace wormnet_lint
{

/** Phase annotations (the WN_* macros from src/common/contracts.hh). */
enum PhaseAnno : unsigned
{
    kAnnoNone = 0,
    kAnnoDecide = 1u << 0,
    kAnnoCommit = 1u << 1,
};

struct MemberInfo
{
    std::string name;
    std::string className;
    bool shardLocal = false;    ///< WN_SHARD_LOCAL on the declaration
    bool unorderedType = false; ///< declared type hashes (unordered_*)
    int line = 0;
};

struct LocalVar
{
    std::string name;
    bool unorderedType = false;
    bool floating = false; ///< float/double accumulator candidate
};

struct FunctionInfo
{
    std::string name;      ///< unqualified
    std::string qualName;  ///< Class::name or ns-qualified best guess
    std::string className; ///< enclosing/qualifying class, may be ""
    std::string file;
    int line = 0;
    unsigned anno = kAnnoNone;
    bool hasOstreamParam = false;
    /** Token index range of the body in its file's token stream,
     *  excluding the outer braces. */
    std::size_t bodyBegin = 0, bodyEnd = 0;
    int fileIndex = -1;
    /** Unqualified names of everything called from the body. */
    std::set<std::string> callees;
    /** Every identifier mentioned in the body (root detection). */
    std::set<std::string> mentions;
    std::vector<LocalVar> locals;
};

/** One `// wormnet-lint: allow(check-a,check-b): reason` directive. */
struct Suppression
{
    int line = 0;          ///< line the directive is written on
    int appliesToLine = 0; ///< line whose diagnostics it silences
    bool wholeFile = false;
    std::set<std::string> checks;
    std::string justification;
    mutable bool used = false;
};

struct FileModel
{
    std::string path;
    LexedFile lx;
    /** `using X = ...;` / `typedef ... X;` — name to aliased text. */
    std::map<std::string, std::string> aliases;
    std::vector<Suppression> suppressions;
    std::vector<std::size_t> functionIdx; ///< into Model::functions
};

struct Model
{
    std::vector<FileModel> files;
    std::vector<FunctionInfo> functions;
    /** className -> memberName -> info (merged across files). */
    std::map<std::string, std::map<std::string, MemberInfo>> classes;
    /** Annotations harvested from in-class declarations, joined to
     *  out-of-line definitions by (class, name). */
    std::map<std::string, unsigned> declAnnotations; ///< "Cls::fn"

    /** Aliased text with one level of `using` aliases expanded,
     *  searched across every file (aliases are file-scoped in
     *  reality; cross-file match only widens detection). */
    bool aliasTextContains(const std::string &name,
                           const char *needle) const;

    const MemberInfo *findMember(const std::string &cls,
                                 const std::string &name) const;
    /** Member lookup by name in any class (obj.member_ accesses). */
    const MemberInfo *findMemberAnyClass(const std::string &name) const;
};

/** Parse one lexed file into @p model (appends). */
void buildFileModel(Model &model, LexedFile lx);

/** Join declaration annotations onto definitions, fill call graph
 *  helpers. Call once after every file has been added. */
void finalizeModel(Model &model);

} // namespace wormnet_lint

#endif // WORMNET_LINT_MODEL_HH
