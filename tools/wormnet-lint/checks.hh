/**
 * @file
 * The wormnet-lint check families.
 *
 *  - nondet-iter: range-for / .begin() iteration over unordered
 *    containers in any function reachable from a committed-state,
 *    serialization, stats or stdout path, unless routed through
 *    wormnet::sorted_view(...).
 *  - phase-discipline: WN_DECIDE_PHASE functions must not draw from
 *    the global RNG, write members not marked WN_SHARD_LOCAL, or
 *    (transitively) call WN_COMMIT_PHASE functions.
 *  - banned-api: rand()/srand()/time(), wall-clock *_clock::now()
 *    (incl. through `using Clock = ...` aliases), std::random_device,
 *    default-seeded std RNG engines, pointer-keyed ordering/hashing,
 *    and float accumulation inside unordered-iteration loops.
 *
 * Diagnostics with severity Error fail the run (exit 1); Warnings
 * (e.g. an unused suppression) do not. A finding is silenced by a
 * `// wormnet-lint: allow(<family>): <justification>` comment on the
 * same line, the line above, or `allow-file(...)` anywhere in the
 * file — and the justification text is mandatory: a bare allow() is
 * itself an error.
 */

#ifndef WORMNET_LINT_CHECKS_HH
#define WORMNET_LINT_CHECKS_HH

#include "model.hh"

#include <string>
#include <vector>

namespace wormnet_lint
{

enum class Severity
{
    Error,
    Warning,
};

struct Diagnostic
{
    std::string file;
    int line = 0;
    int col = 0;
    Severity severity = Severity::Error;
    std::string check; ///< family name (what allow() must name)
    std::string kind;  ///< fine-grained kind within the family
    std::string message;
    std::string fixit; ///< optional mechanical rewrite
    std::string note;  ///< optional context (reachability chain...)
};

struct CheckOptions
{
    /** Enabled family names; empty = all. */
    std::set<std::string> enabled;
    bool fixits = true;
    /** Warn on allow() directives that silenced nothing. Off by
     *  default: a directive may target the other frontend (e.g. a
     *  template the built-in frontend cannot instantiate). */
    bool strictSuppressions = false;
};

extern const char *const kCheckFamilies[3];

/** Run every enabled check over the model; returns diagnostics
 *  sorted by (file, line, col), suppressions already applied. */
std::vector<Diagnostic> runChecks(const Model &model,
                                  const CheckOptions &opt);

} // namespace wormnet_lint

#endif // WORMNET_LINT_CHECKS_HH
