#include "model.hh"

#include <algorithm>
#include <cctype>

namespace wormnet_lint
{

namespace
{

bool
isKeyword(const std::string &s)
{
    static const std::set<std::string> kw = {
        "if",       "for",     "while",    "switch",  "return",
        "sizeof",   "alignof", "decltype", "catch",   "new",
        "delete",   "throw",   "static_assert", "case", "do",
        "else",     "goto",    "co_await", "co_return", "co_yield",
        "constexpr", "const",  "noexcept", "alignas", "typeid",
    };
    return kw.count(s) != 0;
}

bool
typeTextHasUnordered(const std::string &text)
{
    return text.find("unordered_map") != std::string::npos ||
           text.find("unordered_set") != std::string::npos ||
           text.find("unordered_multimap") != std::string::npos ||
           text.find("unordered_multiset") != std::string::npos;
}

/** Concatenate token texts with single spaces (for substring
 *  matching against type names). */
std::string
joinTokens(const std::vector<Token> &toks, std::size_t b,
           std::size_t e)
{
    std::string out;
    for (std::size_t i = b; i < e && i < toks.size(); ++i) {
        if (!out.empty())
            out += ' ';
        out += toks[i].text;
    }
    return out;
}

/** Find the matching close brace for the open brace at @p open. */
std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].is("{"))
            ++depth;
        else if (toks[i].is("}")) {
            --depth;
            if (depth == 0)
                return i;
        }
    }
    return toks.size();
}

struct PendingGroup
{
    std::size_t open = 0, close = 0; ///< indices into pending
    std::size_t nameTok = 0;         ///< ident before the '('
    bool found = false;
};

/** First depth-0 paren group in @p p whose '(' directly follows an
 *  identifier (or an operator spelling) — the function-name group of
 *  a declaration/definition, if there is one. */
PendingGroup
firstNamedParenGroup(const std::vector<Token> &p)
{
    PendingGroup g;
    int depth = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i].is("(")) {
            if (depth == 0 && i > 0) {
                std::size_t k = i - 1;
                bool named = false;
                if (p[k].isIdent() && !isKeyword(p[k].text)) {
                    named = true;
                } else if (p[k].kind == TokKind::Punct && k > 0 &&
                           p[k - 1].is("operator")) {
                    named = true; // operator<< and friends
                }
                if (named) {
                    g.open = i;
                    g.nameTok = k;
                    int d2 = 0;
                    for (std::size_t j = i; j < p.size(); ++j) {
                        if (p[j].is("("))
                            ++d2;
                        else if (p[j].is(")")) {
                            --d2;
                            if (d2 == 0) {
                                g.close = j;
                                g.found = true;
                                return g;
                            }
                        }
                    }
                    return g; // unbalanced: not usable
                }
            }
            ++depth;
        } else if (p[i].is(")")) {
            --depth;
        }
    }
    return g;
}

/** Class name qualifying a function name token, walking back over
 *  `Cls::` or `Cls<T>::` in @p p from @p nameTok. */
std::string
qualifyingClass(const std::vector<Token> &p, std::size_t nameTok)
{
    if (nameTok < 2 || !p[nameTok - 1].is("::"))
        return "";
    std::size_t k = nameTok - 2;
    if (p[k].is(">")) { // Cls<T>::name
        int angle = 0;
        while (k > 0) {
            if (p[k].is(">"))
                ++angle;
            else if (p[k].is("<")) {
                --angle;
                if (angle == 0) {
                    if (k > 0 && p[k - 1].isIdent())
                        return p[k - 1].text;
                    return "";
                }
            }
            --k;
        }
        return "";
    }
    if (p[k].isIdent())
        return p[k].text;
    return "";
}

unsigned
annotationsIn(const std::vector<Token> &p)
{
    unsigned a = kAnnoNone;
    for (const Token &t : p) {
        if (t.is("WN_DECIDE_PHASE"))
            a |= kAnnoDecide;
        else if (t.is("WN_COMMIT_PHASE"))
            a |= kAnnoCommit;
    }
    return a;
}

/** Record parameter-derived locals (unordered containers passed in,
 *  ostream sinks) from the signature group [open, close]. */
void
harvestParams(FunctionInfo &fn, const std::vector<Token> &p,
              std::size_t open, std::size_t close)
{
    std::string cur; // accumulated type text of current param
    std::string lastIdent;
    int depth = 0;
    for (std::size_t i = open; i <= close && i < p.size(); ++i) {
        const Token &t = p[i];
        if (t.is("(") || t.is("<") || t.is("["))
            ++depth;
        else if (t.is(")") || t.is(">") || t.is("]"))
            --depth;
        const bool paramEnd =
            (t.is(",") && depth == 1) || (t.is(")") && depth == 0);
        if (paramEnd) {
            if (!lastIdent.empty()) {
                LocalVar v;
                v.name = lastIdent;
                v.unorderedType = typeTextHasUnordered(cur);
                if (v.unorderedType)
                    fn.locals.push_back(v);
            }
            if (cur.find("ostream") != std::string::npos)
                fn.hasOstreamParam = true;
            cur.clear();
            lastIdent.clear();
            continue;
        }
        if (t.isIdent())
            lastIdent = t.text;
        cur += t.text;
        cur += ' ';
    }
}

/** Body walk: callees, mentions, unordered/floating locals, and
 *  function-local type aliases (a `using clock = steady_clock;`
 *  inside a body must still resolve for the wall-clock check). */
void
harvestBody(FunctionInfo &fn, FileModel &fm,
            const std::vector<Token> &toks)
{
    std::vector<Token> stmt;
    const auto flushStmt = [&]() {
        if (stmt.empty())
            return;
        if (stmt.size() >= 4 && stmt[0].is("using") &&
            stmt[1].isIdent() && stmt[2].is("=")) {
            fm.aliases[stmt[1].text] =
                joinTokens(stmt, 3, stmt.size());
            stmt.clear();
            return;
        }
        const std::string text = joinTokens(stmt, 0, stmt.size());
        const bool floating =
            stmt[0].is("float") || stmt[0].is("double") ||
            (stmt.size() > 1 && stmt[0].is("const") &&
             (stmt[1].is("float") || stmt[1].is("double")));
        const bool unordered = typeTextHasUnordered(text);
        if (floating || unordered) {
            // Declarator name: last ident followed by ; = { ( , or
            // end-of-statement, outside template args.
            int angle = 0;
            for (std::size_t i = 1; i < stmt.size(); ++i) {
                if (stmt[i].is("<"))
                    ++angle;
                else if (stmt[i].is(">"))
                    --angle;
                if (angle != 0 || !stmt[i].isIdent() ||
                    isKeyword(stmt[i].text))
                    continue;
                const bool lastTok = i + 1 >= stmt.size();
                if (lastTok || stmt[i + 1].is("=") ||
                    stmt[i + 1].is("{") || stmt[i + 1].is("(") ||
                    stmt[i + 1].is(",") || stmt[i + 1].is("[")) {
                    // `x = y` where x was already seen as a plain
                    // expression is not a declaration; require some
                    // type-ish token before the name.
                    if (i == 0)
                        continue;
                    LocalVar v;
                    v.name = stmt[i].text;
                    v.unorderedType = unordered;
                    v.floating = floating;
                    fn.locals.push_back(v);
                }
            }
        }
        stmt.clear();
    };

    for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
        const Token &t = toks[i];
        if (t.isIdent()) {
            fn.mentions.insert(t.text);
            if (!isKeyword(t.text) && i + 1 < fn.bodyEnd &&
                toks[i + 1].is("("))
                fn.callees.insert(t.text);
        }
        if (t.is(";") || t.is("{") || t.is("}")) {
            flushStmt();
            continue;
        }
        stmt.push_back(t);
    }
    flushStmt();
}

/** Parse a `// wormnet-lint: allow(...)` directive if present. */
bool
parseSuppression(const Comment &cm, Suppression &out)
{
    const std::string &s = cm.text;
    std::size_t p = s.find("wormnet-lint:");
    if (p == std::string::npos)
        return false;
    p += std::string("wormnet-lint:").size();
    while (p < s.size() && std::isspace((unsigned char)s[p]))
        ++p;
    bool wholeFile = false;
    if (s.compare(p, 11, "allow-file(") == 0) {
        wholeFile = true;
        p += 11;
    } else if (s.compare(p, 6, "allow(") == 0) {
        p += 6;
    } else {
        return false;
    }
    const std::size_t close = s.find(')', p);
    if (close == std::string::npos)
        return false;
    std::string list = s.substr(p, close - p);
    out.wholeFile = wholeFile;
    out.line = cm.line;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        std::string c = list.substr(start, comma - start);
        c.erase(std::remove_if(c.begin(), c.end(),
                               [](unsigned char ch) {
                                   return std::isspace(ch) != 0;
                               }),
                c.end());
        if (!c.empty())
            out.checks.insert(c);
        start = comma + 1;
    }
    std::size_t j = close + 1;
    while (j < s.size() &&
           (std::isspace((unsigned char)s[j]) || s[j] == ':'))
        ++j;
    out.justification = s.substr(j);
    // Trim trailing whitespace.
    while (!out.justification.empty() &&
           std::isspace((unsigned char)out.justification.back()))
        out.justification.pop_back();
    return true;
}

enum class ScopeType
{
    Namespace,
    Class,
};

struct Scope
{
    ScopeType type;
    std::string name;
};

} // namespace

bool
Model::aliasTextContains(const std::string &name,
                         const char *needle) const
{
    for (const FileModel &f : files) {
        auto it = f.aliases.find(name);
        if (it != f.aliases.end() &&
            it->second.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

const MemberInfo *
Model::findMember(const std::string &cls,
                  const std::string &name) const
{
    auto ci = classes.find(cls);
    if (ci == classes.end())
        return nullptr;
    auto mi = ci->second.find(name);
    return mi == ci->second.end() ? nullptr : &mi->second;
}

const MemberInfo *
Model::findMemberAnyClass(const std::string &name) const
{
    for (const auto &[cls, members] : classes) {
        (void)cls;
        auto mi = members.find(name);
        if (mi != members.end())
            return &mi->second;
    }
    return nullptr;
}

void
buildFileModel(Model &model, LexedFile lx)
{
    model.files.push_back(FileModel{});
    FileModel &fm = model.files.back();
    const int fileIndex = static_cast<int>(model.files.size()) - 1;
    fm.path = lx.path;
    fm.lx = std::move(lx);
    const std::vector<Token> &toks = fm.lx.tokens;

    // Suppressions: attach each directive to the line it silences.
    std::set<int> tokenLines;
    for (const Token &t : toks)
        tokenLines.insert(t.line);
    for (const Comment &cm : fm.lx.comments) {
        Suppression sup;
        if (!parseSuppression(cm, sup))
            continue;
        if (tokenLines.count(cm.line)) {
            sup.appliesToLine = cm.line; // trailing comment
        } else {
            auto it = tokenLines.upper_bound(cm.endLine);
            sup.appliesToLine =
                it == tokenLines.end() ? cm.endLine + 1 : *it;
        }
        fm.suppressions.push_back(std::move(sup));
    }

    std::vector<Scope> scopes;
    std::vector<Token> pending;

    const auto currentClass = [&]() -> std::string {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
            if (it->type == ScopeType::Class)
                return it->name;
        return "";
    };

    const auto recordAlias = [&]() {
        // using X = <text>;  (skip using-directives/-declarations)
        if (pending.size() >= 3 && pending[0].is("using") &&
            pending[1].isIdent() && pending[2].is("=")) {
            fm.aliases[pending[1].text] =
                joinTokens(pending, 3, pending.size());
        } else if (!pending.empty() && pending[0].is("typedef") &&
                   pending.size() >= 3) {
            fm.aliases[pending.back().text] =
                joinTokens(pending, 1, pending.size() - 1);
        }
    };

    const auto recordClassStatement = [&](bool hadBraceInit) {
        const std::string cls = currentClass();
        if (cls.empty() || pending.empty())
            return;
        if (pending[0].is("using") || pending[0].is("typedef")) {
            recordAlias();
            return;
        }
        if (pending[0].is("friend") || pending[0].is("static_assert"))
            return;
        const PendingGroup g = firstNamedParenGroup(pending);
        if (g.found) {
            // Method declaration: harvest phase annotations so the
            // out-of-line definition inherits them.
            const unsigned anno = annotationsIn(pending);
            if (anno != kAnnoNone)
                model.declAnnotations[cls + "::" +
                                      pending[g.nameTok].text] |=
                    anno;
            return;
        }
        // Data member: declarator is the last identifier before the
        // initializer (= or {) or the end of the statement.
        std::size_t end = pending.size();
        int depth = 0;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].is("<") || pending[i].is("[") ||
                pending[i].is("("))
                ++depth;
            else if (pending[i].is(">") || pending[i].is("]") ||
                     pending[i].is(")"))
                --depth;
            else if (depth == 0 && pending[i].is("=")) {
                end = i;
                break;
            }
        }
        (void)hadBraceInit;
        std::size_t nameIdx = pending.size();
        for (std::size_t i = end; i-- > 0;) {
            if (pending[i].isIdent() && !isKeyword(pending[i].text)) {
                nameIdx = i;
                break;
            }
            if (pending[i].is("]") || pending[i].is("["))
                continue; // arrays: name precedes the brackets
            if (pending[i].kind == TokKind::Punct &&
                (pending[i].is("*") || pending[i].is("&")))
                break; // trailing punct other than array: malformed
        }
        if (nameIdx >= pending.size())
            return;
        MemberInfo m;
        m.name = pending[nameIdx].text;
        m.className = cls;
        m.line = pending[nameIdx].line;
        const std::string typeText = joinTokens(pending, 0, nameIdx);
        for (const Token &t : pending)
            if (t.is("WN_SHARD_LOCAL"))
                m.shardLocal = true;
        m.unorderedType = typeTextHasUnordered(typeText);
        if (!m.unorderedType) {
            for (std::size_t i = 0; i < nameIdx; ++i)
                if (pending[i].isIdent() &&
                    model.aliasTextContains(pending[i].text,
                                            "unordered_"))
                    m.unorderedType = true;
        }
        model.classes[cls][m.name] = std::move(m);
    };

    std::size_t i = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];

        // Access specifiers inside a class: drop `public :` pairs so
        // the ':' cannot be mistaken for anything.
        if (t.isIdent() &&
            (t.is("public") || t.is("private") || t.is("protected")) &&
            i + 1 < toks.size() && toks[i + 1].is(":") &&
            !scopes.empty() && scopes.back().type == ScopeType::Class) {
            pending.clear();
            i += 2;
            continue;
        }

        if (t.is(";")) {
            if (!scopes.empty() &&
                scopes.back().type == ScopeType::Class)
                recordClassStatement(false);
            else
                recordAlias();
            pending.clear();
            ++i;
            continue;
        }

        if (t.is("}")) {
            if (!scopes.empty())
                scopes.pop_back();
            pending.clear();
            ++i;
            continue;
        }

        if (t.is("{")) {
            // Classify what this brace opens.
            if (!pending.empty() && pending[0].is("namespace")) {
                std::string name;
                for (std::size_t k = 1; k < pending.size(); ++k)
                    if (pending[k].isIdent()) {
                        name = pending[k].text;
                        break;
                    }
                scopes.push_back(Scope{ScopeType::Namespace, name});
                pending.clear();
                ++i;
                continue;
            }

            const PendingGroup g = firstNamedParenGroup(pending);
            bool isEnum = false;
            bool hasClassKw = false;
            std::string classKwName;
            for (std::size_t k = 0; k < pending.size(); ++k) {
                if (pending[k].is("enum"))
                    isEnum = true;
                if ((pending[k].is("class") ||
                     pending[k].is("struct") ||
                     pending[k].is("union")) &&
                    !isEnum && classKwName.empty()) {
                    hasClassKw = true;
                    for (std::size_t j2 = k + 1; j2 < pending.size();
                         ++j2)
                        if (pending[j2].isIdent() &&
                            !pending[j2].is("final") &&
                            !pending[j2].is("alignas")) {
                            classKwName = pending[j2].text;
                            break;
                        }
                }
            }

            if (g.found && !hasClassKw) {
                // Function definition: record and skip the body.
                FunctionInfo fn;
                fn.name = pending[g.nameTok].text;
                if (pending[g.nameTok].kind == TokKind::Punct)
                    fn.name = "operator" + fn.name;
                fn.className = qualifyingClass(pending, g.nameTok);
                if (fn.className.empty())
                    fn.className = currentClass();
                fn.qualName = fn.className.empty()
                                  ? fn.name
                                  : fn.className + "::" + fn.name;
                fn.file = fm.path;
                fn.fileIndex = fileIndex;
                fn.line = pending[g.nameTok].line;
                fn.anno = annotationsIn(pending);
                harvestParams(fn, pending, g.open, g.close);
                const std::size_t close = matchBrace(toks, i);
                fn.bodyBegin = i + 1;
                fn.bodyEnd = close;
                harvestBody(fn, fm, toks);
                fm.functionIdx.push_back(model.functions.size());
                model.functions.push_back(std::move(fn));
                pending.clear();
                i = close + 1;
                continue;
            }

            if (hasClassKw && !isEnum) {
                scopes.push_back(
                    Scope{ScopeType::Class, classKwName});
                pending.clear();
                ++i;
                continue;
            }

            // Anything else (enum bodies, braced initializers,
            // lambdas at class scope): skip wholesale; remember a
            // brace-init happened so member extraction still works.
            const std::size_t close = matchBrace(toks, i);
            if (!scopes.empty() &&
                scopes.back().type == ScopeType::Class &&
                !pending.empty() && close + 1 < toks.size() &&
                toks[close + 1].is(";") && !isEnum) {
                recordClassStatement(true);
                pending.clear();
                i = close + 1;
                continue;
            }
            pending.clear();
            i = close + 1;
            continue;
        }

        pending.push_back(t);
        ++i;
    }
}

void
finalizeModel(Model &model)
{
    for (FunctionInfo &fn : model.functions) {
        if (fn.className.empty())
            continue;
        auto it = model.declAnnotations.find(fn.qualName);
        if (it != model.declAnnotations.end())
            fn.anno |= it->second;
    }
}

} // namespace wormnet_lint
