#!/usr/bin/env bash
# Chaos harness: prove the simulator survives process death.
#
#   scripts/chaos.sh              # quick storm (CI smoke)
#   scripts/chaos.sh --full       # 16x16 torus, long run
#
# Three stages, all against bench/ablation_reconfig (a saturated
# torus with live reconfiguration epochs):
#
#   1. baseline: one uninterrupted run; its stdout JSON is the
#      reference output.
#   2. crash/resume determinism: kill the run (via --crash-at ->
#      _Exit(86)) at three different cycles, resume each from its
#      checkpoint, and require stdout to be byte-identical to the
#      baseline.
#   3. SIGKILL storm: run with periodic checkpoints, SIGKILL the
#      process from outside at random times, resume, repeat until it
#      completes — the final output must again match the baseline.
#
# Any divergence or failed resume exits nonzero. BUILD_DIR overrides
# the build tree (default: build).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BENCH="$BUILD_DIR/bench/ablation_reconfig"
SEED=${SEED:-3}

MODE_ARGS=(--quick)
CRASH_CYCLES=(700 1500 2600)
if [[ "${1:-}" == "--full" ]]; then
    MODE_ARGS=()
    CRASH_CYCLES=(3000 6000 10000)
fi

if [[ ! -x "$BENCH" ]]; then
    echo "chaos.sh: $BENCH not built (cmake --build $BUILD_DIR)" >&2
    exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== baseline run" >&2
"$BENCH" "${MODE_ARGS[@]}" --seed "$SEED" \
    > "$WORK/baseline.json" 2> /dev/null

echo "== crash/resume determinism" >&2
for at in "${CRASH_CYCLES[@]}"; do
    ckpt="$WORK/crash_$at.bin"
    rc=0
    "$BENCH" "${MODE_ARGS[@]}" --seed "$SEED" \
        --checkpoint "$ckpt" --crash-at "$at" \
        > /dev/null 2> /dev/null || rc=$?
    if [[ $rc -ne 86 ]]; then
        echo "chaos.sh: expected deliberate exit 86 at cycle $at," \
             "got $rc" >&2
        exit 1
    fi
    "$BENCH" "${MODE_ARGS[@]}" --seed "$SEED" \
        --checkpoint "$ckpt" --resume "$ckpt" \
        > "$WORK/resumed_$at.json" 2> /dev/null
    if ! cmp -s "$WORK/baseline.json" "$WORK/resumed_$at.json"; then
        echo "chaos.sh: resume after crash at cycle $at diverged" >&2
        diff "$WORK/baseline.json" "$WORK/resumed_$at.json" >&2 || true
        exit 1
    fi
    echo "   crash at cycle $at: resumed byte-identical" >&2
done

echo "== SIGKILL storm" >&2
ckpt="$WORK/storm.bin"
out="$WORK/storm.json"
rm -f "$ckpt"
# SIGKILL the run at pseudo-random points for MAX_KILLS rounds, then
# let the final resume finish unharassed. Bounding the kill count
# (rather than racing the timer until the bench happens to outrun it)
# makes termination deterministic regardless of machine load while
# still landing a dozen kills mid-checkpoint-write.
MAX_KILLS=${MAX_KILLS:-12}
attempts=0
while :; do
    attempts=$((attempts + 1))
    resume_args=()
    [[ -f "$ckpt" ]] && resume_args=(--resume "$ckpt")
    "$BENCH" "${MODE_ARGS[@]}" --seed "$SEED" \
        --checkpoint "$ckpt" --checkpoint-every 200 \
        "${resume_args[@]}" > "$out" 2> /dev/null &
    pid=$!
    if [[ $attempts -le $MAX_KILLS ]]; then
        # Kill after a pseudo-random slice of the expected runtime;
        # if the run beats the timer, accept the early finish.
        sleep "0.0$(( (attempts * 3331) % 90 + 10 ))"
        if kill -KILL "$pid" 2> /dev/null; then
            wait "$pid" 2> /dev/null || true
            echo "   run $attempts: SIGKILLed, resuming" >&2
            continue
        fi
    fi
    rc=0
    wait "$pid" || rc=$?
    if [[ $rc -ne 0 ]]; then
        echo "chaos.sh: storm run exited with $rc" >&2
        exit 1
    fi
    break
done
if ! cmp -s "$WORK/baseline.json" "$out"; then
    echo "chaos.sh: storm output diverged from the baseline" >&2
    diff "$WORK/baseline.json" "$out" >&2 || true
    exit 1
fi
echo "   survived $attempts runs, output byte-identical" >&2

echo "chaos.sh: OK" >&2
