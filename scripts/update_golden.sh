#!/usr/bin/env bash
# Regenerate the golden-table snapshots under tests/golden/.
#
# Each snapshot's first line ("# args: ...") records the exact bench
# arguments; test_golden_tables replays the binary with those
# arguments and compares stdout byte-for-byte. This script reuses the
# recorded args when a snapshot already exists (so the profile lives
# in exactly one place) and falls back to DEFAULT_ARGS for new ones.
#
# The profile keeps the --quick threshold grid but shrinks the
# network and cycle counts so the three snapshots replay in seconds,
# and pins --sat to skip saturation calibration. WORMNET_JOBS may be
# anything: the sweep engine guarantees stdout is bitwise-identical
# for every job count.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${1:-build}
GOLDEN_DIR=tests/golden
DEFAULT_ARGS=" --quick --quiet --radix 4 --dims 2 --sat 0.6 --warmup 400 --measure 1500"

cmake --build "$BUILD_DIR" -j "$(nproc)" --target \
    table1_pdm_uniform table2_ndm_uniform table7_ndm_hotspot \
    ablation_detectors

mkdir -p "$GOLDEN_DIR"
for table in table1_pdm_uniform:table1_quick.txt \
             table2_ndm_uniform:table2_quick.txt \
             table7_ndm_hotspot:table7_quick.txt \
             ablation_detectors:ablation_detectors_quick.json; do
    binary=${table%%:*}
    golden=$GOLDEN_DIR/${table##*:}
    # New snapshots default to the table profile; the JSON ablations
    # take their own "--quick --seed 1" profile instead.
    args=$DEFAULT_ARGS
    if [[ $golden == *.json ]]; then
        args=" --quick --seed 1"
    fi
    if [[ -f $golden ]]; then
        args=$(head -n 1 "$golden" | sed 's/^# args://')
    fi
    echo "generating $golden ($binary$args)" >&2
    {
        echo "# args:$args"
        # shellcheck disable=SC2086 -- args are intentionally split
        "$BUILD_DIR/bench/$binary" $args 2>/dev/null
    } > "$golden"
done

echo "done; review the diff before committing:" >&2
git -C . diff --stat -- "$GOLDEN_DIR" >&2
