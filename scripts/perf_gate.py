#!/usr/bin/env python3
"""CI performance gate for the simulator hot path.

Runs bench_hotpath, compares every scenario's cycles/sec against the
committed baseline (bench/BENCH_hotpath.json) and fails only on a
regression beyond that scenario's tolerance (SCENARIO_TOLERANCE;
--max-regress for scenarios not listed there). Tolerances are wide
because shared CI runners are noisy: the gate catches a reintroduced
exhaustive scan, not small drifts. Improvements and new scenarios
never fail.

With --scaling FILE the gate additionally checks a bench_scaling run:
every scenario must have completed its jobs sweep (in particular the
262k-node 64ary3cube_spot row), and the saturated_8ary3cube speedup
at the highest job count must reach --min-speedup — but only when the
recorded host_cores covers that job count. On a 1- or 2-core runner a
flat curve is oversubscription, not a regression, so the ratio check
is reported and skipped.

Usage:
  scripts/perf_gate.py [--bench build/bench/bench_hotpath]
                       [--baseline bench/BENCH_hotpath.json]
                       [--max-regress 0.30] [--min-seconds 1]
                       [--json current.json]   # compare a saved run
                       [--out refreshed.json]  # also save this run
                       [--scaling BENCH_scaling.json]
                       [--min-speedup 3.0]

Exit codes: 0 ok, 1 regression, 2 usage/environment error.
"""

import argparse
import json
import subprocess
import sys

# Per-scenario regression tolerance (fraction below baseline that
# still passes). Saturated scenarios need the most headroom: even
# with bench_hotpath's best-of-3 medians their passes vary up to
# ~1.9x run-to-run on shared runners (results/hotpath_pr8.md), while
# idle/low-load rows are far steadier. Scenarios not listed here use
# --max-regress.
SCENARIO_TOLERANCE = {
    "idle_16x16": 0.30,
    "low_load_16x16": 0.35,
    "saturated_16x16": 0.50,
    "saturated_32x32": 0.50,
    "saturated_8ary3cube": 0.50,
}

# The scaling scenario whose speedup curve the gate asserts on, and
# the job count the assertion applies to.
SCALING_SCENARIO = "saturated_8ary3cube"


def load_scenarios(doc):
    """Map scenario name -> cycles_per_sec from a bench JSON doc."""
    try:
        return {
            s["name"]: float(s["cycles_per_sec"])
            for s in doc["scenarios"]
        }
    except (KeyError, TypeError) as exc:
        sys.exit(f"perf_gate: malformed bench JSON: {exc}")


def check_scaling(path, min_speedup):
    """Validate a bench_scaling JSON. Returns a list of failures."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as exc:
        sys.exit(f"perf_gate: cannot read scaling JSON: {exc}")

    failures = []
    host_cores = int(doc.get("host_cores", 1))
    scenarios = {s["name"]: s for s in doc.get("scenarios", [])}

    if "64ary3cube_spot" not in scenarios:
        failures.append("scaling run is missing the 262k-node "
                        "64ary3cube_spot scenario")
    for name, sc in scenarios.items():
        for p in sc.get("points", []):
            if p.get("cycles", 0) <= 0 or p.get("seconds", 0) <= 0:
                failures.append(
                    f"{name} jobs={p.get('jobs')} did not complete")

    sc = scenarios.get(SCALING_SCENARIO)
    if sc is None:
        failures.append(f"scaling run is missing {SCALING_SCENARIO}")
        return failures
    points = sorted(sc.get("points", []),
                    key=lambda p: p.get("jobs", 0))
    if not points:
        failures.append(f"{SCALING_SCENARIO} has no points")
        return failures
    top = points[-1]
    jobs, speedup = int(top.get("jobs", 1)), float(
        top.get("speedup", 0.0))
    print(f"scaling: {SCALING_SCENARIO} jobs={jobs} "
          f"speedup={speedup:.2f}x (host_cores={host_cores})")
    if host_cores < jobs:
        print(f"scaling: host has {host_cores} core(s) < {jobs} "
              f"jobs — speedup assertion skipped "
              f"(oversubscribed, flat curve expected)")
    elif speedup < min_speedup:
        failures.append(
            f"{SCALING_SCENARIO} speedup at jobs={jobs} is "
            f"{speedup:.2f}x, below the {min_speedup:.2f}x floor")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="build/bench/bench_hotpath",
                    help="bench_hotpath binary to run")
    ap.add_argument("--baseline",
                    default="bench/BENCH_hotpath.json",
                    help="committed baseline JSON")
    ap.add_argument("--max-regress", type=float, default=0.30,
                    help="fail when cycles/sec drops more than this "
                         "fraction below baseline")
    ap.add_argument("--min-seconds", type=float, default=1.0,
                    help="per-scenario measurement time")
    ap.add_argument("--json", default=None,
                    help="compare this saved bench JSON instead of "
                         "running the binary")
    ap.add_argument("--out", default=None,
                    help="write the current run's JSON here (for "
                         "refreshing the baseline)")
    ap.add_argument("--scaling", default=None,
                    help="also validate this bench_scaling JSON")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="required speedup at the highest job count "
                         "of the scaling sweep (checked only when "
                         "host_cores covers it)")
    args = ap.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = load_scenarios(json.load(f))
    except OSError as exc:
        sys.exit(f"perf_gate: cannot read baseline: {exc}")

    if args.json:
        try:
            with open(args.json, encoding="utf-8") as f:
                raw = f.read()
        except OSError as exc:
            sys.exit(f"perf_gate: cannot read {args.json}: {exc}")
    else:
        cmd = [args.bench, "--min-seconds", str(args.min_seconds)]
        try:
            raw = subprocess.run(
                cmd, check=True, capture_output=True,
                text=True).stdout
        except FileNotFoundError:
            sys.exit(f"perf_gate: bench binary not found: "
                     f"{args.bench}")
        except subprocess.CalledProcessError as exc:
            sys.exit(f"perf_gate: bench run failed "
                     f"(rc={exc.returncode}):\n{exc.stderr}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(raw)

    current = load_scenarios(json.loads(raw))

    failures = []
    width = max(len(n) for n in current)
    for name, cps in current.items():
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:<{width}}  {cps:12.0f} cyc/s  "
                  f"(new scenario, no baseline)")
            continue
        tol = SCENARIO_TOLERANCE.get(name, args.max_regress)
        ratio = cps / ref if ref > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - tol:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{name:<{width}}  {cps:12.0f} cyc/s  vs "
              f"{ref:12.0f}  ({ratio:5.2f}x, tol {tol:.0%})  "
              f"{verdict}")
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"{name:<{width}}  baseline scenario missing from "
              f"current run", file=sys.stderr)

    scaling_failures = []
    if args.scaling:
        scaling_failures = check_scaling(args.scaling,
                                         args.min_speedup)
        for msg in scaling_failures:
            print(f"perf_gate: scaling: {msg}", file=sys.stderr)

    if failures:
        print(f"perf_gate: {len(failures)} scenario(s) regressed "
              f"beyond tolerance: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    if missing:
        print("perf_gate: treating missing scenarios as failure",
              file=sys.stderr)
        return 1
    if scaling_failures:
        return 1
    print("perf_gate: all scenarios within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
