#!/usr/bin/env python3
"""CI performance gate for the simulator hot path.

Runs bench_hotpath, compares every scenario's cycles/sec against the
committed baseline (bench/BENCH_hotpath.json) and fails only on a
regression beyond --max-regress (default 30%, wide because shared CI
runners are noisy: the gate catches a reintroduced exhaustive scan,
not small drifts). Improvements and new scenarios never fail.

Usage:
  scripts/perf_gate.py [--bench build/bench/bench_hotpath]
                       [--baseline bench/BENCH_hotpath.json]
                       [--max-regress 0.30] [--min-seconds 1]
                       [--json current.json]   # compare a saved run
                       [--out refreshed.json]  # also save this run

Exit codes: 0 ok, 1 regression, 2 usage/environment error.
"""

import argparse
import json
import subprocess
import sys


def load_scenarios(doc):
    """Map scenario name -> cycles_per_sec from a bench JSON doc."""
    try:
        return {
            s["name"]: float(s["cycles_per_sec"])
            for s in doc["scenarios"]
        }
    except (KeyError, TypeError) as exc:
        sys.exit(f"perf_gate: malformed bench JSON: {exc}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", default="build/bench/bench_hotpath",
                    help="bench_hotpath binary to run")
    ap.add_argument("--baseline",
                    default="bench/BENCH_hotpath.json",
                    help="committed baseline JSON")
    ap.add_argument("--max-regress", type=float, default=0.30,
                    help="fail when cycles/sec drops more than this "
                         "fraction below baseline")
    ap.add_argument("--min-seconds", type=float, default=1.0,
                    help="per-scenario measurement time")
    ap.add_argument("--json", default=None,
                    help="compare this saved bench JSON instead of "
                         "running the binary")
    ap.add_argument("--out", default=None,
                    help="write the current run's JSON here (for "
                         "refreshing the baseline)")
    args = ap.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = load_scenarios(json.load(f))
    except OSError as exc:
        sys.exit(f"perf_gate: cannot read baseline: {exc}")

    if args.json:
        try:
            with open(args.json, encoding="utf-8") as f:
                raw = f.read()
        except OSError as exc:
            sys.exit(f"perf_gate: cannot read {args.json}: {exc}")
    else:
        cmd = [args.bench, "--min-seconds", str(args.min_seconds)]
        try:
            raw = subprocess.run(
                cmd, check=True, capture_output=True,
                text=True).stdout
        except FileNotFoundError:
            sys.exit(f"perf_gate: bench binary not found: "
                     f"{args.bench}")
        except subprocess.CalledProcessError as exc:
            sys.exit(f"perf_gate: bench run failed "
                     f"(rc={exc.returncode}):\n{exc.stderr}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(raw)

    current = load_scenarios(json.loads(raw))

    failures = []
    width = max(len(n) for n in current)
    for name, cps in current.items():
        ref = baseline.get(name)
        if ref is None:
            print(f"{name:<{width}}  {cps:12.0f} cyc/s  "
                  f"(new scenario, no baseline)")
            continue
        ratio = cps / ref if ref > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.max_regress:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{name:<{width}}  {cps:12.0f} cyc/s  vs "
              f"{ref:12.0f}  ({ratio:5.2f}x)  {verdict}")
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"{name:<{width}}  baseline scenario missing from "
              f"current run", file=sys.stderr)

    if failures:
        print(f"perf_gate: {len(failures)} scenario(s) regressed "
              f"beyond {args.max_regress:.0%}: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    if missing:
        print("perf_gate: treating missing scenarios as failure",
              file=sys.stderr)
        return 1
    print(f"perf_gate: all scenarios within {args.max_regress:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
