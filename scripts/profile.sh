#!/usr/bin/env bash
# Profile the simulator hot path.
#
#   scripts/profile.sh                       # perf on bench_hotpath
#   scripts/profile.sh ./build/bench/table2_ndm_uniform --quick
#   PROFILER=gprof scripts/profile.sh        # gprof fallback
#
# With PROFILER=perf (default, if perf exists) records and prints the
# top of the flat profile; with PROFILER=gprof rebuilds into
# build-gprof with -pg and prints the flat profile. Everything after
# the script name is the command to profile; the default is
# bench_hotpath, whose scenarios isolate the Network::step() phases
# the activity sets accelerate (see docs/MECHANISMS.md, "Hot path &
# activity tracking").
set -euo pipefail

cd "$(dirname "$0")/.."

PROFILER=${PROFILER:-}
if [[ -z "$PROFILER" ]]; then
    if command -v perf >/dev/null 2>&1; then
        PROFILER=perf
    else
        PROFILER=gprof
    fi
fi

if [[ $# -gt 0 ]]; then
    CMD=("$@")
else
    CMD=(./build/bench/bench_hotpath --min-seconds 2)
fi

case "$PROFILER" in
perf)
    [[ -x build/bench/bench_hotpath ]] || {
        cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
        cmake --build build -j "$(nproc)"
    }
    perf record -g --output=profile.perf.data -- "${CMD[@]}"
    perf report --input=profile.perf.data --stdio | head -60
    echo "full report: perf report --input=profile.perf.data"
    ;;
gprof)
    # -pg needs its own tree; reuse it across runs.
    cmake -B build-gprof -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg
    cmake --build build-gprof -j "$(nproc)"
    BIN=${CMD[0]/build/build-gprof}
    "$BIN" "${CMD[@]:1}"
    gprof "$BIN" gmon.out | head -60
    echo "full report: gprof $BIN gmon.out"
    ;;
*)
    echo "unknown PROFILER '$PROFILER' (use perf or gprof)" >&2
    exit 1
    ;;
esac
