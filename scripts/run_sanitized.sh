#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/run_sanitized.sh            # ASan+UBSan, full suite
#   scripts/run_sanitized.sh asan       # same
#   scripts/run_sanitized.sh ubsan      # UBSan alone, full suite
#   scripts/run_sanitized.sh tsan       # TSan, parallel-engine tests
#   scripts/run_sanitized.sh all        # all three, in sequence
#
# Sanitizer matrix (WORMNET_SANITIZE in the top-level CMakeLists):
#   address -> -fsanitize=address,undefined  (ASan AND UBSan; the
#              "asan" mode here has always included UBSan)
#   ubsan   -> -fsanitize=undefined          (UBSan alone: ~native
#              speed, no ASan memory overhead)
#   thread  -> -fsanitize=thread             (TSan; exclusive of ASan)
#
# Each sanitizer uses its own build tree (build-asan / build-ubsan /
# build-tsan) so the normal build stays untouched. Any sanitizer
# report fails the run: ASan and TSan abort on errors by default, and
# halt_on_error makes UBSan do the same.
#
# The TSan pass runs the tests that exercise the work-stealing pool
# and the parallel experiment harness (test_parallel,
# test_experiment), the DWFG jobs-invariance batch (whole
# simulations with probe bookkeeping on worker threads), and the
# sharded-stepping suites (ShardStep, SoaLayout): that is where
# threads share state. WORMNET_SIM_JOBS=8 makes every simulation
# large enough to shard run its per-cycle passes on 8 workers, so
# the SoA cross-checks also execute against sharded state.
# TSAN_CTEST_RE overrides the selection; the full suite under TSan
# works too, it is just slow.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=${1:-asan}

run_asan() {
    local build_dir=${BUILD_DIR:-build-asan}
    cmake -B "$build_dir" -S . -DWORMNET_SANITIZE=address \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$(nproc)"

    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ASAN_OPTIONS="detect_leaks=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_ubsan() {
    local build_dir=${UBSAN_BUILD_DIR:-build-ubsan}
    cmake -B "$build_dir" -S . -DWORMNET_SANITIZE=ubsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$(nproc)"

    UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
    ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
}

run_tsan() {
    local build_dir=${TSAN_BUILD_DIR:-build-tsan}
    cmake -B "$build_dir" -S . -DWORMNET_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "$build_dir" -j "$(nproc)"

    local log rc=0
    log=$(mktemp)
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    WORMNET_SIM_JOBS=8 \
    ctest --test-dir "$build_dir" --output-on-failure \
        -R "${TSAN_CTEST_RE:-ThreadPool|ParallelFor|ParallelDeterminism|Experiment|DwfgDifferential.Batch|ShardStep|SoaLayout}" \
        -j "$(nproc)" 2>&1 | tee "$log" || rc=$?
    if [ "$rc" -ne 0 ]; then
        lint_pointer "$build_dir" "$log" || true
    fi
    rm -f "$log"
    return "$rc"
}

# A data race found by TSan and a phase-discipline violation found by
# wormnet-lint are often the same bug seen from two sides: a decide-
# phase pass writing state it does not own. When a TSan failure's
# stack frames name a function that wormnet-lint also flags, say so —
# the static finding usually pinpoints the offending write.
lint_pointer() {
    local build_dir=$1 log=$2
    local lint="$build_dir/tools/wormnet-lint/wormnet-lint"
    [ -x "$lint" ] || lint="build/tools/wormnet-lint/wormnet-lint"
    [ -x "$lint" ] || return 0

    # TSan frames: "    #2 wormnet::Network::switchAll() file:line".
    local fns
    fns=$(grep -oE '#[0-9]+ [A-Za-z_][A-Za-z0-9_:<>~]*' "$log" \
        | awk '{print $2}' | sed 's/.*:://' | sort -u) || true
    [ -n "$fns" ] || return 0

    local findings
    findings=$("$lint" src bench tests --exclude=lint_fixtures \
        2>/dev/null) || true
    [ -n "$findings" ] || return 0

    local fn hits
    for fn in $fns; do
        hits=$(printf '%s\n' "$findings" \
            | grep -F "::${fn}'" || true)
        if [ -n "$hits" ]; then
            echo
            echo "run_sanitized.sh: TSan stack names '${fn}', which" \
                 "wormnet-lint also flags — the static finding below" \
                 "likely pinpoints the racing write:"
            printf '%s\n' "$hits"
        fi
    done
}

case "$MODE" in
    asan) run_asan ;;
    ubsan) run_ubsan ;;
    tsan) run_tsan ;;
    all) run_asan; run_ubsan; run_tsan ;;
    *)
        echo "usage: $0 [asan|ubsan|tsan|all]" >&2
        exit 2
        ;;
esac
