#!/usr/bin/env bash
# Build and run the full test suite under ASan + UBSan.
#
# Uses a separate build tree (build-asan) so the normal build stays
# untouched. Any sanitizer report fails the run: ASan aborts on
# errors by default, and halt_on_error makes UBSan do the same.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DWORMNET_SANITIZE=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
