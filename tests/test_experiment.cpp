/**
 * @file
 * Tests for the experiment harness: cell execution, table sweeps in
 * the paper's layout, reference-value formatting and the saturation
 * search.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "core/experiment.hh"

namespace wormnet
{
namespace
{

SimulationConfig
tinyBase()
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.lengths = "s";
    cfg.detector = "ndm:32";
    cfg.seed = 7;
    return cfg;
}

TEST(Experiment, RunCellIsDeterministic)
{
    const ExperimentRunner runner;
    SimulationConfig cfg = tinyBase();
    cfg.flitRate = 0.3;
    const CellResult a = runner.runCell(cfg, 500, 1500);
    const CellResult b = runner.runCell(cfg, 500, 1500);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_DOUBLE_EQ(a.detectionRate, b.detectionRate);
    EXPECT_DOUBLE_EQ(a.acceptedFlitRate, b.acceptedFlitRate);
    EXPECT_GT(a.delivered, 100u);
}

TEST(Experiment, RunTableShapeMatchesSpec)
{
    TableSpec spec;
    spec.title = "mini";
    spec.base = tinyBase();
    spec.detectorTemplate = "ndm:%T";
    spec.thresholds = {4, 64};
    spec.sizeClasses = {"s", "l"};
    spec.rates = {0.1, 0.3};
    spec.rateLabels = {"0.1", "0.3"};
    spec.warmup = 300;
    spec.measure = 800;

    const ExperimentRunner runner;
    const TableResult result = runner.runTable(spec);
    ASSERT_EQ(result.cells.size(), 2u);
    ASSERT_EQ(result.cells[0].size(), 2u);
    ASSERT_EQ(result.cells[0][0].size(), 2u);
    for (const auto &per_rate : result.cells)
        for (const auto &per_size : per_rate)
            for (const auto &cell : per_size)
                EXPECT_GT(cell.delivered, 0u);
}

TEST(Experiment, ProgressCallbackFiresPerCell)
{
    unsigned calls = 0;
    const ExperimentRunner runner(
        [&](const std::string &) { ++calls; });
    TableSpec spec;
    spec.title = "mini";
    spec.base = tinyBase();
    spec.thresholds = {8};
    spec.sizeClasses = {"s"};
    spec.rates = {0.1, 0.2};
    spec.rateLabels = {"a", "b"};
    spec.warmup = 100;
    spec.measure = 300;
    runner.runTable(spec);
    EXPECT_EQ(calls, 2u);
}

TEST(Experiment, FormatTablePaperLayout)
{
    TableSpec spec;
    spec.title = "mini";
    spec.base = tinyBase();
    spec.thresholds = {4, 64};
    spec.sizeClasses = {"s", "l"};
    spec.rates = {0.1, 0.3};
    spec.rateLabels = {"low", "high (saturated)"};
    spec.warmup = 100;
    spec.measure = 300;
    const ExperimentRunner runner;
    const TableResult result = runner.runTable(spec);

    const TextTable table = ExperimentRunner::formatTable(result);
    const std::string text = table.render();
    EXPECT_NE(text.find("Th 4"), std::string::npos);
    EXPECT_NE(text.find("Th 64"), std::string::npos);
    EXPECT_NE(text.find("M. Size"), std::string::npos);
    EXPECT_NE(text.find("high (saturated)"), std::string::npos);
}

TEST(Experiment, FormatTableWithReferenceValues)
{
    TableSpec spec;
    spec.title = "mini";
    spec.base = tinyBase();
    spec.thresholds = {8};
    spec.sizeClasses = {"s"};
    spec.rates = {0.1};
    spec.rateLabels = {"r"};
    spec.warmup = 100;
    spec.measure = 300;
    const ExperimentRunner runner;
    const TableResult result = runner.runTable(spec);

    const double refs[] = {1.23};
    const TextTable table =
        ExperimentRunner::formatTable(result, refs);
    EXPECT_NE(table.render().find("(1.23)"), std::string::npos);
}

TEST(Experiment, MissingPlaceholderIsFatal)
{
    TableSpec spec;
    spec.title = "bad";
    spec.base = tinyBase();
    spec.detectorTemplate = "ndm:32"; // no %T
    spec.thresholds = {8};
    spec.sizeClasses = {"s"};
    spec.rates = {0.1};
    spec.rateLabels = {"r"};
    const ExperimentRunner runner;
    EXPECT_THROW(runner.runTable(spec), FatalError);
}

TEST(Experiment, ReplicatedCellAveragesAcrossSeeds)
{
    const ExperimentRunner runner;
    SimulationConfig cfg = tinyBase();
    cfg.flitRate = 0.3;
    const CellResult one = runner.runCell(cfg, 400, 1200);
    const CellResult rep =
        runner.runCellReplicated(cfg, 400, 1200, 3);
    EXPECT_EQ(rep.replications, 3u);
    // The three runs' deliveries accumulate.
    EXPECT_GT(rep.delivered, 2 * one.delivered);
    // Averaged rates stay within sane bounds.
    EXPECT_GT(rep.acceptedFlitRate, 0.2);
    EXPECT_LT(rep.acceptedFlitRate, 0.4);
    EXPECT_GE(rep.detectionRateStd, 0.0);
    // Single replication path has no deviation and matches a plain
    // runCell at the derived replication-0 seed exactly.
    const CellResult single =
        runner.runCellReplicated(cfg, 400, 1200, 1);
    EXPECT_EQ(single.replications, 1u);
    EXPECT_DOUBLE_EQ(single.detectionRateStd, 0.0);
    SimulationConfig derived = cfg;
    derived.seed = deriveSeed(cfg.seed, 0, 0);
    const CellResult oneDerived = runner.runCell(derived, 400, 1200);
    EXPECT_EQ(single.delivered, oneDerived.delivered);
    EXPECT_DOUBLE_EQ(single.detectionRate, oneDerived.detectionRate);
}

TEST(Experiment, TableSpecReplicationsAppliesPerCell)
{
    TableSpec spec;
    spec.title = "mini";
    spec.base = tinyBase();
    spec.thresholds = {8};
    spec.sizeClasses = {"s"};
    spec.rates = {0.2};
    spec.rateLabels = {"r"};
    spec.warmup = 200;
    spec.measure = 500;
    spec.replications = 2;
    const ExperimentRunner runner;
    const TableResult result = runner.runTable(spec);
    EXPECT_EQ(result.cells[0][0][0].replications, 2u);
}

TEST(Experiment, SaturationSearchBracketsTheKnee)
{
    const ExperimentRunner runner;
    SimulationConfig cfg = tinyBase();
    const double sat =
        runner.findSaturationRate(cfg, 0.1, 2.0, 0.05, 500, 1500, 5);
    // The 4x4 torus saturates well inside (0.1, 2.0).
    EXPECT_GT(sat, 0.2);
    EXPECT_LT(sat, 1.5);

    // Below the returned knee the network accepts ~everything.
    cfg.flitRate = sat * 0.7;
    const CellResult below = runner.runCell(cfg, 500, 2000);
    EXPECT_GT(below.acceptedFlitRate, 0.9 * cfg.flitRate);
}

TEST(Experiment, SaturationSearchDegenerateBrackets)
{
    const ExperimentRunner runner;
    const SimulationConfig cfg = tinyBase();
    // Entire bracket below saturation: returns the upper bound.
    const double low = runner.findSaturationRate(cfg, 0.05, 0.1, 0.05,
                                                 300, 800, 2);
    EXPECT_DOUBLE_EQ(low, 0.1);
    EXPECT_THROW(runner.findSaturationRate(cfg, 0.5, 0.2), PanicError);
}

} // namespace
} // namespace wormnet
