/**
 * @file
 * White-box unit tests for the detection mechanisms, driving the hook
 * interface directly (no network): NDM counter/I/DT transitions, G/P
 * flag protocol and re-arm policies; PDM counter semantics; timeout
 * behaviour; factory parsing.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "detection/detector.hh"
#include "detection/ndm.hh"
#include "detection/pdm.hh"
#include "detection/source_timeout.hh"
#include "detection/timeout.hh"
#include "detector_fixture.hh"

namespace wormnet
{
namespace
{

TEST(Ndm, CounterAndFlagsFollowThresholds)
{
    NdmDetector det(NdmParams{1, 8, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;

    idleCycles(det, 1, 0x1, now);
    EXPECT_EQ(det.counter(0, 0), 1u);
    EXPECT_FALSE(det.iFlag(0, 0)); // counter == t1, not yet over
    idleCycles(det, 1, 0x1, now);
    EXPECT_TRUE(det.iFlag(0, 0));
    EXPECT_FALSE(det.dtFlag(0, 0));
    idleCycles(det, 7, 0x1, now);
    EXPECT_TRUE(det.dtFlag(0, 0)); // counter 9 > t2=8
}

TEST(Ndm, TransmissionResetsCountersAndFlags)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 6, 0x1, now);
    EXPECT_TRUE(det.dtFlag(0, 0));
    det.onCycleEnd(0, /*tx=*/0x1, 0x1, now++);
    EXPECT_EQ(det.counter(0, 0), 0u);
    EXPECT_FALSE(det.iFlag(0, 0));
    EXPECT_FALSE(det.dtFlag(0, 0));
}

TEST(Ndm, UnoccupiedChannelDoesNotCount)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 10, /*occupied=*/0x0, now);
    EXPECT_EQ(det.counter(0, 0), 0u);
    EXPECT_FALSE(det.iFlag(0, 0));
}

TEST(Ndm, FirstAttemptFreeVcGivesPropagate)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    // Input PC not fully busy -> P, never a verdict.
    EXPECT_FALSE(det.onRoutingFailed(0, 1, 0, 7, 0x3,
                                     /*fully_busy=*/false,
                                     /*first=*/true, 0));
    EXPECT_FALSE(det.gpFlag(0, 1));
}

TEST(Ndm, FirstAttemptAdvancingOccupantGivesGenerate)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    // Output 0 idle long (I set); output 1 active (I clear).
    idleCycles(det, 3, 0x3, now);
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    EXPECT_TRUE(det.iFlag(0, 0));
    EXPECT_FALSE(det.iFlag(0, 1));
    // Feasible {0,1}: occupant of 1 still advancing -> G.
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now));
    EXPECT_TRUE(det.gpFlag(0, 2));
}

TEST(Ndm, FirstAttemptAllBlockedGivesPropagate)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 4, 0x3, now); // both outputs idle-occupied: I set
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now));
    EXPECT_FALSE(det.gpFlag(0, 2));
}

TEST(Ndm, DetectsOnlyWithGenerateAndAllDt)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    // Make output 1 look active so the first attempt yields G.
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now));
    EXPECT_TRUE(det.gpFlag(0, 2));

    // DT not yet set: no verdict.
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));

    idleCycles(det, 6, 0x3, now); // counters exceed t2 on both
    EXPECT_TRUE(det.dtFlag(0, 0));
    EXPECT_TRUE(det.dtFlag(0, 1));
    EXPECT_TRUE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));
}

TEST(Ndm, PropagateSuppressesDetection)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 3, 0x3, now);
    // First attempt with all feasible blocked -> P.
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now));
    idleCycles(det, 10, 0x3, now); // DT set everywhere
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));
}

TEST(Ndm, PartialDtSuppressesDetection)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    det.onCycleEnd(0, 0x2, 0x3, now++); // G condition
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    idleCycles(det, 10, 0x3, now);
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++); // output 1 DT reset
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));
}

TEST(Ndm, RoutedAndFreedResetToPropagate)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    det.onCycleEnd(0, 0x2, 0x3, now++);
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    det.onMessageRouted(0, 2, 1, 7, 0, 0);
    EXPECT_FALSE(det.gpFlag(0, 2));

    det.onCycleEnd(0, 0x2, 0x3, now++);
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    det.onInputVcFreed(0, 2, 0);
    EXPECT_FALSE(det.gpFlag(0, 2));
}

TEST(Ndm, ResetOnOtherVcOfInputChannelSuppressesDetection)
{
    // The G/P flag is per input *physical* channel: any VC of a
    // G-flagged input freeing (or routing) proves the channel is not
    // wedged, so the flag must fall back to P and the pending
    // detection must be suppressed — even when the blocked head sits
    // on a different VC of that channel.
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++); // G condition
    det.onRoutingFailed(0, 2, /*in_vc=*/0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    idleCycles(det, 6, 0x3, now); // DT set on both outputs
    // VC 1 of input 2 frees (a different worm finished draining).
    det.onInputVcFreed(0, 2, /*in_vc=*/1);
    EXPECT_FALSE(det.gpFlag(0, 2));
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));

    // Same through the routed path: G again, then a worm on VC 2 of
    // the input channel is granted an output.
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    det.onMessageRouted(0, 2, /*in_vc=*/2, 7, 0, 0);
    EXPECT_FALSE(det.gpFlag(0, 2));
    EXPECT_FALSE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));
}

TEST(Ndm, ResetClearsWaitStateForSelectiveRearm)
{
    // onMessageRouted/onInputVcFreed must also clear the per-VC
    // wait record; otherwise a later I-flag reset on the output
    // would re-arm an input whose head already moved on.
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 3, 0x3, now); // I set on outputs 0 and 1
    det.onRoutingFailed(0, 1, 0, 7, /*feasible=*/0x1, true, true,
                        now);
    det.onRoutingFailed(0, 2, 0, 8, /*feasible=*/0x1, true, true,
                        now);
    // Input 1's head advances; input 2 keeps waiting on output 0.
    det.onMessageRouted(0, 1, 0, 7, 0, 0);
    det.onCycleEnd(0, /*tx=*/0x1, 0x3, now++); // I reset on output 0
    EXPECT_FALSE(det.gpFlag(0, 1)) << "stale wait record re-armed";
    EXPECT_TRUE(det.gpFlag(0, 2));
}

TEST(Ndm, ReblockAfterResetRegeneratesAndDetects)
{
    // Full flag round trip: G -> reset to P (VC freed) -> fresh
    // first attempt re-evaluates the I flags and re-generates G, and
    // the message is detected once every feasible channel trips DT.
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    det.onInputVcFreed(0, 2, 0);
    EXPECT_FALSE(det.gpFlag(0, 2));

    // Output 1 transmits again: its occupant may be a new root.
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    det.onRoutingFailed(0, 2, 0, 7, 0x3, true, true, now);
    EXPECT_TRUE(det.gpFlag(0, 2));
    idleCycles(det, 6, 0x3, now); // DT trips on both outputs
    EXPECT_TRUE(
        det.onRoutingFailed(0, 2, 0, 7, 0x3, true, false, now));
}

TEST(Ndm, CoarseRearmFlipsAllFlags)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::AllInRouter});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 3, 0x1, now); // I set on output 0
    EXPECT_FALSE(det.gpFlag(0, 1));
    EXPECT_FALSE(det.gpFlag(0, 3));
    // Transmission on output 0 resets its I flag -> re-arm all.
    det.onCycleEnd(0, /*tx=*/0x1, 0x1, now++);
    EXPECT_TRUE(det.gpFlag(0, 1));
    EXPECT_TRUE(det.gpFlag(0, 3));
    // Other routers unaffected.
    EXPECT_FALSE(det.gpFlag(1, 1));
}

TEST(Ndm, SelectiveRearmOnlyFlipsWaiters)
{
    NdmDetector det(NdmParams{1, 4, GpRearmPolicy::WaitersOnChannel});
    det.init(smallCtx());
    Cycle now = 0;
    idleCycles(det, 3, 0x3, now); // I set on outputs 0 and 1
    // Input 1 waits on output 0; input 2 waits on output 1 only.
    det.onRoutingFailed(0, 1, 0, 7, 0x1, true, true, now);
    det.onRoutingFailed(0, 2, 0, 8, 0x2, true, true, now);
    EXPECT_FALSE(det.gpFlag(0, 1));
    EXPECT_FALSE(det.gpFlag(0, 2));
    // Transmission on output 0: only input 1 re-arms.
    det.onCycleEnd(0, /*tx=*/0x1, 0x3, now++);
    EXPECT_TRUE(det.gpFlag(0, 1));
    EXPECT_FALSE(det.gpFlag(0, 2));
}

TEST(Ndm, RearmOnlyWhenIFlagWasSet)
{
    NdmDetector det(NdmParams{1, 8, GpRearmPolicy::AllInRouter});
    det.init(smallCtx());
    Cycle now = 0;
    // Continuous transmission: I never set, so no re-arm.
    for (int i = 0; i < 5; ++i)
        det.onCycleEnd(0, /*tx=*/0x1, 0x1, now++);
    EXPECT_FALSE(det.gpFlag(0, 0));
    EXPECT_FALSE(det.gpFlag(0, 1));
}

TEST(Ndm, RequiresT1BelowT2)
{
    EXPECT_THROW(
        NdmDetector(NdmParams{8, 8, GpRearmPolicy::AllInRouter}),
        FatalError);
    EXPECT_THROW(
        NdmDetector(NdmParams{16, 8, GpRearmPolicy::AllInRouter}),
        FatalError);
}

TEST(Pdm, CounterCountsEveryIdleCycle)
{
    PdmDetector det(PdmParams{4, false});
    det.init(smallCtx());
    Cycle now = 0;
    // Ungated PDM counts even when unoccupied (the literal ICPP'97
    // description).
    for (int i = 0; i < 6; ++i)
        det.onCycleEnd(0, 0, /*occupied=*/0x0, now++);
    EXPECT_EQ(det.counter(0, 0), 6u);
    EXPECT_TRUE(det.ifFlag(0, 0));
}

TEST(Pdm, GatedVariantFreezesWhenUnoccupied)
{
    PdmDetector det(PdmParams{4, true});
    det.init(smallCtx());
    Cycle now = 0;
    for (int i = 0; i < 6; ++i)
        det.onCycleEnd(0, 0, /*occupied=*/0x0, now++);
    EXPECT_EQ(det.counter(0, 0), 0u);
    for (int i = 0; i < 6; ++i)
        det.onCycleEnd(0, 0, /*occupied=*/0x1, now++);
    EXPECT_EQ(det.counter(0, 0), 6u);
}

TEST(Pdm, DetectsWhenAllFeasibleFlagsSet)
{
    PdmDetector det(PdmParams{4, false});
    det.init(smallCtx());
    Cycle now = 0;
    for (int i = 0; i < 6; ++i)
        det.onCycleEnd(0, 0, 0x3, now++);
    // Both outputs over threshold: verdict on any attempt.
    EXPECT_TRUE(det.onRoutingFailed(0, 1, 0, 7, 0x3, true, true, now));
    // Reset output 1 by transmission: verdict withdrawn.
    det.onCycleEnd(0, /*tx=*/0x2, 0x3, now++);
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 7, 0x3, true, false, now));
    // Output 0 alone still suffices if it is the only feasible one.
    EXPECT_TRUE(det.onRoutingFailed(0, 1, 0, 7, 0x1, true, false, now));
}

TEST(Pdm, MarksEveryWaiterNotJustBranchHeads)
{
    // The PDM drawback the paper highlights: all messages waiting on
    // flagged channels are marked, regardless of tree position.
    PdmDetector det(PdmParams{4, false});
    det.init(smallCtx());
    Cycle now = 0;
    for (int i = 0; i < 6; ++i)
        det.onCycleEnd(0, 0, 0x3, now++);
    EXPECT_TRUE(det.onRoutingFailed(0, 1, 0, 7, 0x1, true, true, now));
    EXPECT_TRUE(det.onRoutingFailed(0, 2, 0, 8, 0x2, true, true, now));
    EXPECT_TRUE(det.onRoutingFailed(0, 3, 1, 9, 0x3, true, true, now));
}

TEST(Timeout, FiresAfterThresholdBlockedCycles)
{
    TimeoutDetector det(TimeoutParams{5});
    det.init(smallCtx());
    EXPECT_FALSE(det.onRoutingFailed(0, 1, 0, 7, 0x1, true, true, 10));
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 7, 0x1, true, false, 15));
    EXPECT_TRUE(det.onRoutingFailed(0, 1, 0, 7, 0x1, true, false, 16));
}

TEST(Timeout, RoutedResetsClock)
{
    TimeoutDetector det(TimeoutParams{5});
    det.init(smallCtx());
    det.onRoutingFailed(0, 1, 0, 7, 0x1, true, true, 10);
    det.onMessageRouted(0, 1, 0, 7, 0, 0);
    // New head, new first attempt.
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 8, 0x1, true, true, 100));
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 8, 0x1, true, false, 105));
    EXPECT_TRUE(
        det.onRoutingFailed(0, 1, 0, 8, 0x1, true, false, 106));
}

TEST(Timeout, IgnoresChannelState)
{
    // Crude timeouts fire even while feasible channels are active —
    // exactly why they produce so many false positives.
    TimeoutDetector det(TimeoutParams{3});
    det.init(smallCtx());
    det.onRoutingFailed(0, 1, 0, 7, 0x3, true, true, 0);
    det.onCycleEnd(0, /*tx=*/0x3, 0x3, 1);
    EXPECT_TRUE(det.onRoutingFailed(0, 1, 0, 7, 0x3, true, false, 10));
}

TEST(SourceAgeTimeout, FiresOnMessageAge)
{
    SourceAgeTimeoutDetector det(100);
    det.init(smallCtx());
    // Routing failures never trigger source-side mechanisms.
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 7, 0x1, true, false, 99999));
    EXPECT_FALSE(det.onInjectionStalled(0, 2, 0, 7, /*age=*/100,
                                        /*stall=*/500, 600));
    EXPECT_TRUE(det.onInjectionStalled(0, 2, 0, 7, /*age=*/101,
                                       /*stall=*/1, 600));
}

TEST(InjectionStallTimeout, FiresOnStallNotAge)
{
    InjectionStallTimeoutDetector det(32);
    det.init(smallCtx());
    EXPECT_FALSE(det.onInjectionStalled(0, 2, 0, 7, /*age=*/10000,
                                        /*stall=*/32, 600));
    EXPECT_TRUE(det.onInjectionStalled(0, 2, 0, 7, /*age=*/40,
                                       /*stall=*/33, 600));
}

TEST(SourceTimeouts, ZeroThresholdIsFatal)
{
    EXPECT_THROW(SourceAgeTimeoutDetector{0}, FatalError);
    EXPECT_THROW(InjectionStallTimeoutDetector{0}, FatalError);
}

TEST(NullDetector, NeverDetects)
{
    NullDetector det;
    det.init(smallCtx());
    EXPECT_FALSE(
        det.onRoutingFailed(0, 1, 0, 7, 0x3, true, false, 1000));
}

TEST(DetectorFactory, ParsesSpecs)
{
    EXPECT_EQ(makeDetector("none")->name(), "none");

    const auto ndm = makeDetector("ndm:64");
    EXPECT_NE(ndm->name().find("ndm"), std::string::npos);
    EXPECT_NE(ndm->name().find("t2=64"), std::string::npos);
    EXPECT_NE(ndm->name().find("selective"), std::string::npos);

    const auto ndm2 = makeDetector("ndm:64:2:coarse");
    EXPECT_NE(ndm2->name().find("t1=2"), std::string::npos);
    EXPECT_NE(ndm2->name().find("coarse"), std::string::npos);

    const auto pdm = makeDetector("pdm:128:gated");
    EXPECT_NE(pdm->name().find("gated"), std::string::npos);

    const auto to = makeDetector("timeout:256");
    EXPECT_NE(to->name().find("256"), std::string::npos);

    const auto dwfg = makeDetector("dwfg:64:bw=2:hop=3:retry=16");
    EXPECT_EQ(dwfg->name(), "dwfg:t=64:bw=2:hop=3:retry=16");
    EXPECT_TRUE(dwfg->wantsBlockedCandidates());
    EXPECT_FALSE(dwfg->idleCycleEndStable());
    EXPECT_EQ(makeDetector("dwfg")->name(),
              "dwfg:t=32:bw=1:hop=1:retry=8");

    const auto src = makeDetector("src-age-timeout:128");
    EXPECT_NE(src->name().find("src-age"), std::string::npos);
    const auto inj = makeDetector("inj-stall-timeout:64");
    EXPECT_NE(inj->name().find("inj-stall"), std::string::npos);
}

TEST(DetectorFactory, RejectsBadSpecs)
{
    EXPECT_THROW(makeDetector("bogus"), FatalError);
    EXPECT_THROW(makeDetector("ndm:abc"), FatalError);
    EXPECT_THROW(makeDetector("pdm:8:what"), FatalError);
    EXPECT_THROW(makeDetector("dwfg:32:huh"), FatalError);
    EXPECT_THROW(makeDetector("dwfg:bw=0"), FatalError);
    EXPECT_THROW(makeDetector(""), FatalError);
}

} // namespace
} // namespace wormnet
