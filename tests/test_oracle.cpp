/**
 * @file
 * Tests for the ground-truth deadlock oracle: hand-built true
 * deadlocks are reported, congestion trees are not, and organically
 * deadlock-prone configurations wedge detectably.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "sim/oracle.hh"

namespace wormnet
{
namespace
{

/** Ring network with one VC so wait cycles can be engineered. */
SimulationConfig
ringConfig(unsigned radix = 12)
{
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = radix;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 0;
    cfg.selection = "firstfit";
    return cfg;
}

TEST(Oracle, EmptyNetworkHasNoDeadlock)
{
    Simulation sim(ringConfig());
    sim.net().run(50);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
}

TEST(Oracle, SingleBlockedMessageIsNotDeadlocked)
{
    // One message blocked behind another that is advancing.
    Simulation sim(ringConfig());
    sim.net().injectMessage(0, 4, 64); // long, advancing
    sim.net().run(10);
    sim.net().injectMessage(11, 2, 16); // will wait on ch 0->1 etc.
    sim.net().run(20);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
}

TEST(Oracle, RingCycleIsDeadlocked)
{
    // Four messages whose worms close a cycle over the "+" channels
    // of a 12-ring: M_i holds channels [3i, 3i+3) and waits for
    // channel 3(i+1), held by M_{i+1 mod 4}.
    Simulation sim(ringConfig());
    std::vector<MsgId> ids;
    ids.push_back(sim.net().injectMessage(0, 4, 48));
    ids.push_back(sim.net().injectMessage(3, 7, 48));
    ids.push_back(sim.net().injectMessage(6, 10, 48));
    ids.push_back(sim.net().injectMessage(9, 1, 48));
    sim.net().run(100);

    const auto deadlocked = findDeadlockedMessages(sim.net());
    ASSERT_EQ(deadlocked.size(), 4u);
    for (const MsgId id : ids)
        EXPECT_TRUE(std::binary_search(deadlocked.begin(),
                                       deadlocked.end(), id));
    // The network is wedged: nothing gets delivered, ever.
    sim.net().run(2000);
    EXPECT_EQ(sim.net().stats().delivered, 0u);
    EXPECT_EQ(findDeadlockedMessages(sim.net()).size(), 4u);
}

TEST(Oracle, CycleStatsTrackedByNetwork)
{
    SimulationConfig cfg = ringConfig();
    cfg.oraclePeriod = 32;
    Simulation sim(cfg);
    sim.net().injectMessage(0, 4, 48);
    sim.net().injectMessage(3, 7, 48);
    sim.net().injectMessage(6, 10, 48);
    sim.net().injectMessage(9, 1, 48);
    sim.net().run(600);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.trueDeadlockedMessages, 4u);
    EXPECT_EQ(s.currentlyDeadlocked, 4u);
    EXPECT_GT(s.maxDeadlockPersistence, 300u);
}

TEST(Oracle, CongestionTreeIsNotDeadlock)
{
    // Many-to-one congestion: a deep blocked tree whose root (the
    // ejection at the hot node) keeps draining. Never a deadlock.
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 2;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.oraclePeriod = 0;
    Simulation sim(cfg);
    for (NodeId n = 1; n < 16; ++n)
        sim.net().injectMessage(n, 0, 32);
    bool ever_deadlocked = false;
    for (int i = 0; i < 1500; ++i) {
        sim.net().step();
        if (i % 50 == 0)
            ever_deadlocked |=
                !findDeadlockedMessages(sim.net()).empty();
    }
    EXPECT_FALSE(ever_deadlocked);
    EXPECT_EQ(sim.net().stats().delivered, 15u);
}

TEST(Oracle, OrganicDeadlockUnderAdaptiveSingleVc)
{
    // One VC + unrestricted adaptive routing + no limiter on a torus:
    // deadlock is essentially certain under sustained load (an 8x8
    // torus wedges within a few thousand cycles), and with no
    // recovery the network stays wedged.
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.lengths = "32";
    cfg.flitRate = 0.5;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 5;
    Simulation sim(cfg);
    sim.net().run(6000);
    EXPECT_GT(sim.net().stats().trueDeadlockedMessages, 0u);
    EXPECT_GT(sim.net().stats().currentlyDeadlocked, 0u);
}

TEST(Oracle, DuatoEscapeNeverDeadlocks)
{
    // Deadlock-avoidance baseline: Duato-protocol routing keeps the
    // oracle quiet even with heavy load and no limiter.
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 3;
    cfg.routing = "duato";
    cfg.flitRate = 0.5;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 6;
    Simulation sim(cfg);
    sim.net().run(6000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
}

TEST(Oracle, DorWithDatelinesNeverDeadlocks)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 2;
    cfg.routing = "dor";
    cfg.flitRate = 0.4;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 7;
    Simulation sim(cfg);
    sim.net().run(6000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
}

TEST(Oracle, RecoveryClearsDeadlock)
{
    // Same engineered cycle, but with NDM + progressive recovery the
    // network resolves it and everything is delivered.
    SimulationConfig cfg = ringConfig();
    cfg.detector = "ndm:16";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 16;
    Simulation sim(cfg);
    sim.net().injectMessage(0, 4, 48);
    sim.net().injectMessage(3, 7, 48);
    sim.net().injectMessage(6, 10, 48);
    sim.net().injectMessage(9, 1, 48);
    sim.net().run(3000);
    EXPECT_EQ(sim.net().stats().delivered, 4u);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
    EXPECT_GE(sim.net().stats().detections, 1u);
}

} // namespace
} // namespace wormnet
