/**
 * @file
 * wormnet-lint fixture: the nondet-iter family.
 *
 * Never compiled — linted only, by tests/test_wormnet_lint.py. Each
 * `EXPECT:` trailing comment pins a diagnostic (family/kind) to its
 * line; the runner fails on any missing or extra finding. Lines
 * without EXPECT must stay clean, so the negative cases (sorted_view
 * escape, unreachable function, suppressed site) are asserted too.
 */

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wormnet
{
template <typename C> struct SortedView
{
};
template <typename C>
SortedView<C>
sorted_view(const C &c)
{
    return {};
}
} // namespace wormnet

struct Stats
{
    std::unordered_map<std::string, long> counters;
    std::unordered_set<int> nodes;

    // Reachability root: takes an ostream-like sink by the usual
    // spelling (the linter roots any function with an ostream param).
    void dump(std::ostream &os);

    void tally();
    void rebuildCache();
};

void
Stats::dump(std::ostream &os)
{
    tally();
    for (const auto &kv : counters) { // EXPECT: nondet-iter/range-for
        (void)kv;
    }
    // EXPECT-FIXIT: sorted_view
}

void
Stats::tally()
{
    // Reachable from dump() -> flagged, both loop spellings.
    for (const int n : nodes) { // EXPECT: nondet-iter/range-for
        (void)n;
    }
    for (auto it = counters.begin(); // EXPECT: nondet-iter/iterator-loop
         it != counters.end(); ++it) {
        (void)it;
    }
    // The sanctioned escape: identical walk through sorted_view.
    for (const auto &kv : wormnet::sorted_view(counters)) {
        (void)kv;
    }
    // A justified suppression silences the finding.
    // wormnet-lint: allow(nondet-iter): fixture — order folded into a
    // commutative reduction
    for (const auto &kv : counters) {
        (void)kv;
    }
}

void
Stats::rebuildCache()
{
    // NOT reachable from any root: iteration order never escapes
    // into output, so this stays clean.
    for (const auto &kv : counters) {
        (void)kv;
    }
}
