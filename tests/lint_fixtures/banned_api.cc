/**
 * @file
 * wormnet-lint fixture: the banned-api family.
 *
 * Never compiled — linted only. Every API here can silently break
 * run-to-run reproducibility: libc randomness and time, wall clocks
 * (directly or laundered through a using-alias), nondeterministic
 * seed sources, pointer-value ordering, and float accumulation in
 * hash order.
 */

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <random>
#include <unordered_map>

using Clock = std::chrono::steady_clock;

double
libcNondeterminism()
{
    std::srand(              // EXPECT: banned-api/libc
        unsigned(time(       // EXPECT: banned-api/libc
            nullptr)));
    return rand() / 2.0;     // EXPECT: banned-api/libc
}

long
wallClockReads()
{
    const auto direct =
        std::chrono::steady_clock::now(); // EXPECT: banned-api/wall-clock
    const auto aliased = Clock::now();    // EXPECT: banned-api/wall-clock
    // A justified suppression is honoured.
    // wormnet-lint: allow(banned-api): fixture — progress reporting
    const auto ok = Clock::now();
    (void)ok;
    return (aliased - direct).count();
}

std::uint64_t
seedHazards()
{
    std::random_device rd;   // EXPECT: banned-api/random-device
    std::mt19937_64 gen;     // EXPECT: banned-api/rng-seed
    std::mt19937_64 pinned(0x9e3779b97f4a7c15ull); // seeded: clean
    return rd() ^ gen() ^ pinned();
}

struct Worm;

std::size_t
pointerOrdering(Worm *w)
{
    std::less<Worm *> before; // EXPECT: banned-api/ptr-order
    std::unordered_map<Worm *, int> // EXPECT: banned-api/ptr-key
        index;
    index[w] = 1;
    return index.size() + std::size_t(before(w, w));
}

double
floatAccumulation(const std::unordered_map<int, double> &weights)
{
    double total = 0.0;
    for (const auto &kv : weights) {
        total += kv.second; // EXPECT: banned-api/float-accum
    }
    return total;
}
