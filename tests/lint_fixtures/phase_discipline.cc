/**
 * @file
 * wormnet-lint fixture: the phase-discipline family.
 *
 * Never compiled — linted only. Mirrors the decide/commit split of
 * Network: WN_DECIDE_PHASE code runs fanned out over frozen state,
 * so it must not draw the global RNG, write non-WN_SHARD_LOCAL
 * members, or reach WN_COMMIT_PHASE code.
 */

#include <cstdint>
#include <vector>

#if defined(__clang__)
#define WN_DECIDE_PHASE [[clang::annotate("wormnet::decide_phase")]]
#define WN_COMMIT_PHASE [[clang::annotate("wormnet::commit_phase")]]
#define WN_SHARD_LOCAL [[clang::annotate("wormnet::shard_local")]]
#else
#define WN_DECIDE_PHASE
#define WN_COMMIT_PHASE
#define WN_SHARD_LOCAL
#endif

struct Rng
{
    std::uint64_t next();
};

class Net
{
  public:
    WN_DECIDE_PHASE void decideShard(unsigned shard);
    WN_DECIDE_PHASE void decideClean(unsigned shard);
    WN_COMMIT_PHASE void commitAll();
    void helper();

  private:
    Rng rng_;
    std::vector<int> committed_;
    WN_SHARD_LOCAL std::vector<int> scratch_;
};

void
Net::decideShard(unsigned shard)
{
    // Rule 1: the global RNG stream belongs to the commit phase.
    const auto r = rng_.next(); // EXPECT: phase-discipline/decide-rng
    (void)r;

    // Rule 2: only WN_SHARD_LOCAL members may be written.
    committed_[shard] = 1; // EXPECT: phase-discipline/decide-write
    committed_.push_back(  // EXPECT: phase-discipline/decide-write
        int(shard));
    int &slot = committed_[shard]; // EXPECT: phase-discipline/decide-write
    (void)slot;

    // Rule 3: no path into commit-phase code, even transitively
    // (helper() below calls commitAll()).
    helper(); // EXPECT: phase-discipline/decide-calls-commit
}

void
Net::decideClean(unsigned shard)
{
    // Shard-local writes and const views of committed state are the
    // sanctioned pattern — no findings here.
    scratch_[shard] = 1;
    scratch_.push_back(int(shard));
    const int &v = committed_[shard];
    (void)v;
    // A justified suppression covers an audited exception.
    // wormnet-lint: allow(phase-discipline): fixture — writes proven
    // shard-disjoint by the node-range partition
    committed_[shard] = 2;
}

void
Net::helper()
{
    commitAll();
}

void
Net::commitAll()
{
    committed_.clear();
}
