/**
 * @file
 * Unit tests for the router data model (FIFOs, VC records, router
 * helpers) and for single-message flit transport through a small
 * network: pipeline timing, wormhole spreading, buffer bounds and
 * flit conservation.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/simulation.hh"
#include "router/channel.hh"
#include "router/flit.hh"
#include "router/message.hh"
#include "router/router.hh"

namespace wormnet
{
namespace
{

TEST(FlitFifo, PushPopOrder)
{
    FlitFifo fifo(4);
    EXPECT_TRUE(fifo.empty());
    for (unsigned i = 0; i < 4; ++i)
        fifo.push(Flit{i, FlitType::Body, 0});
    EXPECT_TRUE(fifo.full());
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(fifo.pop().msg, i);
    EXPECT_TRUE(fifo.empty());
}

TEST(FlitFifo, WrapsAround)
{
    FlitFifo fifo(3);
    for (unsigned round = 0; round < 10; ++round) {
        fifo.push(Flit{round, FlitType::Body, 0});
        EXPECT_EQ(fifo.pop().msg, round);
    }
    EXPECT_TRUE(fifo.empty());
}

TEST(FlitFifo, OverflowAndUnderflowPanic)
{
    FlitFifo fifo(2);
    fifo.push(Flit{});
    fifo.push(Flit{});
    EXPECT_THROW(fifo.push(Flit{}), PanicError);
    fifo.clear();
    EXPECT_THROW(fifo.pop(), PanicError);
}

TEST(FlitTypes, PositionMapping)
{
    EXPECT_EQ(flitTypeAt(0, 1), FlitType::HeadTail);
    EXPECT_EQ(flitTypeAt(0, 4), FlitType::Head);
    EXPECT_EQ(flitTypeAt(1, 4), FlitType::Body);
    EXPECT_EQ(flitTypeAt(2, 4), FlitType::Body);
    EXPECT_EQ(flitTypeAt(3, 4), FlitType::Tail);
    EXPECT_TRUE(isHeadFlit(FlitType::HeadTail));
    EXPECT_TRUE(isTailFlit(FlitType::HeadTail));
    EXPECT_FALSE(isHeadFlit(FlitType::Tail));
    EXPECT_FALSE(isTailFlit(FlitType::Head));
}

TEST(InputVc, ReleaseResetsWormState)
{
    InputVc vc(4);
    vc.msg = 7;
    vc.routed = true;
    vc.outPort = 2;
    vc.outVc = 1;
    vc.attempted = true;
    vc.lastFeasible = 0x5;
    vc.recovering = true;
    vc.release();
    EXPECT_TRUE(vc.free());
    EXPECT_FALSE(vc.routed);
    EXPECT_EQ(vc.outPort, kInvalidPort);
    EXPECT_FALSE(vc.attempted);
    EXPECT_EQ(vc.lastFeasible, 0u);
    EXPECT_FALSE(vc.recovering);
}

TEST(Message, LinkChainFifoOrder)
{
    PathSlab slab;
    Message m;
    m.bindSlab(&slab);
    m.pushLink(1, 0, 0);
    m.pushLink(2, 1, 0);
    m.pushLink(3, 2, 1);
    EXPECT_EQ(m.numLinks(), 3u);
    EXPECT_EQ(m.link(0).node, 1u);
    EXPECT_EQ(m.headLink().node, 3u);
    m.popFrontLink();
    EXPECT_EQ(m.numLinks(), 2u);
    EXPECT_EQ(m.link(0).node, 2u);
    m.popFrontLink();
    m.popFrontLink();
    EXPECT_EQ(m.numLinks(), 0u);
}

TEST(MessageStore, CreateAssignsDenseIds)
{
    MessageStore store;
    const MsgId a = store.create(0, 1, 16, 5, false);
    const MsgId b = store.create(2, 3, 64, 6, true);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(store.get(a).length, 16u);
    EXPECT_TRUE(store.get(b).measured);
    EXPECT_EQ(store.size(), 2u);
}

TEST(Router, ShapeAndPortClassification)
{
    RouterParams p;
    p.netPorts = 4;
    p.injPorts = 2;
    p.ejePorts = 3;
    p.vcs = 3;
    p.bufDepth = 4;
    Router rt(9, p);
    EXPECT_EQ(rt.nodeId(), 9u);
    EXPECT_EQ(rt.numInPorts(), 6u);
    EXPECT_EQ(rt.numOutPorts(), 7u);
    EXPECT_FALSE(rt.isInjectionPort(3));
    EXPECT_TRUE(rt.isInjectionPort(4));
    EXPECT_FALSE(rt.isEjectionPort(3));
    EXPECT_TRUE(rt.isEjectionPort(4));
    EXPECT_TRUE(rt.isEjectionPort(6));
}

TEST(Router, OccupancyHelpers)
{
    RouterParams p;
    p.netPorts = 2;
    p.injPorts = 1;
    p.ejePorts = 1;
    p.vcs = 2;
    Router rt(0, p);
    EXPECT_FALSE(rt.inputPcFullyBusy(0));
    rt.inputVc(0, 0).msg = 1;
    EXPECT_FALSE(rt.inputPcFullyBusy(0));
    rt.inputVc(0, 1).msg = 2;
    EXPECT_TRUE(rt.inputPcFullyBusy(0));

    EXPECT_FALSE(rt.outputPcOccupied(1));
    rt.outputVc(1, 1).allocated = true;
    EXPECT_TRUE(rt.outputPcOccupied(1));
    EXPECT_EQ(rt.busyNetworkOutputVcs(), 1u);
    rt.outputVc(2, 0).allocated = true; // ejection port: not counted
    EXPECT_EQ(rt.busyNetworkOutputVcs(), 1u);
}

TEST(Router, CreditsStartFull)
{
    RouterParams p;
    Router rt(0, p);
    for (PortId q = 0; q < rt.numOutPorts(); ++q)
        for (VcId v = 0; v < p.vcs; ++v)
            EXPECT_EQ(rt.outputVc(q, v).credits, p.bufDepth);
}

/** Fixture: a quiet network we inject individual messages into. */
class SingleMessage : public ::testing::Test
{
  protected:
    SimulationConfig
    baseConfig()
    {
        SimulationConfig cfg;
        cfg.radix = 4;
        cfg.dims = 1;
        cfg.flitRate = 0.0; // no background traffic
        cfg.detector = "none";
        cfg.recovery = "none";
        cfg.oraclePeriod = 0;
        return cfg;
    }
};

TEST_F(SingleMessage, DeliveredIntact)
{
    Simulation sim(baseConfig());
    const MsgId id = sim.net().injectMessage(0, 2, 16);
    for (int i = 0; i < 200; ++i)
        sim.net().step();
    const Message &m = sim.net().messages().get(id);
    EXPECT_EQ(m.status, MsgStatus::Delivered);
    EXPECT_EQ(m.flitsInjected, 16u);
    EXPECT_EQ(m.flitsEjected, 16u);
    EXPECT_EQ(m.numLinks(), 0u);
    EXPECT_EQ(sim.net().stats().delivered, 1u);
    EXPECT_EQ(sim.net().stats().flitsDelivered, 16u);
}

TEST_F(SingleMessage, SingleFlitMessage)
{
    Simulation sim(baseConfig());
    const MsgId id = sim.net().injectMessage(1, 3, 1);
    for (int i = 0; i < 100; ++i)
        sim.net().step();
    EXPECT_EQ(sim.net().messages().get(id).status,
              MsgStatus::Delivered);
}

TEST_F(SingleMessage, LatencyScalesWithDistance)
{
    // Distance 1 vs distance 2 on the ring: the longer path takes
    // strictly longer, in pipelined-header steps.
    Cycle t1 = 0, t2 = 0;
    {
        Simulation sim(baseConfig());
        const MsgId id = sim.net().injectMessage(0, 1, 8);
        for (int i = 0; i < 200; ++i)
            sim.net().step();
        t1 = sim.net().messages().get(id).deliverCycle;
    }
    {
        Simulation sim(baseConfig());
        const MsgId id = sim.net().injectMessage(0, 2, 8);
        for (int i = 0; i < 200; ++i)
            sim.net().step();
        t2 = sim.net().messages().get(id).deliverCycle;
    }
    EXPECT_GT(t2, t1);
    EXPECT_LE(t2 - t1, 6u); // one extra hop costs a few cycles
}

TEST_F(SingleMessage, ThroughputOneFlitPerCycle)
{
    // A long message streams at 1 flit/cycle once the pipeline fills:
    // delivery time ~ length + constant.
    Simulation sim(baseConfig());
    const MsgId id = sim.net().injectMessage(0, 1, 64);
    Cycle delivered = 0;
    for (int i = 0; i < 400; ++i) {
        sim.net().step();
        if (sim.net().messages().get(id).status ==
            MsgStatus::Delivered) {
            delivered = sim.net().now();
            break;
        }
    }
    ASSERT_GT(delivered, 0u);
    EXPECT_LT(delivered, 64u + 20u);
}

TEST_F(SingleMessage, WormSpreadsOverMultipleRouters)
{
    // A 16-flit worm crossing 2 hops with 4-flit buffers must occupy
    // several VCs at once mid-flight.
    SimulationConfig cfg = baseConfig();
    cfg.radix = 8;
    Simulation sim(cfg);
    const MsgId id = sim.net().injectMessage(0, 4, 16);
    std::size_t max_links = 0;
    for (int i = 0; i < 300; ++i) {
        sim.net().step();
        max_links = std::max(max_links,
                             sim.net().messages().get(id).numLinks());
    }
    EXPECT_EQ(sim.net().messages().get(id).status,
              MsgStatus::Delivered);
    EXPECT_GE(max_links, 3u);
}

TEST_F(SingleMessage, BuffersNeverOverflow)
{
    // Buffer bounds are asserted inside FlitFifo::push; a run with
    // many concurrent messages exercises them.
    SimulationConfig cfg = baseConfig();
    cfg.radix = 4;
    cfg.dims = 2;
    Simulation sim(cfg);
    for (NodeId n = 0; n < 16; ++n)
        sim.net().injectMessage(n, (n + 5) % 16, 24);
    EXPECT_NO_THROW({
        for (int i = 0; i < 500; ++i)
            sim.net().step();
    });
    EXPECT_EQ(sim.net().stats().delivered, 16u);
}

TEST_F(SingleMessage, TwoMessagesShareAPhysicalChannel)
{
    // Two worms from the same source to the same destination must
    // multiplex the channel through different VCs and both arrive.
    Simulation sim(baseConfig());
    const MsgId a = sim.net().injectMessage(0, 2, 32);
    const MsgId b = sim.net().injectMessage(0, 2, 32);
    for (int i = 0; i < 500; ++i)
        sim.net().step();
    EXPECT_EQ(sim.net().messages().get(a).status,
              MsgStatus::Delivered);
    EXPECT_EQ(sim.net().messages().get(b).status,
              MsgStatus::Delivered);
}

TEST_F(SingleMessage, ManyToOneDestinationContention)
{
    // All nodes send to node 0; ejection bandwidth (4 ports) must
    // eventually deliver everything.
    SimulationConfig cfg = baseConfig();
    cfg.radix = 4;
    cfg.dims = 2;
    Simulation sim(cfg);
    for (NodeId n = 1; n < 16; ++n)
        sim.net().injectMessage(n, 0, 16);
    for (int i = 0; i < 1000; ++i)
        sim.net().step();
    EXPECT_EQ(sim.net().stats().delivered, 15u);
}

TEST_F(SingleMessage, InFlightAccounting)
{
    Simulation sim(baseConfig());
    EXPECT_EQ(sim.net().inFlight(), 0u);
    sim.net().injectMessage(0, 2, 16);
    sim.net().step();
    sim.net().step();
    EXPECT_EQ(sim.net().inFlight(), 1u);
    for (int i = 0; i < 200; ++i)
        sim.net().step();
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST_F(SingleMessage, InvalidInjectionPanics)
{
    Simulation sim(baseConfig());
    EXPECT_THROW(sim.net().injectMessage(99, 0, 16), PanicError);
    EXPECT_THROW(sim.net().injectMessage(0, 99, 16), PanicError);
    EXPECT_THROW(sim.net().injectMessage(0, 1, 0), PanicError);
}

} // namespace
} // namespace wormnet
