/**
 * @file
 * Property-based tests: invariants that must hold across sweeps of
 * traffic pattern, load, seed and mechanism configuration. These are
 * the system-level guarantees the paper's evaluation quietly relies
 * on (conservation, stability below saturation, detection-threshold
 * monotonicity, NDM's selectivity vs. PDM/timeouts).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/experiment.hh"
#include "core/simulation.hh"
#include "sim/oracle.hh"

namespace wormnet
{
namespace
{

/** Conservation and cleanliness after full drain, across patterns. */
class ConservationSweep
    : public ::testing::TestWithParam<
          std::tuple<const char *, double, unsigned>>
{
};

TEST_P(ConservationSweep, DrainedNetworkIsCleanAndConserving)
{
    const auto [pattern, rate, seed] = GetParam();
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.pattern = pattern;
    cfg.lengths = "sl";
    cfg.flitRate = rate;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.seed = seed;
    Simulation sim(cfg);
    sim.net().run(3000);
    sim.net().setFlitRate(0.0);
    sim.net().run(4000);

    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered + s.kills, s.injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_EQ(sim.net().totalQueued(), 0u);
    EXPECT_GT(s.delivered, 50u);

    // All router state back to idle.
    const RouterParams &rp = sim.net().routerParams();
    for (NodeId n = 0; n < sim.net().numNodes(); ++n) {
        const Router &rt = sim.net().router(n);
        for (PortId p = 0; p < rp.numInPorts(); ++p)
            for (VcId v = 0; v < rp.vcs; ++v)
                ASSERT_TRUE(rt.inputVc(p, v).free());
        for (PortId q = 0; q < rp.numOutPorts(); ++q)
            for (VcId v = 0; v < rp.vcs; ++v)
                ASSERT_FALSE(rt.outputVc(q, v).allocated);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndLoads, ConservationSweep,
    ::testing::Values(
        std::make_tuple("uniform", 0.2, 1u),
        std::make_tuple("uniform", 0.5, 2u),
        std::make_tuple("locality:3", 0.4, 3u),
        std::make_tuple("bitrev", 0.2, 4u),
        std::make_tuple("shuffle", 0.15, 5u),
        std::make_tuple("butterfly", 0.1, 6u),
        std::make_tuple("transpose", 0.15, 7u),
        std::make_tuple("hotspot:0.05", 0.06, 8u),
        std::make_tuple("tornado", 0.15, 9u)));

/** Latency distribution sanity across message-size classes. */
class SizeClassSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SizeClassSweep, LatencyAtLeastSerialisation)
{
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.lengths = GetParam();
    cfg.flitRate = 0.1;
    cfg.seed = 17;
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(1500, 4000);
    ASSERT_GT(s.delivered, 50u);
    // A message of n flits needs >= n cycles end to end.
    const double min_len =
        std::string(GetParam()) == "sl" ? 16.0 : 0.0;
    EXPECT_GT(s.avgLatency, min_len);
    EXPECT_EQ(s.detectedMessages, 0u); // far below saturation
}

INSTANTIATE_TEST_SUITE_P(Sizes, SizeClassSweep,
                         ::testing::Values("s", "l", "L", "sl"));

/** Detection count is (weakly) monotone decreasing in threshold. */
class ThresholdMonotonicity
    : public ::testing::TestWithParam<const char *>
{
  protected:
    double
    rateFor(Cycle threshold)
    {
        SimulationConfig cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.flitRate = 0.68; // just below the knee
        cfg.lengths = "s";
        cfg.seed = 23;
        cfg.detector =
            std::string(GetParam()) + ":" + std::to_string(threshold);
        Simulation sim(cfg);
        return sim.warmupAndMeasure(2000, 8000).detectionRate;
    }
};

TEST_P(ThresholdMonotonicity, LargeThresholdDetectsLess)
{
    const double r2 = rateFor(2);
    const double r512 = rateFor(512);
    // Strict ordering between the extremes (dynamics diverge between
    // runs, so only the 2-vs-512 gap is asserted).
    EXPECT_GE(r2, r512);
    EXPECT_LT(r512, 0.001);
}

INSTANTIATE_TEST_SUITE_P(Detectors, ThresholdMonotonicity,
                         ::testing::Values("ndm", "pdm", "timeout"));

TEST(Selectivity, NdmBelowPdmBelowTimeoutNearSaturation)
{
    // The paper's headline ordering at a common small threshold.
    const auto rate_for = [](const std::string &detector) {
        SimulationConfig cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.flitRate = 0.72;
        cfg.lengths = "s";
        cfg.seed = 29;
        cfg.detector = detector;
        Simulation sim(cfg);
        return sim.warmupAndMeasure(2000, 10000).detectionRate;
    };
    const double ndm = rate_for("ndm:8");
    const double pdm = rate_for("pdm:8");
    const double timeout = rate_for("timeout:8");
    EXPECT_LT(ndm, pdm);
    EXPECT_LT(pdm, timeout);
    // Crude timeouts mark an order of magnitude (or more) more
    // messages than the channel-monitoring mechanisms.
    EXPECT_GT(timeout, 10.0 * pdm);
}

TEST(Selectivity, NdmLengthInsensitivity)
{
    // The paper's key claim: with NDM a single threshold works for
    // every message length. Measure the Th-32 detection rate for
    // 16-flit and 256-flit messages at ~85% load: both must be tiny.
    const auto rate_for = [](const std::string &lengths) {
        SimulationConfig cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.flitRate = 0.64;
        cfg.lengths = lengths;
        cfg.seed = 31;
        cfg.detector = "ndm:32";
        Simulation sim(cfg);
        return sim.warmupAndMeasure(2000, 10000).detectionRate;
    };
    EXPECT_LT(rate_for("s"), 0.002);
    EXPECT_LT(rate_for("L"), 0.005);
    EXPECT_LT(rate_for("sl"), 0.003);
}

TEST(Selectivity, NdmNeverWorseThanPdmSeedAveraged)
{
    // Seed-averaged (3 replications) so the ordering is not an
    // artefact of one lucky run: at 86% load, NDM's detection rate
    // is below PDM's at the same threshold.
    const ExperimentRunner runner;
    const auto mean_rate = [&](const char *detector) {
        SimulationConfig cfg;
        cfg.radix = 8;
        cfg.dims = 2;
        cfg.flitRate = 0.64;
        cfg.lengths = "sl";
        cfg.detector = detector;
        cfg.seed = 43;
        return runner.runCellReplicated(cfg, 1500, 6000, 3)
            .detectionRate;
    };
    EXPECT_LT(mean_rate("ndm:16"), mean_rate("pdm:16"));
    EXPECT_LT(mean_rate("ndm:16"), mean_rate("timeout:16"));
}

/** With detection + recovery, no deadlock persists for long. */
class RecoveryLiveness : public ::testing::TestWithParam<
                             std::tuple<const char *, const char *>>
{
};

TEST_P(RecoveryLiveness, DeadlocksNeverPersist)
{
    const auto [detector, recovery] = GetParam();
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1; // deadlock-prone substrate
    cfg.flitRate = 0.3;
    cfg.lengths = "s";
    cfg.detector = detector;
    cfg.recovery = recovery;
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 32;
    cfg.seed = 37;
    Simulation sim(cfg);
    sim.net().run(6000);
    sim.net().setFlitRate(0.0);
    sim.net().run(6000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered + s.kills, s.injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    // Any deadlock that formed was resolved within a bounded time.
    EXPECT_LT(s.maxDeadlockPersistence, 3000u);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, RecoveryLiveness,
    ::testing::Values(
        std::make_tuple("ndm:16", "progressive"),
        std::make_tuple("ndm:16", "regressive:16"),
        std::make_tuple("pdm:16", "progressive"),
        std::make_tuple("timeout:64", "progressive"),
        std::make_tuple("ndm:16:1:coarse", "progressive")));

/** Seeds only perturb, never break, the qualitative behaviour. */
class SeedSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SeedSweep, SaturatedNetworkStaysProductive)
{
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.flitRate = 0.9; // beyond saturation
    cfg.lengths = "sl";
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.seed = GetParam();
    Simulation sim(cfg);
    const SimSummary s = sim.warmupAndMeasure(2000, 5000);
    // The injection limiter keeps accepted throughput near the peak.
    EXPECT_GT(s.acceptedFlitRate, 0.55);
    // And NDM's false-positive rate stays low even here.
    EXPECT_LT(s.detectionRate, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

/** Virtual-channel count scaling. */
class VcSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(VcSweep, MoreVcsNeverHurtDelivery)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = GetParam();
    cfg.flitRate = 0.25;
    cfg.seed = 41;
    Simulation sim(cfg);
    sim.net().run(2500);
    sim.net().setFlitRate(0.0);
    sim.net().run(2500);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
    EXPECT_GT(sim.net().stats().delivered, 200u);
}

INSTANTIATE_TEST_SUITE_P(Vcs, VcSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u));

/** Buffer-depth scaling. */
class BufferSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BufferSweep, DeliversAcrossBufferDepths)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.bufDepth = GetParam();
    cfg.flitRate = 0.2;
    cfg.seed = 43;
    Simulation sim(cfg);
    sim.net().run(2500);
    sim.net().setFlitRate(0.0);
    sim.net().run(2500);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
}

INSTANTIATE_TEST_SUITE_P(Depths, BufferSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace wormnet
