/**
 * @file
 * Unit tests for the metrics helpers and the umbrella header (which
 * this file includes to guarantee it stays self-contained).
 */

#include <gtest/gtest.h>

#include "wormnet.hh"

namespace wormnet
{
namespace
{

TEST(SimStats, WindowResetClearsOnlyWindowedCounters)
{
    SimStats s;
    s.generated = 10;
    s.delivered = 8;
    s.wGenerated = 10;
    s.wDelivered = 8;
    s.wDetectedMessages = 2;
    s.latency.add(50.0);
    s.startWindow(123);
    EXPECT_EQ(s.windowStart, 123u);
    EXPECT_EQ(s.wGenerated, 0u);
    EXPECT_EQ(s.wDelivered, 0u);
    EXPECT_EQ(s.wDetectedMessages, 0u);
    EXPECT_EQ(s.latency.count(), 0u);
    // Lifetime totals untouched.
    EXPECT_EQ(s.generated, 10u);
    EXPECT_EQ(s.delivered, 8u);
}

TEST(SimStats, DetectionRate)
{
    SimStats s;
    EXPECT_DOUBLE_EQ(s.detectionRate(), 0.0);
    s.wDelivered = 200;
    s.wDetectedMessages = 3;
    EXPECT_DOUBLE_EQ(s.detectionRate(), 3.0 / 200.0);
}

TEST(SimStats, RateHelpers)
{
    SimStats s;
    s.startWindow(1000);
    s.wFlitsDelivered = 6400;
    s.wGeneratedFlits = 8000;
    EXPECT_DOUBLE_EQ(s.acceptedFlitRate(2000, 64), 0.1);
    EXPECT_DOUBLE_EQ(s.generatedFlitRate(2000, 64), 0.125);
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(s.acceptedFlitRate(1000, 64), 0.0);
    EXPECT_DOUBLE_EQ(s.acceptedFlitRate(2000, 0), 0.0);
}

TEST(UmbrellaHeader, TypesAreUsable)
{
    // Spot-check that the umbrella header exposes the full API
    // surface without additional includes.
    KAryNCube torus(4, 2);
    UniformPattern pattern(torus);
    FixedLength lengths(16);
    const auto detector = makeDetector("ndm:32");
    const auto recovery = makeRecoveryManager("progressive");
    const auto routing = makeRoutingFunction(
        "tfa", torus, RouterParams{4, 4, 4, 3, 4});
    EXPECT_EQ(torus.numNodes(), 16u);
    EXPECT_NE(detector, nullptr);
    EXPECT_NE(recovery, nullptr);
    EXPECT_NE(routing, nullptr);
}

} // namespace
} // namespace wormnet
