/**
 * @file
 * Tests for the run-report renderer: every section appears, the
 * numbers it quotes agree with the statistics, and the options
 * control the optional sections.
 */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace wormnet
{
namespace
{

TEST(Report, ContainsAllSections)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.25;
    cfg.seed = 91;
    Simulation sim(cfg);
    sim.warmupAndMeasure(1000, 3000);

    const std::string report = buildReport(sim);
    for (const char *needle :
         {"configuration", "traffic and throughput",
          "latency (cycles)", "deadlock detection", "recovery",
          "channel utilisation", "hottest channels", "4-ary 2-cube",
          "ndm:32", "progressive", "uniform"}) {
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
    }
}

TEST(Report, NumbersMatchStats)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.2;
    cfg.seed = 92;
    Simulation sim(cfg);
    sim.warmupAndMeasure(800, 2500);

    const std::string report = buildReport(sim);
    const SimStats &s = sim.net().stats();
    EXPECT_NE(report.find("delivered:           " +
                          std::to_string(s.wDelivered)),
              std::string::npos);
    EXPECT_NE(report.find("generated:           " +
                          std::to_string(s.wGenerated)),
              std::string::npos);
}

TEST(Report, OptionsControlSections)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.2;
    Simulation sim(cfg);
    sim.warmupAndMeasure(500, 1500);

    ReportOptions options;
    options.latencyHistogram = false;
    options.hottestChannels = 0;
    const std::string report = buildReport(sim, options);
    EXPECT_EQ(report.find("histogram"), std::string::npos);
    EXPECT_EQ(report.find("hottest channels"), std::string::npos);
}

TEST(Report, DetectionSectionReflectsActivity)
{
    // Deadlock-prone run: the detection section reports activity.
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.flitRate = 0.3;
    cfg.detector = "ndm:16";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 93;
    Simulation sim(cfg);
    sim.warmupAndMeasure(500, 4000);

    const std::string report = buildReport(sim);
    EXPECT_NE(report.find("verdicts raised"), std::string::npos);
    if (sim.net().stats().detectionLatency.count() > 0) {
        EXPECT_NE(report.find("detection latency"),
                  std::string::npos);
    }
}

} // namespace
} // namespace wormnet
