/**
 * @file
 * Tests for the fault-injection subsystem: spec parsing, the
 * FaultModel state machine (scheduled faults, repairs, router faults
 * failing incident links), and the Network-level consequences —
 * faulted ports never appear in feasible sets, the detector raises no
 * false verdicts merely because a link died, and stranded worms are
 * killed and either redelivered or abandoned with exact accounting.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/simulation.hh"
#include "detector_fixture.hh"
#include "fault/fault.hh"
#include "sim/validate.hh"
#include "topology/torus.hh"

namespace wormnet
{
namespace
{

TEST(FaultSpec, ParsesScheduleAndRate)
{
    const FaultParams p = FaultModel::parseSpec(
        "link:12>13@5000,router:7@20000,rate:1e-6");
    ASSERT_EQ(p.schedule.size(), 2u);
    EXPECT_EQ(p.schedule[0].kind, ScheduledFault::Kind::Link);
    EXPECT_EQ(p.schedule[0].node, 12u);
    EXPECT_EQ(p.schedule[0].peer, 13u);
    EXPECT_EQ(p.schedule[0].at, 5000u);
    EXPECT_EQ(p.schedule[1].kind, ScheduledFault::Kind::Router);
    EXPECT_EQ(p.schedule[1].node, 7u);
    EXPECT_EQ(p.schedule[1].at, 20000u);
    EXPECT_DOUBLE_EQ(p.linkRate, 1e-6);
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultModel::parseSpec("link:12"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("link:12>13"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("link:a>b@c"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("router:7"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("teleport:1@2"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("rate:1.5"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec("rate:x"), FatalError);
    EXPECT_THROW(FaultModel::parseSpec(""), FatalError);
}

TEST(FaultModel, ScheduledFaultActivatesAndRepairs)
{
    const KAryNCube topo(8, 1);
    RouterParams rp;
    rp.netPorts = topo.numNetPorts();

    FaultParams p = FaultModel::parseSpec("link:1>2@10");
    p.repairDelay = 5;
    FaultModel fm(p);
    fm.init(topo, rp, 42);

    const PortId out = Topology::outPort(0, true); // 1 -> 2
    for (Cycle c = 0; c < 10; ++c) {
        EXPECT_FALSE(fm.tick(c));
        EXPECT_FALSE(fm.linkFaulty(1, out));
    }
    EXPECT_TRUE(fm.tick(10));
    EXPECT_TRUE(fm.linkFaulty(1, out));
    EXPECT_EQ(fm.activeLinkFaults(), 1u);
    EXPECT_EQ(fm.faultsInjected(), 1u);
    ASSERT_EQ(fm.changes().size(), 1u);
    EXPECT_EQ(fm.changes()[0].node, 1u);
    EXPECT_EQ(fm.changes()[0].outPort, out);
    EXPECT_TRUE(fm.changes()[0].faulty);
    // Only the 1->2 direction died; 2->1 still works.
    EXPECT_FALSE(fm.linkFaulty(2, Topology::outPort(0, false)));

    for (Cycle c = 11; c < 15; ++c)
        EXPECT_FALSE(fm.tick(c));
    EXPECT_TRUE(fm.tick(15)); // 10 + repairDelay
    EXPECT_FALSE(fm.linkFaulty(1, out));
    EXPECT_EQ(fm.activeLinkFaults(), 0u);
    EXPECT_EQ(fm.faultsRepaired(), 1u);
}

TEST(FaultModel, RouterFaultFailsAllIncidentLinks)
{
    const KAryNCube topo(4, 2);
    RouterParams rp;
    rp.netPorts = topo.numNetPorts();

    FaultModel fm(FaultModel::parseSpec("router:5@0"));
    fm.init(topo, rp, 1);
    EXPECT_TRUE(fm.tick(0));
    EXPECT_TRUE(fm.routerFaulty(5));
    EXPECT_EQ(fm.activeRouterFaults(), 1u);
    // Every outgoing link of 5 and every neighbour's link toward 5.
    EXPECT_EQ(fm.faultyOutMask(5), (PortMask(1) << rp.netPorts) - 1);
    for (unsigned d = 0; d < topo.numDims(); ++d) {
        for (const bool pos : {true, false}) {
            const NodeId n = topo.neighbor(5, d, pos);
            EXPECT_TRUE(fm.linkFaulty(n, Topology::outPort(d, !pos)));
        }
    }
    // Unrelated links stay healthy.
    EXPECT_FALSE(fm.routerFaulty(0));
    EXPECT_EQ(fm.faultyOutMask(0), 0u);
}

TEST(FaultModel, RejectsLinkAbsentFromTopology)
{
    const KAryNCube topo(8, 1);
    RouterParams rp;
    rp.netPorts = topo.numNetPorts();
    FaultModel fm(FaultModel::parseSpec("link:0>5@1")); // not adjacent
    EXPECT_THROW(fm.init(topo, rp, 7), FatalError);
}

TEST(Fault, StrandedWormKilledAndRedeliveredAfterRepair)
{
    // A long worm straddles link 2->3 when it fails at cycle 20; the
    // worm is killed and re-queued, and once the link self-repairs
    // the retry goes through.
    SimulationConfig cfg = ringFaultConfig();
    cfg.faults = "link:2>3@20";
    cfg.faultRepair = 100;
    Simulation sim(cfg);
    Network &net = sim.net();
    const MsgId id = net.injectMessage(0, 3, 64);
    net.run(3000);
    validateNetworkInvariants(net);

    const Message &m = net.messages().get(id);
    EXPECT_EQ(m.status, MsgStatus::Delivered);
    EXPECT_GE(m.retries, 1u);
    const SimStats &s = net.stats();
    EXPECT_GE(s.faultKills, 1u);
    EXPECT_GT(s.faultFlitsDropped, 0u);
    EXPECT_EQ(s.abandoned, 0u);
    EXPECT_EQ(s.injected, s.delivered + s.kills);
    // The fault itself produced no deadlock verdicts: nothing here
    // was ever deadlocked, and a dead link must not look like one.
    EXPECT_EQ(s.detections, 0u);
    EXPECT_EQ(s.wFalseDetections, 0u);
}

TEST(Fault, PermanentFaultExhaustsRetriesAndAbandons)
{
    // 0 -> 3 has a unique minimal path through link 2->3; with the
    // link permanently dead every retry is killed at router 2 until
    // the budget runs out and the message is abandoned — without a
    // single (false) deadlock verdict from the NDM.
    SimulationConfig cfg = ringFaultConfig();
    cfg.faults = "link:2>3@5";
    cfg.maxRetries = 3;
    Simulation sim(cfg);
    Network &net = sim.net();
    const MsgId id = net.injectMessage(0, 3, 16);
    net.run(3000);
    validateNetworkInvariants(net);

    const Message &m = net.messages().get(id);
    EXPECT_EQ(m.status, MsgStatus::Abandoned);
    EXPECT_EQ(m.retries, 3u);
    const SimStats &s = net.stats();
    EXPECT_EQ(s.abandoned, 1u);
    EXPECT_EQ(s.delivered, 0u);
    EXPECT_EQ(s.injected, s.kills + s.abandoned);
    EXPECT_EQ(net.inFlight(), 0u);
    EXPECT_EQ(s.detections, 0u);
    EXPECT_EQ(s.wFalseDetections, 0u);
}

TEST(Fault, RetryExhaustionWhileLinkMidRepairAbandonsExactlyOnce)
{
    // The worm straddles 2->3 when it faults at cycle 20 and is
    // killed; with a budget of one retry the re-injected attempt is
    // killed again at router 2 (link still down) and abandoned —
    // long before the repair lands at cycle 420. The repair must
    // neither resurrect the abandoned worm nor double-count
    // anything: exactly one abandonment, exactly one repair, and the
    // abandoned status is terminal.
    SimulationConfig cfg = ringFaultConfig();
    cfg.faults = "link:2>3@20";
    cfg.faultRepair = 400;
    cfg.maxRetries = 1;
    Simulation sim(cfg);
    Network &net = sim.net();
    const MsgId id = net.injectMessage(0, 3, 64);

    net.run(300); // fault active, retries burned, repair pending
    {
        const Message &m = net.messages().get(id);
        EXPECT_EQ(m.status, MsgStatus::Abandoned);
        EXPECT_EQ(m.retries, 1u);
    }
    EXPECT_EQ(net.stats().abandoned, 1u);
    EXPECT_EQ(net.stats().faultKills, 2u); // strand + failed retry
    EXPECT_EQ(net.stats().faultsRepaired, 0u);

    net.run(2700); // repair at ~420, then a long quiet tail
    validateNetworkInvariants(net);
    {
        const Message &m = net.messages().get(id);
        EXPECT_EQ(m.status, MsgStatus::Abandoned)
            << "repair resurrected an abandoned worm";
        EXPECT_EQ(m.retries, 1u);
    }
    const SimStats &s = net.stats();
    EXPECT_EQ(s.abandoned, 1u);
    EXPECT_EQ(s.faultKills, 2u);
    EXPECT_EQ(s.faultsRepaired, 1u);
    EXPECT_EQ(s.delivered, 0u);
    EXPECT_EQ(net.inFlight(), 0u);

    // The repaired link carries fresh traffic again.
    const MsgId id2 = net.injectMessage(0, 3, 16);
    net.run(500);
    EXPECT_EQ(net.messages().get(id2).status, MsgStatus::Delivered);
    EXPECT_EQ(net.stats().abandoned, 1u);
}

TEST(Fault, FaultedPortsNeverInFeasibleSetsUnderLoad)
{
    // Random traffic over a torus with a permanent link fault: at
    // every probe point no routed input VC may point at a faulted
    // port and the full structural invariant set must hold.
    SimulationConfig cfg = torusConfig(0.15);
    cfg.detector = "ndm:32";
    cfg.recovery = "regressive:16";
    cfg.faults = "link:5>6@100";
    cfg.seed = 21;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 10; ++chunk) {
        net.run(200);
        validateNetworkInvariants(net);
        const RouterParams &rp = net.routerParams();
        for (NodeId n = 0; n < net.numNodes(); ++n) {
            for (PortId p = 0; p < rp.numInPorts(); ++p) {
                for (VcId v = 0; v < rp.vcs; ++v) {
                    const InputVc &vc = net.router(n).inputVc(p, v);
                    if (vc.routed) {
                        EXPECT_FALSE(net.portFaulty(n, vc.outPort));
                    }
                }
            }
        }
    }
    EXPECT_TRUE(net.portFaulty(5, Topology::outPort(0, true)));
    EXPECT_GT(net.stats().delivered, 100u);
}

TEST(Fault, DeadRouterKillsOccupantsAndTrafficDrains)
{
    // Router 5 dies mid-run: its occupants are killed, it stops
    // injecting, and messages addressed to it burn their retries and
    // are abandoned. Everything else keeps flowing and the books
    // balance exactly after the drain.
    SimulationConfig cfg = torusConfig(0.05);
    cfg.detector = "ndm:32";
    cfg.recovery = "regressive:16";
    cfg.faults = "router:5@500";
    cfg.maxRetries = 2;
    cfg.seed = 33;
    Simulation sim(cfg);
    Network &net = sim.net();
    net.run(1500);
    net.setFlitRate(0.0);
    net.run(4000);
    validateNetworkInvariants(net);

    ASSERT_NE(net.faultModel(), nullptr);
    EXPECT_EQ(net.faultModel()->activeRouterFaults(), 1u);
    const SimStats &s = net.stats();
    EXPECT_GT(s.abandoned, 0u); // messages addressed to the dead node
    EXPECT_EQ(s.injected, s.delivered + s.kills + s.abandoned);
    EXPECT_EQ(net.inFlight(), 0u);
    // The dead router holds nothing.
    const RouterParams &rp = net.routerParams();
    for (PortId p = 0; p < rp.numInPorts(); ++p)
        for (VcId v = 0; v < rp.vcs; ++v)
            EXPECT_TRUE(net.router(5).inputVc(p, v).free());
}

TEST(Fault, StochasticFaultsWithRepairKeepBooksBalanced)
{
    // Transient random link faults under sustained load: the
    // conservation law injected == delivered + kills + abandoned +
    // in-flight holds at every probe point, and faults both occur
    // and heal.
    SimulationConfig cfg = torusConfig(0.1);
    cfg.detector = "ndm:32";
    cfg.recovery = "regressive:16";
    cfg.faults = "rate:5e-4";
    cfg.faultRepair = 50;
    cfg.seed = 9;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 10; ++chunk) {
        net.run(200);
        validateNetworkInvariants(net);
        const SimStats &s = net.stats();
        EXPECT_EQ(s.injected, s.delivered + s.kills + s.abandoned +
                                  net.inFlight());
    }
    const SimStats &s = net.stats();
    EXPECT_GT(s.faultsInjected, 0u);
    EXPECT_GT(s.faultsRepaired, 0u);
    EXPECT_GT(s.delivered, 100u);
}

/** Shared scenario for the acceptance test below. */
struct AcceptanceResult
{
    double deliveredFraction = 0.0;
    double fpRate = 0.0;
    std::uint64_t faultKills = 0;
};

AcceptanceResult
runAcceptance(const char *faults)
{
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.flitRate = 0.2;
    cfg.detector = "ndm:32";
    cfg.recovery = "regressive:16";
    cfg.oraclePeriod = 128;
    cfg.seed = 5;
    cfg.faults = faults;
    Simulation sim(cfg);
    Network &net = sim.net();
    net.run(2000);
    net.startMeasurement();
    for (int chunk = 0; chunk < 20; ++chunk) {
        net.run(500); // fault (if any) strikes at cycle 5000
        validateNetworkInvariants(net);
    }
    net.setFlitRate(0.0);
    Cycle drained = 0;
    while ((net.inFlight() > 0 || net.totalQueued() > 0) &&
           drained < 6000) {
        net.run(100);
        drained += 100;
    }
    validateNetworkInvariants(net);

    const SimStats &s = net.stats();
    AcceptanceResult r;
    const std::uint64_t nonAbandoned = s.generated - s.abandoned;
    r.deliveredFraction =
        double(s.delivered) / double(nonAbandoned);
    r.fpRate = s.wDelivered == 0 ? 0.0
                                 : double(s.wFalseDetections) /
                                       double(s.wDelivered);
    r.faultKills = s.faultKills;
    return r;
}

TEST(Fault, AcceptanceScheduledLinkFaultOn8x8Torus)
{
    // The issue's acceptance scenario: a permanent link fault in the
    // middle of a measured 8x8-torus run at 0.2 flits/cycle/node,
    // with the structural invariant checker on. At least 99 % of the
    // non-abandoned messages must still be delivered, and the
    // oracle-labelled false-positive rate must stay within 2x of the
    // fault-free baseline (plus one count of slack so a zero
    // baseline does not make the bound vacuous).
    const AcceptanceResult base = runAcceptance("");
    const AcceptanceResult faulted =
        runAcceptance("link:12>13@5000");
    EXPECT_GE(faulted.deliveredFraction, 0.99);
    EXPECT_LE(faulted.fpRate, 2.0 * base.fpRate + 1e-3);
    EXPECT_GE(faulted.faultKills, 0u);
}

} // namespace
} // namespace wormnet
