/**
 * @file
 * Shared setup for the detector-centric test suites
 * (test_detection.cpp, test_fault.cpp, test_reconfig.cpp,
 * test_dwfg.cpp): a white-box DetectorContext plus hook-driving
 * helpers for unit tests, and the standard torus/ring simulation
 * configurations the integration tests build scenarios from.
 */

#ifndef WORMNET_TESTS_DETECTOR_FIXTURE_HH
#define WORMNET_TESTS_DETECTOR_FIXTURE_HH

#include <memory>
#include <vector>

#include "core/simulation.hh"
#include "detection/detector.hh"
#include "detection/dwfg.hh"
#include "topology/topology.hh"

namespace wormnet
{

/** Tiny two-router context for driving detector hooks directly
 *  (no network behind it). */
inline DetectorContext
smallCtx()
{
    DetectorContext ctx;
    ctx.numRouters = 2;
    ctx.numInPorts = 4;
    ctx.numOutPorts = 4;
    ctx.vcs = 3;
    return ctx;
}

/** Run @p n idle occupied cycles on router 0 with ports in
 *  @p occupied. */
inline void
idleCycles(DeadlockDetector &det, unsigned n, PortMask occupied,
           Cycle &now)
{
    for (unsigned i = 0; i < n; ++i)
        det.onCycleEnd(0, /*tx=*/0, occupied, now++);
}

/** 4x4 torus under random load: the workhorse configuration of the
 *  reconfiguration, fault and differential-detection tests. */
inline SimulationConfig
torusConfig(double rate = 0.4)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = rate;
    cfg.oraclePeriod = 64;
    cfg.seed = 11;
    return cfg;
}

/** 1-D ring with manual injection only, where message paths are easy
 *  to reason about. */
inline SimulationConfig
ringFaultConfig()
{
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = 8;
    cfg.dims = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "ndm:16";
    cfg.recovery = "regressive:16";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.selection = "firstfit";
    return cfg;
}

/**
 * Hand-driven DWFG rig: a 4-node ring where every router's network
 * input channel (in_port 1, the "+"-direction link's receiving side)
 * can be occupied by a head whose only candidate is the "+" output
 * (port 0) — a textbook cyclic wait that closes after four hops.
 * Used by the DWFG unit tests and the detector-state checkpoint
 * round-trip (which needs probes guaranteed in flight).
 */
class DwfgRing
{
  public:
    explicit DwfgRing(const DwfgParams &params)
        : topo_(makeTopology("torus", 4, 1)), det_(params)
    {
        ctx_.numRouters = 4;
        ctx_.numInPorts = 3;  // 2 network + 1 injection
        ctx_.numOutPorts = 3; // 2 network + 1 ejection
        ctx_.vcs = 1;
        ctx_.topo = topo_.get();
        det_.init(ctx_);
    }

    /** Occupy router @p r's in-port-1 channel with message 100+r. */
    void occupy(NodeId r) { det_.onChannelOccupied(r, 1, 0, 100 + r); }

    /**
     * One simulated cycle: every router in @p blocked reports a
     * routing failure with the "+" port as sole busy candidate (as
     * the network's routeAll pass would), then every router runs its
     * cycle-end sweep. Returns true if any blocked head received a
     * confirmed deadlock verdict this cycle.
     */
    bool cycle(const std::vector<NodeId> &blocked)
    {
        bool verdict = false;
        const BlockedCandidate cand{/*port=*/0, /*vcMask=*/1};
        for (NodeId r : blocked) {
            verdict |= det_.onRoutingFailed(r, 1, 0, 100 + r,
                                            /*feasible_ports=*/1,
                                            false, false, now_);
            det_.onBlockedCandidates(r, 1, 0, 100 + r, &cand, 1, now_);
        }
        for (NodeId r = 0; r < 4; ++r)
            det_.onCycleEnd(r, 0, /*occupied=*/1u << 1, now_);
        ++now_;
        return verdict;
    }

    DwfgDetector &det() { return det_; }
    const DwfgDetector &det() const { return det_; }
    Cycle now() const { return now_; }
    /** Advance the clock without driving hooks (manual sequences). */
    void cycleAdvance() { ++now_; }

  private:
    std::unique_ptr<Topology> topo_;
    DwfgDetector det_;
    DetectorContext ctx_;
    Cycle now_ = 0;
};

} // namespace wormnet

#endif // WORMNET_TESTS_DETECTOR_FIXTURE_HH
