/**
 * @file
 * Differential tests for the struct-of-arrays hot-path state.
 *
 * The per-cycle core runs off incrementally maintained flat arrays —
 * the VcStore channel state, the slab-allocated worm paths in the
 * MessageStore and the packed switch-candidate VC masks. Every test
 * here constructs its Network with WORMNET_CHECK_SOA=1, which makes
 * Network::step() recompute that derived state by brute force from
 * the authoritative per-VC structs at the end of every cycle and
 * panic on any divergence — so simply running the scenario under the
 * flag is the assertion. Scenarios are picked to cross every
 * maintenance site: saturation (allocation, credit exhaustion, worms
 * stretched thin), faults (stranded-worm kills, head retraction),
 * recovery drains and online reconfiguration.
 *
 * The checkpoint tests additionally prove the flat layout round-trips
 * through the v3 image with worms mid-flight: restore rebuilds the
 * derived arrays from the serialized authoritative state, and the
 * byte streams of both simulations must stay equal while the
 * cross-check keeps auditing every subsequent cycle.
 */

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/serialize.hh"
#include "core/simulation.hh"
#include "sim/validate.hh"

namespace wormnet
{
namespace
{

/** Enables the per-cycle brute-force SoA cross-check for Networks
 *  constructed while the guard is alive (latched in the Network
 *  constructor, like WORMNET_CHECK_ACTIVE_SETS). */
class CheckSoaGuard
{
  public:
    CheckSoaGuard()
    {
        ::setenv("WORMNET_CHECK_SOA", "1", 1);
    }
    ~CheckSoaGuard()
    {
        ::unsetenv("WORMNET_CHECK_SOA");
    }
};

SimulationConfig
baseConfig()
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 3;
    cfg.bufDepth = 4;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 64;
    cfg.seed = 11;
    return cfg;
}

std::vector<std::uint8_t>
snapshot(const Simulation &sim)
{
    Serializer s;
    sim.net().saveState(s);
    return s.bytes();
}

TEST(SoaLayout, CrossCheckSaturatedTraffic)
{
    // Past saturation every switch-candidate transition fires:
    // allocations, credit stalls, empty-fifo stretched worms,
    // credit-replay re-arms and tail releases.
    CheckSoaGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.5;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 8; ++chunk) {
        net.run(400);
        validateNetworkInvariants(net);
    }
    EXPECT_GT(net.stats().delivered, 300u);
}

TEST(SoaLayout, CrossCheckFaultsAndRegressiveRecovery)
{
    // Fault kills retract worm heads (releaseOutputVc on live grants)
    // and regressive recovery replays whole worms — both must leave
    // the candidate masks exactly consistent.
    CheckSoaGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.25;
    cfg.recovery = "regressive:16";
    cfg.faults = "link:5>6@200,router:9@800,rate:2e-5";
    cfg.faultRepair = 400;
    cfg.maxRetries = 4;
    cfg.seed = 23;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 8; ++chunk) {
        net.run(400);
        validateNetworkInvariants(net);
    }
    EXPECT_GE(net.stats().faultsInjected, 2u);
    EXPECT_GT(net.stats().delivered, 100u);
}

TEST(SoaLayout, CrossCheckOnlineReconfiguration)
{
    // Draining links/routers out of service and re-adding them walks
    // the same head-retraction and release paths as faults but via
    // the reconfiguration manager's quiesce protocol.
    CheckSoaGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.3;
    cfg.reconfig = "link-:0>1@300,routing:duato@600,link+:0>1@900";
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 6; ++chunk) {
        net.run(300);
        validateNetworkInvariants(net);
    }
    EXPECT_GT(net.stats().delivered, 100u);
}

TEST(SoaLayout, CheckpointRoundTripWithWormsMidFlight)
{
    // Save at saturation (worms guaranteed mid-flight), restore into
    // a fresh simulation, and require bitwise-equal state at the save
    // point and again after running both forward — with the SoA
    // cross-check auditing the rebuilt derived arrays every cycle.
    CheckSoaGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.5;

    Simulation a(cfg);
    a.net().run(300);
    a.net().startMeasurement();
    a.net().run(300);
    ASSERT_GT(a.net().inFlight(), 0u)
        << "scenario must checkpoint with worms mid-flight";

    const std::string path =
        ::testing::TempDir() + "wormnet_soa_ckpt.bin";
    a.saveCheckpoint(path);

    Simulation b(cfg);
    b.loadCheckpoint(path);
    std::remove(path.c_str());
    EXPECT_EQ(snapshot(a), snapshot(b))
        << "restored state diverges at the save point";

    a.net().run(600);
    b.net().run(600);
    EXPECT_EQ(a.net().now(), b.net().now());
    EXPECT_EQ(snapshot(a), snapshot(b))
        << "resumed run diverged after the save point";
}

TEST(SoaLayout, CheckFlagDoesNotChangeResults)
{
    // The cross-check must be purely observational: identical stats
    // with and without it.
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.45;

    SimStats with_check;
    {
        CheckSoaGuard guard;
        Simulation sim(cfg);
        sim.net().run(2500);
        with_check = sim.net().stats();
    }
    Simulation plain(cfg);
    plain.net().run(2500);
    const SimStats &s = plain.net().stats();

    EXPECT_EQ(s.generated, with_check.generated);
    EXPECT_EQ(s.injected, with_check.injected);
    EXPECT_EQ(s.delivered, with_check.delivered);
    EXPECT_EQ(s.detections, with_check.detections);
    EXPECT_EQ(s.kills, with_check.kills);
    EXPECT_EQ(s.flitsDelivered, with_check.flitsDelivered);
}

} // namespace
} // namespace wormnet
