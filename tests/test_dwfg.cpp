/**
 * @file
 * DWFG exact-detector tests: hand-driven probe lifecycle on a ring
 * (unit level, white-box), and the differential suite against the
 * ground-truth oracle — randomized deadlock-prone scenarios,
 * fault-injection and live-reconfiguration races, detection-latency
 * ordering, and bitwise job-count invariance. The headline contract
 * under test: the DWFG never raises a verdict the oracle refutes.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "core/simulation.hh"
#include "detection/dwfg.hh"
#include "detector_fixture.hh"
#include "sim/network.hh"
#include "topology/topology.hh"

namespace wormnet
{
namespace
{

// ---------------------------------------------------------------
// Hand-driven unit tests on the DwfgRing rig (detector_fixture.hh):
// a 4-node ring whose in-port-1 channels form a textbook cyclic
// wait when all four are occupied and blocked on the "+" output.
// ---------------------------------------------------------------

TEST(DwfgUnit, ConfirmsTrueCycleAndDeliversVerdict)
{
    DwfgParams p;
    p.trigger = 8;
    p.bandwidth = 4;
    DwfgRing rig(p);
    for (NodeId r = 0; r < 4; ++r)
        rig.occupy(r);

    const std::vector<NodeId> all = {0, 1, 2, 3};
    bool verdict = false;
    while (rig.now() < 200 && !verdict)
        verdict = rig.cycle(all);

    EXPECT_TRUE(verdict);
    EXPECT_LT(rig.now(), 200u);
    EXPECT_GE(rig.det().probesLaunched(), 1u);
    EXPECT_GE(rig.det().probesConfirmed(), 1u);
    // Probes are modeled control traffic, and the epochs never moved
    // (nothing advanced).
    const ControlTraffic ctrl = rig.det().controlTraffic();
    EXPECT_GT(ctrl.flits, 0u);
    EXPECT_GT(ctrl.flitHops, 0u);
    EXPECT_GT(ctrl.bytes, 0u);
    // Delivery consumes confirmations: after one more routing
    // failure per head, none remain pending (several probes may have
    // confirmed in the same sweep; each hands over exactly once).
    for (NodeId r = 0; r < 4; ++r) {
        rig.det().onRoutingFailed(r, 1, 0, 100 + r, 1, false, false,
                                  rig.now());
        EXPECT_FALSE(rig.det().channelConfirmed(r, 1, 0));
    }
}

TEST(DwfgUnit, OpenChainAbortsAlive)
{
    DwfgParams p;
    p.trigger = 8;
    p.bandwidth = 4;
    DwfgRing rig(p);
    // Router 3's channel stays free: 0 -> 1 -> 2 -> (3: free) is an
    // open chain, not a cycle.
    for (NodeId r = 0; r < 3; ++r)
        rig.occupy(r);

    const std::vector<NodeId> blocked = {0, 1, 2};
    bool verdict = false;
    while (rig.now() < 200 && !verdict)
        verdict = rig.cycle(blocked);

    EXPECT_FALSE(verdict);
    EXPECT_GE(rig.det().probesLaunched(), 1u);
    EXPECT_EQ(rig.det().probesConfirmed(), 0u);
    EXPECT_GE(rig.det().probesAborted(), 1u);
}

TEST(DwfgUnit, ProgressInvalidatesVerdictAtDelivery)
{
    DwfgParams p;
    p.trigger = 8;
    p.bandwidth = 4;
    DwfgRing rig(p);
    for (NodeId r = 0; r < 4; ++r)
        rig.occupy(r);

    const std::vector<NodeId> all = {0, 1, 2, 3};
    // Run until some channel holds a confirmed verdict, but do not
    // let onRoutingFailed deliver it yet.
    NodeId holder = kInvalidNode;
    while (rig.now() < 200 && holder == kInvalidNode) {
        const BlockedCandidate cand{0, 1};
        for (NodeId r : all)
            rig.det().onBlockedCandidates(r, 1, 0, 100 + r, &cand, 1,
                                          rig.now());
        for (NodeId r = 0; r < 4; ++r)
            rig.det().onCycleEnd(r, 0, 1u << 1, rig.now());
        for (NodeId r = 0; r < 4; ++r)
            if (rig.det().channelConfirmed(r, 1, 0))
                holder = r;
        rig.cycleAdvance();
    }
    ASSERT_NE(holder, kInvalidNode);

    // A sampled worm advances (epoch bump) before delivery: the
    // zero-cost delivery guard must suppress the verdict.
    const NodeId moved = (holder + 1) % 4;
    rig.det().onMessageRouted(moved, 1, 0, 100 + moved, 0, 0);
    EXPECT_FALSE(rig.det().onRoutingFailed(holder, 1, 0, 100 + holder,
                                           1, false, false,
                                           rig.now()));
}

TEST(DwfgUnit, FaultFlushDropsProbesAndVerdicts)
{
    DwfgParams p;
    p.trigger = 8;
    p.bandwidth = 1; // slow probes: guaranteed in flight at the flush
    p.hopLatency = 4;
    DwfgRing rig(p);
    for (NodeId r = 0; r < 4; ++r)
        rig.occupy(r);

    const std::vector<NodeId> all = {0, 1, 2, 3};
    while (rig.now() < 200 && rig.det().activeProbes() == 0)
        rig.cycle(all);
    ASSERT_GT(rig.det().activeProbes(), 0u);

    const std::uint64_t abortedBefore = rig.det().probesAborted();
    rig.det().onPortFaultChanged(0, 0, true);
    EXPECT_EQ(rig.det().activeProbes(), 0u);
    EXPECT_GT(rig.det().probesAborted(), abortedBefore);
    for (NodeId r = 0; r < 4; ++r)
        EXPECT_FALSE(rig.det().channelConfirmed(r, 1, 0));
    // Occupancy and epochs survive the flush; blocking history does
    // not, so detection restarts from fresh observations.
    EXPECT_GT(rig.det().channelEpoch(0, 1, 0), 0u);
}

// ---------------------------------------------------------------
// Differential suite: full simulations against the ground-truth
// oracle. The 4x4 single-VC torus without injection limiting
// deadlocks readily under random traffic; the 3-VC configurations
// almost never do and measure pure false-positive behaviour.
// ---------------------------------------------------------------

SimulationConfig
dwfgConfig(double rate, unsigned vcs, std::uint64_t seed)
{
    SimulationConfig cfg = torusConfig(rate);
    cfg.detector = "dwfg:32";
    cfg.recovery = "regressive:16";
    cfg.vcs = vcs;
    cfg.injectionLimit = vcs > 1;
    cfg.lengths = vcs > 1 ? "s" : "sl";
    cfg.seed = seed;
    return cfg;
}

TEST(DwfgDifferential, NoFalsePositivesAcrossRandomScenarios)
{
    struct Cell
    {
        double rate;
        unsigned vcs;
        const char *faults;
        std::uint64_t seed;
    };
    const std::vector<Cell> cells = {
        {0.15, 3, "", 3},         {0.50, 1, "", 4},
        {0.80, 1, "", 5},         {0.80, 1, "", 17},
        {0.50, 1, "rate:1e-3", 6}, {0.30, 3, "rate:1e-3", 7},
        {0.66, 1, "", 23},        {0.80, 1, "rate:5e-4", 31},
    };
    std::uint64_t trueDetections = 0;
    for (const Cell &c : cells) {
        SimulationConfig cfg = dwfgConfig(c.rate, c.vcs, c.seed);
        if (c.faults[0] != '\0') {
            cfg.faults = c.faults;
            cfg.faultRepair = 200;
        }
        Simulation sim(cfg);
        sim.net().startMeasurement();
        sim.net().run(2000);
        const SimSummary sum = sim.summary();
        EXPECT_EQ(sum.falseDetections, 0u)
            << "rate=" << c.rate << " vcs=" << c.vcs
            << " faults=" << c.faults << " seed=" << c.seed;
        trueDetections += sum.trueDetections;
    }
    // The deadlock-prone cells must actually exercise detection.
    EXPECT_GT(trueDetections, 0u);
}

TEST(DwfgDifferential, DetectionLagsFormationAndIsOracleTrue)
{
    SimulationConfig cfg = dwfgConfig(0.8, 1, 7);
    cfg.oraclePeriod = 16; // fine-grained formation timestamps
    Simulation sim(cfg);
    Network &net = sim.net();
    net.startMeasurement();

    Cycle formed = kNever;
    Cycle detected = kNever;
    for (Cycle t = 0; t < 6000 && detected == kNever; ++t) {
        net.run(1);
        if (formed == kNever && !net.deadlockedNow().empty())
            formed = net.now();
        if (detected == kNever && net.stats().detections > 0)
            detected = net.now();
    }
    ASSERT_NE(formed, kNever) << "scenario never deadlocked";
    ASSERT_NE(detected, kNever) << "DWFG never detected";
    // Exactness both ways: the verdict can only come after the
    // deadlock exists, and it is never refuted by the oracle.
    EXPECT_GE(detected, formed);
    EXPECT_EQ(net.stats().wFalseDetections, 0u);
    EXPECT_GT(net.stats().wTrueDetections, 0u);

    const SimSummary sum = sim.summary();
    EXPECT_GT(sum.ctrlFlits, 0u);
    EXPECT_GT(sum.ctrlBytes, 0u);
    EXPECT_GE(sum.avgDetectionLatency, 0.0);

    const auto *dwfg =
        dynamic_cast<const DwfgDetector *>(&sim.detector());
    ASSERT_NE(dwfg, nullptr);
    EXPECT_GT(dwfg->probesLaunched(), 0u);
    EXPECT_GT(dwfg->probesConfirmed(), 0u);
}

TEST(DwfgDifferential, StaysExactAcrossLiveReconfiguration)
{
    SimulationConfig cfg = dwfgConfig(0.5, 1, 13);
    cfg.reconfig = "link-:0>1@400,link+:0>1@1000";
    Simulation sim(cfg);
    sim.net().startMeasurement();
    sim.net().run(2000);

    const ReconfigManager *mgr = sim.reconfigManager();
    ASSERT_NE(mgr, nullptr);
    EXPECT_EQ(mgr->epochs().size(), 2u);

    const SimSummary sum = sim.summary();
    EXPECT_EQ(sum.falseDetections, 0u);
    EXPECT_GT(sum.delivered, 0u);
}

TEST(DwfgDifferential, BatchIsBitwiseIdenticalAcrossJobCounts)
{
    struct Cell
    {
        double rate;
        unsigned vcs;
        const char *faults;
        std::uint64_t seed;
    };
    const std::vector<Cell> cells = {
        {0.15, 3, "", 3}, {0.50, 1, "", 4},
        {0.80, 1, "", 5}, {0.50, 1, "rate:1e-3", 6},
        {0.80, 1, "", 8}, {0.30, 3, "rate:1e-3", 7},
    };

    const auto runBatch = [&](unsigned jobs) {
        std::vector<std::string> out(cells.size());
        parallelFor(cells.size(), jobs, [&](std::size_t i) {
            const Cell &c = cells[i];
            SimulationConfig cfg = dwfgConfig(c.rate, c.vcs, c.seed);
            if (c.faults[0] != '\0') {
                cfg.faults = c.faults;
                cfg.faultRepair = 200;
            }
            Simulation sim(cfg);
            sim.net().startMeasurement();
            sim.net().run(1500);
            const SimSummary s = sim.summary();
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "d=%llu det=%llu true=%llu false=%llu cf=%llu "
                "cb=%llu",
                (unsigned long long)s.delivered,
                (unsigned long long)s.detectedMessages,
                (unsigned long long)s.trueDetections,
                (unsigned long long)s.falseDetections,
                (unsigned long long)s.ctrlFlits,
                (unsigned long long)s.ctrlBytes);
            out[i] = buf;
        });
        return out;
    };

    const std::vector<std::string> j1 = runBatch(1);
    const std::vector<std::string> j2 = runBatch(2);
    const std::vector<std::string> j8 = runBatch(8);
    EXPECT_EQ(j1, j2);
    EXPECT_EQ(j1, j8);
    for (const std::string &line : j1)
        EXPECT_NE(line.find("false=0"), std::string::npos) << line;
}

} // namespace
} // namespace wormnet
