/**
 * @file
 * Stress tests for the incrementally maintained activity sets that
 * drive the hot simulation loop (routable input VCs, allocated
 * output VCs, active injectors, detector-active nodes and the
 * running source-queue counter).
 *
 * Every test here constructs its Network with
 * WORMNET_CHECK_ACTIVE_SETS=1, which makes Network::step() recompute
 * each structure by brute force at the end of every cycle and panic
 * on any divergence — so simply running mixed traffic, faults and
 * recovery under the flag is the assertion. The scenarios are chosen
 * to cross every maintenance path: injection, routing grants,
 * tail-flit releases, recovery drains, kills with re-injection and
 * fault-stranded worms.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "sim/validate.hh"

namespace wormnet
{
namespace
{

/** Enables the per-cycle brute-force cross-check for Networks
 *  constructed while the guard is alive (the flag is latched in the
 *  Network constructor). */
class CheckActiveSetsGuard
{
  public:
    CheckActiveSetsGuard()
    {
        ::setenv("WORMNET_CHECK_ACTIVE_SETS", "1", 1);
    }
    ~CheckActiveSetsGuard()
    {
        ::unsetenv("WORMNET_CHECK_ACTIVE_SETS");
    }
};

SimulationConfig
baseConfig()
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 3;
    cfg.bufDepth = 4;
    cfg.detector = "ndm:32";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 64;
    cfg.seed = 7;
    return cfg;
}

TEST(ActiveSets, CrossCheckUniformTrafficWithDeadlockRecovery)
{
    // Fully adaptive routing near saturation: routing grants, switch
    // traversals, deadlock verdicts and progressive drains all churn
    // the sets every cycle.
    CheckActiveSetsGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.45;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 8; ++chunk) {
        net.run(500);
        validateNetworkInvariants(net);
    }
    EXPECT_GT(net.stats().delivered, 500u);
}

TEST(ActiveSets, CrossCheckFaultsAndRegressiveRecovery)
{
    // Link and router faults with repair plus regressive recovery:
    // exercises stranded-worm kills, whole-worm releases, abandoned
    // messages and killed-then-requeued re-injection, all of which
    // must keep every counter exact.
    CheckActiveSetsGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.2;
    cfg.recovery = "regressive:16";
    cfg.faults = "link:5>6@200,router:9@800,rate:2e-5";
    cfg.faultRepair = 400;
    cfg.maxRetries = 4;
    cfg.seed = 21;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 8; ++chunk) {
        net.run(400);
        validateNetworkInvariants(net);
    }
    const SimStats &s = net.stats();
    EXPECT_GE(s.faultsInjected, 2u);
    EXPECT_GT(s.delivered, 100u);
}

TEST(ActiveSets, CrossCheckUngatedPdmFullSweep)
{
    // Ungated PDM is the one detector that is not idle-cycle-end
    // stable, so detectorCycleEnd() must take the exhaustive-sweep
    // path; the occupied mask it feeds still comes from the
    // allocation counters and is checked against brute force.
    CheckActiveSetsGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.detector = "pdm:16";
    cfg.flitRate = 0.35;
    Simulation sim(cfg);
    Network &net = sim.net();
    net.run(2000);
    validateNetworkInvariants(net);
    EXPECT_GT(net.stats().delivered, 200u);
}

TEST(ActiveSets, CrossCheckDishaRecoveryAndHotspot)
{
    // Hotspot traffic concentrates load (long source queues, busy
    // injectors) while DISHA's token drains consume worms link by
    // link from the head — a different release order than
    // progressive's.
    CheckActiveSetsGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.pattern = "hotspot:0.3:0";
    cfg.recovery = "disha:1";
    cfg.detector = "ndm:16";
    cfg.flitRate = 0.3;
    cfg.maxSourceQueue = 8;
    Simulation sim(cfg);
    Network &net = sim.net();
    for (int chunk = 0; chunk < 6; ++chunk) {
        net.run(400);
        validateNetworkInvariants(net);
    }
    EXPECT_GT(net.stats().delivered, 100u);
}

TEST(ActiveSets, TotalQueuedMatchesQueueSum)
{
    CheckActiveSetsGuard guard;
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 2.0; // far past saturation: queues actually fill
    cfg.maxSourceQueue = 16;
    Simulation sim(cfg);
    Network &net = sim.net();
    net.run(1500);
    std::size_t sum = 0;
    for (NodeId n = 0; n < net.numNodes(); ++n)
        sum += net.sourceQueueLength(n);
    EXPECT_EQ(net.totalQueued(), sum);
    EXPECT_GT(net.totalQueued(), 0u);
}

TEST(ActiveSets, CheckFlagDoesNotChangeResults)
{
    // The cross-check must be purely observational: identical stats
    // with and without it.
    SimulationConfig cfg = baseConfig();
    cfg.flitRate = 0.4;
    cfg.faults = "link:1>2@300";
    cfg.faultRepair = 200;

    SimStats with_check;
    {
        CheckActiveSetsGuard guard;
        Simulation sim(cfg);
        sim.net().run(2500);
        with_check = sim.net().stats();
    }
    Simulation plain(cfg);
    plain.net().run(2500);
    const SimStats &s = plain.net().stats();

    EXPECT_EQ(s.generated, with_check.generated);
    EXPECT_EQ(s.injected, with_check.injected);
    EXPECT_EQ(s.delivered, with_check.delivered);
    EXPECT_EQ(s.detections, with_check.detections);
    EXPECT_EQ(s.kills, with_check.kills);
    EXPECT_EQ(s.flitsDelivered, with_check.flitsDelivered);
    EXPECT_EQ(s.faultKills, with_check.faultKills);
}

} // namespace
} // namespace wormnet
