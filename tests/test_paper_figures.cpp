/**
 * @file
 * Deterministic reproductions of the paper's worked examples
 * (Figures 2-5). Figures 1 and 6 are hardware schematics with no
 * behaviour to test; Figure 5's exact channel-handover race (F beats
 * the blocked waiter C to a freed channel) cannot occur in this
 * router model because blocked heads re-arbitrate every cycle, so its
 * re-arm mechanism is covered by the white-box unit tests in
 * test_detection.cpp instead.
 *
 * All scenarios run on a 13-node ring (odd radix: every minimal
 * direction is unique), one virtual channel, one injection and one
 * ejection port, no background traffic, first-fit selection — so the
 * message choreography is fully deterministic.
 *
 * Scenario A (Figure 2): a tree of blocked messages whose root A is
 * advancing. Expected: B (waiting on the advancing A) holds G; C and
 * D (waiting on already-blocked messages) hold P; NDM raises no
 * detection at all; PDM falsely marks C and D ("recovery by two
 * packets"); a crude timeout marks B, C and D.
 *
 * Scenario B (Figures 3-4): A drains away, E takes over its channel
 * and later blocks on D's worm, closing a true deadlock B -> E -> D
 * -> C -> B. Expected: the oracle confirms all four deadlocked; NDM
 * marks exactly B (the message that was waiting on the root
 * position); progressive recovery absorbs B and every message is
 * delivered.
 */

#include <gtest/gtest.h>

#include <memory>

#include "detection/ndm.hh"
#include "detection/pdm.hh"
#include "detection/timeout.hh"
#include "recovery/progressive.hh"
#include "routing/routing.hh"
#include "sim/network.hh"
#include "sim/oracle.hh"
#include "topology/torus.hh"
#include "traffic/length.hh"
#include "traffic/pattern.hh"

namespace wormnet
{
namespace
{

/** Manually wired 13-ring harness with a white-box detector. */
class RingScenario
{
  public:
    explicit RingScenario(DeadlockDetector &det,
                          RecoveryManager *rec = nullptr)
        : topo(13, 1), pattern(topo), lengths(16)
    {
        NetworkParams np;
        np.vcs = 1;
        np.bufDepth = 4;
        np.injPorts = 1;
        np.ejePorts = 1;
        np.injectionLimit = false;
        np.selection = VcSelection::FirstFit;
        np.oraclePeriod = 0;

        RouterParams rp;
        rp.netPorts = topo.numNetPorts();
        rp.injPorts = np.injPorts;
        rp.ejePorts = np.ejePorts;
        rp.vcs = np.vcs;
        rp.bufDepth = np.bufDepth;
        routing =
            std::make_unique<TrueFullyAdaptiveRouting>(topo, rp);

        net = std::make_unique<Network>(topo, np, *routing, det, rec,
                                        pattern, lengths, 0.0,
                                        /*seed=*/1);
    }

    /** Run until @p msg has a blocked head (>= 1 failed attempt). */
    bool
    runUntilBlocked(MsgId msg, Cycle max_cycles)
    {
        for (Cycle i = 0; i < max_cycles; ++i) {
            net->step();
            const Message &m = net->messages().get(msg);
            if (m.status != MsgStatus::Active || m.numLinks() == 0)
                continue;
            const PathLink head = m.headLink();
            const InputVc &vc =
                net->router(head.node).inputVc(head.port, head.vc);
            if (vc.msg == msg && vc.attempted && !vc.routed)
                return true;
        }
        return false;
    }

    /** The input port a blocked message's head currently sits on. */
    std::pair<NodeId, PortId>
    headInput(MsgId msg) const
    {
        const PathLink head = net->messages().get(msg).headLink();
        return {head.node, head.port};
    }

    KAryNCube topo;
    UniformPattern pattern;
    FixedLength lengths;
    std::unique_ptr<RoutingFunction> routing;
    std::unique_ptr<Network> net;
};

/**
 * Scenario A: the Figure 2 blocked tree.
 *   A: 4 -> 8, 80 flits, streams through channels 4+..7+ while its
 *      destination consumes it (the advancing root).
 *   B: 3 -> 7, blocks at node 4 waiting on channel 4+ (A advancing).
 *   C: 2 -> 4, blocks at node 3 waiting on channel 3+ (B blocked).
 *   D: 10 -> 3, blocks at node 2 waiting on channel 2+ (C blocked).
 */
struct Fig2Messages
{
    MsgId a, b, c, d;
};

Fig2Messages
buildFig2(RingScenario &ring)
{
    Fig2Messages ids{};
    ids.a = ring.net->injectMessage(4, 8, 80);
    ring.net->run(6);
    ids.b = ring.net->injectMessage(3, 7, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.b, 60));
    ring.net->run(10); // let channel 3+ go idle behind B
    ids.c = ring.net->injectMessage(2, 4, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.c, 60));
    ring.net->run(10);
    ids.d = ring.net->injectMessage(10, 3, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.d, 60));
    return ids;
}

TEST(Fig2, GpFlagsMatchTheTreeStructure)
{
    NdmDetector det(
        NdmParams{1, 512, GpRearmPolicy::WaitersOnChannel});
    RingScenario ring(det);
    const Fig2Messages ids = buildFig2(ring);

    // B waits on the advancing root: Generate.
    const auto [bn, bp] = ring.headInput(ids.b);
    EXPECT_EQ(bn, 4u);
    EXPECT_TRUE(det.gpFlag(bn, bp));
    // C and D wait on already-blocked messages: Propagate.
    const auto [cn, cp] = ring.headInput(ids.c);
    EXPECT_EQ(cn, 3u);
    EXPECT_FALSE(det.gpFlag(cn, cp));
    const auto [dn, dp] = ring.headInput(ids.d);
    EXPECT_EQ(dn, 2u);
    EXPECT_FALSE(det.gpFlag(dn, dp));
}

TEST(Fig2, NdmRaisesNoFalseDetection)
{
    // Even with a small threshold, NDM stays quiet: B's channel is
    // active (root advancing) and C/D hold Propagate.
    NdmDetector det(NdmParams{1, 32, GpRearmPolicy::WaitersOnChannel});
    RingScenario ring(det);
    const Fig2Messages ids = buildFig2(ring);

    ring.net->run(600); // A drains; the tree resolves
    EXPECT_EQ(ring.net->stats().detections, 0u);
    for (const MsgId id : {ids.a, ids.b, ids.c, ids.d})
        EXPECT_EQ(ring.net->messages().get(id).status,
                  MsgStatus::Delivered);
}

TEST(Fig2, PdmFalselyMarksTheInteriorOfTheTree)
{
    // The paper's PDM drawback: C and D are marked although nothing
    // is deadlocked ("false deadlock detection and recovery by two
    // packets"). B is spared only because its channel stays active.
    PdmDetector det(PdmParams{32, false});
    RingScenario ring(det);
    const Fig2Messages ids = buildFig2(ring);

    ring.net->run(600);
    const auto detections = [&](MsgId id) {
        return ring.net->messages().get(id).timesDetected;
    };
    EXPECT_EQ(detections(ids.a), 0u);
    EXPECT_EQ(detections(ids.b), 0u);
    EXPECT_GT(detections(ids.c), 0u);
    EXPECT_GT(detections(ids.d), 0u);
    // No recovery manager attached: everything still delivers.
    for (const MsgId id : {ids.a, ids.b, ids.c, ids.d})
        EXPECT_EQ(ring.net->messages().get(id).status,
                  MsgStatus::Delivered);
}

TEST(Fig2, CrudeTimeoutMarksEveryBlockedMessage)
{
    TimeoutDetector det(TimeoutParams{32});
    RingScenario ring(det);
    const Fig2Messages ids = buildFig2(ring);

    ring.net->run(600);
    const auto detections = [&](MsgId id) {
        return ring.net->messages().get(id).timesDetected;
    };
    EXPECT_EQ(detections(ids.a), 0u); // A never blocks
    EXPECT_GT(detections(ids.b), 0u);
    EXPECT_GT(detections(ids.c), 0u);
    EXPECT_GT(detections(ids.d), 0u);
}

/**
 * Scenario B: Figures 3-4. On top of the Figure-2-style tree, A
 * drains away; E grabs A's first channel the moment it frees (its
 * header has been parked at node 5's injection channel) and later
 * blocks on D's worm, closing the cycle:
 *
 *   B holds 3+,4+  waits 5+  (E)   <- G: B was waiting on the root
 *   E holds 5+..9+ waits 10+ (D)   <- P: D already blocked
 *   D holds 10+..1+ waits 2+ (C)   <- P
 *   C holds 2+     waits 3+  (B)   <- P
 */
struct Fig3Messages
{
    MsgId a, b, c, d, e;
};

Fig3Messages
buildFig3(RingScenario &ring)
{
    Fig3Messages ids{};
    ids.a = ring.net->injectMessage(4, 8, 150);
    ring.net->run(6);
    ids.b = ring.net->injectMessage(3, 7, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.b, 60));
    ring.net->run(10);
    ids.c = ring.net->injectMessage(2, 4, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.c, 60));
    ring.net->run(10);
    ids.d = ring.net->injectMessage(10, 3, 24);
    EXPECT_TRUE(ring.runUntilBlocked(ids.d, 80));
    // E parks at node 5's injection channel while A still streams.
    ids.e = ring.net->injectMessage(5, 11, 24);
    return ids;
}

TEST(Fig3, DeadlockFormsAndOracleConfirmsIt)
{
    NdmDetector det(
        NdmParams{1, 4096, GpRearmPolicy::WaitersOnChannel});
    RingScenario ring(det);
    const Fig3Messages ids = buildFig3(ring);

    // Nothing is deadlocked while A is still draining.
    EXPECT_TRUE(findDeadlockedMessages(*ring.net).empty());

    ring.net->run(400); // A drains; E takes over; E blocks on D
    EXPECT_EQ(ring.net->messages().get(ids.a).status,
              MsgStatus::Delivered);

    const auto deadlocked = findDeadlockedMessages(*ring.net);
    ASSERT_EQ(deadlocked.size(), 4u);
    for (const MsgId id : {ids.b, ids.c, ids.d, ids.e})
        EXPECT_TRUE(std::binary_search(deadlocked.begin(),
                                       deadlocked.end(), id));
}

TEST(Fig3, GenerateFlagsIdentifyTheRootWaiters)
{
    NdmDetector det(
        NdmParams{1, 4096, GpRearmPolicy::WaitersOnChannel});
    RingScenario ring(det);
    const Fig3Messages ids = buildFig3(ring);
    ring.net->run(400);

    ASSERT_EQ(findDeadlockedMessages(*ring.net).size(), 4u);
    // B re-blocked one hop further, directly behind the new root E:
    // it observed E advancing, so it holds Generate.
    const auto [bn, bp] = ring.headInput(ids.b);
    EXPECT_EQ(bn, 5u);
    EXPECT_TRUE(det.gpFlag(bn, bp));
    // C was re-armed to Generate when B (the message it waits on)
    // briefly advanced — the Figure-5 re-arm rule treating B as a
    // potential new root.
    const auto [cn, cp] = ring.headInput(ids.c);
    EXPECT_TRUE(det.gpFlag(cn, cp));
    // D and E blocked on already-idle worms: Propagate.
    for (const MsgId id : {ids.d, ids.e}) {
        const auto [n, p] = ring.headInput(id);
        EXPECT_FALSE(det.gpFlag(n, p)) << "message " << id;
    }
}

TEST(Fig4, OnlyRootWaitersTriggerRecoveryAndAllDeliver)
{
    NdmDetector det(NdmParams{1, 32, GpRearmPolicy::WaitersOnChannel});
    ProgressiveRecovery rec(ProgressiveParams{});
    RingScenario ring(det, &rec);
    const Fig3Messages ids = buildFig3(ring);

    ring.net->run(1500);
    const SimStats &s = ring.net->stats();
    // Only the Generate holders (B, plus C through the Figure-5
    // re-arm) are marked — half the cycle, where PDM marks all four.
    EXPECT_EQ(s.detections, 2u);
    EXPECT_EQ(s.recoveredDeliveries, 2u);
    EXPECT_TRUE(ring.net->messages().get(ids.b).recovered);
    for (const MsgId id : {ids.a, ids.b, ids.c, ids.d, ids.e})
        EXPECT_EQ(ring.net->messages().get(id).status,
                  MsgStatus::Delivered);
    EXPECT_TRUE(findDeadlockedMessages(*ring.net).empty());
}

TEST(Fig4, PdmMarksEveryMessageInTheCycle)
{
    // Contrast: PDM has no Generate/Propagate filtering, so once the
    // cycle persists past the threshold every one of its messages is
    // marked — the recovery-overhead problem NDM removes. (Recovery
    // is disabled here so the deadlock stays in place; with recovery
    // attached, PDM's early false positive on C would dissolve the
    // forming cycle before it closes.)
    PdmDetector det(PdmParams{32, false});
    RingScenario ring(det, /*rec=*/nullptr);
    const Fig3Messages ids = buildFig3(ring);

    ring.net->run(400);
    ASSERT_EQ(findDeadlockedMessages(*ring.net).size(), 4u);
    ring.net->run(200); // let every DT/IF flag trip
    for (const MsgId id : {ids.b, ids.c, ids.d, ids.e})
        EXPECT_GT(ring.net->messages().get(id).timesDetected, 0u)
            << "message " << id;
}

TEST(Fig3, SimultaneousBlockingMarksSeveralMessages)
{
    // The paper's acknowledged corner case: when the messages of a
    // cycle block (nearly) simultaneously, each sees its successor
    // still advancing, so several Generate flags arise and several
    // messages become eligible for recovery.
    NdmDetector det(NdmParams{1, 32, GpRearmPolicy::WaitersOnChannel});
    ProgressiveRecovery rec(ProgressiveParams{});
    RingScenario ring(det, &rec);

    // Symmetric 4-message cycle around a 13-ring, injected together.
    const MsgId m0 = ring.net->injectMessage(0, 4, 48);
    const MsgId m1 = ring.net->injectMessage(3, 7, 48);
    const MsgId m2 = ring.net->injectMessage(6, 10, 48);
    const MsgId m3 = ring.net->injectMessage(9, 1, 48);
    // Check before the detection threshold (32) can fire recovery.
    ring.net->run(40);
    EXPECT_EQ(findDeadlockedMessages(*ring.net).size(), 4u);

    ring.net->run(1500);
    EXPECT_GE(ring.net->stats().detections, 2u);
    for (const MsgId id : {m0, m1, m2, m3})
        EXPECT_EQ(ring.net->messages().get(id).status,
                  MsgStatus::Delivered);
}

} // namespace
} // namespace wormnet
