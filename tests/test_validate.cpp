/**
 * @file
 * Tests for (and with) the structural invariant checker: the checker
 * passes throughout randomised runs of every mechanism combination,
 * and actually fires when state is corrupted behind the kernel's
 * back.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/log.hh"
#include "core/simulation.hh"
#include "sim/validate.hh"

namespace wormnet
{
namespace
{

TEST(Validate, EmptyNetworkIsValid)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.0;
    Simulation sim(cfg);
    EXPECT_NO_THROW(validateNetworkInvariants(sim.net()));
    sim.net().run(100);
    EXPECT_NO_THROW(validateNetworkInvariants(sim.net()));
}

TEST(Validate, DetectsForeignFlit)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.0;
    Simulation sim(cfg);
    // Corrupt: claim a VC for message 0 with no flits injected...
    sim.net().injectMessage(0, 5, 4);
    Router &rt = sim.net().router(0);
    rt.inputVc(0, 0).msg = 0;
    EXPECT_THROW(validateNetworkInvariants(sim.net()), PanicError);
}

TEST(Validate, DetectsCreditDrift)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.0;
    Simulation sim(cfg);
    sim.net().router(0).outputVc(0, 0).credits = 1;
    EXPECT_THROW(validateNetworkInvariants(sim.net()), PanicError);
}

TEST(Validate, DetectsDanglingAllocation)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.0;
    Simulation sim(cfg);
    OutputVc &out = sim.net().router(3).outputVc(1, 2);
    out.allocated = true;
    out.msg = 0;
    out.srcPort = 0;
    out.srcVc = 0;
    sim.net().injectMessage(0, 5, 4); // message 0 exists, holds nothing
    EXPECT_THROW(validateNetworkInvariants(sim.net()), PanicError);
}

/** The kernel keeps every invariant across mechanisms and loads. */
class ValidateSweep
    : public ::testing::TestWithParam<
          std::tuple<const char *, const char *, unsigned, double>>
{
};

TEST_P(ValidateSweep, InvariantsHoldThroughoutRandomRuns)
{
    const auto [detector, recovery, vcs, rate] = GetParam();
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = vcs;
    cfg.flitRate = rate;
    cfg.lengths = "sl";
    cfg.detector = detector;
    cfg.recovery = recovery;
    cfg.injectionLimit = vcs >= 3;
    cfg.oraclePeriod = 0;
    cfg.seed = 51;
    Simulation sim(cfg);
    for (int chunk = 0; chunk < 40; ++chunk) {
        sim.net().run(50);
        ASSERT_NO_THROW(validateNetworkInvariants(sim.net()));
    }
    // And after a full drain.
    sim.net().setFlitRate(0.0);
    sim.net().run(3000);
    ASSERT_NO_THROW(validateNetworkInvariants(sim.net()));
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mechanisms, ValidateSweep,
    ::testing::Values(
        std::make_tuple("ndm:16", "progressive", 3u, 0.5),
        std::make_tuple("ndm:16", "progressive", 1u, 0.3),
        std::make_tuple("ndm:16", "regressive:16", 1u, 0.3),
        std::make_tuple("pdm:16", "progressive", 3u, 0.5),
        std::make_tuple("timeout:32", "regressive:16", 3u, 0.5),
        std::make_tuple("inj-stall-timeout:16", "regressive:16", 1u,
                        0.3),
        std::make_tuple("inj-stall-timeout:16", "progressive", 3u,
                        0.5),
        // The age threshold must exceed the worst-case injection
        // time (64-flit messages in the "sl" mix): a threshold of 64
        // or less re-kills long messages forever — the
        // length-dependence flaw the paper attributes to these
        // source timeouts.
        std::make_tuple("src-age-timeout:384", "regressive:16", 3u,
                        0.5),
        std::make_tuple("none", "none", 3u, 0.4)));

} // namespace
} // namespace wormnet
