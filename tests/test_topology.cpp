/**
 * @file
 * Unit tests for the topology library: coordinates, neighbours,
 * wraparound, minimal-direction computation and the port-numbering
 * convention, on tori and meshes of several shapes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/log.hh"
#include "common/rng.hh"
#include "topology/mesh.hh"
#include "topology/mixed_torus.hh"
#include "topology/torus.hh"

namespace wormnet
{
namespace
{

TEST(Torus, SizesAndName)
{
    const KAryNCube t(8, 3);
    EXPECT_EQ(t.numNodes(), 512u);
    EXPECT_EQ(t.numDims(), 3u);
    EXPECT_EQ(t.radix(), 8u);
    EXPECT_EQ(t.numNetPorts(), 6u);
    EXPECT_TRUE(t.wraparound());
    EXPECT_EQ(t.name(), "8-ary 3-cube (torus)");
}

TEST(Torus, CoordinateRoundTrip)
{
    const KAryNCube t(5, 3);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        NodeId rebuilt = 0;
        NodeId stride = 1;
        for (unsigned d = 0; d < t.numDims(); ++d) {
            rebuilt += t.coordinate(n, d) * stride;
            stride *= t.radix();
        }
        EXPECT_EQ(rebuilt, n);
    }
}

TEST(Torus, NeighborWraparound)
{
    const KAryNCube t(4, 2);
    // Node 3 = (3,0): +x wraps to (0,0) = node 0.
    EXPECT_EQ(t.neighbor(3, 0, true), 0u);
    // Node 0 = (0,0): -x wraps to (3,0) = node 3.
    EXPECT_EQ(t.neighbor(0, 0, false), 3u);
    // +y from (0,0) is (0,1) = node 4.
    EXPECT_EQ(t.neighbor(0, 1, true), 4u);
    // -y from (0,0) wraps to (0,3) = node 12.
    EXPECT_EQ(t.neighbor(0, 1, false), 12u);
}

TEST(Torus, NeighborInverse)
{
    const KAryNCube t(6, 2);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (unsigned d = 0; d < t.numDims(); ++d) {
            EXPECT_EQ(t.neighbor(t.neighbor(n, d, true), d, false), n);
            EXPECT_EQ(t.neighbor(t.neighbor(n, d, false), d, true), n);
        }
    }
}

TEST(Torus, MinimalStepsPicksShortSide)
{
    const KAryNCube t(8, 1);
    MinimalSteps steps;
    // 0 -> 2: forward (2 hops) shorter than backward (6).
    t.minimalSteps(0, 2, steps);
    EXPECT_EQ(steps[0].dirMask, 0x1);
    EXPECT_EQ(steps[0].hops, 2);
    // 0 -> 6: backward (2 hops) shorter.
    t.minimalSteps(0, 6, steps);
    EXPECT_EQ(steps[0].dirMask, 0x2);
    EXPECT_EQ(steps[0].hops, 2);
    // 0 -> 4: equidistant, both directions minimal.
    t.minimalSteps(0, 4, steps);
    EXPECT_EQ(steps[0].dirMask, 0x3);
    EXPECT_EQ(steps[0].hops, 4);
}

TEST(Torus, MinimalStepsZeroForSameCoord)
{
    const KAryNCube t(4, 3);
    MinimalSteps steps;
    t.minimalSteps(5, 5, steps);
    for (unsigned d = 0; d < 3; ++d) {
        EXPECT_EQ(steps[d].dirMask, 0);
        EXPECT_EQ(steps[d].hops, 0);
    }
}

TEST(Torus, DistanceSymmetric)
{
    const KAryNCube t(5, 2);
    for (NodeId a = 0; a < t.numNodes(); ++a) {
        for (NodeId b = 0; b < t.numNodes(); ++b)
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
}

TEST(Torus, DistanceMatchesWalk)
{
    const KAryNCube t(8, 3);
    MinimalSteps steps;
    const NodeId src = 37, dst = 481;
    t.minimalSteps(src, dst, steps);
    NodeId cur = src;
    for (unsigned d = 0; d < t.numDims(); ++d) {
        const bool positive = (steps[d].dirMask & 0x1) != 0;
        for (unsigned h = 0; h < steps[d].hops; ++h)
            cur = t.neighbor(cur, d, positive);
    }
    EXPECT_EQ(cur, dst);
}

TEST(Torus, MaxDistanceIsDiameter)
{
    const KAryNCube t(8, 2);
    unsigned max_dist = 0;
    for (NodeId b = 0; b < t.numNodes(); ++b)
        max_dist = std::max(max_dist, t.distance(0, b));
    EXPECT_EQ(max_dist, 2u * (8 / 2));
}

TEST(Torus, RadixTwoHasParallelLinks)
{
    const KAryNCube t(2, 2);
    // With radix 2 the "+" and "-" neighbours coincide.
    EXPECT_EQ(t.neighbor(0, 0, true), t.neighbor(0, 0, false));
    EXPECT_EQ(t.distance(0, 3), 2u);
}

TEST(Torus, InvalidParamsAreFatal)
{
    EXPECT_THROW(KAryNCube(1, 2), FatalError);
    EXPECT_THROW(KAryNCube(4, 0), FatalError);
    EXPECT_THROW(KAryNCube(4, kMaxDims + 1), FatalError);
}

TEST(Mesh, NoWraparound)
{
    const KAryNMesh m(4, 2);
    EXPECT_FALSE(m.wraparound());
    EXPECT_EQ(m.neighbor(3, 0, true), kInvalidNode);
    EXPECT_EQ(m.neighbor(0, 0, false), kInvalidNode);
    EXPECT_EQ(m.neighbor(0, 0, true), 1u);
}

TEST(Mesh, MinimalStepsNeverWrap)
{
    const KAryNMesh m(5, 2);
    MinimalSteps steps;
    m.minimalSteps(0, 4, steps); // (0,0) -> (4,0): 4 hops +x
    EXPECT_EQ(steps[0].dirMask, 0x1);
    EXPECT_EQ(steps[0].hops, 4);
    m.minimalSteps(4, 0, steps);
    EXPECT_EQ(steps[0].dirMask, 0x2);
    EXPECT_EQ(steps[0].hops, 4);
}

TEST(Mesh, DistanceIsManhattan)
{
    const KAryNMesh m(4, 3);
    // (0,0,0) to (3,3,3).
    EXPECT_EQ(m.distance(0, m.numNodes() - 1), 9u);
}

TEST(MixedTorus, ShapeAndCoordinates)
{
    const MixedRadixTorus t({8, 4, 2});
    EXPECT_EQ(t.numNodes(), 64u);
    EXPECT_EQ(t.numDims(), 3u);
    EXPECT_EQ(t.radix(), 8u); // largest
    EXPECT_EQ(t.radixOf(0), 8u);
    EXPECT_EQ(t.radixOf(1), 4u);
    EXPECT_EQ(t.radixOf(2), 2u);
    EXPECT_TRUE(t.wraparound());
    EXPECT_EQ(t.name(), "8x4x2 torus");

    // node = x + 8y + 32z
    const NodeId n = 3 + 8 * 2 + 32 * 1;
    EXPECT_EQ(t.coordinate(n, 0), 3u);
    EXPECT_EQ(t.coordinate(n, 1), 2u);
    EXPECT_EQ(t.coordinate(n, 2), 1u);
}

TEST(MixedTorus, NeighborsWrapPerDimension)
{
    const MixedRadixTorus t({8, 4});
    // +x from (7,0) wraps to (0,0).
    EXPECT_EQ(t.neighbor(7, 0, true), 0u);
    // +y from (0,3) wraps to (0,0).
    EXPECT_EQ(t.neighbor(3 * 8, 1, true), 0u);
    // Inverse property holds everywhere.
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (unsigned d = 0; d < 2; ++d) {
            EXPECT_EQ(t.neighbor(t.neighbor(n, d, true), d, false),
                      n);
        }
    }
}

TEST(MixedTorus, MinimalStepsUsePerDimRadix)
{
    const MixedRadixTorus t({8, 4});
    MinimalSteps steps;
    // Dim 0 (radix 8): 0 -> 6 goes backward (2 hops).
    // Dim 1 (radix 4): 0 -> 2 is equidistant (2 hops both ways).
    t.minimalSteps(0, 6 + 2 * 8, steps);
    EXPECT_EQ(steps[0].dirMask, 0x2);
    EXPECT_EQ(steps[0].hops, 2);
    EXPECT_EQ(steps[1].dirMask, 0x3);
    EXPECT_EQ(steps[1].hops, 2);
    EXPECT_EQ(t.distance(0, 6 + 2 * 8), 4u);
}

TEST(MixedTorus, InvalidShapesAreFatal)
{
    EXPECT_THROW(MixedRadixTorus({}), FatalError);
    EXPECT_THROW(MixedRadixTorus({8, 1}), FatalError);
    EXPECT_THROW(MixedRadixTorus(std::vector<unsigned>(9, 2)),
                 FatalError);
}

TEST(PortConvention, OutPortAndPeer)
{
    EXPECT_EQ(Topology::outPort(0, true), 0);
    EXPECT_EQ(Topology::outPort(0, false), 1);
    EXPECT_EQ(Topology::outPort(2, true), 4);
    EXPECT_EQ(Topology::dimOfPort(4), 2u);
    EXPECT_TRUE(Topology::isPositivePort(4));
    EXPECT_FALSE(Topology::isPositivePort(5));
    // A "+"-direction link arrives on the peer's "-" port.
    EXPECT_EQ(Topology::peerInPort(0), 1);
    EXPECT_EQ(Topology::peerInPort(1), 0);
    EXPECT_EQ(Topology::peerInPort(4), 5);
}

/** Parameterised sweep: structural invariants across many shapes. */
class TopologyShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(TopologyShapes, TorusInvariants)
{
    const auto [radix, dims] = GetParam();
    const KAryNCube t(radix, dims);
    unsigned total = 1;
    for (unsigned d = 0; d < dims; ++d)
        total *= radix;
    EXPECT_EQ(t.numNodes(), total);

    // Every node has exactly 2*dims valid neighbours; distance to a
    // neighbour is 1.
    for (NodeId n = 0; n < std::min<NodeId>(t.numNodes(), 64); ++n) {
        for (unsigned d = 0; d < dims; ++d) {
            for (const bool pos : {true, false}) {
                const NodeId nb = t.neighbor(n, d, pos);
                ASSERT_NE(nb, kInvalidNode);
                EXPECT_EQ(t.distance(n, nb), 1u);
            }
        }
    }
}

TEST_P(TopologyShapes, MinimalStepsSumEqualsDistance)
{
    const auto [radix, dims] = GetParam();
    const KAryNCube t(radix, dims);
    MinimalSteps steps;
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const NodeId a =
            static_cast<NodeId>(rng.nextBounded(t.numNodes()));
        const NodeId b =
            static_cast<NodeId>(rng.nextBounded(t.numNodes()));
        t.minimalSteps(a, b, steps);
        unsigned sum = 0;
        for (unsigned d = 0; d < dims; ++d) {
            sum += steps[d].hops;
            // Per-dimension hops never exceed half the ring.
            EXPECT_LE(steps[d].hops, radix / 2);
            // dirMask set iff hops > 0.
            EXPECT_EQ(steps[d].dirMask != 0, steps[d].hops > 0);
        }
        EXPECT_EQ(sum, t.distance(a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyShapes,
    ::testing::Values(std::make_tuple(2u, 2u), std::make_tuple(3u, 2u),
                      std::make_tuple(4u, 2u), std::make_tuple(8u, 2u),
                      std::make_tuple(4u, 3u), std::make_tuple(8u, 3u),
                      std::make_tuple(2u, 4u),
                      std::make_tuple(16u, 1u)));

} // namespace
} // namespace wormnet
