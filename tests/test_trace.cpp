/**
 * @file
 * Tests for the event tracer: ring-buffer mechanics, the lifecycle
 * sequences emitted by the Network, and cross-checks between trace
 * counts and simulation statistics.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/simulation.hh"
#include "sim/trace.hh"

namespace wormnet
{
namespace
{

TEST(Tracer, RecordsInOrder)
{
    Tracer t(8);
    t.record(1, TraceEvent::Generated, 5, 0);
    t.record(2, TraceEvent::InjectStart, 5, 0, 2, 1);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.at(0).event, TraceEvent::Generated);
    EXPECT_EQ(t.at(1).event, TraceEvent::InjectStart);
    EXPECT_EQ(t.at(1).port, 2);
    EXPECT_EQ(t.at(1).vc, 1);
}

TEST(Tracer, RingDropsOldest)
{
    Tracer t(4);
    for (Cycle c = 0; c < 10; ++c)
        t.record(c, TraceEvent::Routed, static_cast<MsgId>(c));
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.totalRecorded(), 10u);
    EXPECT_EQ(t.at(0).cycle, 6u);
    EXPECT_EQ(t.at(3).cycle, 9u);
}

TEST(Tracer, MessageHistoryFilters)
{
    Tracer t(16);
    t.record(1, TraceEvent::Generated, 1);
    t.record(1, TraceEvent::Generated, 2);
    t.record(2, TraceEvent::InjectStart, 1);
    t.record(3, TraceEvent::Delivered, 2);
    const auto history = t.messageHistory(1);
    ASSERT_EQ(history.size(), 2u);
    EXPECT_EQ(history[0].event, TraceEvent::Generated);
    EXPECT_EQ(history[1].event, TraceEvent::InjectStart);
}

TEST(Tracer, CountsAndDump)
{
    Tracer t(16);
    t.record(1, TraceEvent::Blocked, 1, 3, 0, 0);
    t.record(2, TraceEvent::Blocked, 2, 4);
    t.record(3, TraceEvent::Detected, 1, 3);
    EXPECT_EQ(t.countEvent(TraceEvent::Blocked), 2u);
    EXPECT_EQ(t.countEvent(TraceEvent::Killed), 0u);
    const std::string text = t.toString();
    EXPECT_NE(text.find("DETECTED"), std::string::npos);
    EXPECT_NE(text.find("blocked"), std::string::npos);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.totalRecorded(), 0u);
}

TEST(Trace, SingleMessageLifecycle)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.oraclePeriod = 0;
    Simulation sim(cfg);
    Tracer tracer;
    sim.net().attachTracer(&tracer);

    const MsgId id = sim.net().injectMessage(0, 2, 8);
    sim.net().run(100);

    const auto history = tracer.messageHistory(id);
    ASSERT_GE(history.size(), 4u);
    EXPECT_EQ(history.front().event, TraceEvent::Generated);
    EXPECT_EQ(history[1].event, TraceEvent::InjectStart);
    EXPECT_EQ(history.back().event, TraceEvent::Delivered);
    // Two network hops plus ejection: three Routed events.
    std::size_t routed = 0;
    for (const auto &r : history)
        routed += r.event == TraceEvent::Routed;
    EXPECT_EQ(routed, 3u);
    // Cycles never decrease along the history.
    for (std::size_t i = 1; i < history.size(); ++i)
        EXPECT_GE(history[i].cycle, history[i - 1].cycle);
}

TEST(Trace, CountsMatchStats)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.2;
    cfg.seed = 71;
    Simulation sim(cfg);
    Tracer tracer(1u << 20);
    sim.net().attachTracer(&tracer);
    sim.net().run(2000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(tracer.countEvent(TraceEvent::Generated), s.generated);
    EXPECT_EQ(tracer.countEvent(TraceEvent::InjectStart),
              s.injected);
    EXPECT_EQ(tracer.countEvent(TraceEvent::Delivered) +
                  tracer.countEvent(TraceEvent::DeliveredRecovered),
              s.delivered);
    EXPECT_EQ(tracer.countEvent(TraceEvent::Killed), s.kills);
}

TEST(Trace, DetectionAndRecoveryEvents)
{
    // Engineered deadlock: the trace shows Blocked -> Detected ->
    // DeliveredRecovered for at least one message.
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = 12;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "ndm:16";
    cfg.recovery = "progressive";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 0;
    cfg.selection = "firstfit";
    Simulation sim(cfg);
    Tracer tracer;
    sim.net().attachTracer(&tracer);

    sim.net().injectMessage(0, 4, 48);
    sim.net().injectMessage(3, 7, 48);
    sim.net().injectMessage(6, 10, 48);
    sim.net().injectMessage(9, 1, 48);
    sim.net().run(3000);

    EXPECT_GE(tracer.countEvent(TraceEvent::Detected), 1u);
    EXPECT_GE(tracer.countEvent(TraceEvent::DeliveredRecovered), 1u);
    EXPECT_EQ(tracer.countEvent(TraceEvent::Delivered) +
                  tracer.countEvent(TraceEvent::DeliveredRecovered),
              4u);
}

} // namespace
} // namespace wormnet
