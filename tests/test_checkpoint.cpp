/**
 * @file
 * Checkpoint/restore tests.
 *
 * The contract under test is bitwise resume determinism: restoring a
 * checkpoint onto a freshly constructed simulation and running it
 * forward produces *exactly* the state an uninterrupted run reaches —
 * for every detector, recovery manager, fault model and
 * reconfiguration plan combination. The proof instrument is the
 * serializer itself: two networks are equal iff their saveState()
 * byte streams are equal.
 *
 * The sweep-level tests exercise the experiment runner's cell
 * checkpointing end to end: a real table bench is killed mid-sweep
 * (WORMNET_CRASH_AFTER_CELLS -> _Exit(86)), resumed, and its stdout
 * compared byte-for-byte against the committed golden table, at
 * several kill points and job counts.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/serialize.hh"
#include "core/simulation.hh"
#include "detection/dwfg.hh"
#include "detector_fixture.hh"
#include "sim/checkpoint.hh"
#include "sim/network.hh"

namespace
{

using namespace wormnet;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "wormnet_" + name;
}

std::vector<std::uint8_t>
snapshot(const Simulation &sim)
{
    Serializer s;
    sim.net().saveState(s);
    return s.bytes();
}

SimulationConfig
smallConfig()
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.flitRate = 0.45; // near saturation: detections and recovery
    cfg.oraclePeriod = 64;
    cfg.seed = 7;
    return cfg;
}

/**
 * Run @p pre cycles (measurement window opens halfway), checkpoint,
 * restore into a second simulation, and verify both are bitwise
 * equal — immediately, and again after @p post further cycles.
 */
void
expectResumeIdentical(const SimulationConfig &cfg, Cycle pre,
                      Cycle post, const std::string &tag)
{
    Simulation a(cfg);
    a.net().run(pre / 2);
    a.net().startMeasurement();
    a.net().run(pre - pre / 2);

    const std::string path = tempPath("ckpt_" + tag + ".bin");
    a.saveCheckpoint(path);

    Simulation b(cfg);
    b.loadCheckpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(snapshot(a), snapshot(b))
        << tag << ": restored state diverges at the save point";

    a.net().run(post);
    b.net().run(post);
    EXPECT_EQ(a.net().now(), b.net().now());
    EXPECT_EQ(snapshot(a), snapshot(b))
        << tag << ": resumed run diverged within " << post
        << " cycles of the save point";
}

TEST(CheckpointRoundTrip, NdmProgressiveSaturatedTorus)
{
    expectResumeIdentical(smallConfig(), 600, 600, "ndm");
}

TEST(CheckpointRoundTrip, PdmDetector)
{
    SimulationConfig cfg = smallConfig();
    cfg.detector = "pdm:16";
    expectResumeIdentical(cfg, 600, 600, "pdm");
}

TEST(CheckpointRoundTrip, TimeoutDetectorDorRouting)
{
    SimulationConfig cfg = smallConfig();
    cfg.detector = "timeout:64";
    cfg.routing = "dor";
    expectResumeIdentical(cfg, 600, 600, "timeout_dor");
}

TEST(CheckpointRoundTrip, RegressiveRecoveryWithFaults)
{
    SimulationConfig cfg = smallConfig();
    cfg.recovery = "regressive";
    cfg.faults = "link:0>1@150,router:5@250,link:10>14@500";
    cfg.faultRepair = 200;
    expectResumeIdentical(cfg, 700, 700, "regressive_faults");
}

TEST(CheckpointRoundTrip, DishaRecovery)
{
    SimulationConfig cfg = smallConfig();
    cfg.recovery = "disha";
    expectResumeIdentical(cfg, 600, 600, "disha");
}

TEST(CheckpointRoundTrip, ReconfigEpochsStraddleTheCheckpoint)
{
    SimulationConfig cfg = smallConfig();
    // Epochs on both sides of the cycle-600 checkpoint, including a
    // routing switch before it and restores after it.
    cfg.reconfig = "link-:0>1@150,routing:duato@300,router-:5@450,"
                   "link+:0>1@700,router+:5@800,routing:tfa@900";
    expectResumeIdentical(cfg, 600, 600, "reconfig");
}

TEST(CheckpointRoundTrip, FaultsAndReconfigOverlapOnOneLink)
{
    SimulationConfig cfg = smallConfig();
    // The 0>1 link is both faulted and admin-removed; the overlap is
    // live at the checkpoint and unwinds after it.
    cfg.faults = "link:0>1@200";
    cfg.faultRepair = 500;
    cfg.reconfig = "link-:0>1@300,link+:0>1@900";
    expectResumeIdentical(cfg, 600, 700, "overlap");
}

/** Deadlock-prone single-VC configuration under the DWFG, with a
 *  deliberately slow control plane so probe tokens linger in
 *  flight. */
SimulationConfig
dwfgCheckpointConfig()
{
    SimulationConfig cfg = smallConfig();
    cfg.detector = "dwfg:32:bw=1:hop=2";
    cfg.recovery = "regressive:16";
    cfg.vcs = 1;
    cfg.injectionLimit = false;
    cfg.lengths = "sl";
    cfg.flitRate = 0.6;
    return cfg;
}

TEST(CheckpointRoundTrip, DwfgDetectorWithInFlightProbes)
{
    const SimulationConfig cfg = dwfgCheckpointConfig();
    Simulation a(cfg);
    a.net().run(300);
    a.net().startMeasurement();

    // Park the save point on a cycle with probe tokens mid-network,
    // so the kill/resume covers the full probe lifecycle state.
    const auto *dwfg =
        dynamic_cast<const DwfgDetector *>(&a.detector());
    ASSERT_NE(dwfg, nullptr);
    Cycle guard = 0;
    while (dwfg->activeProbes() == 0 && guard++ < 3000)
        a.net().run(1);
    ASSERT_GT(dwfg->activeProbes(), 0u)
        << "scenario never put a probe in flight";

    const std::string path = tempPath("ckpt_dwfg.bin");
    a.saveCheckpoint(path);
    Simulation b(cfg);
    b.loadCheckpoint(path);
    std::remove(path.c_str());

    EXPECT_EQ(snapshot(a), snapshot(b))
        << "dwfg: restored state diverges at the save point";
    a.net().run(600);
    b.net().run(600);
    EXPECT_EQ(snapshot(a), snapshot(b))
        << "dwfg: resumed run diverged within 600 cycles";
}

TEST(CheckpointRoundTrip, DwfgWithFaultsAndReconfig)
{
    SimulationConfig cfg = dwfgCheckpointConfig();
    cfg.faults = "link:0>1@150,router:5@250";
    cfg.faultRepair = 200;
    cfg.reconfig = "link-:2>3@300,link+:2>3@900";
    expectResumeIdentical(cfg, 600, 600, "dwfg_faults_reconfig");
}

TEST(CheckpointRoundTrip, DwfgDetectorStateStandalone)
{
    // Pure detector-state round-trip on the hand-driven ring, with a
    // probe guaranteed in flight (bandwidth 1, 4-cycle hops): the
    // restored detector must emit byte-identical streams and finish
    // the probe exactly like the original.
    DwfgParams p;
    p.trigger = 8;
    p.bandwidth = 1;
    p.hopLatency = 4;
    DwfgRing a(p);
    DwfgRing b(p);
    for (NodeId r = 0; r < 4; ++r)
        a.occupy(r);

    const std::vector<NodeId> all = {0, 1, 2, 3};
    while (a.now() < 200 && a.det().activeProbes() == 0)
        a.cycle(all);
    ASSERT_GT(a.det().activeProbes(), 0u);

    Serializer s;
    a.det().saveState(s);
    Deserializer d(s.bytes().data(), s.bytes().size());
    b.det().loadState(d);
    while (b.now() < a.now())
        b.cycleAdvance();

    {
        Serializer sa, sb;
        a.det().saveState(sa);
        b.det().saveState(sb);
        EXPECT_EQ(sa.bytes(), sb.bytes());
    }

    bool va = false;
    bool vb = false;
    for (int i = 0; i < 120; ++i) {
        va |= a.cycle(all);
        vb |= b.cycle(all);
    }
    EXPECT_TRUE(va);
    EXPECT_TRUE(vb);
    EXPECT_EQ(a.det().probesConfirmed(), b.det().probesConfirmed());
    {
        Serializer sa, sb;
        a.det().saveState(sa);
        b.det().saveState(sb);
        EXPECT_EQ(sa.bytes(), sb.bytes());
    }
}

TEST(CheckpointFile, ConfigMismatchIsFatal)
{
    SimulationConfig cfg = smallConfig();
    Simulation a(cfg);
    a.net().run(50);
    const std::string path = tempPath("ckpt_mismatch.bin");
    a.saveCheckpoint(path);

    SimulationConfig other = cfg;
    other.seed = cfg.seed + 1;
    Simulation b(other);
    EXPECT_THROW(b.loadCheckpoint(path), FatalError);
    std::remove(path.c_str());
}

TEST(CheckpointFile, PayloadCorruptionIsFatal)
{
    SimulationConfig cfg = smallConfig();
    Simulation a(cfg);
    a.net().run(50);
    const std::string path = tempPath("ckpt_corrupt.bin");
    a.saveCheckpoint(path);

    // Flip one bit of the last payload byte.
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        ASSERT_TRUE(f.good());
        f.seekg(0, std::ios::end);
        const std::streamoff size = f.tellg();
        f.seekg(size - 1);
        char c = 0;
        f.get(c);
        f.seekp(size - 1);
        f.put(static_cast<char>(c ^ 0x01));
    }
    Simulation b(cfg);
    EXPECT_THROW(b.loadCheckpoint(path), FatalError);
    std::remove(path.c_str());
}

TEST(CheckpointFile, BadMagicAndVersionAreFatal)
{
    SimulationConfig cfg = smallConfig();
    Simulation a(cfg);
    a.net().run(50);
    const std::string path = tempPath("ckpt_header.bin");

    a.saveCheckpoint(path);
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(0);
        f.put('X'); // magic no longer matches
    }
    {
        Simulation b(cfg);
        EXPECT_THROW(b.loadCheckpoint(path), FatalError);
    }

    a.saveCheckpoint(path);
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        f.seekp(8);
        f.put(static_cast<char>(kCheckpointVersion + 1));
    }
    {
        Simulation b(cfg);
        EXPECT_THROW(b.loadCheckpoint(path), FatalError);
    }
    std::remove(path.c_str());
}

TEST(CheckpointFile, TruncationIsFatal)
{
    SimulationConfig cfg = smallConfig();
    Simulation a(cfg);
    a.net().run(50);
    const std::string path = tempPath("ckpt_trunc.bin");
    a.saveCheckpoint(path);

    bool ok = false;
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        ok = in.good();
        std::ostringstream os;
        os << in.rdbuf();
        content = os.str();
    }
    ASSERT_TRUE(ok);
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size() / 2));
    }
    Simulation b(cfg);
    EXPECT_THROW(b.loadCheckpoint(path), FatalError);
    std::remove(path.c_str());
}

/** Run a command and capture its stdout plus raw wait status. */
std::string
capture(const std::string &command, int &wait_status)
{
    std::string out;
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
        wait_status = -1;
        return out;
    }
    char buf[4096];
    std::size_t got;
    while ((got = fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, got);
    wait_status = pclose(pipe);
    return out;
}

std::string
slurpFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = in.good();
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Kill the quick Table 2 sweep after @p crash_cells finished cells,
 * resume from the saved sweep checkpoint, and require the resumed
 * stdout to equal the committed golden table byte-for-byte.
 */
void
checkKillResume(unsigned crash_cells, unsigned jobs)
{
    const std::string golden_path =
        std::string(WORMNET_GOLDEN_DIR) + "/table2_quick.txt";
    bool ok = false;
    const std::string content = slurpFile(golden_path, ok);
    ASSERT_TRUE(ok) << "missing golden file " << golden_path;

    const std::string argsTag = "# args:";
    ASSERT_EQ(content.compare(0, argsTag.size(), argsTag), 0);
    const auto eol = content.find('\n');
    ASSERT_NE(eol, std::string::npos);
    const std::string args =
        content.substr(argsTag.size(), eol - argsTag.size());
    const std::string expected = content.substr(eol + 1);

    std::ostringstream tag;
    tag << "sweep_k" << crash_cells << "_j" << jobs << ".bin";
    const std::string ckpt = tempPath(tag.str());
    std::remove(ckpt.c_str());

    std::ostringstream base;
    base << WORMNET_BENCH_DIR << "/table2_ndm_uniform" << args
         << " --jobs " << jobs << " --checkpoint " << ckpt
         << " --checkpoint-every 1";

    // Phase 1: crash mid-sweep with exit code 86.
    int status = -1;
    capture("WORMNET_CRASH_AFTER_CELLS=" +
                std::to_string(crash_cells) + " " + base.str() +
                " 2>/dev/null",
            status);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 86)
        << "bench did not crash at cell " << crash_cells;

    // Phase 2: resume; stdout must match the golden table exactly.
    const std::string resumed = capture(
        base.str() + " --resume " + ckpt + " 2>/dev/null", status);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    EXPECT_EQ(resumed, expected)
        << "table2 resumed after a crash at cell " << crash_cells
        << " with --jobs " << jobs
        << " is not byte-identical to the golden table";
    std::remove(ckpt.c_str());
}

TEST(SweepKillResume, EarlyKillJobs1) { checkKillResume(1, 1); }

TEST(SweepKillResume, MidKillJobs1) { checkKillResume(9, 1); }

TEST(SweepKillResume, LateKillJobs1) { checkKillResume(20, 1); }

TEST(SweepKillResume, EarlyKillJobs8) { checkKillResume(1, 8); }

TEST(SweepKillResume, MidKillJobs8) { checkKillResume(9, 8); }

TEST(SweepKillResume, LateKillJobs8) { checkKillResume(20, 8); }

} // namespace
