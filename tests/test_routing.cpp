/**
 * @file
 * Unit tests for the routing functions: candidate sets of true fully
 * adaptive routing, dimension-order routing (with dateline VC classes
 * on tori) and the Duato-protocol adaptive routing with escape
 * channels.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/log.hh"
#include "core/simulation.hh"
#include "routing/routing.hh"
#include "topology/mesh.hh"
#include "topology/mixed_torus.hh"
#include "topology/torus.hh"

namespace wormnet
{
namespace
{

RouterParams
paramsFor(const Topology &topo, unsigned vcs = 3)
{
    RouterParams p;
    p.netPorts = topo.numNetPorts();
    p.vcs = vcs;
    return p;
}

TEST(Tfa, AllMinimalDirectionsAllVcs)
{
    const KAryNCube topo(8, 2);
    const auto p = paramsFor(topo);
    TrueFullyAdaptiveRouting rf(topo, p);
    std::vector<RouteCandidate> out;

    // From (0,0) to (2,3): +x and +y are minimal.
    const NodeId dst = 2 + 3 * 8;
    rf.route(0, dst, 0, 0, out);
    ASSERT_EQ(out.size(), 2u);
    std::set<PortId> ports;
    for (const auto &c : out) {
        ports.insert(c.port);
        EXPECT_EQ(c.vcMask, 0x7u); // all three VCs
    }
    EXPECT_TRUE(ports.count(Topology::outPort(0, true)));
    EXPECT_TRUE(ports.count(Topology::outPort(1, true)));
    EXPECT_TRUE(rf.usesAllVcsUniformly());
}

TEST(Tfa, SingleDimensionRemaining)
{
    const KAryNCube topo(8, 2);
    TrueFullyAdaptiveRouting rf(topo, paramsFor(topo));
    std::vector<RouteCandidate> out;
    // (0,0) -> (0,6): only -y is minimal (2 hops back).
    rf.route(0, 6 * 8, 0, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, Topology::outPort(1, false));
}

TEST(Tfa, EquidistantGivesBothDirections)
{
    const KAryNCube topo(8, 1);
    TrueFullyAdaptiveRouting rf(topo, paramsFor(topo));
    std::vector<RouteCandidate> out;
    rf.route(0, 4, 0, 0, out); // half-way around the ring
    EXPECT_EQ(out.size(), 2u);
}

TEST(Tfa, AtDestinationGivesEjectionPorts)
{
    const KAryNCube topo(8, 2);
    auto p = paramsFor(topo);
    p.ejePorts = 4;
    TrueFullyAdaptiveRouting rf(topo, p);
    std::vector<RouteCandidate> out;
    rf.route(5, 5, 0, 0, out);
    ASSERT_EQ(out.size(), 4u);
    for (const auto &c : out) {
        EXPECT_GE(c.port, p.netPorts);
        EXPECT_EQ(c.vcMask, 0x7u);
    }
}

TEST(Dor, SingleDeterministicCandidate)
{
    const KAryNCube topo(8, 2);
    DimensionOrderRouting rf(topo, paramsFor(topo));
    std::vector<RouteCandidate> out;
    // Both x and y unresolved: must route x (dimension 0) first.
    const NodeId dst = 2 + 3 * 8;
    rf.route(0, dst, 0, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, Topology::outPort(0, true));
    EXPECT_EQ(__builtin_popcount(out[0].vcMask), 1);
    EXPECT_FALSE(rf.usesAllVcsUniformly());
}

TEST(Dor, DatelineClasses)
{
    // Travelling "+": VC0 before the wrap edge (cur > dst), VC1
    // after (cur < dst); symmetric for "-".
    EXPECT_EQ(DimensionOrderRouting::datelineVc(true, 6, 2), 0);
    EXPECT_EQ(DimensionOrderRouting::datelineVc(true, 1, 2), 1);
    EXPECT_EQ(DimensionOrderRouting::datelineVc(false, 2, 6), 0);
    EXPECT_EQ(DimensionOrderRouting::datelineVc(false, 6, 2), 1);
}

TEST(Dor, TorusNeedsTwoVcs)
{
    const KAryNCube topo(4, 2);
    auto p = paramsFor(topo, 1);
    EXPECT_THROW(DimensionOrderRouting(topo, p), FatalError);
}

TEST(Dor, MeshUsesAllVcs)
{
    const KAryNMesh topo(4, 2);
    DimensionOrderRouting rf(topo, paramsFor(topo));
    std::vector<RouteCandidate> out;
    rf.route(0, 3, 0, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vcMask, 0x7u);
    EXPECT_TRUE(rf.usesAllVcsUniformly());
}

TEST(Duato, AdaptivePlusEscape)
{
    const KAryNCube topo(8, 2);
    DuatoProtocolRouting rf(topo, paramsFor(topo));
    EXPECT_EQ(rf.escapeVcs(), 2u);
    std::vector<RouteCandidate> out;
    const NodeId dst = 2 + 3 * 8;
    rf.route(0, dst, 0, 0, out);
    // Two adaptive candidates (+x, +y on VC2) with the +x one also
    // carrying the escape VC.
    ASSERT_EQ(out.size(), 2u);
    std::uint32_t x_mask = 0, y_mask = 0;
    for (const auto &c : out) {
        if (c.port == Topology::outPort(0, true))
            x_mask = c.vcMask;
        if (c.port == Topology::outPort(1, true))
            y_mask = c.vcMask;
    }
    EXPECT_EQ(y_mask, 0x4u);        // adaptive VC only
    EXPECT_EQ(x_mask & 0x4u, 0x4u); // adaptive VC
    EXPECT_NE(x_mask & 0x3u, 0u);   // plus one escape class
}

TEST(Duato, NeedsEnoughVcs)
{
    const KAryNCube topo(4, 2);
    EXPECT_THROW(DuatoProtocolRouting(topo, paramsFor(topo, 2)),
                 FatalError);
    const KAryNMesh mesh(4, 2);
    EXPECT_NO_THROW(DuatoProtocolRouting(mesh, paramsFor(mesh, 2)));
}

TEST(RoutingFactory, BuildsAllAndRejectsUnknown)
{
    const KAryNCube topo(4, 2);
    const auto p = paramsFor(topo);
    EXPECT_EQ(makeRoutingFunction("tfa", topo, p)->name(), "tfa");
    EXPECT_EQ(makeRoutingFunction("dor", topo, p)->name(), "dor");
    EXPECT_EQ(makeRoutingFunction("duato", topo, p)->name(), "duato");
    EXPECT_THROW(makeRoutingFunction("magic", topo, p), FatalError);

    const KAryNMesh mesh(4, 2);
    const auto pm = paramsFor(mesh);
    EXPECT_EQ(makeRoutingFunction("westfirst", mesh, pm)->name(),
              "westfirst");
}

TEST(WestFirst, WestHopsComeFirstThenAdaptive)
{
    const KAryNMesh topo(4, 2);
    WestFirstRouting rf(topo, paramsFor(topo));
    std::vector<RouteCandidate> out;
    // (2,0) -> (0,2): west hops pending -> single -x candidate.
    rf.route(2, 0 + 2 * 4 + /*x=*/0, 0, 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, Topology::outPort(0, false));
    // (0,0) -> (2,2): no west hops -> both +x and +y adaptive.
    rf.route(0, 2 + 2 * 4, 0, 0, out);
    EXPECT_EQ(out.size(), 2u);
    // (1,2) -> (2,1): +x and -y, both allowed (only -x restricted).
    rf.route(1 + 2 * 4, 2 + 1 * 4, 0, 0, out);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_TRUE(rf.usesAllVcsUniformly());
}

TEST(WestFirst, RejectsTori)
{
    const KAryNCube topo(4, 2);
    EXPECT_THROW(WestFirstRouting(topo, paramsFor(topo)), FatalError);
}

TEST(WestFirst, DeadlockFreeWithOneVc)
{
    // The turn-model guarantee: no deadlock with a single VC on a
    // mesh even under heavy adaptive traffic with no limiter.
    SimulationConfig cfg;
    cfg.topology = "mesh";
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.routing = "westfirst";
    cfg.flitRate = 0.3;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 32;
    cfg.seed = 81;
    Simulation sim(cfg);
    sim.net().run(5000);
    sim.net().setFlitRate(0.0);
    sim.net().run(4000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

/** Candidates are always productive: every hop reduces distance. */
class RoutingProductive
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RoutingProductive, EveryCandidateIsMinimal)
{
    const KAryNCube topo(5, 3);
    const auto p = paramsFor(topo);
    const auto rf = makeRoutingFunction(GetParam(), topo, p);
    std::vector<RouteCandidate> out;
    Rng rng(31);
    for (int i = 0; i < 300; ++i) {
        const NodeId cur =
            static_cast<NodeId>(rng.nextBounded(topo.numNodes()));
        const NodeId dst =
            static_cast<NodeId>(rng.nextBounded(topo.numNodes()));
        if (cur == dst)
            continue;
        rf->route(cur, dst, 0, 0, out);
        ASSERT_FALSE(out.empty());
        for (const auto &c : out) {
            ASSERT_LT(c.port, p.netPorts);
            EXPECT_NE(c.vcMask, 0u);
            const NodeId next =
                topo.neighbor(cur, Topology::dimOfPort(c.port),
                              Topology::isPositivePort(c.port));
            EXPECT_EQ(topo.distance(next, dst),
                      topo.distance(cur, dst) - 1)
                << GetParam() << " " << cur << "->" << dst;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RoutingProductive,
                         ::testing::Values("tfa", "dor", "duato"));

/** Same productivity invariant on a mixed-radix torus. */
class MixedRoutingProductive
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MixedRoutingProductive, EveryCandidateIsMinimal)
{
    const MixedRadixTorus topo({8, 4, 2});
    const auto p = paramsFor(topo);
    const auto rf = makeRoutingFunction(GetParam(), topo, p);
    std::vector<RouteCandidate> out;
    Rng rng(33);
    for (int i = 0; i < 300; ++i) {
        const NodeId cur =
            static_cast<NodeId>(rng.nextBounded(topo.numNodes()));
        const NodeId dst =
            static_cast<NodeId>(rng.nextBounded(topo.numNodes()));
        if (cur == dst)
            continue;
        rf->route(cur, dst, 0, 0, out);
        ASSERT_FALSE(out.empty());
        for (const auto &c : out) {
            const NodeId next =
                topo.neighbor(cur, Topology::dimOfPort(c.port),
                              Topology::isPositivePort(c.port));
            EXPECT_EQ(topo.distance(next, dst),
                      topo.distance(cur, dst) - 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MixedRoutingProductive,
                         ::testing::Values("tfa", "dor", "duato"));

TEST(Dor, DeadlockFreeOnMixedRadixTorus)
{
    SimulationConfig cfg;
    cfg.radices = "8x4";
    cfg.vcs = 2;
    cfg.routing = "dor";
    cfg.flitRate = 0.3;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 32;
    cfg.seed = 97;
    Simulation sim(cfg);
    sim.net().run(5000);
    sim.net().setFlitRate(0.0);
    sim.net().run(4000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
    EXPECT_EQ(sim.net().stats().delivered,
              sim.net().stats().injected);
}

/** End-to-end: each algorithm delivers traffic on a busy network. */
class RoutingDelivers : public ::testing::TestWithParam<const char *>
{
};

TEST_P(RoutingDelivers, ModerateLoadAllDelivered)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.routing = GetParam();
    cfg.flitRate = 0.1;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.oraclePeriod = 0;
    cfg.seed = 77;
    Simulation sim(cfg);
    sim.net().run(3000);
    // Stop generating and drain.
    sim.net().setFlitRate(0.0);
    sim.net().run(3000);
    const SimStats &s = sim.net().stats();
    EXPECT_GT(s.generated, 100u);
    EXPECT_EQ(s.delivered, s.injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, RoutingDelivers,
                         ::testing::Values("tfa", "dor", "duato"));

} // namespace
} // namespace wormnet
