/**
 * @file
 * Cross-checks between the static channel-dependency-graph analyzer
 * and the dynamic simulator:
 *
 *  - verdicts on the canonical configurations match wormhole theory
 *    (unrestricted adaptive torus cyclic; dimension-order mesh,
 *    dateline torus, west-first mesh acyclic; Duato safe via escape);
 *  - witness cycles are genuine closed walks of realizable edges;
 *  - every oracle-confirmed dynamic deadlock lies on the statically
 *    reachable cycles (the analyzer's cycles are a sound
 *    over-approximation of everything the oracle can ever report);
 *  - statically acyclic configurations never deadlock dynamically
 *    over long randomized runs.
 */

#include <gtest/gtest.h>

#include "analysis/cdg.hh"
#include "core/simulation.hh"
#include "sim/oracle.hh"

namespace wormnet
{
namespace
{

/** Analyze the exact configuration a live simulation runs. */
ChannelDepGraph
analyze(const Simulation &sim, CdgFaults faults = {})
{
    return ChannelDepGraph(sim.net().topology(), sim.net().routing(),
                           sim.net().routerParams(),
                           std::move(faults));
}

/** Ring network with one VC so wait cycles can be engineered. */
SimulationConfig
ringConfig(unsigned radix = 12)
{
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = radix;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 0;
    cfg.selection = "firstfit";
    return cfg;
}

/** Witness must be a closed walk of realizable dependency edges,
 *  entirely inside the cyclic part of the graph. */
void
expectValidCycle(const ChannelDepGraph &cdg,
                 const std::vector<ChanId> &cycle)
{
    ASSERT_FALSE(cycle.empty());
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const ChanId from = cycle[i];
        const ChanId to = cycle[(i + 1) % cycle.size()];
        EXPECT_TRUE(cdg.reachableChan(from));
        EXPECT_TRUE(cdg.inCycle(from));
        const auto &succ = cdg.successors(from);
        EXPECT_TRUE(std::binary_search(succ.begin(), succ.end(), to))
            << "witness edge " << cdg.describe(from) << " -> "
            << cdg.describe(to) << " is not a CDG edge";
    }
}

/**
 * Soundness of the static cycles against the ground-truth oracle:
 * every network-resident head of a truly deadlocked message must be
 * able to reach a dependency cycle, and at least one must sit ON a
 * cycle (a deadlock knot is made of network channels, and any knot
 * contains a head channel — worms on minimal paths cannot close a
 * cycle on their own).
 */
void
expectDeadlocksOnStaticCycles(const Simulation &sim,
                              const ChannelDepGraph &cdg,
                              const std::vector<MsgId> &deadlocked)
{
    ASSERT_FALSE(deadlocked.empty());
    const unsigned netPorts = sim.net().topology().numNetPorts();
    std::size_t onCycle = 0;
    std::size_t networkHeads = 0;
    for (const MsgId id : deadlocked) {
        const Message &m = sim.net().messages().get(id);
        ASSERT_GT(m.numLinks(), 0u);
        const PathLink &head = m.headLink();
        if (head.port >= netPorts)
            continue; // head still in an injection buffer
        ++networkHeads;
        const ChanId c = cdg.channelId(head.node, head.port, head.vc);
        ASSERT_NE(c, kInvalidChan);
        EXPECT_TRUE(cdg.reachableChan(c))
            << "deadlocked head " << cdg.describe(c)
            << " not statically reachable";
        EXPECT_TRUE(cdg.reachesCycle(c))
            << "deadlocked head " << cdg.describe(c)
            << " cannot reach any static cycle";
        if (cdg.inCycle(c))
            ++onCycle;
    }
    EXPECT_GT(networkHeads, 0u);
    EXPECT_GT(onCycle, 0u);
}

TEST(CdgVerdicts, UnrestrictedTorusIsCyclicWithValidWitness)
{
    const auto topo = makeTopology("torus", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 1;
    const auto routing = makeRoutingFunction("tfa", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);

    EXPECT_EQ(cdg.report().verdict, CdgVerdict::CyclicDependencies);
    EXPECT_GT(cdg.report().cyclicSccCount, 0u);
    expectValidCycle(cdg, cdg.report().witness);
    // A wraparound ring closes in exactly `radix` hops; nothing
    // shorter exists on a 4-ary torus with minimal routing.
    EXPECT_EQ(cdg.report().witness.size(), 4u);
}

TEST(CdgVerdicts, DimensionOrderMeshIsDeadlockFree)
{
    const auto topo = makeTopology("mesh", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 2;
    const auto routing = makeRoutingFunction("dor", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);

    EXPECT_EQ(cdg.report().verdict, CdgVerdict::DeadlockFree);
    EXPECT_EQ(cdg.report().cyclicSccCount, 0u);
    EXPECT_TRUE(cdg.report().witness.empty());
}

TEST(CdgVerdicts, DatelineDorTorusIsDeadlockFree)
{
    // The dateline VC classes break every wraparound ring cycle, but
    // only because edges are collected per reachable (channel, dst)
    // state — a naive all-pairs edge union would be cyclic here.
    const auto topo = makeTopology("torus", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 2;
    const auto routing = makeRoutingFunction("dor", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);

    EXPECT_EQ(cdg.report().verdict, CdgVerdict::DeadlockFree);
}

TEST(CdgVerdicts, WestFirstMeshIsDeadlockFreeWithOneVc)
{
    const auto topo = makeTopology("mesh", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 1;
    const auto routing = makeRoutingFunction("westfirst", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);

    EXPECT_EQ(cdg.report().verdict, CdgVerdict::DeadlockFree);
}

TEST(CdgVerdicts, DuatoTorusIsDeadlockFreeViaEscape)
{
    const auto topo = makeTopology("torus", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 3;
    const auto routing = makeRoutingFunction("duato", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);

    const CdgReport &r = cdg.report();
    EXPECT_EQ(r.verdict, CdgVerdict::DeadlockFreeEscape);
    EXPECT_TRUE(r.escapeDistinct);
    EXPECT_EQ(r.escapeVcs, 2u);
    EXPECT_TRUE(r.escapeConnected);
    EXPECT_TRUE(r.escapeAcyclic);
    // The adaptive layer itself is cyclic (that is the point of the
    // escape construction) and the witness proves it.
    EXPECT_GT(r.cyclicSccCount, 0u);
    expectValidCycle(cdg, r.witness);
}

TEST(CdgFaultsTest, FaultedLinkRemovesItsChannels)
{
    const auto topo = makeTopology("torus", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 2;
    const auto routing = makeRoutingFunction("tfa", *topo, rp);

    const ChannelDepGraph whole(*topo, *routing, rp);
    const CdgFaults faults = resolveFaults(
        *topo, rp, FaultModel::parseSpec("link:0>1@0"));
    const ChannelDepGraph cut(*topo, *routing, rp, faults);

    EXPECT_EQ(cut.report().channels + rp.vcs,
              whole.report().channels);
    // Node 1 is node 0's +x neighbour; the link enters node 1 through
    // the input port named after the -x direction it came from.
    const PortId inPort = Topology::peerInPort(Topology::outPort(0, true));
    for (VcId v = 0; v < rp.vcs; ++v) {
        EXPECT_NE(whole.channelId(1, inPort, v), kInvalidChan);
        EXPECT_EQ(cut.channelId(1, inPort, v), kInvalidChan);
    }
}

TEST(CdgFaultsTest, DeadRouterKeepsDorMeshDeadlockFree)
{
    const auto topo = makeTopology("mesh", 4, 2);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 2;
    const auto routing = makeRoutingFunction("dor", *topo, rp);
    const CdgFaults faults = resolveFaults(
        *topo, rp, FaultModel::parseSpec("router:5@0"));
    const ChannelDepGraph cdg(*topo, *routing, rp, faults);

    EXPECT_EQ(cdg.report().verdict, CdgVerdict::DeadlockFree);
    // All 8 half-links incident to node 5 are gone.
    EXPECT_EQ(cdg.report().channels, (48u - 8u) * rp.vcs);
}

TEST(CdgCrossCheck, EngineeredRingDeadlockLiesOnStaticCycles)
{
    // The canonical engineered deadlock from the oracle tests: four
    // worms closing a cycle over the "+" channels of a 12-ring.
    Simulation sim(ringConfig());
    const ChannelDepGraph cdg = analyze(sim);
    EXPECT_EQ(cdg.report().verdict, CdgVerdict::CyclicDependencies);

    sim.net().injectMessage(0, 4, 48);
    sim.net().injectMessage(3, 7, 48);
    sim.net().injectMessage(6, 10, 48);
    sim.net().injectMessage(9, 1, 48);
    sim.net().run(100);

    const auto deadlocked = findDeadlockedMessages(sim.net());
    ASSERT_EQ(deadlocked.size(), 4u);
    expectDeadlocksOnStaticCycles(sim, cdg, deadlocked);
}

TEST(CdgCrossCheck, OrganicDeadlockLiesOnStaticCycles)
{
    // Organically wedged unrestricted-adaptive torus (same seed and
    // load as the oracle test that established the wedge).
    SimulationConfig cfg;
    cfg.radix = 8;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.lengths = "32";
    cfg.flitRate = 0.5;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 0;
    cfg.seed = 5;
    Simulation sim(cfg);
    const ChannelDepGraph cdg = analyze(sim);
    EXPECT_EQ(cdg.report().verdict, CdgVerdict::CyclicDependencies);

    sim.net().run(6000);
    const auto deadlocked = findDeadlockedMessages(sim.net());
    expectDeadlocksOnStaticCycles(sim, cdg, deadlocked);
}

TEST(CdgCrossCheck, StaticallyAcyclicDorMeshNeverDeadlocks)
{
    SimulationConfig cfg;
    cfg.topology = "mesh";
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 2;
    cfg.routing = "dor";
    cfg.flitRate = 0.4;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 11;
    Simulation sim(cfg);
    ASSERT_EQ(analyze(sim).report().verdict,
              CdgVerdict::DeadlockFree);

    sim.net().run(8000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
    EXPECT_GT(sim.net().stats().delivered, 0u);
}

TEST(CdgCrossCheck, StaticallyAcyclicWestFirstMeshNeverDeadlocks)
{
    SimulationConfig cfg;
    cfg.topology = "mesh";
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.routing = "westfirst";
    cfg.flitRate = 0.35;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.seed = 12;
    Simulation sim(cfg);
    ASSERT_EQ(analyze(sim).report().verdict,
              CdgVerdict::DeadlockFree);

    sim.net().run(8000);
    EXPECT_EQ(sim.net().stats().trueDeadlockedMessages, 0u);
    EXPECT_GT(sim.net().stats().delivered, 0u);
}

TEST(CdgReports, DotAndJsonCarryTheVerdictAndWitness)
{
    const auto topo = makeTopology("torus", 4, 1);
    RouterParams rp;
    rp.netPorts = topo->numNetPorts();
    rp.vcs = 1;
    const auto routing = makeRoutingFunction("tfa", *topo, rp);
    const ChannelDepGraph cdg(*topo, *routing, rp);
    ASSERT_EQ(cdg.report().verdict, CdgVerdict::CyclicDependencies);

    const std::string json = cdg.toJson({{"topology", topo->name()}});
    EXPECT_NE(json.find("\"verdict\": \"cyclic-dependencies\""),
              std::string::npos);
    EXPECT_NE(json.find("\"witness\": [{"), std::string::npos);

    const std::string dot = cdg.toDot(/*cyclic_only=*/true);
    EXPECT_NE(dot.find("digraph cdg"), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos);
}

} // namespace
} // namespace wormnet
