#!/usr/bin/env python3
"""Fixture suite for tools/wormnet-lint.

Each fixture in tests/lint_fixtures/ is linted with --json and the
result is compared, line by line, against the fixture's own trailing
annotations:

    <code>  // EXPECT: <family>/<kind>
    // EXPECT-FIXIT: <substring>   (binds to the nearest EXPECT above)

The comparison is exact in both directions: an expected diagnostic
that does not fire fails the test, and so does any diagnostic on a
line with no EXPECT — which is what pins the negative cases
(sorted_view escape, unreachable function, justified suppression).

Two behaviours have no natural home in an annotated fixture and are
tested inline against generated files: a bare allow() directive must
itself be an error (justifications are mandatory), and a fully clean
file must exit 0.

Usage: test_wormnet_lint.py <path-to-wormnet-lint> <fixture-dir>
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w-]+)/([\w-]+)")
FIXIT_RE = re.compile(r"//\s*EXPECT-FIXIT:\s*(.+?)\s*$")

failures = []


def check(cond, what):
    print(("ok   " if cond else "FAIL ") + what)
    if not cond:
        failures.append(what)


def run_lint(lint, args):
    proc = subprocess.run(
        [str(lint)] + args, capture_output=True, text=True
    )
    return proc


def lint_json(lint, path):
    proc = run_lint(lint, ["--json", str(path)])
    try:
        diags = json.loads(proc.stdout)
    except json.JSONDecodeError:
        check(False, f"{path.name}: --json output parses")
        return proc.returncode, []
    return proc.returncode, diags


def parse_expectations(path):
    """-> ({line: set((family, kind))}, {line: fixit_substring})"""
    expects, fixits = {}, {}
    last_expect_line = None
    for lineno, text in enumerate(
        path.read_text().splitlines(), start=1
    ):
        m = EXPECT_RE.search(text)
        if m:
            expects.setdefault(lineno, set()).add((m[1], m[2]))
            last_expect_line = lineno
            continue
        m = FIXIT_RE.search(text)
        if m and last_expect_line is not None:
            fixits[last_expect_line] = m[1]
    return expects, fixits


def run_fixture(lint, path):
    expects, fixits = parse_expectations(path)
    rc, diags = lint_json(lint, path)

    got = {}  # line -> set((family, kind))
    for d in diags:
        got.setdefault(d["line"], set()).add((d["check"], d["kind"]))

    for line in sorted(expects.keys() | got.keys()):
        want = expects.get(line, set())
        have = got.get(line, set())
        for fam, kind in sorted(want - have):
            check(False,
                  f"{path.name}:{line}: expected {fam}/{kind} fires")
        for fam, kind in sorted(have - want):
            check(False,
                  f"{path.name}:{line}: no unexpected {fam}/{kind}")
        if want and want == have:
            named = ", ".join(f"{f}/{k}" for f, k in sorted(want))
            check(True, f"{path.name}:{line}: {named}")

    for line, substr in fixits.items():
        hits = [d for d in diags if d["line"] == line]
        ok = any(substr in d.get("fixit", "") for d in hits)
        check(ok, f"{path.name}:{line}: fixit mentions '{substr}'")

    want_rc = 1 if expects else 0
    check(rc == want_rc,
          f"{path.name}: exit status {rc} == {want_rc}")


def run_inline_cases(lint, tmpdir):
    # A bare allow() is an error even though it still masks the
    # finding it targets: unexplained suppressions rot.
    bare = Path(tmpdir) / "bare_allow.cc"
    bare.write_text(
        "#include <chrono>\n"
        "long f()\n"
        "{\n"
        "    // wormnet-lint: allow(banned-api)\n"
        "    return std::chrono::steady_clock::now()\n"
        "        .time_since_epoch().count();\n"
        "}\n"
    )
    rc, diags = lint_json(lint, bare)
    check(rc == 1, "bare allow(): exit 1")
    check(
        any(d["kind"] == "missing-justification" for d in diags),
        "bare allow(): missing-justification reported",
    )

    clean = Path(tmpdir) / "clean.cc"
    clean.write_text(
        "#include <vector>\n"
        "int sum(const std::vector<int> &v)\n"
        "{\n"
        "    int s = 0;\n"
        "    for (int x : v)\n"
        "        s += x;\n"
        "    return s;\n"
        "}\n"
    )
    proc = run_lint(lint, [str(clean)])
    check(proc.returncode == 0, "clean file: exit 0")

    # --check= restricts to the named family.
    rc, diags = lint_json(lint, bare)
    proc = run_lint(
        lint, ["--check=nondet-iter", "--json", str(bare)]
    )
    only = json.loads(proc.stdout)
    check(
        all(d["check"] != "banned-api" for d in only),
        "--check=nondet-iter masks banned-api findings",
    )


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    lint = Path(sys.argv[1])
    fixture_dir = Path(sys.argv[2])
    if not lint.exists():
        print(f"missing linter binary: {lint}")
        return 2

    fixtures = sorted(fixture_dir.glob("*.cc"))
    check(len(fixtures) >= 3, "at least one fixture per family")
    for path in fixtures:
        run_fixture(lint, path)
    with tempfile.TemporaryDirectory() as tmpdir:
        run_inline_cases(lint, tmpdir)

    print(
        f"\n{len(failures)} failure(s)"
        if failures
        else "\nall lint fixture checks passed"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
