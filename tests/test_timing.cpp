/**
 * @file
 * Golden-timing tests: cycle-exact behaviour of the router pipeline
 * on minimal networks. These pin down the simulator's timing model
 * (1-cycle routing, 1-cycle transfer+link, credit loop) so that
 * accidental changes to the kernel's phase ordering are caught
 * immediately.
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "sim/trace.hh"

namespace wormnet
{
namespace
{

SimulationConfig
lineConfig()
{
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = 8;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "none";
    cfg.recovery = "none";
    cfg.oraclePeriod = 0;
    cfg.injectionLimit = false;
    cfg.selection = "firstfit";
    return cfg;
}

TEST(Timing, HeadFlitHopLatency)
{
    // Trace the Routed events of a head crossing three routers: the
    // per-hop cadence must be constant (pipelined header).
    Simulation sim(lineConfig());
    Tracer tracer;
    sim.net().attachTracer(&tracer);
    const MsgId id = sim.net().injectMessage(0, 3, 4);
    sim.net().run(60);

    std::vector<Cycle> routed;
    for (const auto &r : tracer.messageHistory(id))
        if (r.event == TraceEvent::Routed)
            routed.push_back(r.cycle);
    // Hops at nodes 0,1,2 plus the ejection grant at node 3.
    ASSERT_EQ(routed.size(), 4u);
    const Cycle hop = routed[1] - routed[0];
    EXPECT_GE(hop, 2u); // routing + transfer + link
    EXPECT_LE(hop, 3u);
    for (std::size_t i = 2; i < routed.size(); ++i)
        EXPECT_EQ(routed[i] - routed[i - 1], hop);
}

TEST(Timing, InjectionIsOneFlitPerCyclePerPort)
{
    Simulation sim(lineConfig());
    const MsgId id = sim.net().injectMessage(0, 4, 12);
    // After k cycles at most k flits have been injected.
    for (int k = 1; k <= 14; ++k) {
        sim.net().step();
        EXPECT_LE(sim.net().messages().get(id).flitsInjected,
                  static_cast<unsigned>(k));
    }
    // And injection is not slower than 1 flit/cycle when unblocked:
    // 12 flits are in by cycle 14.
    EXPECT_EQ(sim.net().messages().get(id).flitsInjected, 12u);
}

TEST(Timing, EjectionConsumesOneFlitPerCyclePerPort)
{
    Simulation sim(lineConfig());
    const MsgId id = sim.net().injectMessage(0, 1, 10);
    Cycle first_eject = 0, done = 0;
    for (int k = 0; k < 60 && done == 0; ++k) {
        sim.net().step();
        const Message &m = sim.net().messages().get(id);
        if (m.flitsEjected > 0 && first_eject == 0)
            first_eject = sim.net().now();
        if (m.status == MsgStatus::Delivered)
            done = sim.net().now();
    }
    ASSERT_GT(done, 0u);
    // 10 flits at 1/cycle after the first: exactly 9 cycles apart.
    EXPECT_EQ(done - first_eject, 9u);
}

TEST(Timing, SaturatedChannelSustainsFullBandwidth)
{
    // Back-to-back worms over one channel: the channel must carry
    // one flit per cycle once the pipeline fills (no credit bubbles
    // in steady state).
    Simulation sim(lineConfig());
    for (int i = 0; i < 6; ++i)
        sim.net().injectMessage(0, 2, 32);
    sim.net().run(40); // fill
    sim.net().startMeasurement();
    sim.net().run(100);
    // Channel 0->1 utilisation ~1 while traffic lasts.
    EXPECT_GT(sim.net().channelUtilization(0, 0), 0.9);
}

TEST(Timing, BlockedWormFreezesExactlyWhereItStands)
{
    // A worm blocked mid-network holds its buffers but transmits
    // nothing: the blocked channel's tx counter stays frozen.
    Simulation sim(lineConfig());
    sim.net().injectMessage(1, 5, 64); // blocker takes channel 1->2
    sim.net().run(8);
    sim.net().injectMessage(0, 2, 32); // victim blocks at node 1
    sim.net().run(30);
    sim.net().startMeasurement();
    const std::uint64_t before = sim.net().channelTxCount(0, 0);
    sim.net().run(10);
    // Victim's first channel (0 -> 1) is frozen: buffers full,
    // nothing moves until the blocker's tail passes.
    EXPECT_EQ(sim.net().channelTxCount(0, 0), before);
}

TEST(Timing, DetectionLatencyStatIsPopulated)
{
    // Engineered deadlock with a small oracle period: the detection
    // latency statistic must land near t2 (the deadlock forms, DT
    // trips t2 cycles later, modulo oracle quantisation).
    SimulationConfig cfg = lineConfig();
    cfg.radix = 12;
    cfg.detector = "ndm:64";
    cfg.recovery = "progressive";
    cfg.oraclePeriod = 4;
    Simulation sim(cfg);
    sim.net().injectMessage(0, 4, 48);
    sim.net().injectMessage(3, 7, 48);
    sim.net().injectMessage(6, 10, 48);
    sim.net().injectMessage(9, 1, 48);
    sim.net().run(3000);
    const SimStats &s = sim.net().stats();
    ASSERT_GE(s.detections, 1u);
    ASSERT_GE(s.detectionLatency.count(), 1u);
    EXPECT_GT(s.detectionLatency.mean(), 0.0);
    EXPECT_LT(s.detectionLatency.mean(), 400.0);
}

} // namespace
} // namespace wormnet
