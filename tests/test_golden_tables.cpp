/**
 * @file
 * Golden-table regression tests: run the real table bench binaries
 * and compare their stdout byte-for-byte against committed snapshots
 * under tests/golden/.
 *
 * Each golden file's first line records the exact bench arguments
 * ("# args: ..."); the rest is the expected stdout. The test replays
 * the binary with those arguments, so test and snapshot can never
 * disagree about the profile. The simulator is seed-deterministic and
 * the parallel sweep engine is bitwise-reproducible for every job
 * count, which is what makes byte-exact snapshots tenable; the
 * WORMNET_JOBS environment variable is explicitly allowed to vary.
 *
 * Regenerate with scripts/update_golden.sh after an intentional
 * change to simulation behaviour, and eyeball the diff — a surprise
 * here usually means a reproducibility regression, not a stale file.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

/** Read a whole file; empty optional-style flag via ok. */
std::string
slurpFile(const std::string &path, bool &ok)
{
    std::ifstream in(path, std::ios::binary);
    ok = in.good();
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Run a command and capture its stdout. */
std::string
capture(const std::string &command, int &exit_code)
{
    std::string out;
    FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
        exit_code = -1;
        return out;
    }
    char buf[4096];
    std::size_t got;
    while ((got = fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, got);
    exit_code = pclose(pipe);
    return out;
}

/**
 * Replay @p binary with the golden file's recorded args (plus
 * @p extra_args, e.g. an explicit --jobs override — the output must
 * be identical for every job count) and byte-compare stdout.
 */
void
checkGoldenTable(const std::string &binary, const std::string &golden,
                 const std::string &extra_args = "")
{
    const std::string path =
        std::string(WORMNET_GOLDEN_DIR) + "/" + golden;
    bool ok = false;
    const std::string content = slurpFile(path, ok);
    ASSERT_TRUE(ok) << "missing golden file " << path
                    << " (generate with scripts/update_golden.sh)";

    const std::string argsTag = "# args:";
    ASSERT_EQ(content.compare(0, argsTag.size(), argsTag), 0)
        << path << " must start with an '" << argsTag << "' line";
    const auto eol = content.find('\n');
    ASSERT_NE(eol, std::string::npos);
    const std::string args =
        content.substr(argsTag.size(), eol - argsTag.size());
    const std::string expected = content.substr(eol + 1);

    const std::string command = std::string(WORMNET_BENCH_DIR) + "/" +
                                binary + args +
                                (extra_args.empty() ? ""
                                                    : " " + extra_args) +
                                " 2>/dev/null";
    int exit_code = -1;
    const std::string actual = capture(command, exit_code);
    ASSERT_EQ(exit_code, 0) << "command failed: " << command;
    EXPECT_EQ(actual, expected)
        << "stdout of '" << command
        << "' diverged from the committed snapshot " << path
        << "; if the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff";
}

TEST(GoldenTables, Table1PdmUniform)
{
    checkGoldenTable("table1_pdm_uniform", "table1_quick.txt");
}

TEST(GoldenTables, Table2NdmUniform)
{
    checkGoldenTable("table2_ndm_uniform", "table2_quick.txt");
}

TEST(GoldenTables, Table7NdmHotspot)
{
    checkGoldenTable("table7_ndm_hotspot", "table7_quick.txt");
}

// The detector-ablation JSON must be byte-identical at every job
// count: results land in pre-sized slots and are emitted in sweep
// order regardless of scheduling.
TEST(GoldenTables, AblationDetectorsJobs1)
{
    checkGoldenTable("ablation_detectors",
                     "ablation_detectors_quick.json", "--jobs 1");
}

TEST(GoldenTables, AblationDetectorsJobs2)
{
    checkGoldenTable("ablation_detectors",
                     "ablation_detectors_quick.json", "--jobs 2");
}

TEST(GoldenTables, AblationDetectorsJobs8)
{
    checkGoldenTable("ablation_detectors",
                     "ablation_detectors_quick.json", "--jobs 8");
}

} // namespace
