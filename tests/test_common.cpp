/**
 * @file
 * Unit tests for the common substrate: RNG, config, stats, tables,
 * logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/config.hh"
#include "common/contracts.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace wormnet
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(13), 13u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextRange(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BernoulliMeanApproximatesP)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(9);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Config, ParseArgsForms)
{
    const char *argv[] = {"pos", "--alpha", "3", "--beta=hello",
                          "--flag"};
    const Config cfg = Config::parseArgs(5, argv);
    EXPECT_EQ(cfg.getInt("alpha", 0), 3);
    EXPECT_EQ(cfg.getString("beta"), "hello");
    EXPECT_TRUE(cfg.getBool("flag", false));
    ASSERT_EQ(cfg.positional().size(), 1u);
    EXPECT_EQ(cfg.positional()[0], "pos");
}

TEST(Config, Defaults)
{
    const Config cfg;
    EXPECT_EQ(cfg.getInt("missing", 42), 42);
    EXPECT_EQ(cfg.getString("missing", "x"), "x");
    EXPECT_DOUBLE_EQ(cfg.getDouble("missing", 2.5), 2.5);
    EXPECT_TRUE(cfg.getBool("missing", true));
}

TEST(Config, ParseString)
{
    const Config cfg = Config::parseString("a=1,b=two,c");
    EXPECT_EQ(cfg.getInt("a", 0), 1);
    EXPECT_EQ(cfg.getString("b"), "two");
    EXPECT_TRUE(cfg.getBool("c", false));
}

TEST(Config, MalformedIntIsFatal)
{
    Config cfg;
    cfg.set("n", "abc");
    EXPECT_THROW(cfg.getInt("n", 0), FatalError);
}

TEST(Config, MalformedBoolIsFatal)
{
    Config cfg;
    cfg.set("b", "maybe");
    EXPECT_THROW(cfg.getBool("b", false), FatalError);
}

TEST(Config, NegativeUintIsFatal)
{
    Config cfg;
    cfg.set("n", "-3");
    EXPECT_THROW(cfg.getUint("n", 0), FatalError);
}

TEST(Config, BoolSynonyms)
{
    Config cfg;
    for (const char *t : {"true", "1", "yes", "on", "TRUE"}) {
        cfg.set("b", t);
        EXPECT_TRUE(cfg.getBool("b", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "OFF"}) {
        cfg.set("b", f);
        EXPECT_FALSE(cfg.getBool("b", true)) << f;
    }
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    const RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 4);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(39);
    h.add(40); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(1, 100);
    for (unsigned i = 0; i < 100; ++i)
        h.add(i);
    EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(TextTable, RendersAligned)
{
    TextTable t(3);
    t.addRow({"name", "a", "bb"});
    t.addSeparator();
    t.addRow({"x", "100", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, WrongArityPanics)
{
    TextTable t(2);
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, CsvEscapes)
{
    TextTable t(2);
    t.addRow({"a,b", "c\"d"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"c\"\"d\""), std::string::npos);
}

TEST(PaperFormat, MatchesPaperStyle)
{
    EXPECT_EQ(formatPercentPaperStyle(0.0), ".000");
    EXPECT_EQ(formatPercentPaperStyle(0.00055), ".055");
    EXPECT_EQ(formatPercentPaperStyle(0.0191), "1.91");
    EXPECT_EQ(formatPercentPaperStyle(0.26), "26.0");
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("boom ", 1), FatalError);
}

TEST(Log, PanicThrows)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Log, AssertMacro)
{
    // wn_assert is the back-compat alias for the cheap contract.
    EXPECT_NO_THROW(wn_assert(1 + 1 == 2));
    EXPECT_NO_THROW(WORMNET_ASSERT(true));
#if WORMNET_CONTRACT_LEVEL >= 1
    EXPECT_THROW(wn_assert(false, " details"), PanicError);
    EXPECT_THROW(WORMNET_ASSERT(false, " details"), PanicError);
#else
    EXPECT_NO_THROW(wn_assert(false, " details"));
    EXPECT_NO_THROW(WORMNET_ASSERT(false, " details"));
#endif
#if WORMNET_CONTRACT_LEVEL >= 2
    EXPECT_THROW(WORMNET_INVARIANT(false), PanicError);
#else
    EXPECT_NO_THROW(WORMNET_INVARIANT(false));
#endif
}

} // namespace
} // namespace wormnet
