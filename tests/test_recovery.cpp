/**
 * @file
 * Tests for the recovery managers: progressive drain semantics
 * (channels freed, delivery latency penalty, blocked neighbours
 * unblocked) and regressive kill/retry semantics (flits removed,
 * credits restored, message re-injected and delivered).
 */

#include <gtest/gtest.h>

#include "core/simulation.hh"
#include "recovery/disha.hh"
#include "recovery/progressive.hh"
#include "recovery/regressive.hh"
#include "sim/oracle.hh"

namespace wormnet
{
namespace
{

/** Ring with an engineered 4-message deadlock (see test_oracle). */
SimulationConfig
ringConfig(const std::string &recovery, const std::string &detector)
{
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = 12;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = detector;
    cfg.recovery = recovery;
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 16;
    cfg.selection = "firstfit";
    return cfg;
}

void
injectCycle(Network &net)
{
    net.injectMessage(0, 4, 48);
    net.injectMessage(3, 7, 48);
    net.injectMessage(6, 10, 48);
    net.injectMessage(9, 1, 48);
}

TEST(Progressive, ResolvesEngineeredDeadlock)
{
    Simulation sim(ringConfig("progressive", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(3000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered, 4u);
    EXPECT_GE(s.recoveredDeliveries, 1u);
    EXPECT_EQ(s.kills, 0u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
    // Recovered messages are flagged as such.
    bool any_recovered = false;
    for (MsgId id = 0; id < 4; ++id)
        any_recovered |= sim.net().messages().get(id).recovered;
    EXPECT_TRUE(any_recovered);
}

TEST(Progressive, RecoveredDeliveryPaysLatencyPenalty)
{
    // Recovery spec: 100-cycle software overhead, 10 cycles per hop:
    // the recovered message must be delivered well after drain time.
    Simulation sim(ringConfig("progressive:100:10", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(3000);
    Cycle earliest_recovered = kNever;
    for (MsgId id = 0; id < 4; ++id) {
        const Message &m = sim.net().messages().get(id);
        EXPECT_EQ(m.status, MsgStatus::Delivered);
        if (m.recovered)
            earliest_recovered =
                std::min(earliest_recovered, m.deliverCycle);
    }
    ASSERT_NE(earliest_recovered, kNever);
    // Detection can fire no earlier than t2; drain takes >= length
    // cycles; then the 100-cycle overhead applies.
    EXPECT_GT(earliest_recovered, 16u + 48u + 100u);
}

TEST(Progressive, DrainFreesChannelsCompletely)
{
    // In the simultaneous cycle every member sees its successor
    // still advancing, so all four are marked and absorbed (the
    // paper's acknowledged simultaneous-blocking case); afterwards
    // every VC and credit in the network must be back to idle.
    Simulation sim(ringConfig("progressive:0:0", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(3000);
    EXPECT_EQ(sim.net().stats().delivered, 4u);
    const RouterParams &rp = sim.net().routerParams();
    for (NodeId n = 0; n < sim.net().numNodes(); ++n) {
        const Router &rt = sim.net().router(n);
        for (PortId p = 0; p < rp.numInPorts(); ++p)
            for (VcId v = 0; v < rp.vcs; ++v)
                EXPECT_TRUE(rt.inputVc(p, v).free());
        for (PortId q = 0; q < rp.numOutPorts(); ++q) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                EXPECT_FALSE(rt.outputVc(q, v).allocated);
                EXPECT_EQ(rt.outputVc(q, v).credits, rp.bufDepth);
            }
        }
    }
}

TEST(Progressive, StaggeredCycleLeavesNeighboursToProceedNormally)
{
    // A staggered tree (Figure-2 style) whose interior is falsely
    // marked by a crude timeout: recovery absorbs the marked worms,
    // and the messages waiting behind them acquire the freed
    // channels and finish through the network, not via recovery.
    Simulation sim(ringConfig("progressive:0:0", "timeout:24"));
    Network &net = sim.net();
    const MsgId a = net.injectMessage(4, 8, 120); // advancing root
    net.run(6);
    const MsgId b = net.injectMessage(3, 7, 24);
    net.run(30);
    const MsgId c = net.injectMessage(2, 4, 24);
    net.run(3000);
    EXPECT_EQ(net.stats().delivered, 3u);
    // A never blocked long enough to trip the timeout.
    EXPECT_FALSE(net.messages().get(a).recovered);
    // B and/or C were absorbed, but whatever remained proceeded
    // normally once the drains freed their channels.
    EXPECT_GE(net.stats().recoveredDeliveries, 1u);
    (void)b;
    (void)c;
}

TEST(Progressive, PendingCountReturnsToZero)
{
    ProgressiveParams params;
    ProgressiveRecovery rec(params);
    EXPECT_EQ(rec.pending(), 0u);

    Simulation sim(ringConfig("progressive", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(3000);
    // The simulation's own manager has drained everything; probe via
    // stats instead of the standalone instance above.
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST(Regressive, KillsAndRetriesUntilDelivered)
{
    Simulation sim(ringConfig("regressive:16", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(4000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered, 4u);
    EXPECT_GE(s.kills, 1u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
    bool any_retried = false;
    for (MsgId id = 0; id < 4; ++id)
        any_retried |= sim.net().messages().get(id).retries > 0;
    EXPECT_TRUE(any_retried);
}

TEST(Regressive, KillRestoresChannelState)
{
    // After the dust settles, every VC in the network must be free
    // and every credit restored.
    Simulation sim(ringConfig("regressive:16", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(4000);
    const RouterParams &rp = sim.net().routerParams();
    for (NodeId n = 0; n < sim.net().numNodes(); ++n) {
        const Router &rt = sim.net().router(n);
        for (PortId p = 0; p < rp.numInPorts(); ++p) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const InputVc &vc = rt.inputVc(p, v);
                EXPECT_TRUE(vc.free());
                EXPECT_TRUE(vc.fifo.empty());
            }
        }
        for (PortId q = 0; q < rp.numOutPorts(); ++q) {
            for (VcId v = 0; v < rp.vcs; ++v) {
                const OutputVc &out = rt.outputVc(q, v);
                EXPECT_FALSE(out.allocated);
                EXPECT_EQ(out.credits, rp.bufDepth);
            }
        }
    }
}

TEST(Regressive, RetriedMessageCountedOnce)
{
    Simulation sim(ringConfig("regressive:16", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(4000);
    // Exactly 4 deliveries even though some messages were injected
    // multiple times.
    EXPECT_EQ(sim.net().stats().delivered, 4u);
    std::uint64_t injected = sim.net().stats().injected;
    EXPECT_GT(injected, 4u); // re-injections counted as injections
}

TEST(Recovery, SourceTimeoutWithRegressiveResolvesDeadlock)
{
    // The compressionless-routing pairing: injection-stall detection
    // with abort-and-retry recovery. The engineered cycle is killed
    // from the sources and eventually everything is delivered.
    Simulation sim(ringConfig("regressive:16", "inj-stall-timeout:24"));
    injectCycle(sim.net());
    sim.net().run(6000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered, 4u);
    EXPECT_GE(s.kills, 1u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST(Recovery, SourceAgeTimeoutDetectsLongBlockedInjection)
{
    Simulation sim(ringConfig("regressive:16", "src-age-timeout:64"));
    injectCycle(sim.net());
    sim.net().run(6000);
    EXPECT_EQ(sim.net().stats().delivered, 4u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST(Disha, SequentialTokenResolvesEngineeredDeadlock)
{
    Simulation sim(ringConfig("disha:1", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(4000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered, 4u);
    EXPECT_GE(s.recoveredDeliveries, 1u);
    EXPECT_EQ(s.kills, 0u);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_TRUE(findDeadlockedMessages(sim.net()).empty());
}

TEST(Disha, TokenSerialisesConcurrentRecoveries)
{
    // With one token, simultaneous detections queue: at no point are
    // two messages draining at once. Probe via the manager directly.
    DishaParams params;
    params.tokens = 1;
    // (Constructed standalone to check the accessors; the simulation
    // below uses its own instance through the factory.)
    DishaRecovery standalone(params);
    EXPECT_EQ(standalone.pending(), 0u);

    Simulation sim(ringConfig("disha:1:2:8", "ndm:16"));
    injectCycle(sim.net());
    sim.net().run(4000);
    EXPECT_EQ(sim.net().stats().delivered, 4u);
}

TEST(Disha, MoreTokensRecoverFasterUnderManyDeadlocks)
{
    // Deadlock-prone substrate: Disha Concurrent (4 tokens) resolves
    // queued recoveries sooner than Sequential (1 token).
    const auto run_with = [](const char *recovery) {
        SimulationConfig cfg;
        cfg.radix = 4;
        cfg.dims = 2;
        cfg.vcs = 1;
        cfg.flitRate = 0.3;
        cfg.lengths = "s";
        cfg.detector = "ndm:16";
        cfg.recovery = recovery;
        cfg.injectionLimit = false;
        cfg.oraclePeriod = 64;
        cfg.seed = 61;
        Simulation sim(cfg);
        sim.net().run(5000);
        sim.net().setFlitRate(0.0);
        sim.net().run(5000);
        EXPECT_EQ(sim.net().stats().delivered,
                  sim.net().stats().injected);
        return sim.net().stats().maxDeadlockPersistence;
    };
    const Cycle sequential = run_with("disha:1");
    const Cycle concurrent = run_with("disha:4");
    // Both bounded; concurrent no worse than sequential.
    EXPECT_LT(sequential, 4000u);
    EXPECT_LE(concurrent, sequential + 500u);
}

TEST(Disha, RejectsZeroTokens)
{
    EXPECT_THROW(makeRecoveryManager("disha:0"), FatalError);
    EXPECT_NE(makeRecoveryManager("disha:2:4:16")->name().find(
                  "tokens=2"),
              std::string::npos);
}

TEST(Recovery, SourceAgeTimeoutRepeatedlyAbortsBlockedMessage)
{
    // The paper's critique of source-side timeouts made concrete: a
    // message blocked behind a long worm is aborted and re-injected
    // over and over (pure overhead; it was never deadlocked), until
    // the long worm finally drains. A larger threshold avoids the
    // churn — but the right threshold depends on the *other*
    // messages' length, which is exactly the tuning problem NDM
    // removes.
    const auto run_with = [](const char *detector) {
        SimulationConfig cfg;
        cfg.topology = "torus";
        cfg.radix = 8;
        cfg.dims = 1;
        cfg.vcs = 1;
        cfg.injPorts = 1;
        cfg.ejePorts = 1;
        cfg.flitRate = 0.0;
        cfg.detector = detector;
        cfg.recovery = "regressive:8";
        cfg.injectionLimit = false;
        cfg.oraclePeriod = 0;
        cfg.selection = "firstfit";
        Simulation sim(cfg);
        sim.net().injectMessage(1, 4, 128); // long blocker
        sim.net().run(10);
        const MsgId victim = sim.net().injectMessage(0, 2, 16);
        sim.net().run(3000);
        const Message &m = sim.net().messages().get(victim);
        EXPECT_EQ(m.status, MsgStatus::Delivered);
        return m.retries;
    };
    EXPECT_GE(run_with("src-age-timeout:32"), 2u);
    EXPECT_EQ(run_with("src-age-timeout:512"), 0u);
}

TEST(Recovery, RetryBudgetExhaustionAbandonsMessage)
{
    // Same churn scenario as above, but with a 2-retry budget: after
    // the second re-injection the next abort gives up instead of
    // re-queueing, and the victim ends Abandoned while the blocker
    // still delivers normally.
    SimulationConfig cfg;
    cfg.topology = "torus";
    cfg.radix = 8;
    cfg.dims = 1;
    cfg.vcs = 1;
    cfg.injPorts = 1;
    cfg.ejePorts = 1;
    cfg.flitRate = 0.0;
    cfg.detector = "src-age-timeout:32";
    cfg.recovery = "regressive:8:2";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 0;
    cfg.selection = "firstfit";
    Simulation sim(cfg);
    const MsgId blocker = sim.net().injectMessage(1, 4, 600);
    sim.net().run(10);
    const MsgId victim = sim.net().injectMessage(0, 2, 16);
    sim.net().run(4000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(sim.net().messages().get(blocker).status,
              MsgStatus::Delivered);
    const Message &v = sim.net().messages().get(victim);
    EXPECT_EQ(v.status, MsgStatus::Abandoned);
    EXPECT_EQ(v.retries, 2u);
    EXPECT_EQ(s.abandoned, 1u);
    EXPECT_EQ(s.injected, s.delivered + s.kills + s.abandoned);
    EXPECT_EQ(sim.net().inFlight(), 0u);
}

TEST(RecoveryFactory, ParsesSpecs)
{
    EXPECT_NE(makeRecoveryManager("progressive")->name().find(
                  "progressive"),
              std::string::npos);
    EXPECT_NE(
        makeRecoveryManager("progressive:10:2")->name().find("sw=10"),
        std::string::npos);
    EXPECT_NE(
        makeRecoveryManager("regressive:64")->name().find("retry=64"),
        std::string::npos);
    EXPECT_THROW(makeRecoveryManager("teleport"), FatalError);
    EXPECT_THROW(makeRecoveryManager("progressive:x"), FatalError);
}

TEST(Recovery, WorksUnderBackgroundTraffic)
{
    // Sustained traffic on a deadlock-prone single-VC network: with
    // detection + progressive recovery everything keeps flowing.
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.flitRate = 0.25;
    cfg.detector = "ndm:16";
    cfg.recovery = "progressive";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 64;
    cfg.seed = 13;
    Simulation sim(cfg);
    sim.net().run(5000);
    sim.net().setFlitRate(0.0);
    sim.net().run(4000);
    const SimStats &s = sim.net().stats();
    EXPECT_EQ(s.delivered, s.injected);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_GT(s.delivered, 500u);
}

TEST(Recovery, RegressiveUnderBackgroundTraffic)
{
    SimulationConfig cfg;
    cfg.radix = 4;
    cfg.dims = 2;
    cfg.vcs = 1;
    cfg.flitRate = 0.2;
    cfg.detector = "ndm:16";
    cfg.recovery = "regressive:24";
    cfg.injectionLimit = false;
    cfg.oraclePeriod = 64;
    cfg.seed = 14;
    Simulation sim(cfg);
    sim.net().run(5000);
    sim.net().setFlitRate(0.0);
    sim.net().run(5000);
    const SimStats &s = sim.net().stats();
    // Every kill causes exactly one re-injection (unless the retry
    // budget ran out), so after a full drain:
    // injections == deliveries + kills + abandonments.
    EXPECT_EQ(s.injected, s.delivered + s.kills + s.abandoned);
    EXPECT_EQ(sim.net().inFlight(), 0u);
    EXPECT_EQ(sim.net().totalQueued(), 0u);
    EXPECT_GT(s.delivered, 400u);
}

} // namespace
} // namespace wormnet
